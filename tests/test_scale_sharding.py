"""Sharded multi-fleet execution: seed spacing, bit-identity, telemetry.

The tentpole contract of :mod:`repro.scale.sharding`: the merged result
of a sharded run is **order-independent and bit-identical to the
single-process run** for the same seeds, regardless of worker count.
Property-tested here across 1/2/4 workers (reports, RNG streams and
transmission ledgers all digest-equal), plus the seed-spacing helper's
partition-independence and the per-shard telemetry JSONL merge.
"""

import numpy as np
import pytest

from repro.obs import MetricsCollector
from repro.obs.exporters import (merge_event_logs, read_events,
                                 read_sharded_events)
from repro.scale import (FleetJob, default_fleet_builder, fleet_rng,
                         fleet_seed_sequence, merge_outcomes, run_sharded,
                         spaced_seed_sequences)

JOB_PARAMS = {"clusters": 2, "devices": 12, "rounds_data": 16,
              "engine": "event", "loss": 0.1, "retries": 2}
ROUNDS = 4
ROOT_SEED = 7


def make_jobs(count=4, params=JOB_PARAMS):
    return [FleetJob(index, f"fleet-{index}", dict(params))
            for index in range(count)]


@pytest.fixture(scope="module")
def sharded_runs(tmp_path_factory):
    """The same 4-fleet workload at 1, 2 and 4 workers, with telemetry."""
    runs = {}
    for workers in (1, 2, 4):
        telemetry_dir = tmp_path_factory.mktemp(f"telemetry-{workers}w")
        runs[workers] = run_sharded(
            default_fleet_builder, make_jobs(),
            rounds_per_cluster=ROUNDS, workers=workers,
            root_seed=ROOT_SEED, telemetry_dir=telemetry_dir)
    return runs


class TestSeedSpacing:
    def test_deterministic_and_distinct(self):
        states = [fleet_rng(0, index).bit_generator.state
                  for index in range(8)]
        again = [fleet_rng(0, index).bit_generator.state
                 for index in range(8)]
        assert states == again
        keys = [repr(state) for state in states]
        assert len(set(keys)) == len(keys)

    def test_partition_independent(self):
        """The child depends only on (root, index) — by construction the
        caller cannot couple it to execution order, but the draws must
        also actually differ from sibling streams."""
        direct = fleet_rng(42, 5).standard_normal(4)
        after_others = fleet_rng(42, 5).standard_normal(4)
        np.testing.assert_array_equal(direct, after_others)
        sibling = fleet_rng(42, 6).standard_normal(4)
        assert not np.array_equal(direct, sibling)

    def test_matches_seed_sequence_spawn_semantics(self):
        root = np.random.SeedSequence(entropy=123)
        spawned = root.spawn(3)
        for index, child in enumerate(spawned):
            spaced = fleet_seed_sequence(np.random.SeedSequence(123), index)
            assert spaced.entropy == child.entropy
            assert tuple(spaced.spawn_key) == tuple(child.spawn_key)

    def test_seed_sequence_root_nests(self):
        child = fleet_seed_sequence(0, 2)
        grandchild = fleet_seed_sequence(child, 3)
        assert tuple(grandchild.spawn_key) == (2, 3)

    def test_spaced_sequences(self):
        seqs = spaced_seed_sequences(9, 5)
        assert len(seqs) == 5
        assert [tuple(s.spawn_key) for s in seqs] == [
            (0,), (1,), (2,), (3,), (4,)]
        assert spaced_seed_sequences(9, 0) == []

    def test_validation(self):
        with pytest.raises(ValueError, match="fleet_index"):
            fleet_seed_sequence(0, -1)
        with pytest.raises(ValueError, match="count"):
            spaced_seed_sequences(0, -1)


class TestShardCountInvariance:
    def test_fingerprints_identical_across_worker_counts(self, sharded_runs):
        """Tentpole criterion: reports, RNG streams and ledgers are
        bit-identical at any worker count."""
        fingerprints = {workers: run.fingerprint
                        for workers, run in sharded_runs.items()}
        assert len(set(fingerprints.values())) == 1, fingerprints

    def test_report_and_stream_digests_match_per_fleet(self, sharded_runs):
        inline = sharded_runs[1].outcomes
        for workers in (2, 4):
            pooled = sharded_runs[workers].outcomes
            assert [o.fleet_id for o in pooled] == [o.fleet_id
                                                   for o in inline]
            for a, b in zip(inline, pooled):
                assert a.report_digest == b.report_digest
                assert a.rng_digests == b.rng_digests
                assert a.ledger_digests == b.ledger_digests

    def test_jobs_dealt_across_shards(self, sharded_runs):
        shards = {o.shard for o in sharded_runs[2].outcomes}
        assert shards == {0, 1}

    def test_merged_report_prefixes_cluster_keys(self, sharded_runs):
        report = sharded_runs[1].report
        assert len(report.rounds_per_cluster) == 4 * JOB_PARAMS["clusters"]
        assert all("/" in key for key in report.rounds_per_cluster)
        assert "fleet-0/c0" in report.rounds_per_cluster
        assert report.engine.startswith("sharded[")

    def test_merge_is_order_independent(self, sharded_runs):
        outcomes = sharded_runs[1].outcomes
        shuffled = [outcomes[2], outcomes[0], outcomes[3], outcomes[1]]
        merged = merge_outcomes(shuffled, workers=1)
        assert merged.fingerprint == sharded_runs[1].fingerprint


class TestRunShardedValidation:
    def test_empty_jobs_rejected(self):
        with pytest.raises(ValueError, match="no fleet jobs"):
            run_sharded(default_fleet_builder, [], rounds_per_cluster=1)

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_sharded(default_fleet_builder, make_jobs(1),
                        rounds_per_cluster=1, workers=0)

    def test_duplicate_fleet_ids_rejected(self):
        jobs = [FleetJob(0, "a"), FleetJob(0, "b")]
        with pytest.raises(ValueError, match="duplicate fleet_ids"):
            run_sharded(default_fleet_builder, jobs, rounds_per_cluster=1)

    def test_duplicate_fleet_names_rejected(self):
        outcomes = run_sharded(
            default_fleet_builder,
            make_jobs(2, {"clusters": 1, "devices": 8, "rounds_data": 8}),
            rounds_per_cluster=1).outcomes
        clone = [outcomes[0], outcomes[0]]
        with pytest.raises(ValueError, match="duplicate fleet names"):
            merge_outcomes(clone)

    def test_workers_capped_at_job_count(self):
        sharded = run_sharded(
            default_fleet_builder,
            make_jobs(1, {"clusters": 1, "devices": 8, "rounds_data": 8}),
            rounds_per_cluster=1, workers=8)
        assert sharded.workers == 1

    def test_shared_dataset_sets_cluster_width(self):
        dataset = np.random.default_rng(0).standard_normal((10, 6))
        sharded = run_sharded(
            default_fleet_builder, make_jobs(1, {"clusters": 1}),
            rounds_per_cluster=1, dataset=dataset)
        report = sharded.outcomes[0].report
        assert report.rounds_per_cluster == {"c0": 1}


class TestTelemetryShardMerge:
    def test_per_shard_files_written(self, sharded_runs):
        for workers, run in sharded_runs.items():
            names = [path.name for path in run.telemetry_paths]
            assert names == [f"shard-{i}.jsonl" for i in range(workers)]

    def test_merge_preserves_shard_ids(self, sharded_runs, tmp_path):
        out = tmp_path / "merged.jsonl"
        written = sharded_runs[2].merge_telemetry(out)
        pairs = list(read_sharded_events(out))
        assert written == len(pairs) > 0
        assert {shard for shard, _ in pairs} == {0, 1}

    def test_read_events_round_trips_merged_log(self, sharded_runs,
                                                tmp_path):
        out = tmp_path / "merged.jsonl"
        sharded_runs[2].merge_telemetry(out)
        merged_events = list(read_events(out))
        single_events = [event
                         for path in sharded_runs[1].telemetry_paths
                         for event in read_events(path)]
        assert len(merged_events) == len(single_events)
        assert ({type(e).__name__ for e in merged_events}
                == {type(e).__name__ for e in single_events})

    def test_metrics_totals_equal_single_process(self, sharded_runs,
                                                 tmp_path):
        def totals(paths):
            collector = MetricsCollector()
            for path in paths:
                for event in read_events(path):
                    collector.observe_event(event)
            return (collector.transmits.value, collector.frames_sent.value,
                    collector.radio_energy_j)

        for workers in (2, 4):
            out = tmp_path / f"merged-{workers}.jsonl"
            sharded_runs[workers].merge_telemetry(out)
            assert totals([out]) == totals(sharded_runs[1].telemetry_paths)

    def test_merge_event_logs_validation(self, tmp_path):
        log = tmp_path / "shard-0.jsonl"
        log.write_text('{"kind":"round","cluster":"c0"}\n')
        with pytest.raises(ValueError, match="shard_ids"):
            merge_event_logs([log], tmp_path / "out.jsonl", shard_ids=[0, 1])
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ValueError, match="not a JSONL event log"):
            merge_event_logs([bad], tmp_path / "out.jsonl")
