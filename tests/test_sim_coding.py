"""Erasure-coding layer: exact MDS decode, coded channels, chunked traces."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ResilientOrchestrationPolicy
from repro.sim import (
    ARQConfig,
    ChannelSpec,
    ChannelTrace,
    ChannelTraceExhausted,
    ChunkedChannelTrace,
    CodingSpec,
    ErasureCodec,
    ErasureDecodeError,
    TracePolicy,
    TransmitResult,
    UnreliableChannel,
    decode_floats,
    delivery_probability,
    encode_floats,
    expected_frames_per_delivery,
)
from repro.sim.coding import gf_inv_matrix, gf_inverse, gf_mul
from repro.wsn.link import sensor_link, uplink


class _ScriptedLoss:
    """Loss model driven by an explicit verdict list (deterministic)."""

    def __init__(self, verdicts):
        self.verdicts = list(verdicts)

    def frame_lost(self, rng):
        return self.verdicts.pop(0)

    def reset(self):
        pass

    mean_loss_rate = 0.0


# ----------------------------------------------------------------------
# GF(256) arithmetic
# ----------------------------------------------------------------------
class TestGF256:
    def test_field_axioms_on_samples(self):
        rng = np.random.default_rng(0)
        a, b, c = (rng.integers(0, 256, 64, dtype=np.uint8) for _ in range(3))
        # Distributivity: a * (b ^ c) == (a*b) ^ (a*c).
        assert np.array_equal(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c))
        # Associativity and commutativity.
        assert np.array_equal(gf_mul(gf_mul(a, b), c), gf_mul(a, gf_mul(b, c)))
        assert np.array_equal(gf_mul(a, b), gf_mul(b, a))

    def test_inverses(self):
        for value in range(1, 256):
            assert int(gf_mul(value, gf_inverse(value))) == 1
        with pytest.raises(ZeroDivisionError):
            gf_inverse(0)

    def test_matrix_inverse_round_trip(self):
        rng = np.random.default_rng(1)
        for n in (1, 3, 6):
            while True:
                matrix = rng.integers(0, 256, (n, n), dtype=np.uint8)
                try:
                    inverse = gf_inv_matrix(matrix)
                    break
                except np.linalg.LinAlgError:
                    continue
            product = np.bitwise_xor.reduce(
                gf_mul(matrix[:, :, None], inverse[None, :, :]), axis=1)
            assert np.array_equal(product, np.eye(n, dtype=np.uint8))

    def test_singular_matrix_rejected(self):
        with pytest.raises(np.linalg.LinAlgError):
            gf_inv_matrix(np.zeros((2, 2), dtype=np.uint8))


# ----------------------------------------------------------------------
# Codec: the MDS exactness property
# ----------------------------------------------------------------------
class TestErasureCodec:
    @pytest.mark.parametrize("data,parity", [(1, 1), (1, 3), (4, 2), (5, 3),
                                             (6, 0), (3, 4), (8, 2)])
    def test_decode_exact_from_every_subset(self, data, parity):
        """The tentpole property: *any* M of M+k shards decode exactly."""
        rng = np.random.default_rng(data * 31 + parity)
        codec = ErasureCodec(data, parity)
        shards = rng.integers(0, 256, (data, 17), dtype=np.uint8)
        coded = codec.encode(shards)
        assert np.array_equal(coded[:data], shards)   # systematic
        for subset in itertools.combinations(range(data + parity), data):
            decoded = codec.decode(subset, coded[list(subset)])
            assert np.array_equal(decoded, shards), subset

    @given(st.integers(1, 6), st.integers(0, 4), st.data())
    @settings(max_examples=40, deadline=None)
    def test_decode_exact_property(self, data, parity, draw):
        payload = draw.draw(st.binary(min_size=data * 4, max_size=data * 4))
        shards = np.frombuffer(payload, dtype=np.uint8).reshape(data, 4)
        codec = ErasureCodec(data, parity)
        coded = codec.encode(shards)
        subset = draw.draw(st.permutations(range(data + parity)))[:data]
        decoded = codec.decode(subset, coded[list(subset)])
        assert np.array_equal(decoded, shards)

    def test_float_scalars_round_trip_bit_exactly(self):
        values = np.array([1.5, -0.0, np.nan, np.inf, 1e-308, np.pi])
        coded = encode_floats(values, 3)
        assert coded.size == 9
        # Systematic prefix is the data itself, bit for bit.
        assert np.array_equal(coded[:6].view(np.uint64),
                              values.view(np.uint64))
        picks = [8, 3, 0, 7, 5, 6]   # three systematic scalars erased
        decoded = decode_floats(picks, coded[picks], 6)
        assert np.array_equal(decoded.view(np.uint64), values.view(np.uint64))

    def test_decode_rejects_bad_requests(self):
        codec = ErasureCodec(3, 2)
        coded = codec.encode(np.zeros((3, 4), dtype=np.uint8))
        with pytest.raises(ErasureDecodeError):
            codec.decode([0, 1], coded[:2])           # too few
        with pytest.raises(ErasureDecodeError):
            codec.decode([0, 0, 1], coded[:3])        # duplicates
        with pytest.raises(ErasureDecodeError):
            codec.decode([0, 1, 9], coded[:3])        # out of range

    def test_shard_count_limits(self):
        with pytest.raises(ValueError):
            ErasureCodec(0, 2)
        with pytest.raises(ValueError):
            ErasureCodec(200, 100)   # > 256 total


# ----------------------------------------------------------------------
# CodingSpec + ChannelSpec plumbing
# ----------------------------------------------------------------------
class TestCodingSpecPlumbing:
    def test_coding_spec_validation(self):
        with pytest.raises(ValueError):
            CodingSpec(parity_frames=-1)
        with pytest.raises(ValueError):
            CodingSpec(parity_frames=300)

    def test_with_coding_and_recovery(self):
        base = ChannelSpec(loss=0.1, arq=ARQConfig(max_retries=2))
        assert base.recovery == "arq"
        assert ChannelSpec(loss=0.1,
                           arq=ARQConfig(max_retries=0)).recovery == "none"
        fec = base.with_coding(2)
        assert fec.coding == CodingSpec(parity_frames=2)
        assert fec.recovery == "fec"
        hybrid = base.with_coding(3, arq_fallback=True)
        assert hybrid.recovery == "hybrid"
        assert hybrid.with_coding(None).recovery == "arq"

    def test_coded_spec_is_never_ideal(self):
        # Parity frames radiate bytes and airtime even with zero loss.
        assert ChannelSpec().ideal
        assert not ChannelSpec(coding=CodingSpec(1)).ideal
        assert ChannelSpec(coding=CodingSpec(0)).ideal

    def test_preset_carries_coding(self):
        spec = ChannelSpec.preset("802154_indoor", coding=CodingSpec(2))
        assert spec.recovery == "fec"
        channel = spec.build(sensor_link(), np.random.default_rng(0))
        assert channel.coding == CodingSpec(2)


# ----------------------------------------------------------------------
# Coded transmission paths
# ----------------------------------------------------------------------
class TestCodedChannel:
    def test_lossless_coded_accounting(self):
        link = sensor_link()
        channel = UnreliableChannel(link, coding=CodingSpec(2),
                                    rng=np.random.default_rng(0))
        result = channel.transmit(320)   # 4 data frames of <= 96 bytes
        assert result.delivered
        assert result.frames == 4 and result.parity_frames == 2
        assert result.attempts == 6 and result.retransmissions == 0
        assert result.fec_wire_bytes == 2 * (96 + link.header_bytes)
        assert result.wire_bytes == link.wire_bytes(320) + result.fec_wire_bytes
        assert result.received_wire_bytes == result.wire_bytes
        assert result.elapsed_s == pytest.approx(
            link.latency_s
            + sum(link.frame_time(p) for p in link.frame_sizes(320))
            + 2 * link.frame_time(96))
        assert result.fec_time_s == pytest.approx(2 * link.frame_time(96))

    def test_fec_tolerates_up_to_k_erasures(self):
        link = sensor_link()
        channel = UnreliableChannel(link, coding=CodingSpec(2),
                                    rng=np.random.default_rng(0))
        # 4 data + 2 parity; exactly 2 lost -> still decodable.
        channel.loss = _ScriptedLoss([True, False, True, False, False, False])
        result = channel.transmit(320)
        assert result.delivered and result.lost_frames == 2
        # No ACKs in open loop: every frame radiated exactly once.
        assert result.attempts == 6 and result.retransmissions == 0
        # 3 lost -> fewer than F arrivals, undecodable; airtime still spent.
        channel.loss = _ScriptedLoss([True, True, False, True, False, False])
        result = channel.transmit(320)
        assert not result.delivered
        assert result.attempts == 6   # open loop never aborts the burst

    def test_fec_adds_no_ack_timeouts(self):
        link = sensor_link()
        channel = UnreliableChannel(link, arq=ARQConfig(ack_timeout_s=9.0),
                                    coding=CodingSpec(1),
                                    rng=np.random.default_rng(0))
        channel.loss = _ScriptedLoss([True, False, False, False, False])
        result = channel.transmit(320)
        assert result.delivered
        assert result.elapsed_s < 1.0   # the 9 s timeout never charged

    def test_hybrid_repairs_shortfall_with_arq(self):
        link = sensor_link()
        channel = UnreliableChannel(
            link, arq=ARQConfig(max_retries=2, ack_timeout_s=0.01),
            coding=CodingSpec(1, arq_fallback=True),
            rng=np.random.default_rng(0))
        # Burst: 2 of 5 coded frames erased (shortfall 1); repair frame
        # lost once, then delivered within its budget.
        channel.loss = _ScriptedLoss([True, True, False, False, False,
                                      True, False])
        result = channel.transmit(320)
        assert result.delivered
        assert result.attempts == 7 and result.retransmissions == 2
        assert result.elapsed_s > channel.arq.ack_timeout_s   # timeout charged

    def test_hybrid_gives_up_when_repair_budget_exhausts(self):
        link = sensor_link()
        channel = UnreliableChannel(
            link, arq=ARQConfig(max_retries=1, ack_timeout_s=0.01),
            coding=CodingSpec(1, arq_fallback=True),
            rng=np.random.default_rng(0))
        channel.loss = _ScriptedLoss([True, True, False, False, False,
                                      True, True])
        result = channel.transmit(320)
        assert not result.delivered
        assert result.retransmissions == 2   # both repair attempts radiated

    def test_zero_parity_coded_path_is_bit_identical_to_uncoded(self):
        """Satellite: k=0 degenerates to the uncoded channel exactly."""
        link = uplink()
        for seed in range(4):
            plain = UnreliableChannel(link, loss=0.3,
                                      arq=ARQConfig(max_retries=1),
                                      jitter_s=0.001,
                                      rng=np.random.default_rng(seed))
            coded = UnreliableChannel(link, loss=0.3,
                                      arq=ARQConfig(max_retries=1),
                                      jitter_s=0.001,
                                      coding=CodingSpec(parity_frames=0),
                                      rng=np.random.default_rng(seed))
            for _ in range(30):
                assert plain.transmit(3000) == coded.transmit(3000)

    def test_coded_trace_record_replay_bit_identical(self):
        link = sensor_link()

        def channel():
            return UnreliableChannel(link, loss=0.2,
                                     coding=CodingSpec(2),
                                     rng=np.random.default_rng(5))

        live = channel()
        expected = [live.transmit(320) for _ in range(50)]
        replayed = channel()
        replayed.replay(replayed.record_trace(320, 50))
        assert [replayed.transmit(320) for _ in range(50)] == expected

    def test_empty_payload_skips_coding(self):
        channel = UnreliableChannel(sensor_link(), coding=CodingSpec(2),
                                    rng=np.random.default_rng(0))
        assert channel.transmit(0) == TransmitResult(0, 0, 0, 0, True, 0,
                                                     0.0, 0, 0)

    def test_messages_beyond_256_shards_rejected(self):
        # The cost model refuses what the GF(256) codec cannot build.
        link = sensor_link()   # 96-byte frames -> 300 frames for ~28 KB
        channel = UnreliableChannel(link, coding=CodingSpec(2),
                                    rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="256-shard"):
            channel.transmit(300 * link.max_payload_bytes)
        # 254 data frames + 2 parity still fit.
        assert channel.transmit(254 * link.max_payload_bytes).delivered


# ----------------------------------------------------------------------
# Chunked traces
# ----------------------------------------------------------------------
class TestChunkedChannelTrace:
    def _channel(self, seed=9):
        return UnreliableChannel(sensor_link(), loss=0.2,
                                 arq=ARQConfig(max_retries=1),
                                 rng=np.random.default_rng(seed))

    def test_identical_entry_sequence_and_bounded_buffer(self):
        full = self._channel().record_trace(300, 400)
        chunked_channel = self._channel()
        chunked = chunked_channel.record_trace(
            300, 400, policy=TracePolicy(chunk=16))
        assert isinstance(chunked, ChunkedChannelTrace)
        assert len(chunked) == 400 and chunked.remaining == 400
        chunked_channel.replay(chunked)
        for index in range(400):
            assert chunked_channel.transmit(300) == full.entry(index)
            # chunk ahead + one consumed entry behind the cursor.
            assert chunked.buffered <= 17
        assert chunked.remaining == 0
        with pytest.raises(ChannelTraceExhausted):
            chunked_channel.transmit(300)

    def test_planner_style_lookahead_then_consume(self):
        full = self._channel().record_trace(300, 100)
        chunked = self._channel().record_trace(
            300, 100, policy=TracePolicy(chunk=8))
        # Planner reads far ahead without moving the cursor...
        assert chunked.entry(63) == full.entry(63)
        assert chunked.cursor == 0
        # ...then the kernel consumes; sequence unchanged.
        for index in range(100):
            assert chunked.next() == full.entry(index)

    def test_discarded_entries_are_forward_only(self):
        chunked = self._channel().record_trace(
            300, 50, policy=TracePolicy(chunk=4))
        for _ in range(10):
            chunked.next()
        assert chunked.entry(9) is not None   # one behind the cursor kept
        with pytest.raises(ValueError, match="discarded"):
            chunked.entry(3)
        with pytest.raises(ChannelTraceExhausted):
            chunked.entry(50)

    def test_validation(self):
        channel = self._channel()
        with pytest.raises(ValueError):
            TracePolicy(chunk=0)
        with pytest.raises(ValueError):
            channel.record_trace(300, -1, policy=TracePolicy(chunk=4))

    def test_legacy_chunk_argument_warns_and_maps(self):
        """The one deprecation shim at the channel layer still works."""
        with pytest.warns(DeprecationWarning, match="chunk"):
            legacy = self._channel().record_trace(300, 50, chunk=4)
        assert isinstance(legacy, ChunkedChannelTrace)
        modern = self._channel().record_trace(
            300, 50, policy=TracePolicy(chunk=4))
        assert [legacy.next() for _ in range(50)] \
            == [modern.next() for _ in range(50)]

    def test_spec_trace_policy_governs_recording(self):
        """ChannelSpec.trace is the declarative home of the knobs."""
        spec = ChannelSpec(loss=0.2, arq=ARQConfig(max_retries=1),
                           trace=TracePolicy(chunk=8))
        channel = spec.build(sensor_link(), np.random.default_rng(9))
        assert isinstance(channel.record_trace(300, 100),
                          ChunkedChannelTrace)
        # Defaults: full recording below the auto threshold, chunked past.
        auto = ChannelSpec(loss=0.2).build(sensor_link(),
                                           np.random.default_rng(9))
        assert isinstance(auto.record_trace(300, 100), ChannelTrace)
        assert auto.trace_policy.chunk_for(5000) == 1024


# ----------------------------------------------------------------------
# Closed-form pricing + the adaptive redundancy rule
# ----------------------------------------------------------------------
class TestAdaptiveRedundancy:
    def test_delivery_probability_sanity(self):
        assert delivery_probability(4, 0, 0.0) == 1.0
        assert delivery_probability(1, 0, 0.3) == pytest.approx(0.7)
        # One parity frame: survives any single loss of the two frames.
        assert delivery_probability(1, 1, 0.3) == pytest.approx(
            0.7 ** 2 + 2 * 0.3 * 0.7)
        # Monotone in k.
        probs = [delivery_probability(5, k, 0.2) for k in range(6)]
        assert all(b >= a for a, b in zip(probs, probs[1:]))

    def test_expected_frames_tradeoff(self):
        # More parity always costs airtime on a clean channel...
        assert expected_frames_per_delivery(4, 0, 0.0) == 4
        assert expected_frames_per_delivery(4, 2, 0.0) == 6
        # ...but pays for itself once loss makes whole messages fail.
        lossy = [expected_frames_per_delivery(10, k, 0.35)
                 for k in range(8)]
        assert min(lossy) < lossy[0]

    def test_array_pricing_bit_identical_to_scalar(self):
        """Vectorized pricing: one call over an array of loss rates
        equals the scalar loop element for element (exactly — the
        redundancy policy's decisions must not shift with the API)."""
        rates = np.array([0.0, 0.05, 0.2, 0.35, 0.6, 0.95])
        for frames, parity in [(1, 0), (4, 2), (10, 7)]:
            vec_p = delivery_probability(frames, parity, rates)
            assert isinstance(vec_p, np.ndarray)
            assert vec_p.tolist() == [
                delivery_probability(frames, parity, float(r))
                for r in rates]
            vec_e = expected_frames_per_delivery(frames, parity, rates)
            assert vec_e.tolist() == [
                expected_frames_per_delivery(frames, parity, float(r))
                for r in rates]

    def test_array_pricing_validation(self):
        with pytest.raises(ValueError):
            delivery_probability(4, 2, np.array([0.1, 1.0]))
        with pytest.raises(ValueError):
            delivery_probability(4, 2, np.array([-0.1, 0.5]))

    def test_coding_parity_for_rules(self):
        policy = ResilientOrchestrationPolicy(recovery="fec",
                                              fec_max_parity=6,
                                              fec_target_residual=1e-2)
        # ARQ recovery never provisions parity.
        arq = ResilientOrchestrationPolicy(recovery="arq")
        assert arq.coding_parity_for(8, 0.2, 100.0) == 0
        # Clean channel: nothing to protect against.
        assert policy.coding_parity_for(8, 0.0, 100.0) == 0
        # Loss raises the budget, clamped at fec_max_parity.
        k_low = policy.coding_parity_for(8, 0.05, 100.0)
        k_high = policy.coding_parity_for(8, 0.3, 100.0)
        assert 0 < k_low <= k_high <= 6
        # Battery-poor clusters take the energy-optimal budget, which
        # never exceeds the reliability-first one the rich cluster gets.
        assert policy.coding_parity_for(8, 0.2, 0.1) \
            <= policy.coding_parity_for(8, 0.2, 100.0)
        # The budget is clamped to the GF(256) shard limit: long
        # messages get less parity, 256+-frame messages none at all
        # (they cannot be coded and must fall back to the uncoded path).
        assert policy.coding_parity_for(253, 0.3, 100.0) <= 3
        assert policy.coding_parity_for(256, 0.3, 100.0) == 0
        assert policy.coding_parity_for(400, 0.3, 100.0) == 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ResilientOrchestrationPolicy(recovery="parrot")
        with pytest.raises(ValueError):
            ResilientOrchestrationPolicy(fec_max_parity=-1)
        with pytest.raises(ValueError):
            ResilientOrchestrationPolicy(fec_target_residual=0.0)
