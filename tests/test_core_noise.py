"""Unit tests for latent Gaussian noise injection (eq. 2)."""

import numpy as np
import pytest

from repro.core import GaussianNoiseInjector
from repro.nn.tensor import Tensor


class TestInjector:
    def test_adds_zero_mean_noise_with_sigma(self):
        injector = GaussianNoiseInjector(0.5, np.random.default_rng(0))
        latent = Tensor(np.zeros((200, 50)))
        noisy = injector(latent, training=True)
        delta = noisy.data - latent.data
        assert abs(delta.mean()) < 0.02           # zero mean (eq. 2)
        assert abs(delta.std() - 0.5) < 0.02      # requested sigma

    def test_inference_passthrough(self):
        injector = GaussianNoiseInjector(0.5, np.random.default_rng(0))
        latent = Tensor(np.ones((4, 4)))
        assert injector(latent, training=False) is latent

    def test_zero_sigma_passthrough(self):
        injector = GaussianNoiseInjector(0.0)
        latent = Tensor(np.ones((4, 4)))
        assert injector(latent, training=True) is latent

    def test_gradient_flows_through_identity(self):
        injector = GaussianNoiseInjector(0.1, np.random.default_rng(0))
        latent = Tensor(np.ones((3, 3)), requires_grad=True)
        injector(latent, training=True).sum().backward()
        assert np.allclose(latent.grad, np.ones((3, 3)))

    def test_variance_property(self):
        injector = GaussianNoiseInjector(0.3)
        assert abs(injector.variance - 0.09) < 1e-12

    def test_decay_schedule(self):
        injector = GaussianNoiseInjector(1.0, decay=0.5)
        injector.on_epoch_end()
        assert injector.sigma == 0.5
        injector.on_epoch_end()
        assert injector.sigma == 0.25
        injector.reset()
        assert injector.sigma == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianNoiseInjector(-0.1)
        with pytest.raises(ValueError):
            GaussianNoiseInjector(0.1, decay=0.0)
        with pytest.raises(ValueError):
            GaussianNoiseInjector(0.1, decay=1.5)
