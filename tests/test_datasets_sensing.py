"""Unit tests for the correlated sensor-field generator."""

import numpy as np
import pytest

from repro.datasets import (
    FieldRegime,
    SensorField,
    denormalize_rounds,
    normalized_rounds,
)
from repro.wsn import place_uniform


class TestSensorField:
    def test_read_matches_positions(self):
        field = SensorField(rng=np.random.default_rng(0))
        positions = place_uniform(20, rng=np.random.default_rng(1))
        values = field.read(positions)
        assert values.shape == (20,)
        assert np.isfinite(values).all()

    def test_values_near_regime_mean(self):
        regime = FieldRegime(mean=22.0, amplitude=3.0)
        field = SensorField(regime=regime, rng=np.random.default_rng(0))
        positions = place_uniform(200, rng=np.random.default_rng(1))
        values = field.read(positions)
        assert 10 < values.mean() < 34

    def test_spatial_correlation(self):
        # Nearby sensors must read similar values — the compressibility
        # assumption underlying the whole CDA setting.
        field = SensorField(regime=FieldRegime(correlation_length=15.0),
                            rng=np.random.default_rng(0))
        base = np.array([[50.0, 50.0]])
        near = base + [[1.0, 0.0]]
        far = base + [[45.0, 0.0]]
        diffs_near, diffs_far = [], []
        for _ in range(20):
            field.step()
            v0 = field.read(base)[0]
            diffs_near.append(abs(field.read(near)[0] - v0))
            diffs_far.append(abs(field.read(far)[0] - v0))
        assert np.mean(diffs_near) < np.mean(diffs_far)

    def test_temporal_correlation(self):
        field = SensorField(regime=FieldRegime(temporal_rho=0.95),
                            rng=np.random.default_rng(0))
        pos = place_uniform(50, rng=np.random.default_rng(1))
        field.step()
        before = field.read(pos)
        field.step()
        after = field.read(pos)
        corr = np.corrcoef(before, after)[0, 1]
        assert corr > 0.7

    def test_generate_rounds_shape(self):
        field = SensorField(rng=np.random.default_rng(0))
        pos = place_uniform(10, rng=np.random.default_rng(1))
        rounds = field.generate_rounds(pos, 15)
        assert rounds.shape == (15, 10)
        assert field.time_step == 15

    def test_generate_rounds_validation(self):
        field = SensorField(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            field.generate_rounds(np.zeros((2, 2)), 0)

    def test_regime_change_shifts_mean(self):
        field = SensorField(regime=FieldRegime(mean=20.0, amplitude=1.0),
                            rng=np.random.default_rng(0))
        pos = place_uniform(100, rng=np.random.default_rng(1))
        before = field.generate_rounds(pos, 5).mean()
        field.set_regime(FieldRegime(mean=35.0, amplitude=1.0))
        after = field.generate_rounds(pos, 5).mean()
        assert after - before > 10

    def test_hotspot_raises_local_values(self):
        regime = FieldRegime(mean=0.0, amplitude=0.1, hotspot_strength=10.0)
        field = SensorField(regime=regime, rng=np.random.default_rng(0))
        center = np.array([[50.0, 50.0]])
        corner = np.array([[2.0, 2.0]])
        field.step()
        assert field.read(center)[0] > field.read(corner)[0]

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            SensorField(resolution=2)


class TestNormalization:
    def test_bounds(self):
        rng = np.random.default_rng(0)
        rounds = rng.normal(20, 5, (10, 8))
        scaled, low, high = normalized_rounds(rounds)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0
        assert abs(scaled.min()) < 1e-12 and abs(scaled.max() - 1) < 1e-12

    def test_inverse(self):
        rng = np.random.default_rng(1)
        rounds = rng.normal(0, 3, (5, 4))
        scaled, low, high = normalized_rounds(rounds)
        assert np.allclose(denormalize_rounds(scaled, low, high), rounds)

    def test_constant_input(self):
        scaled, low, high = normalized_rounds(np.full((3, 3), 7.0))
        assert np.allclose(scaled, 0.0)
        assert low == high == 7.0
