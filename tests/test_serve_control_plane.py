"""Control-plane tests: bridge backpressure, bit-identity, commands, TCP.

The PR 7 telemetry contract extends to the control plane: hosting a run
under :class:`repro.serve.FleetService` with live TCP subscribers (even
slow, dropping ones) must leave the simulation bit-identical to the
same seed offline — asserted here with the same digest helpers the
sharded-run invariance tests use.  No pytest-asyncio in the container:
async paths run under plain ``asyncio.run`` wrappers.
"""

from __future__ import annotations

import asyncio
import io
import json
import re
import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.obs import (
    JsonlWriter, MetricsCollector, TelemetryBus, read_events,
    render_prometheus,
)
from repro.obs.exporters import _flush_on_exit
from repro.obs.telemetry import (
    ClusterRetired, FaultApplied, RoundCompleted, SpanClosed,
)
from repro.scale.sharding import _ledger_digest, _rng_digest, report_digest
from repro.serve import (
    AsyncTelemetryBridge, Command, ControlPlaneClient, EventStream,
    FleetDashboard, FleetService, RunController,
    build_scheduler_from_spec, serve_in_thread,
)
from repro.sim import FaultEvent

# Small but non-trivial: event engine, Bernoulli loss, fused traces.
LOSSY_SPEC = {
    "name": "lossy", "clusters": 2, "devices": 12, "rounds_data": 20,
    "engine": "event", "loss": 0.1, "retries": 1, "seed": 3,
}
# Fault-only fused: lossless channels, a scheduled early fault, fused
# fleet waves between fault horizons.
FAULT_SPEC = {
    "name": "faulty", "clusters": 2, "devices": 12, "rounds_data": 20,
    "engine": "event", "seed": 5,
    "faults": [
        {"time_s": 0.01, "kind": "brownout", "cluster": "c0",
         "magnitude": 0.5},
        {"time_s": 0.02, "kind": "node_death", "cluster": "c1",
         "device": 2},
    ],
}
ROUNDS = 10


def _round_event(i: int) -> RoundCompleted:
    return RoundCompleted(cluster="c0", round=i, delivered=True,
                          loss=0.5 / (i + 1), time_s=float(i))


def _digests(scheduler, report):
    return {
        "report": report_digest(report),
        "rng": {c.name: _rng_digest(c.stream_rng)
                for c in scheduler.clusters},
        "ledger": {c.name: _ledger_digest(c.trainer.ledger)
                   for c in scheduler.clusters},
        "clock": {c.name: c.history.times.tolist()
                  for c in scheduler.clusters},
    }


def _offline_digests(spec):
    scheduler = build_scheduler_from_spec(dict(spec))
    return _digests(scheduler, scheduler.run(rounds_per_cluster=ROUNDS))


def _service_digests(spec, capacity=4096):
    """Run the spec under a FleetService with an attached subscriber."""
    async def go():
        service = await FleetService(max_workers=2).start()
        try:
            # Paused submit -> subscribe -> resume: the subscription is
            # attached before the first event can possibly fire.
            handle = service.submit_spec(
                {**spec, "rounds": ROUNDS, "paused": True})
            stream = service.stream_for(handle, capacity=capacity)
            handle.controller.resume()
            await service.wait(handle)
            events = []
            while True:
                event = await stream.next()
                if event is None:
                    break
                events.append(event)
            assert handle.state == "done", handle.error
            return (_digests(handle.scheduler, handle.report),
                    events, stream)
        finally:
            await service.close()
    return asyncio.run(go())


# ----------------------------------------------------------------------
# Bridge: ordering and backpressure
# ----------------------------------------------------------------------
def test_event_stream_delivers_in_order_and_terminates():
    async def go():
        loop = asyncio.get_running_loop()
        stream = EventStream(loop, capacity=64)
        for i in range(10):
            stream.offer(_round_event(i))
        stream.close()
        seen = []
        while True:
            event = await stream.next()
            if event is None:
                break
            seen.append(event.round)
        assert seen == list(range(10))
        assert stream.delivered == 10
        assert stream.dropped == 0
        # Closed and drained: next() keeps returning None.
        assert await stream.next() is None
    asyncio.run(go())


def test_slow_subscriber_drops_are_counted_not_blocking():
    async def go():
        loop = asyncio.get_running_loop()
        bus = TelemetryBus()
        bridge = AsyncTelemetryBridge(bus, loop)
        slow = bridge.stream(capacity=8)
        # The producer burst never blocks: the queue caps at 8 and the
        # remaining 92 offers are shed and counted.
        for i in range(100):
            bus.emit(_round_event(i))
        bridge.close()
        seen = []
        while True:
            event = await slow.next()
            if event is None:
                break
            seen.append(event.round)
        assert seen == list(range(8))   # oldest survive (drop-newest)
        assert slow.dropped == 92
        assert slow.delivered == 8
    asyncio.run(go())


def test_fast_subscriber_sees_every_event_in_order():
    async def go():
        loop = asyncio.get_running_loop()
        bus = TelemetryBus()
        bridge = AsyncTelemetryBridge(bus, loop)
        fast = bridge.stream(capacity=4096)
        total = 500

        def produce():
            for i in range(total):
                bus.emit(_round_event(i))
            bridge.close()

        thread = threading.Thread(target=produce)
        thread.start()
        seen = []
        while True:
            event = await fast.next()
            if event is None:
                break
            seen.append(event.round)
        thread.join()
        assert seen == list(range(total))
        assert fast.dropped == 0
    asyncio.run(go())


def test_bridge_kind_filter_and_late_stream_is_born_closed():
    async def go():
        loop = asyncio.get_running_loop()
        bus = TelemetryBus()
        bridge = AsyncTelemetryBridge(bus, loop)
        only_retire = bridge.stream(kinds=[ClusterRetired.kind])
        bus.emit(_round_event(0))
        bus.emit(ClusterRetired(cluster="c0", reason="test", time_s=1.0))
        bridge.close()
        event = await only_retire.next()
        assert isinstance(event, ClusterRetired)
        assert await only_retire.next() is None
        late = bridge.stream()
        assert late.closed
        assert await late.next() is None
    asyncio.run(go())


# ----------------------------------------------------------------------
# Bit-identity: service-attached runs vs offline
# ----------------------------------------------------------------------
def test_service_hosted_lossy_fused_run_is_bit_identical_offline():
    offline = _offline_digests(LOSSY_SPEC)
    # Tiny capacity: the subscriber drops most of the stream, which
    # must not perturb the run either.
    hosted, events, stream = _service_digests(LOSSY_SPEC, capacity=16)
    assert stream.dropped > 0
    assert len(events) == 16
    assert hosted == offline


def test_service_hosted_fault_only_fused_run_is_bit_identical_offline():
    offline = _offline_digests(FAULT_SPEC)
    hosted, events, _ = _service_digests(FAULT_SPEC)
    assert hosted == offline
    assert any(isinstance(e, FaultApplied) for e in events)


def test_spec_faults_require_event_engine():
    with pytest.raises(ValueError, match="event"):
        build_scheduler_from_spec({
            "name": "bad", "engine": "sequential",
            "faults": [{"time_s": 1.0, "kind": "brownout",
                        "cluster": "c0", "magnitude": 0.5}]})


# ----------------------------------------------------------------------
# Runtime commands
# ----------------------------------------------------------------------
def test_paused_submit_commands_apply_and_land_in_report():
    async def go():
        service = await FleetService(max_workers=1).start()
        try:
            handle = service.submit_spec(
                {**LOSSY_SPEC, "rounds": ROUNDS, "paused": True})
            controller = handle.controller
            fut_fault = controller.inject_fault(FaultEvent(
                0.0, "brownout", "c0", magnitude=0.5))
            fut_retire = controller.retire_cluster("c1", "test retire")
            stream = service.stream_for(handle)
            controller.resume()
            await service.wait(handle)
            fault_result = fut_fault.result(timeout=5)
            retire_result = fut_retire.result(timeout=5)
            assert fault_result["applied"] == "inject_fault"
            assert retire_result["cluster"] == "c1"
            report = handle.report
            assert report.faults_applied >= 1
            assert report.dead_clusters.get("c1") == "test retire"
            kinds = set()
            while True:
                event = await stream.next()
                if event is None:
                    break
                kinds.add(event.kind)
            assert FaultApplied.kind in kinds
            assert ClusterRetired.kind in kinds
        finally:
            await service.close()
    asyncio.run(go())


def test_cancel_stops_at_boundary_with_partial_report():
    async def go():
        service = await FleetService(max_workers=1).start()
        try:
            handle = service.submit_spec(
                {**LOSSY_SPEC, "rounds": 200, "paused": True})
            handle.controller.cancel()
            await service.wait(handle)
            assert handle.state == "cancelled"
            assert handle.report is not None
            assert sum(handle.report.rounds_per_cluster.values()) < 400
        finally:
            await service.close()
    asyncio.run(go())


def test_ideal_engine_rejects_mutating_commands():
    async def go():
        service = await FleetService(max_workers=1).start()
        try:
            handle = service.submit_spec({
                "name": "ideal", "clusters": 2, "devices": 12,
                "rounds_data": 20, "engine": "sequential", "seed": 1,
                "rounds": ROUNDS, "paused": True})
            future = handle.controller.retire_cluster("c0")
            handle.controller.resume()
            await service.wait(handle)
            assert handle.state == "done"
            with pytest.raises(ValueError, match="event engine"):
                future.result(timeout=5)
        finally:
            await service.close()
    asyncio.run(go())


def test_command_validation_against_fake_surface():
    controller = RunController()
    surface = SimpleNamespace(
        sim=SimpleNamespace(now=2.5),
        scheduler=SimpleNamespace(policy="round_robin"),
        executor=SimpleNamespace(mode="segment", policy="round_robin"),
        states={}, injector=None, budget={})
    with pytest.raises(ValueError, match="loss_priority"):
        controller._apply(Command("set_policy", "loss_priority"), surface)
    with pytest.raises(ValueError, match="unknown policy"):
        controller._apply(Command("set_policy", "nonsense"), surface)
    with pytest.raises(KeyError, match="unknown cluster"):
        controller._apply(Command("retire_cluster", ("cX", "why")), surface)
    result = controller._apply(Command("set_policy", "fifo"), surface)
    assert result == {"applied": "set_policy", "policy": "fifo",
                      "previous": "round_robin", "time_s": 2.5}
    assert surface.scheduler.policy == "fifo"
    assert surface.executor.policy == "fifo"
    with pytest.raises(ValueError, match="unknown command kind"):
        Command("explode")


def test_finish_fails_leftover_command_futures():
    from repro.serve import RunCancelled
    controller = RunController()
    future = controller.retire_cluster("c0")
    controller.finish()
    with pytest.raises(RunCancelled):
        future.result(timeout=1)
    # Submitting after finish fails immediately too.
    with pytest.raises(RunCancelled):
        controller.set_policy("fifo").result(timeout=1)


# ----------------------------------------------------------------------
# TCP protocol end to end
# ----------------------------------------------------------------------
def test_tcp_command_roundtrip_reflected_in_stream_and_report():
    with serve_in_thread(max_workers=1) as box:
        async def drive():
            async with ControlPlaneClient(box.host, box.port) as client, \
                    ControlPlaneClient(box.host, box.port) as watcher:
                assert (await client.request("ping"))["pong"]
                reply = await client.request("submit", spec={
                    **LOSSY_SPEC, "clusters": 4, "rounds": ROUNDS,
                    "paused": True})
                run = reply["run"]
                assert reply["state"] == "paused"
                await client.request(
                    "command", run=run, wait=False,
                    command={"kind": "inject_fault", "fault": "brownout",
                             "cluster": "c1", "magnitude": 0.5})
                await client.request(
                    "command", run=run, wait=False,
                    command={"kind": "retire_cluster", "cluster": "c3",
                             "reason": "tcp retire"})
                # Subscribe before resume (eager handshake) so the very
                # first events — the commands landing — are observed.
                lines = await watcher.open_subscription(
                    run, metrics_every=25)
                await client.request("resume", run=run)
                kinds, done = set(), {}
                async for line in lines:
                    if "event" in line:
                        kinds.add(line["event"]["kind"])
                    elif "metrics_snapshot" in line:
                        assert "transmits" in line["metrics_snapshot"]
                    elif line.get("done"):
                        done = line
                assert done["state"] == "done"
                assert done["dropped"] == 0
                assert FaultApplied.kind in kinds
                assert ClusterRetired.kind in kinds
                status = await client.request("status", run=run)
                report = status["report"]
                assert report["faults_applied"] >= 1
                assert report["dead_clusters"].get("c3") == "tcp retire"
                listing = await client.request("list")
                assert [r["run"] for r in listing["runs"]] == [run]
                metrics = await client.request("metrics", run=run)
                assert "# TYPE repro_transmits_total counter" \
                    in metrics["prometheus"]
        asyncio.run(drive())


def test_tcp_error_replies_keep_connection_alive():
    with serve_in_thread(max_workers=1) as box:
        async def drive():
            async with ControlPlaneClient(box.host, box.port) as client:
                with pytest.raises(RuntimeError, match="unknown op"):
                    await client.request("explode")
                with pytest.raises(RuntimeError, match="unknown run"):
                    await client.request("status", run="run-99")
                with pytest.raises(RuntimeError, match="missing 'run'"):
                    await client.request("cancel")
                # Connection still serves after three error replies.
                assert (await client.request("ping"))["pong"]
        asyncio.run(drive())


# ----------------------------------------------------------------------
# Prometheus exposition (satellite 1)
# ----------------------------------------------------------------------
_PROM_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\.)*\")*\})?"
    r" (-?[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?|NaN|[+-]Inf)$")


def _lossy_collector():
    bus = TelemetryBus()
    collector = MetricsCollector(bus)
    scheduler = build_scheduler_from_spec(dict(LOSSY_SPEC), telemetry=bus)
    scheduler.run(rounds_per_cluster=ROUNDS)
    return collector


def test_render_prometheus_matches_exposition_grammar():
    text = render_prometheus(_lossy_collector())
    assert text.endswith("\n")
    typed = set()
    for line in text.splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            assert re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", parts[2]), line
            if parts[1] == "TYPE":
                assert parts[3] in ("counter", "gauge", "histogram"), line
                typed.add(parts[2])
            continue
        match = _PROM_SAMPLE.fullmatch(line)
        assert match, f"bad sample line: {line!r}"
        name = match.group(1)
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in typed or family in typed, \
            f"sample before its TYPE: {line!r}"


def test_render_prometheus_histograms_are_cumulative():
    text = render_prometheus(_lossy_collector())
    buckets = re.findall(
        r'^repro_round_loss_bucket\{le="([^"]+)"\} (\d+)$', text, re.M)
    assert buckets, "round_loss histogram missing"
    counts = [int(v) for _, v in buckets]
    assert counts == sorted(counts), "buckets must be cumulative"
    assert buckets[-1][0] == "+Inf"
    total = int(re.search(r"^repro_round_loss_count (\d+)$", text,
                          re.M).group(1))
    assert counts[-1] == total
    # Per-cluster labelled gauges made it out too.
    assert re.search(r'^repro_cluster_rounds_total\{cluster="c0"\} \d+$',
                     text, re.M)


def test_render_prometheus_from_flat_mapping():
    text = render_prometheus({"wire_bytes": 1234, "weird name!": 1.5})
    assert "repro_wire_bytes 1234" in text
    assert "repro_weird_name_ 1.5" in text
    assert render_prometheus({}) == ""


# ----------------------------------------------------------------------
# JSONL follow mode + atexit flush (satellites 2 and 3)
# ----------------------------------------------------------------------
def test_read_events_follow_handles_partial_trailing_lines(tmp_path):
    path = tmp_path / "tail.jsonl"
    first = json.dumps(_round_event(0).as_dict())
    second = json.dumps(_round_event(1).as_dict())
    third = json.dumps(_round_event(2).as_dict())
    path.write_text(first + "\n" + second + "\n" + third[:10])

    stopping = False
    reader = read_events(path, follow=True, poll_s=0.01,
                         stop=lambda: stopping)
    assert next(reader).round == 0
    assert next(reader).round == 1
    # The partial third line stays buffered until its newline arrives.
    with open(path, "a") as handle:
        handle.write(third[10:] + "\n")
    assert next(reader).round == 2
    stopping = True
    with pytest.raises(StopIteration):
        next(reader)


def test_read_events_follow_stop_does_one_final_read(tmp_path):
    path = tmp_path / "tail.jsonl"
    path.write_text("")
    stopping = False
    reader = read_events(path, follow=True, poll_s=0.01,
                         stop=lambda: stopping)
    # Append and stop before the reader ever polls: the final read
    # still surfaces the event.
    path.write_text(json.dumps(_round_event(7).as_dict()) + "\n")
    stopping = True
    assert next(reader).round == 7
    with pytest.raises(StopIteration):
        next(reader)


def test_jsonl_writer_flushes_at_exit_and_unregisters_on_close(tmp_path):
    import weakref
    path = tmp_path / "events.jsonl"
    bus = TelemetryBus()
    writer = JsonlWriter(path, bus)
    bus.emit(_round_event(0))
    # Simulate interpreter exit before close: the atexit hook flushes
    # the buffered line to disk.
    _flush_on_exit(weakref.ref(writer))
    assert len(list(read_events(path))) == 1
    writer.close()
    # After close the weakref'd hook is a no-op (and unregistered).
    _flush_on_exit(weakref.ref(writer))
    assert len(list(read_events(path))) == 1


# ----------------------------------------------------------------------
# Dashboard
# ----------------------------------------------------------------------
def test_dashboard_renders_sparkline_timeline_and_spans():
    out = io.StringIO()
    bus = TelemetryBus()
    dashboard = FleetDashboard(bus, stream=out, refresh_s=0.0)
    rng = np.random.default_rng(0)
    for i in range(12):
        bus.emit(RoundCompleted(cluster="c0", round=i, delivered=True,
                                loss=float(rng.uniform(0.1, 0.9)),
                                time_s=float(i), battery_j=100.0 - i,
                                radio_energy_j=0.01 * (i + 1)))
    bus.emit(FaultApplied(cluster="c0", fault="brownout", time_s=6.0))
    bus.emit(ClusterRetired(cluster="c1", reason="quorum", time_s=8.0))
    bus.emit(SpanClosed(name="execute", elapsed_s=0.25, depth=0))
    bus.emit(SpanClosed(name="execute", elapsed_s=0.15, depth=0))
    frame = out.getvalue()
    assert any(ch in frame for ch in FleetDashboard.SPARK)
    assert "fault brownout on c0" in frame
    assert "retired c1 (quorum)" in frame
    assert dashboard.span_totals["execute"] == pytest.approx(0.40)
    assert "execute" in frame
    assert dashboard.events_seen == 16


def test_dashboard_main_follow_mode(tmp_path):
    path = tmp_path / "events.jsonl"
    with open(path, "w") as handle:
        for i in range(5):
            handle.write(json.dumps(_round_event(i).as_dict()) + "\n")
    from repro.serve.dashboard import main
    import contextlib
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(["--follow", str(path), "--max-events", "5",
                     "--refresh", "0"])
    assert code == 0
    assert "c0" in out.getvalue()
