"""Unit tests for datasets, loaders and split utilities."""

import numpy as np
import pytest

from repro import nn


class TestArrayDataset:
    def test_len_and_indexing(self):
        ds = nn.ArrayDataset(np.arange(10), np.arange(10) * 2)
        assert len(ds) == 10
        x, y = ds[3]
        assert x == 3 and y == 6

    def test_single_array_returns_scalar_item(self):
        ds = nn.ArrayDataset(np.arange(5))
        assert ds[2] == 2

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            nn.ArrayDataset(np.arange(3), np.arange(4))

    def test_empty_args(self):
        with pytest.raises(ValueError):
            nn.ArrayDataset()

    def test_subset(self):
        ds = nn.ArrayDataset(np.arange(10))
        sub = ds.subset([1, 3, 5])
        assert len(sub) == 3
        assert sub[1] == 3

    def test_fraction_size_and_no_duplicates(self):
        ds = nn.ArrayDataset(np.arange(100))
        frac = ds.fraction(0.3, rng=np.random.default_rng(0))
        assert len(frac) == 30
        assert len(set(frac.arrays[0].tolist())) == 30

    def test_fraction_validation(self):
        ds = nn.ArrayDataset(np.arange(4))
        with pytest.raises(ValueError):
            ds.fraction(0.0)
        with pytest.raises(ValueError):
            ds.fraction(1.5)


class TestDataLoader:
    def test_batch_count_without_drop(self):
        ds = nn.ArrayDataset(np.arange(10))
        loader = nn.DataLoader(ds, batch_size=3)
        assert len(loader) == 4
        batches = list(loader)
        assert len(batches) == 4
        assert len(batches[-1]) == 1

    def test_drop_last(self):
        ds = nn.ArrayDataset(np.arange(10))
        loader = nn.DataLoader(ds, batch_size=3, drop_last=True)
        assert len(loader) == 3
        assert all(len(b) == 3 for b in loader)

    def test_covers_all_samples(self):
        ds = nn.ArrayDataset(np.arange(17))
        loader = nn.DataLoader(ds, batch_size=5, shuffle=True,
                               rng=np.random.default_rng(0))
        seen = np.concatenate(list(loader))
        assert sorted(seen.tolist()) == list(range(17))

    def test_shuffle_changes_order(self):
        ds = nn.ArrayDataset(np.arange(32))
        loader = nn.DataLoader(ds, batch_size=32, shuffle=True,
                               rng=np.random.default_rng(0))
        first = list(loader)[0]
        assert not np.array_equal(first, np.arange(32))

    def test_multi_array_batches(self):
        ds = nn.ArrayDataset(np.zeros((8, 3)), np.arange(8))
        xb, yb = next(iter(nn.DataLoader(ds, batch_size=4)))
        assert xb.shape == (4, 3)
        assert yb.shape == (4,)

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            nn.DataLoader(nn.ArrayDataset(np.arange(4)), batch_size=0)


class TestTrainTestSplit:
    def test_sizes(self):
        x = np.arange(100)
        xtr, xte = nn.train_test_split(x, test_fraction=0.2,
                                       rng=np.random.default_rng(0))
        assert len(xtr) == 80 and len(xte) == 20

    def test_multiple_arrays_stay_aligned(self):
        x = np.arange(50)
        y = np.arange(50) * 10
        xtr, xte, ytr, yte = nn.train_test_split(
            x, y, test_fraction=0.2, rng=np.random.default_rng(0))
        assert np.allclose(ytr, xtr * 10)
        assert np.allclose(yte, xte * 10)

    def test_partitions_disjoint_and_complete(self):
        x = np.arange(30)
        xtr, xte = nn.train_test_split(x, test_fraction=0.3,
                                       rng=np.random.default_rng(1))
        assert sorted(np.concatenate([xtr, xte]).tolist()) == list(range(30))

    def test_validation(self):
        with pytest.raises(ValueError):
            nn.train_test_split(np.arange(5), test_fraction=0.0)
        with pytest.raises(ValueError):
            nn.train_test_split()
        with pytest.raises(ValueError):
            nn.train_test_split(np.arange(5), np.arange(6))


class TestOneHot:
    def test_encoding(self):
        out = nn.one_hot(np.array([0, 2, 1]), 3)
        assert np.allclose(out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            nn.one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            nn.one_hot(np.array([-1]), 3)
