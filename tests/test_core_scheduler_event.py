"""Event-engine tests: equivalence anchor + resilient orchestration."""

import numpy as np
import pytest

from repro.core import (
    EdgeTrainingScheduler,
    OrcoDCSConfig,
    OrcoDCSFramework,
    ResilientOrchestrationPolicy,
)
from repro.sim import (
    ARQConfig,
    ChannelSpec,
    CodingSpec,
    FaultEvent,
    FaultSchedule,
    TracePolicy,
)
from repro.wsn import place_uniform

DIM = 24
LATENT = 4
BATCH = 8
ROWS = 48


def build_scheduler(engine, policy="round_robin", clusters=3, seed=0,
                    with_positions=False, **kwargs):
    scheduler = EdgeTrainingScheduler(policy, rng=np.random.default_rng(seed),
                                      engine=engine, **kwargs)
    for index in range(clusters):
        config = OrcoDCSConfig(input_dim=DIM, latent_dim=LATENT, seed=index,
                               noise_sigma=0.05, batch_size=BATCH)
        data = np.random.default_rng(100 + index).random((ROWS, DIM))
        positions = (place_uniform(DIM, (80.0, 80.0),
                                   np.random.default_rng(index))
                     if with_positions else None)
        scheduler.add_cluster(f"c{index}", OrcoDCSFramework(config), data,
                              batch_size=BATCH, positions=positions)
    return scheduler


class TestZeroFaultEquivalence:
    """The correctness anchor: zero faults, zero loss => sequential run."""

    @pytest.mark.parametrize("policy", ["fifo", "round_robin",
                                        "loss_priority", "deadline"])
    def test_trajectories_ledger_and_clock_match(self, policy):
        sequential = build_scheduler("sequential", policy=policy)
        report_seq = sequential.run(rounds_per_cluster=10)
        event = build_scheduler("event", policy=policy)
        report_ev = event.run(rounds_per_cluster=10)

        assert report_ev.engine == "event"
        for c_seq, c_ev in zip(sequential.clusters, event.clusters):
            assert np.abs(c_ev.history.losses
                          - c_seq.history.losses).max() <= 1e-6
            assert np.abs(c_ev.history.times
                          - c_seq.history.times).max() <= 1e-6
            # Transmission ledgers agree record-for-record.
            seq_ledger = c_seq.trainer.ledger
            ev_ledger = c_ev.trainer.ledger
            assert len(ev_ledger) == len(seq_ledger)
            assert ev_ledger.total_wire_bytes() == seq_ledger.total_wire_bytes()
            assert ev_ledger.by_kind() == seq_ledger.by_kind()
            assert abs(c_ev.trainer.clock_s - c_seq.trainer.clock_s) <= 1e-6
        assert report_ev.makespan_s == pytest.approx(report_seq.makespan_s,
                                                     abs=1e-6)
        assert report_ev.total_edge_time_s == pytest.approx(
            report_seq.total_edge_time_s, abs=1e-6)
        for name in report_seq.completion_times:
            np.testing.assert_allclose(report_ev.completion_times[name],
                                       report_seq.completion_times[name],
                                       atol=1e-9, rtol=0)

    def test_no_failures_or_deaths_reported(self):
        report = build_scheduler("event").run(rounds_per_cluster=5)
        assert report.failed_rounds == {}
        assert report.dead_clusters == {}
        assert not report.halted
        assert report.faults_applied == 0
        assert all(e > 0 for e in report.energy_j.values())

    def test_deadline_misses_match_sequential(self):
        def with_deadlines(engine):
            scheduler = EdgeTrainingScheduler(
                "deadline", rng=np.random.default_rng(0), engine=engine)
            config = OrcoDCSConfig(input_dim=DIM, latent_dim=LATENT, seed=0,
                                   batch_size=BATCH)
            data = np.random.default_rng(0).random((ROWS, DIM))
            scheduler.add_cluster("tight", OrcoDCSFramework(config), data,
                                  batch_size=BATCH, deadline_s=1e-9)
            config2 = OrcoDCSConfig(input_dim=DIM, latent_dim=LATENT, seed=1,
                                    batch_size=BATCH)
            data2 = np.random.default_rng(1).random((ROWS, DIM))
            scheduler.add_cluster("loose", OrcoDCSFramework(config2), data2,
                                  batch_size=BATCH, deadline_s=1e9)
            return scheduler.run(rounds_per_cluster=3)

        assert with_deadlines("event").deadline_misses \
            == with_deadlines("sequential").deadline_misses == ["tight"]


class TestEngineGuards:
    def test_faults_require_event_engine(self):
        schedule = FaultSchedule([FaultEvent(1.0, "cluster_death", "c0")])
        with pytest.raises(ValueError):
            EdgeTrainingScheduler("fifo", engine="sequential",
                                  fault_schedule=schedule)

    def test_lossy_channels_require_event_engine(self):
        with pytest.raises(ValueError):
            EdgeTrainingScheduler("fifo", engine="batched",
                                  channels=ChannelSpec(loss=0.1))

    def test_ideal_channelspec_allowed_anywhere(self):
        EdgeTrainingScheduler("fifo", engine="sequential",
                              channels=ChannelSpec())

    def test_positions_shape_validated(self):
        scheduler = EdgeTrainingScheduler("fifo", engine="event")
        config = OrcoDCSConfig(input_dim=DIM, latent_dim=LATENT, seed=0)
        with pytest.raises(ValueError):
            scheduler.add_cluster("c", OrcoDCSFramework(config),
                                  np.random.default_rng(0).random((ROWS, DIM)),
                                  positions=np.zeros((3, 2)))


class TestUnreliableChannels:
    def test_retransmissions_appear_in_ledger_and_clock(self):
        ideal = build_scheduler("event", seed=0)
        ideal_report = ideal.run(rounds_per_cluster=8)
        lossy = build_scheduler("event", seed=0,
                                channels=ChannelSpec(loss=0.2))
        lossy_report = lossy.run(rounds_per_cluster=8)

        retx = sum(c.trainer.ledger.total_wire_bytes("latent_uplink_retx")
                   + c.trainer.ledger.total_wire_bytes("recon_downlink_retx")
                   for c in lossy.clusters)
        assert retx > 0
        assert lossy_report.makespan_s > ideal_report.makespan_s
        assert sum(lossy_report.energy_j.values()) \
            > sum(ideal_report.energy_j.values())
        # Losses are unaffected when every round still delivers: the
        # channel costs energy and time, not training signal.
        for c_ideal, c_lossy in zip(ideal.clusters, lossy.clusters):
            if len(c_ideal.history.losses) == len(c_lossy.history.losses):
                np.testing.assert_allclose(c_lossy.history.losses,
                                           c_ideal.history.losses, rtol=1e-12)

    def test_arq_exhaustion_fails_rounds(self):
        scheduler = build_scheduler(
            "event", clusters=2,
            channels=ChannelSpec(loss=0.45, arq=ARQConfig(max_retries=0)),
            resilience=ResilientOrchestrationPolicy(
                max_consecutive_failures=1000))
        report = scheduler.run(rounds_per_cluster=10)
        assert sum(report.failed_rounds.values()) > 0
        for cluster in scheduler.clusters:
            completed = report.rounds_per_cluster[cluster.name]
            assert completed == len(cluster.history.rounds)
            assert completed + report.failed_rounds.get(cluster.name, 0) == 10
        failed_kinds = [k for c in scheduler.clusters
                        for k in c.trainer.ledger.by_kind()
                        if k.endswith("_failed")]
        assert failed_kinds

    def test_flaky_cluster_retired_after_consecutive_failures(self):
        scheduler = build_scheduler(
            "event", clusters=2,
            channels=ChannelSpec(loss=0.9, arq=ARQConfig(max_retries=0)),
            resilience=ResilientOrchestrationPolicy(
                max_consecutive_failures=3))
        report = scheduler.run(rounds_per_cluster=20)
        assert report.dead_clusters
        assert any("consecutive" in reason
                   for reason in report.dead_clusters.values())


class TestFaultInjection:
    def test_node_death_masks_training_but_run_completes(self):
        faults = FaultSchedule.first_death("c0", 1e-4, device=5)
        scheduler = build_scheduler("event", fault_schedule=faults)
        report = scheduler.run(rounds_per_cluster=8)
        assert report.faults_applied == 1
        assert report.rounds_per_cluster["c0"] == 8
        assert np.isfinite(scheduler.clusters[0].history.losses).all()

    def test_aggregator_death_fails_over_with_positions(self):
        faults = FaultSchedule([FaultEvent(1e-4, "aggregator_death", "c0")])
        scheduler = build_scheduler(
            "event", with_positions=True, fault_schedule=faults,
            resilience=ResilientOrchestrationPolicy(
                on_aggregator_death="replace", failover_downtime_s=0.01))
        report = scheduler.run(rounds_per_cluster=6)
        assert "c0" not in report.dead_clusters
        assert report.rounds_per_cluster["c0"] == 6

    def test_aggregator_death_skip_policy_retires_cluster(self):
        faults = FaultSchedule([FaultEvent(1e-4, "aggregator_death", "c0")])
        scheduler = build_scheduler(
            "event", fault_schedule=faults,
            resilience=ResilientOrchestrationPolicy(
                on_aggregator_death="skip"))
        report = scheduler.run(rounds_per_cluster=6)
        assert "c0" in report.dead_clusters
        assert report.rounds_per_cluster["c0"] < 6
        # Other clusters keep their full budget.
        assert report.rounds_per_cluster["c1"] == 6

    def test_attrition_below_quorum_retires_cluster(self):
        deaths = FaultSchedule.attrition("c0", range(0, 16), 1e-4, 1e-6)
        scheduler = build_scheduler(
            "event", fault_schedule=deaths,
            resilience=ResilientOrchestrationPolicy(min_device_fraction=0.5))
        report = scheduler.run(rounds_per_cluster=6)
        assert "c0" in report.dead_clusters
        assert "attrition" in report.dead_clusters["c0"]

    def test_straggler_stretches_makespan(self):
        ideal = build_scheduler("event").run(rounds_per_cluster=6)
        window = FaultSchedule.straggler_window(
            "c0", 1e-4, ideal.makespan_s, factor=10.0)
        slow = build_scheduler("event", fault_schedule=window)
        slow_report = slow.run(rounds_per_cluster=6)
        assert slow_report.makespan_s > ideal.makespan_s
        assert slow_report.rounds_per_cluster["c0"] == 6

    def test_straggler_skip_policy_retires(self):
        window = FaultSchedule([
            FaultEvent(1e-4, "straggler", "c0", magnitude=10.0)])
        scheduler = build_scheduler(
            "event", fault_schedule=window,
            resilience=ResilientOrchestrationPolicy(on_straggler="skip",
                                                    straggler_cutoff=8.0))
        report = scheduler.run(rounds_per_cluster=6)
        assert "c0" in report.dead_clusters

    def test_quorum_halts_the_fleet(self):
        faults = FaultSchedule([
            FaultEvent(1e-4, "cluster_death", "c0"),
            FaultEvent(2e-4, "cluster_death", "c1"),
        ])
        scheduler = build_scheduler(
            "event", clusters=3, fault_schedule=faults,
            resilience=ResilientOrchestrationPolicy(quorum=0.5))
        report = scheduler.run(rounds_per_cluster=50)
        assert report.halted
        assert report.rounds_per_cluster["c2"] < 50

    def test_battery_depletion_retires_cluster(self):
        scheduler = EdgeTrainingScheduler(
            "round_robin", rng=np.random.default_rng(0), engine="event")
        config = OrcoDCSConfig(input_dim=DIM, latent_dim=LATENT, seed=0,
                               batch_size=BATCH)
        data = np.random.default_rng(0).random((ROWS, DIM))
        scheduler.add_cluster("tiny-battery", OrcoDCSFramework(config), data,
                              batch_size=BATCH, aggregator_battery_j=1e-4)
        report = scheduler.run(rounds_per_cluster=200)
        assert "tiny-battery" in report.dead_clusters
        assert "battery" in report.dead_clusters["tiny-battery"]
        assert report.rounds_per_cluster["tiny-battery"] < 200

    def test_brownout_accelerates_battery_death(self):
        def run_with(brownout):
            faults = FaultSchedule(
                [FaultEvent(1e-6, "brownout", "c", magnitude=0.02)]
                if brownout else [])
            scheduler = EdgeTrainingScheduler(
                "round_robin", rng=np.random.default_rng(0), engine="event",
                fault_schedule=faults)
            config = OrcoDCSConfig(input_dim=DIM, latent_dim=LATENT, seed=0,
                                   batch_size=BATCH)
            data = np.random.default_rng(0).random((ROWS, DIM))
            scheduler.add_cluster("c", OrcoDCSFramework(config), data,
                                  batch_size=BATCH,
                                  aggregator_battery_j=0.02)
            return scheduler.run(rounds_per_cluster=400)

        healthy = run_with(brownout=False)
        browned = run_with(brownout=True)
        assert browned.rounds_per_cluster["c"] \
            < healthy.rounds_per_cluster["c"]


class TestReviewRegressions:
    def test_deadline_miss_recorded_when_final_round_fails(self):
        """A cluster whose last budgeted round is lost to ARQ exhaustion
        must still be checked against its deadline."""
        scheduler = EdgeTrainingScheduler(
            "deadline", rng=np.random.default_rng(0), engine="event",
            channels=ChannelSpec(loss=0.6, arq=ARQConfig(max_retries=0)),
            resilience=ResilientOrchestrationPolicy(
                max_consecutive_failures=1000))
        config = OrcoDCSConfig(input_dim=DIM, latent_dim=LATENT, seed=0,
                               batch_size=BATCH)
        data = np.random.default_rng(0).random((ROWS, DIM))
        scheduler.add_cluster("doomed", OrcoDCSFramework(config), data,
                              batch_size=BATCH, deadline_s=1e-9)
        report = scheduler.run(rounds_per_cluster=6)
        assert sum(report.failed_rounds.values()) > 0
        assert "doomed" in report.deadline_misses

    def test_retransmissions_field_exact_on_failure(self):
        from repro.sim import UnreliableChannel
        from repro.wsn import LinkModel

        link = LinkModel(bandwidth_bps=8e6, latency_s=0.0,
                         max_payload_bytes=100, header_bytes=0)
        channel = UnreliableChannel(link, loss=0.95, rng=np.random.default_rng(0),
                                    arq=ARQConfig(max_retries=3))
        result = channel.transmit(1000)
        assert not result.delivered
        assert result.retransmissions >= 0
        # Attempts = one first try per frame reached + the retransmissions.
        frames_tried = result.attempts - result.retransmissions
        assert 1 <= frames_tried <= result.frames


class TestAdaptiveARQBudgets:
    def test_budget_rule_from_slack_and_battery(self):
        policy = ResilientOrchestrationPolicy(
            adaptive_arq=True, arq_min_retries=0, arq_max_retries=6)
        base = 2
        # Slack-rich and battery-healthy: raise to the max budget.
        assert policy.arq_retries_for(base, float("inf"), 100.0) == 6
        assert policy.arq_retries_for(base, 3.0, 100.0) == 6
        # Moderate slack: keep the fleet-uniform budget.
        assert policy.arq_retries_for(base, 1.5, 100.0) == 2
        # Deadline tighter than the ideal run: retries only hurt.
        assert policy.arq_retries_for(base, 0.5, 100.0) == 0
        # Battery-poor: conserve airtime whatever the slack.
        assert policy.arq_retries_for(base, float("inf"), 0.5) == 0
        # Disabled: always the base budget.
        off = ResilientOrchestrationPolicy()
        assert off.arq_retries_for(base, 0.5, 0.5) == base

    def test_adaptive_arq_validation(self):
        with pytest.raises(ValueError):
            ResilientOrchestrationPolicy(arq_min_retries=4, arq_max_retries=2)
        with pytest.raises(ValueError):
            ResilientOrchestrationPolicy(arq_slack_rich=0.5)

    def test_slack_rich_cluster_retries_more_than_tight(self):
        """The satellite contract: under the same lossy channel, the
        cluster with deadline slack retransmits (and delivers); the
        deadline-tight one conserves airtime and loses rounds instead."""
        scheduler = EdgeTrainingScheduler(
            "round_robin", rng=np.random.default_rng(0), engine="event",
            channels=ChannelSpec(loss=0.35, arq=ARQConfig(max_retries=2)),
            resilience=ResilientOrchestrationPolicy(
                adaptive_arq=True, arq_min_retries=0, arq_max_retries=6,
                max_consecutive_failures=1000))
        for name, deadline in (("rich", None), ("tight", 1e-9)):
            config = OrcoDCSConfig(input_dim=DIM, latent_dim=LATENT,
                                   seed=0, noise_sigma=0.05,
                                   batch_size=BATCH)
            data = np.random.default_rng(0).random((ROWS, DIM))
            scheduler.add_cluster(name, OrcoDCSFramework(config), data,
                                  batch_size=BATCH, deadline_s=deadline)
        report = scheduler.run(rounds_per_cluster=15)

        def retx_bytes(cluster):
            ledger = cluster.trainer.ledger
            return (ledger.total_wire_bytes("latent_uplink_retx")
                    + ledger.total_wire_bytes("recon_downlink_retx"))

        rich, tight = scheduler.clusters
        assert retx_bytes(rich) > retx_bytes(tight) == 0
        assert report.failed_rounds.get("tight", 0) \
            > report.failed_rounds.get("rich", 0)


class TestCodedRecovery:
    """Erasure-coded uplink recovery: fec/hybrid strategies end to end."""

    def _build(self, recovery="fec", segment_batching=True, coding=None,
               loss=0.15, faults=None, policy="round_robin",
               trace_chunk=None, clusters=5, battery_j=1e9):
        trace = TracePolicy(chunk=trace_chunk) if trace_chunk else None
        spec = ChannelSpec(loss=loss, arq=ARQConfig(max_retries=1),
                           coding=coding,
                           **({"trace": trace} if trace else {}))
        scheduler = EdgeTrainingScheduler(
            policy, rng=np.random.default_rng(0), engine="event",
            channels=spec, fault_schedule=faults,
            resilience=ResilientOrchestrationPolicy(recovery=recovery),
            segment_batching=segment_batching)
        for index in range(clusters):
            config = OrcoDCSConfig(input_dim=DIM, latent_dim=LATENT,
                                   seed=index, noise_sigma=0.05,
                                   batch_size=BATCH)
            data = np.random.default_rng(100 + index).random((ROWS, DIM))
            scheduler.add_cluster(f"c{index}", OrcoDCSFramework(config),
                                  data, batch_size=BATCH,
                                  aggregator_battery_j=battery_j)
        return scheduler

    def _assert_bit_identical(self, **kwargs):
        fused = self._build(segment_batching=True, **kwargs)
        fused_report = fused.run(rounds_per_cluster=15)
        unfused = self._build(segment_batching=False, **kwargs)
        unfused_report = unfused.run(rounds_per_cluster=15)
        assert fused_report.fused_rounds > 0
        assert unfused_report.fused_rounds == 0
        for c_f, c_u in zip(fused.clusters, unfused.clusters):
            assert np.array_equal(c_f.history.times, c_u.history.times)
            assert c_f.trainer.clock_s == c_u.trainer.clock_s
            assert c_f.trainer.ledger.by_kind() == c_u.trainer.ledger.by_kind()
            assert len(c_f.trainer.ledger) == len(c_u.trainer.ledger)
            if len(c_f.history.losses):
                assert np.abs(c_f.history.losses
                              - c_u.history.losses).max() <= 1e-9
        assert fused_report.makespan_s == unfused_report.makespan_s
        assert fused_report.completion_times == unfused_report.completion_times
        assert fused_report.failed_rounds == unfused_report.failed_rounds
        assert fused_report.energy_j == unfused_report.energy_j
        assert fused_report.coding_budgets == unfused_report.coding_budgets
        return fused, fused_report

    def test_fec_fused_run_bit_identical_to_unfused(self):
        """Acceptance: coded lossy runs fuse with bit-identity."""
        fused, report = self._assert_bit_identical(recovery="fec")
        assert report.coding_budgets and all(
            k > 0 for k in report.coding_budgets.values())
        ledger = fused.clusters[0].trainer.ledger
        assert ledger.total_wire_bytes("latent_uplink_fec") > 0
        assert ledger.total_wire_bytes("recon_downlink_fec") > 0
        # Pure FEC is open loop: no retransmission records at all.
        assert ledger.total_wire_bytes("latent_uplink_retx") == 0
        assert ledger.total_wire_bytes("recon_downlink_retx") == 0

    def test_hybrid_fused_run_bit_identical_to_unfused(self):
        self._assert_bit_identical(recovery="hybrid")

    def test_explicit_coding_spec_respected(self):
        fused, report = self._assert_bit_identical(
            recovery="arq", coding=CodingSpec(parity_frames=3))
        assert set(report.coding_budgets.values()) == {3}

    def test_coded_run_with_faults_fuses_bit_identically(self):
        faults = FaultSchedule([
            FaultEvent(0.05, "node_death", "c0", device=3),
            FaultEvent(0.3, "straggler", "c1", magnitude=2.0),
            FaultEvent(0.6, "recover", "c1"),
        ])
        _, report = self._assert_bit_identical(recovery="fec", faults=faults)
        assert report.faults_applied == 3

    def test_chunked_traces_reproduce_full_trace_run(self):
        """Satellite: chunked recording changes nothing but memory."""
        full = self._build(recovery="fec")
        full_report = full.run(rounds_per_cluster=15)
        chunked = self._build(recovery="fec", trace_chunk=3)
        chunked_report = chunked.run(rounds_per_cluster=15)
        for c_a, c_b in zip(full.clusters, chunked.clusters):
            assert np.array_equal(c_a.history.losses, c_b.history.losses)
            assert np.array_equal(c_a.history.times, c_b.history.times)
            assert c_a.trainer.ledger.by_kind() == c_b.trainer.ledger.by_kind()
        assert full_report.makespan_s == chunked_report.makespan_s
        assert full_report.completion_times == chunked_report.completion_times
        assert full_report.failed_rounds == chunked_report.failed_rounds

    def test_legacy_trace_chunk_kwarg_warns_and_still_works(self):
        """Deprecation shim: the scheduler-level override maps onto
        TracePolicy and reproduces the declarative-spec run exactly."""
        with pytest.warns(DeprecationWarning, match="trace_chunk"):
            legacy = EdgeTrainingScheduler(
                "round_robin", rng=np.random.default_rng(0), engine="event",
                channels=ChannelSpec(loss=0.15,
                                     arq=ARQConfig(max_retries=1)),
                resilience=ResilientOrchestrationPolicy(recovery="fec"),
                trace_chunk=3)
        for index in range(3):
            config = OrcoDCSConfig(input_dim=DIM, latent_dim=LATENT,
                                   seed=index, noise_sigma=0.05,
                                   batch_size=BATCH)
            data = np.random.default_rng(100 + index).random((ROWS, DIM))
            legacy.add_cluster(f"c{index}", OrcoDCSFramework(config),
                               data, batch_size=BATCH)
        legacy_report = legacy.run(rounds_per_cluster=10)
        modern = self._build(recovery="fec", trace_chunk=3, clusters=3)
        modern_report = modern.run(rounds_per_cluster=10)
        assert legacy_report.makespan_s == modern_report.makespan_s
        assert legacy_report.completion_times \
            == modern_report.completion_times

    def test_fec_loses_fewer_rounds_than_tight_arq_at_high_loss(self):
        """The motivating contrast: at heavy loss a tight ARQ budget
        loses whole rounds; adaptive parity keeps delivering."""
        arq = self._build(recovery="arq", loss=0.3)
        arq_report = arq.run(rounds_per_cluster=15)
        fec = self._build(recovery="fec", loss=0.3)
        fec_report = fec.run(rounds_per_cluster=15)
        assert sum(fec_report.failed_rounds.values()) \
            < sum(arq_report.failed_rounds.values())

    def test_battery_poor_cluster_gets_leaner_parity(self):
        rich = self._build(recovery="fec", loss=0.25)
        rich_report = rich.run(rounds_per_cluster=10)
        poor = self._build(recovery="fec", loss=0.25, battery_j=1e-3)
        poor_report = poor.run(rounds_per_cluster=10)
        assert all(
            poor_report.coding_budgets[name] <= rich_report.coding_budgets[name]
            for name in rich_report.coding_budgets)

    def test_coded_channels_require_event_engine(self):
        with pytest.raises(ValueError):
            EdgeTrainingScheduler(
                "fifo", engine="batched",
                channels=ChannelSpec(coding=CodingSpec(2)))
        with pytest.raises(ValueError):
            EdgeTrainingScheduler(
                "fifo", engine="sequential", channels=ChannelSpec(),
                resilience=ResilientOrchestrationPolicy(recovery="fec"))

    def test_coded_lossless_channel_is_traced(self):
        scheduler = self._build(recovery="fec", loss=None)
        plan = scheduler.execution_plan()
        assert plan.fused and plan.traced
        report = scheduler.run(rounds_per_cluster=5)
        # Lossless channel: the adaptive rule provisions zero parity.
        assert set(report.coding_budgets.values()) == {0}
