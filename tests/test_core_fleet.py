"""Unit tests for the batched fleet execution engine."""

import numpy as np
import pytest

from repro.core import (
    FleetIncompatibilityError,
    FleetTrainer,
    OrcoDCSConfig,
    OrcoDCSFramework,
    fleet_compatible,
)


def make_trainers(K=3, dim=20, latent=4, noise=0.05, **overrides):
    trainers = []
    for i in range(K):
        config = OrcoDCSConfig(input_dim=dim, latent_dim=latent, seed=i,
                               noise_sigma=noise, **overrides)
        trainers.append(OrcoDCSFramework(config))
    return trainers


def batch_stack(K=3, B=8, dim=20, seed=0):
    return np.random.default_rng(seed).random((K, B, dim))


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(FleetIncompatibilityError):
            FleetTrainer([])

    def test_dimension_mismatch_rejected(self):
        trainers = make_trainers(2) + make_trainers(1, dim=24)
        with pytest.raises(FleetIncompatibilityError):
            FleetTrainer(trainers)
        assert not fleet_compatible(trainers)

    def test_loss_mismatch_rejected(self):
        trainers = make_trainers(2)
        trainers += make_trainers(1, loss="mse")
        with pytest.raises(FleetIncompatibilityError):
            FleetTrainer(trainers)

    def test_depth_mismatch_rejected(self):
        trainers = make_trainers(2) + make_trainers(1, decoder_layers=3)
        with pytest.raises(FleetIncompatibilityError):
            FleetTrainer(trainers)

    def test_homogeneous_trainers_compatible(self):
        assert fleet_compatible(make_trainers(3))
        assert fleet_compatible(make_trainers(2, decoder_layers=3))

    def test_heterogeneous_noise_allowed(self):
        trainers = make_trainers(2, noise=0.1) + make_trainers(1, noise=0.0)
        assert fleet_compatible(trainers)
        FleetTrainer(trainers)


class TestStepEquivalence:
    def test_matches_sequential_trainers(self):
        # Two identical universes; one steps sequentially, one as a fleet.
        seq = make_trainers(3)
        fleet = FleetTrainer(make_trainers(3))
        for round_index in range(5):
            batches = batch_stack(seed=round_index)
            records = fleet.step(batches)
            for k, trainer in enumerate(seq):
                expected = trainer.step(batches[k])
                got = records[k]
                assert abs(got.train_loss - expected.train_loss) <= 1e-9
                assert got.time_s == pytest.approx(expected.time_s)
                assert got.uplink_bytes == expected.uplink_bytes
                assert got.round_index == expected.round_index

    def test_noise_streams_match_sequential(self):
        seq = make_trainers(2, noise=0.3)
        fleet = FleetTrainer(make_trainers(2, noise=0.3))
        batches = batch_stack(K=2)
        records = fleet.step(batches)
        for k, trainer in enumerate(seq):
            expected = trainer.step(batches[k])
            assert abs(records[k].train_loss - expected.train_loss) <= 1e-9

    def test_sync_back_continues_identically(self):
        seq = make_trainers(2)
        fleet = FleetTrainer(make_trainers(2))
        for round_index in range(3):
            batches = batch_stack(K=2, seed=round_index)
            fleet.step(batches)
            for k, trainer in enumerate(seq):
                trainer.step(batches[k])
        fleet.sync_to_trainers()
        follow = batch_stack(K=2, seed=99)
        for k, (fleet_trainer, trainer) in enumerate(zip(fleet.trainers, seq)):
            got = fleet_trainer.step(follow[k])
            expected = trainer.step(follow[k])
            assert abs(got.train_loss - expected.train_loss) <= 1e-9

    def test_mid_training_adoption(self):
        # A fleet assembled from already-trained trainers keeps their state.
        seq = make_trainers(2)
        warm = make_trainers(2)
        for round_index in range(3):
            batches = batch_stack(K=2, seed=round_index)
            for trainers in (seq, warm):
                for k, trainer in enumerate(trainers):
                    trainer.step(batches[k])
        fleet = FleetTrainer(warm)
        batches = batch_stack(K=2, seed=50)
        records = fleet.step(batches)
        for k, trainer in enumerate(seq):
            expected = trainer.step(batches[k])
            assert abs(records[k].train_loss - expected.train_loss) <= 1e-9


class TestStepInterface:
    def test_ledger_stays_per_cluster(self):
        fleet = FleetTrainer(make_trainers(2))
        fleet.step(batch_stack(K=2))
        for trainer in fleet.trainers:
            kinds = trainer.ledger.by_kind()
            assert "latent_uplink" in kinds and "recon_downlink" in kinds

    def test_epoch_labels_recorded(self):
        fleet = FleetTrainer(make_trainers(2))
        records = fleet.step(batch_stack(K=2), epochs=[3, 7])
        assert [r.epoch for r in records] == [3, 7]

    def test_bad_stack_shape_rejected(self):
        fleet = FleetTrainer(make_trainers(2))
        with pytest.raises(ValueError):
            fleet.step(np.zeros((3, 8, 20)))
        with pytest.raises(ValueError):
            fleet.step(np.zeros((2, 8, 21)))

    def test_active_subset_trains_only_those(self):
        fleet = FleetTrainer(make_trainers(3, noise=0.0))
        before = [layer.weight.data[0].copy()
                  for layer in fleet.encoder_layers if hasattr(layer, "weight")]
        records = fleet.step(batch_stack(K=2), active=[1, 2])
        assert len(records) == 2
        after = [layer.weight.data[0]
                 for layer in fleet.encoder_layers if hasattr(layer, "weight")]
        for b, a in zip(before, after):
            np.testing.assert_array_equal(b, a)   # slice 0 untouched
        assert fleet.trainers[0].clock_s == 0.0
        assert fleet.trainers[1].clock_s > 0.0

    def test_evaluate_per_cluster(self):
        fleet = FleetTrainer(make_trainers(3))
        rows = np.random.default_rng(0).random((10, 20))
        losses = fleet.evaluate(rows)
        assert losses.shape == (3,)
        for k, trainer in enumerate(fleet.trainers):
            assert losses[k] == pytest.approx(trainer.evaluate(rows))


class TestFleetSubset:
    def test_subset_validation(self):
        fleet = FleetTrainer(make_trainers(3))
        with pytest.raises(ValueError):
            fleet.subset([])
        with pytest.raises(ValueError):
            fleet.subset([0, 0])
        with pytest.raises(IndexError):
            fleet.subset([0, 3])
        with pytest.raises(ValueError):
            fleet.subset(np.array([True, False]))   # wrong mask length

    def test_boolean_mask_selects_members(self):
        fleet = FleetTrainer(make_trainers(3))
        subset = fleet.subset(np.array([True, False, True]))
        assert subset.num_clusters == 2
        assert subset.trainers == [fleet.trainers[0], fleet.trainers[2]]

    def test_subset_shares_parameters_with_fleet(self):
        """Mid-training slicing copies nothing: a subset step mutates
        the fleet's stacked parameters in place."""
        fleet = FleetTrainer(make_trainers(3))
        subset = fleet.subset([1])
        before = fleet.encoder_layers[0].weight.data.copy()
        subset.step(batch_stack(K=1))
        after = fleet.encoder_layers[0].weight.data
        assert not np.allclose(before[1], after[1])      # member trained
        np.testing.assert_array_equal(before[0], after[0])   # others frozen
        np.testing.assert_array_equal(before[2], after[2])

    def test_subset_trajectory_matches_standalone(self):
        """A cluster trained through shifting subsets matches training
        it alone — the per-slice equivalence contract."""
        fleet = FleetTrainer(make_trainers(3))
        solo = make_trainers(3)[1]      # same seed -> same init weights
        batches = [np.random.default_rng(10 + r).random((8, 20))
                   for r in range(6)]
        memberships = [[0, 1], [1, 2], [0, 1, 2], [1], [1, 2], [0, 1]]
        fleet_losses = []
        for batch, members in zip(batches, memberships):
            row = members.index(1)
            stack = np.random.default_rng(99).random(
                (len(members), 8, 20))
            stack[row] = batch
            records = fleet.subset(members).step(stack)
            fleet_losses.append(records[row].train_loss)
        solo_losses = [solo.step(batch).train_loss for batch in batches]
        np.testing.assert_allclose(fleet_losses, solo_losses, atol=1e-9)

    def test_subset_evaluate_matches_fleet(self):
        fleet = FleetTrainer(make_trainers(3))
        rows = np.random.default_rng(5).random((12, 20))
        full = fleet.evaluate(rows)
        part = fleet.subset([0, 2]).evaluate(rows)
        np.testing.assert_allclose(part, full[[0, 2]], rtol=1e-12)
