"""Unit tests for the synthetic traffic-sign dataset."""

import numpy as np
import pytest

from repro.datasets import (
    SIGN_CLASSES,
    SignConfig,
    class_table,
    generate_signs,
    render_sign,
)


class TestClassTable:
    def test_exactly_43_classes(self):
        assert len(class_table()) == SIGN_CLASSES == 43

    def test_classes_unique(self):
        table = class_table()
        assert len(set(table)) == 43

    def test_all_shapes_used(self):
        shapes = {entry[0] for entry in class_table()}
        assert len(shapes) >= 4

    def test_multiple_colors_used(self):
        colors = {entry[1] for entry in class_table()}
        assert len(colors) >= 2


class TestRender:
    def test_shape_and_range(self):
        img = render_sign(0, np.random.default_rng(0))
        assert img.shape == (32, 32, 3)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_all_classes_render(self):
        rng = np.random.default_rng(0)
        for label in range(43):
            img = render_sign(label, rng)
            assert np.isfinite(img).all()

    def test_label_validation(self):
        with pytest.raises(ValueError):
            render_sign(43, np.random.default_rng(0))
        with pytest.raises(ValueError):
            render_sign(-1, np.random.default_rng(0))

    def test_sign_is_colorful(self):
        # Channel means must differ: a red-bordered sign is not gray.
        config = SignConfig(noise_std=0.0, min_brightness=1.0,
                            max_brightness=1.0)
        img = render_sign(0, np.random.default_rng(0), config)
        channel_means = img.reshape(-1, 3).mean(axis=0)
        assert np.ptp(channel_means) > 0.01

    def test_illumination_varies(self):
        rng = np.random.default_rng(0)
        brightness = [render_sign(5, rng).mean() for _ in range(10)]
        assert np.ptp(brightness) > 0.05

    def test_custom_size(self):
        config = SignConfig(image_size=16)
        assert render_sign(1, np.random.default_rng(0), config).shape == (16, 16, 3)


class TestGenerate:
    def test_shapes(self):
        images, labels = generate_signs(20, np.random.default_rng(0))
        assert images.shape == (20, 32, 32, 3)
        assert labels.shape == (20,)

    def test_balanced_covers_classes(self):
        _, labels = generate_signs(86, np.random.default_rng(0))
        assert len(set(labels.tolist())) == 43

    def test_deterministic_with_seed(self):
        a, la = generate_signs(8, np.random.default_rng(3))
        b, lb = generate_signs(8, np.random.default_rng(3))
        assert np.allclose(a, b)
        assert np.array_equal(la, lb)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            generate_signs(-1)

    def test_classes_visually_distinct_on_average(self):
        rng = np.random.default_rng(0)
        images, labels = generate_signs(172, rng)
        class_ids = sorted(set(labels.tolist()))[:8]
        means = np.stack([images[labels == c].mean(axis=0) for c in class_ids])
        for a in range(len(class_ids)):
            for b in range(a + 1, len(class_ids)):
                assert np.abs(means[a] - means[b]).mean() > 0.005
