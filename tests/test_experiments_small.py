"""Smoke-run the cheap experiments end-to-end at tiny scale.

The heavyweight figure experiments (2, 4-8) are exercised by the
benchmark harness; here we run the analytic/cheap ones to completion and
assert their shape checks hold.
"""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS


class TestOverheadAnalysis:
    def test_runs_and_checks_pass(self):
        result = EXPERIMENTS["overhead"](scale=1.0, seed=0)
        assert result.all_checks_pass, result.checks
        assert result.summary["digits_aggregator_cost_ratio_dcsnet_over_orco"] > 5

    def test_edge_share_grows_with_depth(self):
        result = EXPERIMENTS["overhead"](scale=1.0, seed=0)
        assert result.summary["digits_OrcoDCS-5L_edge_share"] > \
            result.summary["digits_OrcoDCS-1L_edge_share"]


class TestTransmissionCost:
    def test_runs_and_checks_pass(self):
        result = EXPERIMENTS["fig3"](scale=0.1, seed=0)
        assert result.all_checks_pass, result.checks

    def test_backhaul_savings_magnitudes(self):
        result = EXPERIMENTS["fig3"](scale=0.1, seed=0)
        # 1024/128 with framing ~ 7-8x; 1024/512 with framing ~ 2x.
        assert 5 < result.summary["digits_backhaul_savings"] < 12
        assert 1.5 < result.summary["signs_backhaul_savings"] < 3

    def test_rows_cover_both_tasks_and_counts(self):
        result = EXPERIMENTS["fig3"](scale=0.1, seed=0)
        datasets = {row["dataset"] for row in result.rows}
        assert datasets == {"digits", "signs"}
        assert len(result.rows) == 4


class TestFinetuneDrift:
    @pytest.mark.slow
    def test_runs_and_checks_pass(self):
        result = EXPERIMENTS["finetune"](scale=0.25, seed=0)
        assert result.all_checks_pass, result.checks
        assert result.summary["num_retrains"] >= 1


class TestResilience:
    def test_runs_and_checks_pass(self):
        result = EXPERIMENTS["resilience"](scale=0.2, seed=0)
        assert result.all_checks_pass, result.checks
        # The equivalence anchor is the tentpole contract.
        assert result.summary["event_vs_sequential_max_loss_divergence"] <= 1e-6
        assert result.summary["event_vs_sequential_max_clock_divergence_s"] <= 1e-6
        assert result.summary["event_vs_sequential_ledger_divergence_bytes"] == 0

    def test_loss_sweep_shape(self):
        result = EXPERIMENTS["resilience"](scale=0.2, seed=1)
        series = result.series["nmse_vs_loss"]
        assert series["x"] == [0.0, 0.05, 0.1, 0.2]
        assert all(np.isfinite(v) for v in series["y"])
        overhead = result.series["energy_overhead_vs_loss"]["y"]
        assert overhead[0] == pytest.approx(1.0)
