"""Unit tests for node placement and geometry."""

import numpy as np
import pytest

from repro.wsn import (
    centroid,
    distance,
    pairwise_distances,
    place_clustered,
    place_grid,
    place_uniform,
)


class TestPlacement:
    def test_uniform_count_and_bounds(self):
        pts = place_uniform(50, (80.0, 40.0), np.random.default_rng(0))
        assert pts.shape == (50, 2)
        assert pts[:, 0].min() >= 0 and pts[:, 0].max() <= 80
        assert pts[:, 1].min() >= 0 and pts[:, 1].max() <= 40

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            place_uniform(0)

    def test_grid_covers_area(self):
        pts = place_grid(16, (100.0, 100.0))
        assert pts.shape == (16, 2)
        # Grid points should spread over most of the area.
        assert pts[:, 0].max() - pts[:, 0].min() > 50

    def test_grid_jitter_within_bounds_of_cell(self):
        a = place_grid(9, (90.0, 90.0))
        b = place_grid(9, (90.0, 90.0), jitter=1.0,
                       rng=np.random.default_rng(0))
        assert np.abs(a - b).max() <= 1.0 + 1e-9

    def test_clustered_within_area(self):
        pts = place_clustered(60, 3, (100.0, 100.0), spread=5.0,
                              rng=np.random.default_rng(0))
        assert pts.shape == (60, 2)
        assert pts.min() >= 0 and pts.max() <= 100

    def test_clustered_validation(self):
        with pytest.raises(ValueError):
            place_clustered(10, 0)


class TestDistances:
    def test_pairwise_symmetric_zero_diagonal(self):
        pts = place_uniform(10, rng=np.random.default_rng(0))
        d = pairwise_distances(pts)
        assert np.allclose(d, d.T)
        assert np.allclose(np.diag(d), 0)

    def test_pairwise_matches_scalar_distance(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = pairwise_distances(pts)
        assert abs(d[0, 1] - 5.0) < 1e-12
        assert abs(distance(pts[0], pts[1]) - 5.0) < 1e-12

    def test_triangle_inequality(self):
        pts = place_uniform(8, rng=np.random.default_rng(1))
        d = pairwise_distances(pts)
        for i in range(8):
            for j in range(8):
                for k in range(8):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-9

    def test_centroid(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [1.0, 3.0]])
        assert np.allclose(centroid(pts), [1.0, 1.0])
