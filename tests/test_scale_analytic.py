"""Analytic ensemble mode: closed forms vs the event engine.

Three validation layers, matching the tentpole's tolerance contract:

* **unit** — the closed-form ARQ/FEC/hybrid helpers against exact
  hand-computed probabilities and edge cases;
* **kernel** — :func:`repro.scale.price_transmit` against Monte-Carlo
  sample means of the channel's own ``transmit_batch`` (the analytic
  forecast and the simulator must price the *same* channel);
* **fleet** — ``engine="analytic"`` against ``engine="event"`` on
  three scenarios (Bernoulli ARQ, Bernoulli FEC, Gilbert-Elliott ARQ)
  with the documented tolerances: expected energy within 6%, delivered
  rounds within 3%, makespan within 20%, ARQ/parity budgets exact.

The makespan tolerance holds in the high-delivery regime (per-round
success ≳ 0.8).  Below it, the event engine's pick rule re-serves a
failed cluster until it completes the round, serializing those retries
on the shared edge clock — a queueing effect the mean-field pipeline
span deliberately does not model, so there the analytic makespan is a
*lower bound* (asserted separately).  Energy, delivered rounds and
budgets stay within tolerance at any delivery rate.
"""

import math

import numpy as np
import pytest

from repro.core import (OrcoDCSConfig, OrcoDCSFramework,
                        ResilientOrchestrationPolicy)
from repro.core.scheduler import EdgeTrainingScheduler
from repro.core.timing import OrchestrationTimingModel
from repro.scale import price_transmit, run_analytic
from repro.scale.analytic import failure_run_probability, forecast_fleet
from repro.sim import ARQConfig, ChannelSpec, CodingSpec, FaultEvent, \
    FaultSchedule, UnreliableChannel
from repro.sim.channel import ideal_transmit_result
from repro.sim.coding import delivery_probability, \
    hybrid_delivery_probability
from repro.sim.sampler import (arq_message_delivery_probability,
                               arq_slot_delivery_probability,
                               expected_slot_attempts)
from repro.wsn.link import sensor_link

TRAIN_ROUNDS = 120
MC_TRANSMITS = 4000


# ----------------------------------------------------------------------
# Unit: closed-form helpers
# ----------------------------------------------------------------------
class TestClosedFormHelpers:
    def test_slot_delivery_probability(self):
        assert arq_slot_delivery_probability(0.0, 3) == 1.0
        assert arq_slot_delivery_probability(0.2, 1) == pytest.approx(0.96)
        assert arq_slot_delivery_probability(0.5, 0) == pytest.approx(0.5)

    def test_expected_slot_attempts(self):
        assert expected_slot_attempts(0.0, 3) == 1.0
        # (1 - p^(R+1)) / (1 - p): attempt j radiates iff the first
        # j-1 were lost.
        assert expected_slot_attempts(0.5, 1) == pytest.approx(1.5)
        assert expected_slot_attempts(0.2, 2) == pytest.approx(
            (1 - 0.2 ** 3) / 0.8)

    def test_message_delivery_probability(self):
        assert arq_message_delivery_probability(3, 0.2, 1) == pytest.approx(
            0.96 ** 3)
        assert arq_message_delivery_probability(5, 0.0, 0) == 1.0

    def test_helper_validation(self):
        with pytest.raises(ValueError):
            arq_slot_delivery_probability(1.5, 1)
        with pytest.raises(ValueError):
            expected_slot_attempts(0.1, -1)
        with pytest.raises(ValueError):
            arq_message_delivery_probability(-1, 0.1, 1)

    def test_hybrid_zero_parity_degenerates_to_arq(self):
        # parity=0: every burst loss becomes a repair slot, so the
        # hybrid equals per-frame ARQ with one extra attempt (the burst
        # transmission itself) on top of the repair budget.
        assert hybrid_delivery_probability(4, 0, 0.2, 0) == pytest.approx(
            arq_message_delivery_probability(4, 0.2, 1))
        assert hybrid_delivery_probability(6, 0, 0.3, 2) == pytest.approx(
            arq_message_delivery_probability(6, 0.3, 3))

    def test_hybrid_dominates_pure_fec(self):
        fec = delivery_probability(6, 2, 0.25)
        hybrid = hybrid_delivery_probability(6, 2, 0.25, 2)
        assert hybrid > fec
        assert hybrid <= 1.0

    def test_failure_run_probability_exact_cases(self):
        assert failure_run_probability(0.0, 100, 3) == 0.0
        assert failure_run_probability(0.3, 2, 3) == 0.0
        assert failure_run_probability(0.3, 3, 3) == pytest.approx(0.3 ** 3)
        assert failure_run_probability(1.0, 5, 5) == pytest.approx(1.0)
        # Monotone in the horizon.
        shorter = failure_run_probability(0.4, 10, 3)
        longer = failure_run_probability(0.4, 40, 3)
        assert longer > shorter

    def test_failure_run_probability_matches_monte_carlo(self):
        rng = np.random.default_rng(3)
        rounds, run_length, p = 30, 3, 0.35
        trials = rng.random((4000, rounds)) < p
        hits = 0
        for row in trials:
            streak = best = 0
            for failed in row:
                streak = streak + 1 if failed else 0
                best = max(best, streak)
            hits += best >= run_length
        exact = failure_run_probability(p, rounds, run_length)
        assert exact == pytest.approx(hits / 4000, abs=0.02)


# ----------------------------------------------------------------------
# Kernel: price_transmit vs the channel's Monte-Carlo means
# ----------------------------------------------------------------------
def mc_means(payload, loss, arq=None, coding=None, n=MC_TRANSMITS):
    channel = UnreliableChannel(sensor_link(), loss=loss, arq=arq,
                                coding=coding,
                                rng=np.random.default_rng(11))
    results = channel.transmit_batch(payload, n)
    return {
        "wire": float(np.mean([r.wire_bytes for r in results])),
        "received": float(np.mean([r.received_wire_bytes
                                   for r in results])),
        "delivered": float(np.mean([r.delivered for r in results])),
        "elapsed": float(np.mean([r.elapsed_s for r in results])),
    }


class TestPriceTransmitVsMonteCarlo:
    def test_clean_path_is_exact(self):
        link = sensor_link()
        forecast = price_transmit(link, 400, 0.0)
        ideal = ideal_transmit_result(link, 400)
        assert forecast.expected_wire_bytes == ideal.wire_bytes
        assert forecast.expected_elapsed_s == ideal.elapsed_s
        assert forecast.p_deliver == 1.0

    def test_empty_payload(self):
        forecast = price_transmit(sensor_link(), 0, 0.3)
        assert forecast.frames == 0
        assert forecast.p_deliver == 1.0
        assert forecast.expected_wire_bytes == 0.0

    @pytest.mark.parametrize("loss,retries", [(0.1, 1), (0.25, 3)])
    def test_arq_matches_sample_means(self, loss, retries):
        arq = ARQConfig(max_retries=retries)
        forecast = price_transmit(sensor_link(), 400, loss, arq=arq)
        mc = mc_means(400, loss, arq=arq)
        assert forecast.expected_wire_bytes == pytest.approx(
            mc["wire"], rel=0.03)
        assert forecast.expected_received_wire_bytes == pytest.approx(
            mc["received"], rel=0.03)
        assert forecast.p_deliver == pytest.approx(
            mc["delivered"], abs=0.02)
        assert forecast.expected_elapsed_s == pytest.approx(
            mc["elapsed"], rel=0.05)

    def test_fec_matches_sample_means(self):
        arq = ARQConfig(max_retries=1)
        coding = CodingSpec(parity_frames=2)
        forecast = price_transmit(sensor_link(), 400, 0.2, arq=arq,
                                  coding=coding)
        mc = mc_means(400, 0.2, arq=arq, coding=coding)
        # Open-loop FEC radiates a deterministic burst: wire is exact.
        assert forecast.expected_wire_bytes == pytest.approx(mc["wire"])
        assert forecast.p_deliver == pytest.approx(mc["delivered"],
                                                   abs=0.02)
        assert forecast.expected_received_wire_bytes == pytest.approx(
            mc["received"], rel=0.03)

    def test_hybrid_matches_sample_means(self):
        arq = ARQConfig(max_retries=2)
        coding = CodingSpec(parity_frames=2, arq_fallback=True)
        forecast = price_transmit(sensor_link(), 400, 0.25, arq=arq,
                                  coding=coding)
        mc = mc_means(400, 0.25, arq=arq, coding=coding)
        assert forecast.p_deliver == pytest.approx(mc["delivered"],
                                                   abs=0.02)
        assert forecast.expected_wire_bytes == pytest.approx(
            mc["wire"], rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError, match="payload_bytes"):
            price_transmit(sensor_link(), -1, 0.1)
        with pytest.raises(ValueError, match="loss_rate"):
            price_transmit(sensor_link(), 10, 1.0)


# ----------------------------------------------------------------------
# Fleet: engine="analytic" vs engine="event"
# ----------------------------------------------------------------------
def build_fleet(engine, channels, recovery, clusters=4, devices=24,
                seed=0, battery_j=1e9, deadline_s=None):
    resilience = ResilientOrchestrationPolicy(
        recovery=recovery, max_consecutive_failures=50)
    scheduler = EdgeTrainingScheduler(
        "round_robin", rng=np.random.default_rng(seed), engine=engine,
        channels=channels, resilience=resilience)
    for index in range(clusters):
        config = OrcoDCSConfig(input_dim=devices,
                               latent_dim=max(4, devices // 6),
                               noise_sigma=0.05, seed=index, batch_size=16)
        timing = OrchestrationTimingModel(up=sensor_link(),
                                          down=sensor_link())
        data = np.random.default_rng(100 + index).standard_normal(
            (40, devices))
        scheduler.add_cluster(f"c{index}", OrcoDCSFramework(config,
                                                            timing=timing),
                              data, batch_size=16,
                              aggregator_battery_j=battery_j,
                              deadline_s=deadline_s)
    return scheduler


SCENARIOS = [
    ("bernoulli-arq",
     lambda: ChannelSpec(loss=0.15, arq=ARQConfig(max_retries=3)), "arq"),
    ("bernoulli-fec",
     lambda: ChannelSpec(loss=0.12, arq=ARQConfig(max_retries=3)), "fec"),
    ("ge-indoor-arq",
     lambda: ChannelSpec.preset("802154_indoor",
                                arq=ARQConfig(max_retries=3)), "arq"),
]


class TestAnalyticVsEvent:
    @pytest.mark.parametrize("name,spec,recovery",
                             SCENARIOS, ids=[s[0] for s in SCENARIOS])
    def test_scenario_tolerances(self, name, spec, recovery):
        """The tentpole tolerance contract, per scenario."""
        event_report = build_fleet("event", spec(), recovery).run(
            rounds_per_cluster=TRAIN_ROUNDS)
        analytic_report = build_fleet("analytic", spec(), recovery).run(
            rounds_per_cluster=TRAIN_ROUNDS)

        event_energy = sum(event_report.energy_j.values())
        analytic_energy = sum(analytic_report.energy_j.values())
        assert analytic_energy == pytest.approx(event_energy, rel=0.06)

        event_delivered = sum(event_report.rounds_per_cluster.values())
        analytic_delivered = sum(
            analytic_report.delivered_rounds.values())
        assert analytic_delivered == pytest.approx(event_delivered,
                                                   rel=0.03)

        assert analytic_report.makespan_s == pytest.approx(
            event_report.makespan_s, rel=0.20)

        # Adaptive budgets derive from the scheduler's own recipe, so
        # they must mirror the event report exactly.
        assert analytic_report.arq_budgets == event_report.arq_budgets
        assert analytic_report.coding_budgets == event_report.coding_budgets

    def test_low_delivery_regime_bounds_makespan(self):
        """Outside the makespan envelope the forecast is a lower bound.

        FEC at loss 0.30 drops per-round delivery to ~0.56; the event
        engine's min-completed-rounds pick then re-serves failing
        clusters back-to-back and those retries serialize on the edge
        clock, inflating the observed makespan above the mean-field
        pipeline span.  Energy, delivered rounds and budgets are
        queueing-free expectations and must stay within tolerance.
        """
        spec = ChannelSpec(loss=0.30, arq=ARQConfig(max_retries=3))
        event_report = build_fleet("event", spec, "fec").run(
            rounds_per_cluster=TRAIN_ROUNDS)
        analytic_report = build_fleet("analytic", spec, "fec").run(
            rounds_per_cluster=TRAIN_ROUNDS)
        assert sum(analytic_report.energy_j.values()) == pytest.approx(
            sum(event_report.energy_j.values()), rel=0.06)
        assert sum(analytic_report.delivered_rounds.values()) \
            == pytest.approx(sum(event_report.rounds_per_cluster.values()),
                             rel=0.05)
        assert analytic_report.coding_budgets == event_report.coding_budgets
        assert analytic_report.makespan_s <= event_report.makespan_s * 1.05

    def test_clean_channel_is_near_exact(self):
        event_report = build_fleet("event", None, "arq").run(
            rounds_per_cluster=20)
        analytic_report = build_fleet("analytic", None, "arq").run(
            rounds_per_cluster=20)
        assert sum(analytic_report.energy_j.values()) == pytest.approx(
            sum(event_report.energy_j.values()), rel=1e-9)
        assert sum(analytic_report.delivered_rounds.values()) \
            == pytest.approx(80.0, rel=1e-12)


class TestAnalyticEngine:
    def test_report_shape(self):
        scheduler = build_fleet("analytic",
                                ChannelSpec(loss=0.1,
                                            arq=ARQConfig(max_retries=2)),
                                "arq")
        report = scheduler.run(rounds_per_cluster=30)
        assert report.engine == "analytic"
        assert report.expected_values
        assert set(report.delivered_rounds) == {"c0", "c1", "c2", "c3"}
        assert all(math.isnan(loss)
                   for loss in report.final_loss_per_cluster.values())
        assert all(0.0 < p <= 1.0
                   for p in report.deadline_miss_probability.values())
        for name, rounds in report.rounds_per_cluster.items():
            assert rounds == round(report.delivered_rounds[name])

    def test_execution_plan_reason(self):
        scheduler = build_fleet("analytic", None, "arq")
        plan = scheduler.execution_plan()
        assert plan.engine == "analytic"
        assert "closed-form" in plan.reason

    def test_faults_rejected(self):
        faults = FaultSchedule([FaultEvent(1.0, "node_death", "c0",
                                           device=0)])
        with pytest.raises(ValueError, match="analytic"):
            EdgeTrainingScheduler("round_robin",
                                  rng=np.random.default_rng(0),
                                  engine="analytic",
                                  fault_schedule=faults)

    def test_battery_limit_prices_retirement(self):
        scheduler = build_fleet("analytic",
                                ChannelSpec(loss=0.1,
                                            arq=ARQConfig(max_retries=2)),
                                "arq", battery_j=1e-4)
        report = scheduler.run(rounds_per_cluster=200)
        assert report.dead_clusters
        assert all("expected" in reason
                   for reason in report.dead_clusters.values())
        assert all(lifetime < 200
                   for lifetime in report.lifetime_rounds.values())

    def test_deadline_miss_probability_orders_with_deadline(self):
        spec = ChannelSpec(loss=0.2, arq=ARQConfig(max_retries=2))
        tight = build_fleet("analytic", spec, "arq", deadline_s=0.5)
        loose = build_fleet("analytic", spec, "arq", deadline_s=1e6)
        tight_p = tight.run(rounds_per_cluster=30) \
            .deadline_miss_probability["c0"]
        # A comfortably loose deadline prices to zero miss probability,
        # and zero entries are elided from the report dict.
        loose_p = loose.run(rounds_per_cluster=30) \
            .deadline_miss_probability.get("c0", 0.0)
        assert tight_p >= loose_p
        assert loose_p == pytest.approx(0.0, abs=1e-9)

    def test_run_analytic_matches_engine_dispatch(self):
        scheduler = build_fleet("analytic", None, "arq")
        direct = run_analytic(scheduler, 10)
        dispatched = build_fleet("analytic", None, "arq").run(
            rounds_per_cluster=10)
        assert direct.delivered_rounds == dispatched.delivered_rounds
        assert direct.energy_j == dispatched.energy_j

    def test_forecast_fleet_mirrors_cluster_names(self):
        scheduler = build_fleet("analytic", None, "arq")
        forecasts = forecast_fleet(scheduler, 10)
        assert set(forecasts) == {c.name for c in scheduler.clusters}
        for forecast in forecasts.values():
            assert forecast.p_round == 1.0
            assert forecast.expected_delivered_rounds == 10.0
