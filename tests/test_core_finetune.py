"""Unit tests for the fine-tuning monitor and adaptation loop."""

import numpy as np
import pytest

from repro.core import (
    AdaptationLog,
    FineTuningMonitor,
    OnlineAdaptationLoop,
    OrcoDCSConfig,
    OrcoDCSFramework,
)


class TestMonitor:
    def test_no_trigger_below_threshold(self):
        monitor = FineTuningMonitor(threshold=1.0, window=3)
        assert not any(monitor.observe(0.5) for _ in range(10))

    def test_triggers_after_window_filled(self):
        monitor = FineTuningMonitor(threshold=1.0, window=3, cooldown=0)
        assert not monitor.observe(2.0)
        assert not monitor.observe(2.0)
        assert monitor.observe(2.0)

    def test_rolling_mean_tolerates_single_spike(self):
        # One outlier that does not move the rolling mean over the
        # threshold must not trigger a retrain.
        monitor = FineTuningMonitor(threshold=1.0, window=4, cooldown=0)
        fired = [monitor.observe(e) for e in (0.1, 0.1, 0.1, 2.0)]
        assert not any(fired)    # mean (0.3 + 2.0)/4 = 0.575 < 1.0

    def test_cooldown_suppresses_immediate_refire(self):
        monitor = FineTuningMonitor(threshold=1.0, window=1, cooldown=2)
        assert monitor.observe(5.0)
        assert not monitor.observe(5.0)
        assert not monitor.observe(5.0)
        assert monitor.observe(5.0)

    def test_errors_cleared_after_trigger(self):
        monitor = FineTuningMonitor(threshold=1.0, window=2, cooldown=0)
        monitor.observe(5.0)
        assert monitor.observe(5.0)
        assert monitor.rolling_error is None

    def test_validation(self):
        with pytest.raises(ValueError):
            FineTuningMonitor(threshold=0.0)
        with pytest.raises(ValueError):
            FineTuningMonitor(threshold=1.0, window=0)
        with pytest.raises(ValueError):
            FineTuningMonitor(threshold=1.0).observe(-1.0)


class TestAdaptationLoop:
    def _framework(self, dim=12, seed=0):
        config = OrcoDCSConfig(input_dim=dim, latent_dim=4, seed=seed,
                               batch_size=8, noise_sigma=0.0)
        return OrcoDCSFramework(config)

    def test_run_logs_every_check(self):
        framework = self._framework()
        monitor = FineTuningMonitor(threshold=100.0, window=2)
        loop = OnlineAdaptationLoop(framework, monitor, buffer_size=16,
                                    retrain_epochs=1)
        rows = np.random.default_rng(0).random((10, 12))
        log = loop.run(rows, check_every=2)
        assert len(log.errors) == 5
        assert log.check_rounds == [0, 2, 4, 6, 8]
        assert log.num_retrains == 0

    def test_retrain_fires_on_distribution_shift(self):
        rng = np.random.default_rng(0)
        framework = self._framework()
        base = np.clip(rng.random((64, 1)) @ np.ones((1, 12)) * 0.3, 0, 1)
        framework.fit_config(base + rng.random((64, 12)) * 0.05, epochs=10)
        calm_error = framework.evaluate(base[:8])
        monitor = FineTuningMonitor(threshold=max(calm_error * 2, 1e-4),
                                    window=2, cooldown=1)
        loop = OnlineAdaptationLoop(framework, monitor, buffer_size=32,
                                    retrain_epochs=5)
        shifted = np.clip(1.0 - base[:24] + rng.random((24, 12)) * 0.05, 0, 1)
        log = loop.run(shifted, check_every=1)
        assert log.num_retrains >= 1
        event = log.events[0]
        assert event.post_retrain_error is not None

    def test_observe_round_returns_error(self):
        framework = self._framework()
        monitor = FineTuningMonitor(threshold=100.0)
        loop = OnlineAdaptationLoop(framework, monitor)
        log = AdaptationLog()
        error = loop.observe_round(np.random.default_rng(0).random(12), 0, log)
        assert error >= 0
        assert log.errors == [error]

    def test_validation(self):
        framework = self._framework()
        monitor = FineTuningMonitor(threshold=1.0)
        with pytest.raises(ValueError):
            OnlineAdaptationLoop(framework, monitor, buffer_size=0)
        loop = OnlineAdaptationLoop(framework, monitor)
        with pytest.raises(ValueError):
            loop.run(np.zeros((2, 12)), check_every=0)

    def test_errors_between(self):
        log = AdaptationLog(check_rounds=[0, 2, 4], errors=[0.1, 0.2, 0.3])
        assert log.errors_between(1, 5) == [0.2, 0.3]
