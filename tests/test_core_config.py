"""Unit tests for OrcoDCSConfig."""

import pytest

from repro.core import OrcoDCSConfig, gtsrb_task_config, mnist_task_config


class TestValidation:
    def test_defaults_valid(self):
        config = OrcoDCSConfig(input_dim=784)
        assert config.latent_dim == 128
        assert config.loss == "huber"

    @pytest.mark.parametrize("kwargs", [
        {"input_dim": 0},
        {"input_dim": 100, "latent_dim": 0},
        {"input_dim": 100, "noise_sigma": -0.1},
        {"input_dim": 100, "decoder_layers": 0},
        {"input_dim": 100, "batch_size": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            OrcoDCSConfig(**kwargs)

    def test_latent_may_exceed_input(self):
        # The paper's Fig. 6 sweeps M=1024 on the 784-dim digits task.
        config = OrcoDCSConfig(input_dim=784, latent_dim=1024)
        assert not config.is_compressive
        assert config.compression_ratio < 1.0


class TestProperties:
    def test_compression_ratio(self):
        config = OrcoDCSConfig(input_dim=784, latent_dim=128)
        assert abs(config.compression_ratio - 784 / 128) < 1e-12
        assert config.is_compressive

    def test_hidden_width_default(self):
        config = OrcoDCSConfig(input_dim=1000, latent_dim=100,
                               decoder_layers=3)
        assert config.hidden_width == 500

    def test_hidden_width_explicit(self):
        config = OrcoDCSConfig(input_dim=1000, latent_dim=100,
                               decoder_layers=3, decoder_hidden=64)
        assert config.hidden_width == 64

    def test_with_overrides_is_functional(self):
        base = OrcoDCSConfig(input_dim=784)
        changed = base.with_overrides(latent_dim=256)
        assert base.latent_dim == 128
        assert changed.latent_dim == 256
        assert changed.input_dim == 784


class TestTaskConfigs:
    def test_mnist_task(self):
        config = mnist_task_config()
        assert config.input_dim == 784
        assert config.latent_dim == 128

    def test_gtsrb_task(self):
        config = gtsrb_task_config()
        assert config.input_dim == 3072
        assert config.latent_dim == 512

    def test_task_overrides(self):
        config = mnist_task_config(noise_sigma=0.3, decoder_layers=3)
        assert config.noise_sigma == 0.3
        assert config.decoder_layers == 3
