"""Smoke-run every example script at tiny scale.

The examples are the repo's executable documentation, but until this
test they were never exercised by CI — an API drift could silently
break all of them.  Each script honours ``REPRO_EXAMPLE_SCALE``, so we
run them as real subprocesses (import paths, ``__main__`` guards and
printing included) at a few percent of their normal workload.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
# Underscore-prefixed files are shared helpers, not runnable examples.
EXAMPLES = sorted(p for p in EXAMPLES_DIR.glob("*.py")
                  if not p.name.startswith("_"))


def run_example(path: Path, scale: str = "0.05",
                timeout_s: int = 300) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["REPRO_EXAMPLE_SCALE"] = scale
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(path)], env=env, timeout=timeout_s,
        capture_output=True, text=True)


def test_every_example_is_covered():
    """New examples must be picked up by this smoke test automatically."""
    assert len(EXAMPLES) >= 4
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "wsn_environment_monitoring.py",
            "adaptive_task_compression.py",
            "image_reconstruction_pipeline.py"} <= names


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean_at_tiny_scale(example):
    result = run_example(example)
    assert result.returncode == 0, (
        f"{example.name} failed\n--- stdout ---\n{result.stdout[-2000:]}"
        f"\n--- stderr ---\n{result.stderr[-2000:]}")
    assert result.stdout.strip(), f"{example.name} printed nothing"
