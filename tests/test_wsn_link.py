"""Unit tests for link models."""

import pytest

from repro.wsn import LinkModel, cloud_uplink, downlink, sensor_link, uplink


class TestLinkModel:
    def test_frames_for_payload(self):
        link = LinkModel(max_payload_bytes=100, header_bytes=10)
        assert link.frames_for(0) == 0
        assert link.frames_for(1) == 1
        assert link.frames_for(100) == 1
        assert link.frames_for(101) == 2

    def test_wire_bytes_adds_headers(self):
        link = LinkModel(max_payload_bytes=100, header_bytes=10)
        assert link.wire_bytes(250) == 250 + 3 * 10

    def test_transfer_time_zero_for_empty(self):
        assert sensor_link().transfer_time(0) == 0.0

    def test_transfer_time_monotone(self):
        link = sensor_link()
        assert link.transfer_time(2000) > link.transfer_time(1000)

    def test_transfer_time_includes_latency(self):
        link = LinkModel(bandwidth_bps=8e6, latency_s=0.5,
                         max_payload_bytes=1000, header_bytes=0)
        assert abs(link.transfer_time(1000) - (0.5 + 0.001)) < 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(bandwidth_bps=0)
        with pytest.raises(ValueError):
            LinkModel(max_payload_bytes=0)
        with pytest.raises(ValueError):
            LinkModel(latency_s=-1)
        with pytest.raises(ValueError):
            sensor_link().frames_for(-1)


class TestFactories:
    def test_downlink_faster_than_uplink(self):
        # The paper's overhead analysis assumes downlink is much cheaper.
        assert downlink().bandwidth_bps >= 5 * uplink().bandwidth_bps

    def test_sensor_link_is_slowest(self):
        assert sensor_link().bandwidth_bps < uplink().bandwidth_bps

    def test_cloud_uplink_high_latency(self):
        assert cloud_uplink().latency_s > uplink().latency_s

    def test_same_payload_cheaper_on_downlink(self):
        payload = 100_000
        assert downlink().transfer_time(payload) < uplink().transfer_time(payload)
