"""Unit tests for link models."""

import pytest

from repro.wsn import LinkModel, cloud_uplink, downlink, sensor_link, uplink


class TestLinkModel:
    def test_frames_for_payload(self):
        link = LinkModel(max_payload_bytes=100, header_bytes=10)
        assert link.frames_for(0) == 0
        assert link.frames_for(1) == 1
        assert link.frames_for(100) == 1
        assert link.frames_for(101) == 2

    def test_wire_bytes_adds_headers(self):
        link = LinkModel(max_payload_bytes=100, header_bytes=10)
        assert link.wire_bytes(250) == 250 + 3 * 10

    def test_transfer_time_zero_for_empty(self):
        assert sensor_link().transfer_time(0) == 0.0

    def test_transfer_time_monotone(self):
        link = sensor_link()
        assert link.transfer_time(2000) > link.transfer_time(1000)

    def test_transfer_time_includes_latency(self):
        link = LinkModel(bandwidth_bps=8e6, latency_s=0.5,
                         max_payload_bytes=1000, header_bytes=0)
        assert abs(link.transfer_time(1000) - (0.5 + 0.001)) < 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(bandwidth_bps=0)
        with pytest.raises(ValueError):
            LinkModel(max_payload_bytes=0)
        with pytest.raises(ValueError):
            LinkModel(latency_s=-1)
        with pytest.raises(ValueError):
            sensor_link().frames_for(-1)


class TestFactories:
    def test_downlink_faster_than_uplink(self):
        # The paper's overhead analysis assumes downlink is much cheaper.
        assert downlink().bandwidth_bps >= 5 * uplink().bandwidth_bps

    def test_sensor_link_is_slowest(self):
        assert sensor_link().bandwidth_bps < uplink().bandwidth_bps

    def test_cloud_uplink_high_latency(self):
        assert cloud_uplink().latency_s > uplink().latency_s

    def test_same_payload_cheaper_on_downlink(self):
        payload = 100_000
        assert downlink().transfer_time(payload) < uplink().transfer_time(payload)


class TestFragmentationEdgeCases:
    """Satellite coverage: zero-byte, exact-fit and near-boundary payloads."""

    def test_zero_byte_payload_has_no_frames(self):
        link = LinkModel(max_payload_bytes=100, header_bytes=10)
        assert link.frames_for(0) == 0
        assert link.frame_sizes(0) == []
        assert link.wire_bytes(0) == 0
        assert link.transfer_time(0) == 0.0

    def test_payload_exactly_max_payload_is_one_frame(self):
        link = LinkModel(max_payload_bytes=96, header_bytes=17)
        assert link.frames_for(96) == 1
        assert link.frame_sizes(96) == [96]
        assert link.wire_bytes(96) == 96 + 17

    def test_payload_one_over_max_spills_a_tiny_frame(self):
        link = LinkModel(max_payload_bytes=96, header_bytes=17)
        assert link.frame_sizes(97) == [96, 1]
        assert link.wire_bytes(97) == 97 + 2 * 17

    def test_exact_multiple_has_no_partial_frame(self):
        link = LinkModel(max_payload_bytes=100, header_bytes=5)
        sizes = link.frame_sizes(300)
        assert sizes == [100, 100, 100]

    def test_no_header_only_frames_ever(self):
        link = LinkModel(max_payload_bytes=50, header_bytes=9)
        for n in (0, 1, 49, 50, 51, 99, 100, 101, 1000):
            assert all(size > 0 for size in link.frame_sizes(n))
            assert sum(link.frame_sizes(n)) == n

    def test_frame_sizes_consistent_with_wire_bytes(self):
        link = sensor_link()
        for n in (0, 1, 95, 96, 97, 4321):
            sizes = link.frame_sizes(n)
            assert len(sizes) == link.frames_for(n)
            rebuilt = sum(sizes) + len(sizes) * link.header_bytes
            assert rebuilt == link.wire_bytes(n)

    def test_frame_time_matches_transfer_time_decomposition(self):
        link = sensor_link()
        n = 1000
        per_frame = sum(link.frame_time(size) for size in link.frame_sizes(n))
        assert link.transfer_time(n) == pytest.approx(
            link.latency_s + per_frame, rel=1e-12)

    def test_frame_time_validation(self):
        with pytest.raises(ValueError):
            sensor_link().frame_time(-1)

    def test_header_only_link_configuration(self):
        """A link whose header dwarfs its payload still fragments sanely."""
        link = LinkModel(max_payload_bytes=1, header_bytes=40)
        assert link.frames_for(3) == 3
        assert link.frame_sizes(3) == [1, 1, 1]
        assert link.wire_bytes(3) == 3 + 3 * 40
