"""Unit tests for quality and cost metrics."""

import numpy as np
import pytest

from repro.metrics import (
    CostBreakdown,
    batch_psnr,
    bytes_to_kb,
    mse,
    nmse,
    psnr,
    reconstruction_snr,
    savings_factor,
    scalars_to_bytes,
    ssim,
)


class TestQuality:
    def test_mse_value(self):
        assert mse(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == 2.5

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))

    def test_nmse_perfect_zero(self):
        x = np.random.default_rng(0).random(10)
        assert nmse(x, x) == 0.0

    def test_nmse_of_zero_prediction_is_one(self):
        x = np.random.default_rng(0).random(10)
        assert abs(nmse(x, np.zeros(10)) - 1.0) < 1e-12

    def test_psnr_infinite_for_exact(self):
        x = np.random.default_rng(0).random((4, 4))
        assert psnr(x, x) == float("inf")

    def test_psnr_known_value(self):
        x = np.zeros((10, 10))
        y = np.full((10, 10), 0.1)
        assert abs(psnr(x, y) - 20.0) < 1e-9    # mse=0.01 -> 20 dB

    def test_psnr_decreases_with_noise(self):
        rng = np.random.default_rng(0)
        x = rng.random((8, 8))
        small = x + rng.normal(0, 0.01, x.shape)
        large = x + rng.normal(0, 0.1, x.shape)
        assert psnr(x, small) > psnr(x, large)

    def test_reconstruction_snr(self):
        x = np.ones(10)
        assert reconstruction_snr(x, x) == float("inf")
        noisy = x + 0.1
        assert reconstruction_snr(x, noisy) > 0

    def test_batch_psnr_per_sample(self):
        x = np.random.default_rng(0).random((3, 5, 5))
        values = batch_psnr(x, x + 0.05)
        assert values.shape == (3,)
        assert np.all(values > 0)


class TestSSIM:
    def test_identical_images_score_one(self):
        x = np.random.default_rng(0).random((16, 16))
        assert abs(ssim(x, x) - 1.0) < 1e-9

    def test_noise_lowers_ssim(self):
        rng = np.random.default_rng(0)
        x = rng.random((32, 32))
        assert ssim(x, np.clip(x + rng.normal(0, 0.2, x.shape), 0, 1)) < 0.95

    def test_color_images_averaged(self):
        x = np.random.default_rng(0).random((8, 8, 3))
        assert abs(ssim(x, x) - 1.0) < 1e-9

    def test_structural_sensitivity(self):
        rng = np.random.default_rng(0)
        x = rng.random((32, 32))
        shuffled = x.copy().ravel()
        rng.shuffle(shuffled)
        assert ssim(x, shuffled.reshape(32, 32)) < ssim(x, x * 0.9 + 0.05)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4)), np.zeros((5, 5)))
        with pytest.raises(ValueError):
            ssim(np.zeros(4), np.zeros(4))


class TestCost:
    def test_bytes_to_kb(self):
        assert bytes_to_kb(2048) == 2.0

    def test_scalars_to_bytes(self):
        assert scalars_to_bytes(10) == 40
        assert scalars_to_bytes(10, value_bytes=8) == 80
        with pytest.raises(ValueError):
            scalars_to_bytes(-1)

    def test_breakdown_totals(self):
        cost = CostBreakdown("x", setup_bytes=1000, per_image_bytes=10,
                             images=100)
        assert cost.total_bytes == 2000
        assert abs(cost.total_kb - 2000 / 1024) < 1e-12

    def test_scaled_keeps_model(self):
        cost = CostBreakdown("x", setup_bytes=100, per_image_bytes=5, images=1)
        bigger = cost.scaled(1000)
        assert bigger.total_bytes == 100 + 5000
        assert cost.total_bytes == 105

    def test_savings_factor(self):
        a = CostBreakdown("base", per_image_bytes=100, images=10)
        b = CostBreakdown("ours", per_image_bytes=10, images=10)
        assert abs(savings_factor(a, b) - 10.0) < 1e-12

    def test_savings_factor_zero_cost(self):
        a = CostBreakdown("base", per_image_bytes=100, images=10)
        b = CostBreakdown("ours")
        assert savings_factor(a, b) == float("inf")
