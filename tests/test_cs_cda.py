"""Unit tests for the classical CDA pipeline."""

import numpy as np
import pytest

from repro.cs import ClassicalCDA
from repro.metrics import nmse


def smooth_signals(batch=3, n=64, seed=0):
    rng = np.random.default_rng(seed)
    t = np.linspace(0, 1, n)
    rows = []
    for _ in range(batch):
        a, b, c = rng.standard_normal(3)
        rows.append(a * np.sin(2 * np.pi * t) + b * np.cos(4 * np.pi * t)
                    + 0.3 * c)
    return np.array(rows)


class TestClassicalCDA:
    def test_measurement_dimension(self):
        cda = ClassicalCDA(64, 16, rng=np.random.default_rng(0))
        y = cda.encode(smooth_signals())
        assert y.shape == (3, 16)
        assert cda.round_trip(smooth_signals()).values_per_sample == 16

    def test_smooth_signal_round_trip_quality(self):
        cda = ClassicalCDA(64, 24, solver="omp", sparsity=8,
                           rng=np.random.default_rng(0))
        x = smooth_signals()
        result = cda.round_trip(x)
        assert nmse(x, result.reconstructions) < 0.05

    def test_more_measurements_help(self):
        x = smooth_signals(seed=1)
        worse = ClassicalCDA(64, 8, solver="omp", sparsity=4,
                             rng=np.random.default_rng(0))
        better = ClassicalCDA(64, 32, solver="omp", sparsity=8,
                              rng=np.random.default_rng(0))
        assert nmse(x, better.round_trip(x).reconstructions) <= \
            nmse(x, worse.round_trip(x).reconstructions) + 1e-9

    def test_fista_solver_path(self):
        cda = ClassicalCDA(64, 32, solver="fista", lam=1e-2,
                           rng=np.random.default_rng(0))
        x = smooth_signals(seed=2)
        assert nmse(x, cda.round_trip(x).reconstructions) < 0.05

    def test_lstsq_solver_path(self):
        cda = ClassicalCDA(32, 16, solver="lstsq",
                           rng=np.random.default_rng(0))
        x = smooth_signals(n=32)
        recon = cda.round_trip(x).reconstructions
        assert recon.shape == x.shape

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            ClassicalCDA(16, 32)
        cda = ClassicalCDA(16, 8, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            cda.encode(np.zeros((2, 10)))
