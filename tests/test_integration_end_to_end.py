"""Integration tests: the full OrcoDCS story wired together.

These tests cross module boundaries on purpose: sensor field -> WSN
cluster -> raw aggregation -> orchestrated online training -> encoder
deployment -> compressed rounds -> edge reconstruction -> (for images)
follow-up classifier.
"""

import numpy as np

from repro.apps import ImageClassifier
from repro.baselines import DCSNetOnline
from repro.core import (
    EncoderDeployment,
    FineTuningMonitor,
    OnlineAdaptationLoop,
    OrcoDCSConfig,
    OrcoDCSFramework,
)
from repro.datasets import (
    FieldRegime,
    SensorField,
    flatten_images,
    generate_digits,
    normalized_rounds,
)
from repro.metrics import nmse, psnr
from repro.wsn import (
    WSNetwork,
    build_aggregation_tree,
    select_aggregator,
    simulate_raw_aggregation,
)


class TestSensorPipeline:
    def test_full_wsn_lifecycle(self):
        rng = np.random.default_rng(0)
        num_devices = 36

        # 1. Deploy a cluster over a sensing field.
        positions = rng.uniform(0, 80, (num_devices, 2))
        network = WSNetwork(positions, comm_range_m=30.0,
                            battery_capacity_j=50.0)
        network.set_aggregator(select_aggregator(positions))
        tree = build_aggregation_tree(network)
        field = SensorField(regime=FieldRegime(correlation_length=12.0),
                            rng=rng)

        # 2. Intra-cluster raw aggregation gathers training data.
        raw_report = simulate_raw_aggregation(network, tree)
        assert raw_report.values_transmitted > num_devices - 1

        train_rounds = field.generate_rounds(positions, 200)
        train_scaled, low, high = normalized_rounds(train_rounds)

        # 3. IoT-Edge orchestrated online training.
        config = OrcoDCSConfig(input_dim=num_devices, latent_dim=8,
                               noise_sigma=0.05, seed=0, batch_size=16)
        framework = OrcoDCSFramework(config)
        history = framework.fit_config(train_scaled, epochs=18)
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss
        assert framework.ledger.total_wire_bytes("latent_uplink") > 0

        # 4. Deploy the trained encoder into the network.
        deployment = EncoderDeployment(framework.model, network, tree)
        deployment.distribute()

        # 5. Compressed rounds reconstruct well at the edge.
        field.step()
        fresh = field.read(positions)
        fresh_scaled = np.clip((fresh - low) / (high - low), 0, 1)
        readings = {nid: float(fresh_scaled[i])
                    for i, nid in enumerate(network.device_ids)}
        latent, reconstruction = deployment.end_to_end_round(readings)
        assert latent.shape == (8,)
        stacked = np.array([readings[nid] for nid in network.device_ids])
        assert nmse(stacked, reconstruction) < 0.08

        # 6. The compressed path is cheaper than raw per round.
        network.reset_ledger()
        deployment.compressed_round(readings)
        compressed_bytes = network.ledger.total_wire_bytes()
        network.reset_ledger()
        simulate_raw_aggregation(network, tree)
        raw_bytes = network.ledger.total_wire_bytes()
        assert compressed_bytes <= raw_bytes

    def test_drift_triggers_finetuning_and_recovers(self):
        rng = np.random.default_rng(1)
        num_devices = 25
        positions = rng.uniform(0, 60, (num_devices, 2))
        field = SensorField(regime=FieldRegime(mean=20.0, amplitude=2.0),
                            rng=rng)
        train = field.generate_rounds(positions, 150)
        train_scaled, low, high = normalized_rounds(train)

        config = OrcoDCSConfig(input_dim=num_devices, latent_dim=6,
                               noise_sigma=0.0, seed=1, batch_size=16)
        framework = OrcoDCSFramework(config)
        framework.fit_config(train_scaled, epochs=10)
        baseline = framework.evaluate(train_scaled[-16:])

        field.set_regime(FieldRegime(mean=32.0, amplitude=7.0,
                                     correlation_length=4.0))
        drifted = field.generate_rounds(positions, 60)
        drifted_scaled = np.clip((drifted - low) / (high - low), 0, 1)

        monitor = FineTuningMonitor(threshold=max(baseline * 3, 1e-5),
                                    window=3, cooldown=2)
        loop = OnlineAdaptationLoop(framework, monitor, buffer_size=40,
                                    retrain_epochs=10)
        log = loop.run(drifted_scaled)
        assert log.num_retrains >= 1
        assert np.mean(log.errors[-5:]) < np.max(log.errors)


class TestImagePipeline:
    def test_reconstruction_feeds_classifier(self):
        rng = np.random.default_rng(0)
        images, labels = generate_digits(260, rng)
        rows = flatten_images(images)
        train_rows, test_rows = rows[:200], rows[200:]

        config = OrcoDCSConfig(input_dim=784, latent_dim=128, seed=0,
                               noise_sigma=0.1)
        framework = OrcoDCSFramework(config)
        framework.fit_config(train_rows, epochs=20)

        recon_train = framework.reconstruct(train_rows)
        recon_test = framework.reconstruct(test_rows)
        assert psnr(test_rows, recon_test) > 14.0

        classifier = ImageClassifier((1, 28, 28), 10, seed=0,
                                     learning_rate=2e-3)
        history = classifier.fit(recon_train, labels[:200], recon_test,
                                 labels[200:], epochs=8)
        assert history.final_accuracy > 0.3   # far above the 10% floor
        # (full-scale runs reach ~0.9; this test uses only 200 images)

    def test_orco_beats_dcsnet_on_equal_budget(self):
        rng = np.random.default_rng(0)
        images, _ = generate_digits(200, rng)
        rows = flatten_images(images)

        orco = OrcoDCSFramework(OrcoDCSConfig(input_dim=784, latent_dim=128,
                                              seed=0, noise_sigma=0.1))
        orco_history = orco.fit_config(rows, epochs=4)

        dcsnet = DCSNetOnline.for_digits(seed=0, data_fraction=0.5)
        dcs_history = dcsnet.fit_fraction(rows, epochs=4, batch_size=32)

        # Same epochs: OrcoDCS must be both faster on the modeled clock
        # and at-or-below DCSNet's loss.
        assert orco_history.total_time_s < dcs_history.total_time_s
        assert orco_history.final_loss < dcs_history.epochs[0].train_loss
