"""Unit tests for unreliable channels: loss models, ARQ, jitter."""

import numpy as np
import pytest

from repro.sim import (
    ARQConfig,
    BernoulliLoss,
    ChannelSpec,
    GILBERT_ELLIOTT_PRESETS,
    GilbertElliottLoss,
    UnreliableChannel,
    as_loss_model,
)
from repro.wsn import LinkModel, sensor_link, uplink


def rng(seed=0):
    return np.random.default_rng(seed)


class TestLossModels:
    def test_bernoulli_rate_statistics(self):
        loss = BernoulliLoss(0.3)
        generator = rng(3)
        hits = sum(loss.frame_lost(generator) for _ in range(20000))
        assert abs(hits / 20000 - 0.3) < 0.02

    def test_bernoulli_zero_never_loses(self):
        loss = BernoulliLoss(0.0)
        generator = rng(0)
        assert not any(loss.frame_lost(generator) for _ in range(100))

    def test_bernoulli_validation(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.0)
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1)

    def test_gilbert_elliott_steady_state(self):
        loss = GilbertElliottLoss(p_good_to_bad=0.1, p_bad_to_good=0.3,
                                  loss_good=0.0, loss_bad=0.8)
        generator = rng(0)
        hits = sum(loss.frame_lost(generator) for _ in range(40000))
        assert abs(hits / 40000 - loss.mean_loss_rate) < 0.02

    def test_gilbert_elliott_burstiness(self):
        """Losses cluster: P(loss | previous loss) >> marginal rate."""
        loss = GilbertElliottLoss(p_good_to_bad=0.02, p_bad_to_good=0.2,
                                  loss_good=0.0, loss_bad=0.9)
        generator = rng(0)
        draws = [loss.frame_lost(generator) for _ in range(40000)]
        marginal = np.mean(draws)
        pairs = [(a, b) for a, b in zip(draws, draws[1:])]
        after_loss = [b for a, b in pairs if a]
        assert np.mean(after_loss) > 3 * marginal

    def test_gilbert_elliott_reset(self):
        loss = GilbertElliottLoss(p_good_to_bad=1.0, p_bad_to_good=0.0,
                                  loss_bad=0.5)
        generator = rng(0)
        loss.frame_lost(generator)
        assert loss.bad
        loss.reset()
        assert not loss.bad

    def test_inescapable_lossy_state_rejected(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_bad_to_good=0.0, loss_bad=1.0)

    def test_as_loss_model_coercion(self):
        assert as_loss_model(None) is None
        assert as_loss_model(0.0) is None
        assert isinstance(as_loss_model(0.2), BernoulliLoss)
        model = GilbertElliottLoss()
        assert as_loss_model(model) is model


class TestIdealEquivalence:
    """The zero-fault anchor: lossless channels match the ideal link."""

    @pytest.mark.parametrize("n_bytes", [0, 1, 96, 97, 5000])
    def test_lossless_matches_link_exactly(self, n_bytes):
        link = sensor_link()
        channel = UnreliableChannel(link, loss=None, rng=rng(0))
        result = channel.transmit(n_bytes)
        assert result.delivered
        assert result.elapsed_s == link.transfer_time(n_bytes)
        assert result.wire_bytes == link.wire_bytes(n_bytes)
        assert result.received_wire_bytes == result.wire_bytes
        assert result.attempts == result.frames == link.frames_for(n_bytes)
        assert result.lost_frames == 0

    def test_zero_rate_loss_model_also_exact(self):
        link = uplink()
        channel = UnreliableChannel(link, loss=0.0, rng=rng(0))
        result = channel.transmit(4096)
        assert result.elapsed_s == link.transfer_time(4096)
        assert result.wire_bytes == link.wire_bytes(4096)


class TestARQ:
    def test_retransmissions_add_wire_bytes_and_time(self):
        link = sensor_link()
        channel = UnreliableChannel(link, loss=0.4, rng=rng(0),
                                    arq=ARQConfig(max_retries=10,
                                                  ack_timeout_s=0.005))
        result = channel.transmit(960)   # 10 frames
        assert result.delivered
        assert result.lost_frames > 0
        assert result.attempts > result.frames
        assert result.wire_bytes > link.wire_bytes(960)
        assert result.elapsed_s > link.transfer_time(960)
        assert result.received_wire_bytes == link.wire_bytes(960)

    def test_budget_exhaustion_fails_delivery(self):
        link = sensor_link()
        channel = UnreliableChannel(link, loss=0.95, rng=rng(0),
                                    arq=ARQConfig(max_retries=1))
        result = channel.transmit(960)
        assert not result.delivered
        # The sender radiated something before giving up, and gave up
        # before finishing every frame.
        assert result.attempts >= 2
        assert result.wire_bytes < link.wire_bytes(960) * 2 + 1000

    def test_zero_retries_single_attempt_per_frame(self):
        channel = UnreliableChannel(sensor_link(), loss=0.5, rng=rng(0),
                                    arq=ARQConfig(max_retries=0))
        result = channel.transmit(96)
        assert result.attempts == 1
        assert result.delivered == (result.lost_frames == 0)

    def test_timeout_charged_per_lost_attempt(self):
        link = LinkModel(bandwidth_bps=8e6, latency_s=0.0,
                         max_payload_bytes=100, header_bytes=0)
        channel = UnreliableChannel(link, loss=0.5, rng=rng(3),
                                    arq=ARQConfig(max_retries=20,
                                                  ack_timeout_s=1.0))
        result = channel.transmit(100)
        expected = result.attempts * link.frame_time(100) \
            + result.lost_frames * 1.0
        assert result.elapsed_s == pytest.approx(expected)

    def test_arq_validation(self):
        with pytest.raises(ValueError):
            ARQConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ARQConfig(ack_timeout_s=-0.1)
        with pytest.raises(ValueError):
            UnreliableChannel(sensor_link(), jitter_s=-1.0)
        with pytest.raises(ValueError):
            UnreliableChannel(sensor_link()).transmit(-1)


class TestJitter:
    def test_jitter_extends_elapsed_only(self):
        link = sensor_link()
        channel = UnreliableChannel(link, jitter_s=0.01, rng=rng(0))
        result = channel.transmit(960)
        assert result.delivered
        assert result.wire_bytes == link.wire_bytes(960)
        assert result.elapsed_s > link.transfer_time(960)

    def test_jitter_is_deterministic_per_seed(self):
        results = [UnreliableChannel(sensor_link(), jitter_s=0.01,
                                     rng=rng(7)).transmit(960).elapsed_s
                   for _ in range(2)]
        assert results[0] == results[1]


class TestChannelSpec:
    def test_build_stamps_independent_channels(self):
        spec = ChannelSpec(loss=0.2)
        root = rng(0)
        a = spec.build(sensor_link(), np.random.default_rng(root.integers(2**63)))
        b = spec.build(sensor_link(), np.random.default_rng(root.integers(2**63)))
        assert a is not b
        assert a.transmit(960).wire_bytes != b.transmit(960).wire_bytes \
            or a.transmit(5000).wire_bytes != b.transmit(5000).wire_bytes

    def test_stateful_loss_needs_factory(self):
        spec = ChannelSpec(loss=GilbertElliottLoss)
        channel_a = spec.build(sensor_link(), rng(0))
        channel_b = spec.build(sensor_link(), rng(1))
        assert channel_a.loss is not channel_b.loss
        assert not spec.ideal

    def test_ideal_property(self):
        assert ChannelSpec().ideal
        assert ChannelSpec(loss=0.0).ideal
        assert not ChannelSpec(loss=0.1).ideal
        assert not ChannelSpec(jitter_s=0.01).ideal

    def test_reset_clears_burst_state(self):
        channel = UnreliableChannel(
            sensor_link(),
            loss=GilbertElliottLoss(p_good_to_bad=1.0, p_bad_to_good=0.1,
                                    loss_bad=0.5),
            rng=rng(0))
        channel.transmit(960)
        channel.reset()
        assert not channel.loss.bad


class TestGilbertElliottPresets:
    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown channel preset"):
            ChannelSpec.preset("802154_marsbase")

    @pytest.mark.parametrize("name,max_mean_loss", [
        ("802154_indoor", 0.08), ("802154_outdoor", 0.10),
        ("noisy_office", 0.25)])
    def test_preset_steady_state_in_measured_band(self, name, max_mean_loss):
        channel = ChannelSpec.preset(name).build(sensor_link(), rng(0))
        assert 0.0 < channel.loss.mean_loss_rate < max_mean_loss
        params = GILBERT_ELLIOTT_PRESETS[name]
        assert channel.loss.p_good_to_bad == params["p_good_to_bad"]
        # Bursty by construction: BAD state much lossier than GOOD.
        assert channel.loss.loss_bad > 10 * channel.loss.loss_good

    def test_presets_do_not_share_burst_state(self):
        spec = ChannelSpec.preset("noisy_office")
        a = spec.build(sensor_link(), rng(0))
        b = spec.build(sensor_link(), rng(1))
        assert a.loss is not b.loss
        a.loss.bad = True
        assert not b.loss.bad

    def test_preset_severity_ordering(self):
        rates = {name: ChannelSpec.preset(name).build(
                     sensor_link(), rng(0)).loss.mean_loss_rate
                 for name in GILBERT_ELLIOTT_PRESETS}
        assert rates["802154_indoor"] < rates["802154_outdoor"] \
            < rates["noisy_office"]

    def test_preset_round_trips_through_channel_sweep(self):
        """A preset drives the event engine's loss sweep end to end:
        retransmissions land in the ledger, the run completes."""
        import numpy as np

        from repro.core import (
            EdgeTrainingScheduler,
            OrcoDCSConfig,
            OrcoDCSFramework,
        )

        totals = {}
        for spec, label in [(None, "ideal"),
                            (ChannelSpec.preset("noisy_office"), "noisy")]:
            scheduler = EdgeTrainingScheduler(
                "round_robin", rng=np.random.default_rng(0), engine="event",
                channels=spec)
            for index in range(2):
                config = OrcoDCSConfig(input_dim=24, latent_dim=4, seed=index,
                                       noise_sigma=0.05, batch_size=8)
                data = np.random.default_rng(index).random((48, 24))
                scheduler.add_cluster(f"c{index}", OrcoDCSFramework(config),
                                      data, batch_size=8)
            report = scheduler.run(rounds_per_cluster=8)
            totals[label] = sum(
                c.trainer.ledger.total_wire_bytes()
                for c in scheduler.clusters)
            assert sum(report.rounds_per_cluster.values()) \
                + sum(report.failed_rounds.values()) == 16
        # Burst loss radiates retransmission bytes over the ideal run.
        assert totals["noisy"] > totals["ideal"]


class TestChannelTrace:
    """Record/replay: channel randomness as a replayable input."""

    def _channel(self, seed=7, **kwargs):
        defaults = dict(loss=0.2, arq=ARQConfig(max_retries=2),
                        jitter_s=0.001)
        defaults.update(kwargs)
        return UnreliableChannel(uplink(), rng=rng(seed), **defaults)

    def test_replay_bit_identical_to_live(self):
        live = self._channel()
        traced = self._channel()
        traced.replay(traced.record_trace(3000, 40))
        for _ in range(40):
            assert traced.transmit(3000) == live.transmit(3000)

    def test_gilbert_elliott_replay_bit_identical(self):
        def build(seed):
            return UnreliableChannel(
                uplink(), loss=GilbertElliottLoss(0.1, 0.3, 0.02, 0.7),
                arq=ARQConfig(max_retries=1), rng=rng(seed))
        live, traced = build(3), build(3)
        traced.replay(traced.record_trace(2000, 60))
        for _ in range(60):
            assert traced.transmit(2000) == live.transmit(2000)

    def test_trace_entry_peek_does_not_move_cursor(self):
        channel = self._channel()
        trace = channel.record_trace(500, 5)
        channel.replay(trace)
        peeked = trace.entry(2)
        assert trace.cursor == 0
        channel.transmit(500)
        channel.transmit(500)
        assert channel.transmit(500) == peeked
        assert trace.remaining == 2

    def test_exhausted_trace_raises(self):
        from repro.sim import ChannelTraceExhausted
        channel = self._channel()
        channel.replay(channel.record_trace(500, 1))
        channel.transmit(500)
        with pytest.raises(ChannelTraceExhausted):
            channel.transmit(500)

    def test_payload_mismatch_rejected(self):
        channel = self._channel()
        channel.replay(channel.record_trace(500, 2))
        with pytest.raises(ValueError, match="trace recorded"):
            channel.transmit(600)

    def test_lossless_trace_matches_ideal_closed_form(self):
        link = uplink()
        channel = UnreliableChannel(link, rng=rng(0))
        trace = channel.record_trace(3000, 3)
        for entry in trace.entries:
            assert entry.delivered
            assert entry.elapsed_s == link.transfer_time(3000)
            assert entry.wire_bytes == link.wire_bytes(3000)


class TestTraceRerecord:
    """Budget swaps mid-trace re-record the remaining horizon from the
    cursor's resume point, bit-identical to a live channel swapping
    budgets at the same consume point (PR 9 tentpole)."""

    def _pair(self, seed=7, **kwargs):
        def build():
            # Stateful loss models must not be shared between the pair.
            options = dict(loss=0.2, arq=ARQConfig(max_retries=2))
            options.update({key: value() if callable(value) else value
                            for key, value in kwargs.items()})
            return UnreliableChannel(uplink(), rng=rng(seed), **options)
        return build(), build()

    def _swap_and_compare(self, live, traced, payload=2000, total=40,
                          consumed=13, policy=None):
        from repro.sim import ARQConfig as ARQ
        traced.replay(traced.record_trace(payload, total, policy=policy))
        for _ in range(consumed):
            assert traced.transmit(payload) == live.transmit(payload)
        for channel in (live, traced):
            channel.set_arq(ARQ(max_retries=5,
                                ack_timeout_s=channel.arq.ack_timeout_s))
        traced.rerecord_trace()
        for _ in range(total - consumed):
            assert traced.transmit(payload) == live.transmit(payload)

    def test_full_trace_rerecord_matches_live_swap(self):
        self._swap_and_compare(*self._pair())

    def test_chunked_mid_chunk_rerecord_never_replays_consumed_draws(self):
        """The off-by-one regression: ``ChunkedChannelTrace.next``
        retains the just-consumed entry for ``seed_current``, so the
        resume offset must count that entry's attempts too.  Resuming
        one verdict early would re-parse an already-consumed draw and
        diverge from the live channel immediately."""
        from repro.sim import TracePolicy
        live, traced = self._pair(seed=11)
        # consumed=13 with chunk=8 lands mid-way through chunk two.
        self._swap_and_compare(live, traced, consumed=13,
                               policy=TracePolicy(chunk=8))

    def test_chunked_rerecord_at_chunk_boundary(self):
        from repro.sim import TracePolicy
        live, traced = self._pair(seed=5)
        self._swap_and_compare(live, traced, consumed=16,
                               policy=TracePolicy(chunk=8))

    def test_gilbert_elliott_rerecord_restores_burst_state(self):
        """Rewinding a bursty sampler must re-sync the Markov state at
        the resume point, not just the draw offset."""
        live, traced = self._pair(
            seed=3, loss=lambda: GilbertElliottLoss(0.1, 0.3, 0.02, 0.7),
            arq=ARQConfig(max_retries=1))
        self._swap_and_compare(live, traced)

    def test_double_rerecord_matches_two_live_swaps(self):
        from repro.sim import ARQConfig as ARQ
        live, traced = self._pair(seed=9)
        traced.replay(traced.record_trace(2000, 30))
        for _ in range(10):
            assert traced.transmit(2000) == live.transmit(2000)
        for retries in (5, 0):
            for channel in (live, traced):
                channel.set_arq(ARQ(max_retries=retries))
            traced.rerecord_trace()
            for _ in range(10):
                assert traced.transmit(2000) == live.transmit(2000)

    def test_coding_swap_rerecords(self):
        from repro.sim import CodingSpec
        live, traced = self._pair(seed=13, loss=0.15,
                                  coding=CodingSpec(2, arq_fallback=True))
        traced.replay(traced.record_trace(2000, 30))
        for _ in range(10):
            assert traced.transmit(2000) == live.transmit(2000)
        for channel in (live, traced):
            channel.set_coding(CodingSpec(4, arq_fallback=True))
        traced.rerecord_trace()
        for _ in range(20):
            assert traced.transmit(2000) == live.transmit(2000)

    def test_rerecordable_property(self):
        assert UnreliableChannel(uplink(), loss=0.2, rng=rng(0)).rerecordable
        assert UnreliableChannel(uplink(), rng=rng(0)).rerecordable
        assert not UnreliableChannel(uplink(), loss=0.2, jitter_s=0.001,
                                     rng=rng(0)).rerecordable
        assert ChannelSpec(loss=0.1).rerecordable
        assert ChannelSpec().rerecordable
        assert not ChannelSpec(loss=0.1, jitter_s=0.001).rerecordable
        assert ChannelSpec.preset("noisy_office").rerecordable

    def test_rerecord_refuses_jittered_channel(self):
        channel = UnreliableChannel(uplink(), loss=0.2, jitter_s=0.001,
                                    rng=rng(0))
        channel.replay(channel.record_trace(500, 5))
        channel.transmit(500)
        with pytest.raises(RuntimeError, match="cannot be rewound"):
            channel.rerecord_trace()

    def test_rerecord_without_trace_is_noop(self):
        channel = UnreliableChannel(uplink(), loss=0.2, rng=rng(0))
        channel.rerecord_trace()     # no trace: nothing to do
        channel.transmit(500)

class TestTraceDigests:
    """The presets' calibration data lives in-repo as trace digests;
    the test *fits* Gilbert-Elliott parameters from the digests instead
    of asserting the hand-derived constants against themselves."""

    def test_digests_cover_every_preset(self):
        from repro.sim import GILBERT_ELLIOTT_TRACE_DIGESTS
        assert set(GILBERT_ELLIOTT_TRACE_DIGESTS) \
            == set(GILBERT_ELLIOTT_PRESETS)

    @pytest.mark.parametrize("name", sorted(GILBERT_ELLIOTT_PRESETS))
    def test_fitted_parameters_recover_preset(self, name):
        from repro.sim import (
            GILBERT_ELLIOTT_TRACE_DIGESTS,
            fit_gilbert_elliott,
        )
        digest = GILBERT_ELLIOTT_TRACE_DIGESTS[name]
        fitted = fit_gilbert_elliott(digest)
        for param, value in GILBERT_ELLIOTT_PRESETS[name].items():
            assert getattr(fitted, param) == pytest.approx(value, rel=0.10), \
                f"{name}.{param}"
        # The fitted chain's steady state agrees with the trace's
        # empirical loss rate (the published figure each preset cites).
        assert fitted.mean_loss_rate == pytest.approx(digest.loss_rate,
                                                      rel=0.05)

    @pytest.mark.parametrize("name", sorted(GILBERT_ELLIOTT_PRESETS))
    def test_digest_reproducible_from_generator(self, name):
        """The committed numbers are exactly what the in-repo generator
        produces — the digests are data, not hand-tuned constants."""
        from repro.sim import (
            GILBERT_ELLIOTT_TRACE_DIGESTS,
            digest_gilbert_elliott,
        )
        model = GilbertElliottLoss(**GILBERT_ELLIOTT_PRESETS[name])
        regenerated = digest_gilbert_elliott(
            model, 200_000, np.random.default_rng(0x802154))
        assert regenerated == GILBERT_ELLIOTT_TRACE_DIGESTS[name]

    def test_digest_mean_burst_length(self):
        from repro.sim import GILBERT_ELLIOTT_TRACE_DIGESTS
        digest = GILBERT_ELLIOTT_TRACE_DIGESTS["802154_indoor"]
        expected = 1.0 / GILBERT_ELLIOTT_PRESETS[
            "802154_indoor"]["p_bad_to_good"]
        assert digest.mean_bad_sojourn_frames == pytest.approx(expected,
                                                               rel=0.1)
