"""Unit tests for loss functions."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestMSE:
    def test_value(self):
        loss = nn.MSELoss()(Tensor(np.array([1.0, 3.0])), np.array([0.0, 0.0]))
        assert abs(loss.item() - 5.0) < 1e-12

    def test_zero_at_match(self):
        x = np.random.default_rng(0).standard_normal(5)
        assert nn.MSELoss()(Tensor(x), x).item() == 0.0

    def test_gradient(self):
        p = Tensor(np.array([2.0]), requires_grad=True)
        nn.MSELoss()(p, np.array([0.0])).backward()
        assert np.allclose(p.grad, [4.0])


class TestL1:
    def test_value(self):
        loss = nn.L1Loss()(Tensor(np.array([1.0, -3.0])), np.array([0.0, 0.0]))
        assert abs(loss.item() - 2.0) < 1e-12


class TestHuber:
    def test_quadratic_region(self):
        loss = nn.HuberLoss(delta=1.0)(Tensor(np.array([0.5])), np.array([0.0]))
        assert abs(loss.item() - 0.125) < 1e-12

    def test_linear_region(self):
        loss = nn.HuberLoss(delta=1.0)(Tensor(np.array([3.0])), np.array([0.0]))
        assert abs(loss.item() - 2.5) < 1e-12

    def test_continuous_at_delta(self):
        delta = 1.3
        eps = 1e-8
        below = nn.HuberLoss(delta)(Tensor(np.array([delta - eps])), np.array([0.0]))
        above = nn.HuberLoss(delta)(Tensor(np.array([delta + eps])), np.array([0.0]))
        assert abs(below.item() - above.item()) < 1e-6

    def test_bounded_by_mse_and_scaled_l1(self):
        rng = np.random.default_rng(0)
        pred = rng.standard_normal(50) * 3
        target = rng.standard_normal(50)
        huber = nn.HuberLoss(1.0)(Tensor(pred), target).item()
        mse_half = 0.5 * float(np.mean((pred - target) ** 2))
        l1 = float(np.mean(np.abs(pred - target)))
        assert huber <= mse_half + 1e-12
        assert huber <= l1 + 1e-12

    def test_gradient_clipped_in_linear_region(self):
        p = Tensor(np.array([10.0]), requires_grad=True)
        nn.HuberLoss(1.0)(p, np.array([0.0])).backward()
        assert np.allclose(p.grad, [1.0])   # slope capped at delta

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            nn.HuberLoss(0.0)


class TestVectorHuber:
    def test_quadratic_branch_matches_eq4(self):
        # ||diff||_1 = 0.6 <= delta=1 -> 0.5 * ||diff||_2^2
        pred = np.array([[0.3, 0.3]])
        loss = nn.VectorHuberLoss(1.0)(Tensor(pred), np.zeros((1, 2)))
        assert abs(loss.item() - 0.5 * (0.09 + 0.09)) < 1e-12

    def test_linear_branch_matches_eq4(self):
        # ||diff||_1 = 4 > delta=1 -> delta*||diff||_1 - delta^2/2
        pred = np.array([[2.0, 2.0]])
        loss = nn.VectorHuberLoss(1.0)(Tensor(pred), np.zeros((1, 2)))
        assert abs(loss.item() - (4.0 - 0.5)) < 1e-12

    def test_batch_mean(self):
        pred = np.array([[0.3, 0.3], [2.0, 2.0]])
        loss = nn.VectorHuberLoss(1.0)(Tensor(pred), np.zeros((2, 2)))
        expected = (0.09 + 3.5) / 2
        assert abs(loss.item() - expected) < 1e-12


class TestBCE:
    def test_perfect_prediction_near_zero(self):
        pred = Tensor(np.array([[0.999, 0.001]]))
        target = np.array([[1.0, 0.0]])
        assert nn.BCELoss()(pred, target).item() < 0.01

    def test_symmetric(self):
        loss = nn.BCELoss()
        a = loss(Tensor(np.array([0.8])), np.array([1.0])).item()
        b = loss(Tensor(np.array([0.2])), np.array([0.0])).item()
        assert abs(a - b) < 1e-9


class TestCrossEntropy:
    def test_uniform_logits_give_log_k(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = nn.CrossEntropyLoss()(logits, np.zeros(4, dtype=int))
        assert abs(loss.item() - np.log(10)) < 1e-9

    def test_confident_correct_near_zero(self):
        logits = np.full((1, 3), -50.0)
        logits[0, 1] = 50.0
        loss = nn.CrossEntropyLoss()(Tensor(logits), np.array([1]))
        assert loss.item() < 1e-6

    def test_matches_manual_computation(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((5, 4))
        targets = rng.integers(0, 4, 5)
        loss = nn.CrossEntropyLoss()(Tensor(logits), targets).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -logp[np.arange(5), targets].mean()
        assert abs(loss - expected) < 1e-9

    def test_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        nn.CrossEntropyLoss()(logits, np.array([0])).backward()
        assert np.allclose(logits.grad, [[1 / 3 - 1, 1 / 3, 1 / 3]])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss()(Tensor(np.zeros(3)), np.array([0]))
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss()(Tensor(np.zeros((2, 3))), np.array([0]))


class TestAccuracy:
    def test_perfect(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert nn.accuracy(logits, np.array([0, 1])) == 1.0

    def test_half(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert nn.accuracy(logits, np.array([0, 1])) == 0.5

    def test_accepts_tensors(self):
        logits = Tensor(np.array([[2.0, 1.0]]))
        assert nn.accuracy(logits, np.array([0])) == 1.0


class TestRegistry:
    def test_make_loss(self):
        assert isinstance(nn.make_loss("mse"), nn.MSELoss)
        assert isinstance(nn.make_loss("huber", delta=2.0), nn.HuberLoss)

    def test_unknown_loss(self):
        with pytest.raises(KeyError):
            nn.make_loss("hinge")
