"""Unit tests for the WSN simulator."""

import numpy as np
import pytest

from repro.wsn import (
    DeadNodeError,
    NodeRole,
    TransmissionLedger,
    WSNetwork,
    build_cluster,
)


def small_network(n=6, range_m=200.0):
    positions = np.array([[i * 10.0, 0.0] for i in range(n)])
    net = WSNetwork(positions, comm_range_m=range_m)
    net.set_aggregator(0)
    return net


class TestTopology:
    def test_roles_after_set_aggregator(self):
        net = small_network()
        assert net.nodes[0].role is NodeRole.AGGREGATOR
        assert net.nodes[1].role is NodeRole.DEVICE
        net.set_aggregator(2)
        assert net.nodes[0].role is NodeRole.DEVICE
        assert net.aggregator_id == 2

    def test_set_aggregator_unknown_node(self):
        with pytest.raises(KeyError):
            small_network().set_aggregator(99)

    def test_connectivity_matrix(self):
        net = small_network(range_m=15.0)
        adjacency = net.connectivity()
        assert adjacency[0, 1] and not adjacency[0, 2]
        assert not adjacency.diagonal().any()

    def test_neighbors(self):
        net = small_network(range_m=15.0)
        assert net.neighbors(2) == [1, 3]

    def test_positions_shape(self):
        assert small_network(5).positions().shape == (5, 2)

    def test_invalid_positions(self):
        with pytest.raises(ValueError):
            WSNetwork(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            WSNetwork(np.zeros((3, 2)), comm_range_m=0)


class TestTransmissions:
    def test_unicast_records_and_charges(self):
        net = small_network()
        elapsed = net.unicast(1, 2, 100, kind="test")
        assert elapsed > 0
        assert net.ledger.total_payload_bytes("test") == 100
        assert net.nodes[1].battery.consumed_j > 0
        assert net.nodes[2].battery.consumed_j > 0
        # TX costs more than RX (amplifier energy).
        assert net.nodes[1].battery.consumed_j > net.nodes[2].battery.consumed_j

    def test_unicast_out_of_range(self):
        net = small_network(range_m=5.0)
        with pytest.raises(ValueError):
            net.unicast(0, 5, 10)

    def test_unicast_force_overrides_range(self):
        net = small_network(range_m=5.0)
        assert net.unicast(0, 5, 10, force=True) > 0

    def test_unicast_to_self(self):
        with pytest.raises(ValueError):
            small_network().unicast(1, 1, 10)

    def test_broadcast_charges_neighbors(self):
        net = small_network(range_m=15.0)
        net.broadcast(2, 50)
        assert net.nodes[1].battery.consumed_j > 0
        assert net.nodes[3].battery.consumed_j > 0
        assert net.nodes[5].battery.consumed_j == 0

    def test_uplink_downlink_roundtrip(self):
        net = small_network()
        up = net.uplink_to_edge(1000)
        down = net.downlink_from_edge(1000)
        assert down < up    # downlink is the cheap direction
        kinds = net.ledger.by_kind()
        assert "uplink" in kinds and "downlink" in kinds

    def test_uplink_requires_aggregator(self):
        net = WSNetwork(np.zeros((2, 2)) + [[0, 0], [1, 1]])
        with pytest.raises(RuntimeError):
            net.uplink_to_edge(10)

    def test_edge_server_never_drains(self):
        net = small_network()
        net.downlink_from_edge(10_000)
        assert net.edge.battery.consumed_j == 0


class TestLedger:
    def test_totals_by_kind(self):
        ledger = TransmissionLedger()
        ledger.record(0, 1, 100, 120, "a", 0.1)
        ledger.record(1, 2, 50, 60, "b", 0.2)
        assert ledger.total_payload_bytes() == 150
        assert ledger.total_wire_bytes("a") == 120
        assert abs(ledger.total_kb() - 180 / 1024) < 1e-12
        assert abs(ledger.total_time_s("b") - 0.2) < 1e-12
        assert len(ledger) == 2

    def test_per_node_tx(self):
        ledger = TransmissionLedger()
        ledger.record(0, 1, 10, 12, "a", 0.0)
        ledger.record(0, 2, 10, 12, "a", 0.0)
        ledger.record(1, 2, 10, 12, "a", 0.0)
        per_node = ledger.per_node_tx_bytes()
        assert per_node[0] == 24 and per_node[1] == 12

    def test_merge(self):
        a, b = TransmissionLedger(), TransmissionLedger()
        a.record(0, 1, 1, 1, "x", 0)
        b.record(1, 2, 2, 2, "y", 0)
        a.merge(b)
        assert len(a) == 2

    def test_reset_ledger_swaps(self):
        net = small_network()
        net.unicast(0, 1, 10)
        old = net.reset_ledger()
        assert len(old) == 1
        assert len(net.ledger) == 0


class TestReports:
    def test_energy_report_keys(self):
        net = small_network(4)
        net.unicast(0, 1, 10)
        report = net.energy_report()
        assert set(report) == {0, 1, 2, 3}
        assert report[0] > 0

    def test_alive_fraction(self):
        net = small_network(4)
        assert net.alive_fraction() == 1.0

    def test_build_cluster_selects_central_aggregator(self):
        net = build_cluster(20, rng=np.random.default_rng(0),
                            comm_range_m=60.0)
        assert net.aggregator_id is not None
        assert net.nodes[net.aggregator_id].role is NodeRole.AGGREGATOR


class TestLiveness:
    def test_kill_and_revive(self):
        net = small_network()
        net.kill_node(2)
        assert not net.is_alive(2)
        assert 2 not in net.alive_device_ids
        assert net.alive_fraction() == pytest.approx(5 / 6)
        net.revive_node(2)
        assert net.is_alive(2)

    def test_kill_unknown_node(self):
        with pytest.raises(KeyError):
            small_network().kill_node(99)
        with pytest.raises(KeyError):
            small_network().revive_node(99)

    def test_dead_node_cannot_transmit_or_receive(self):
        net = small_network()
        net.kill_node(1)
        with pytest.raises(DeadNodeError):
            net.unicast(1, 2, 10)
        with pytest.raises(DeadNodeError):
            net.unicast(2, 1, 10)
        with pytest.raises(DeadNodeError):
            net.broadcast(1, 10)

    def test_dead_aggregator_blocks_backhaul(self):
        net = small_network()
        net.kill_node(net.aggregator_id)
        with pytest.raises(DeadNodeError):
            net.uplink_to_edge(100)
        with pytest.raises(DeadNodeError):
            net.downlink_from_edge(100)

    def test_broadcast_skips_dead_neighbors(self):
        net = small_network(range_m=15.0)
        net.kill_node(3)
        consumed_before = net.nodes[3].battery.consumed_j
        net.broadcast(2, 10)
        assert net.nodes[3].battery.consumed_j == consumed_before


class TestUnreliableTransmit:
    def _lossy_network(self, loss=0.4, seed=0, **spec_kwargs):
        from repro.sim import ChannelSpec
        net = small_network()
        net.attach_unreliable(sensor=ChannelSpec(loss=loss, **spec_kwargs),
                              up=ChannelSpec(loss=loss, **spec_kwargs),
                              down=ChannelSpec(loss=loss, **spec_kwargs),
                              rng=np.random.default_rng(seed))
        return net

    def test_retransmissions_charged_to_ledger_and_battery(self):
        from repro.sim import ARQConfig
        ideal = small_network()
        # Deep retry budget: every message is eventually delivered, so
        # loss shows up purely as extra radiated bytes.
        lossy = self._lossy_network(arq=ARQConfig(max_retries=25))
        payload = 5000
        for _ in range(10):
            ideal.unicast(1, 2, payload)
            lossy.unicast(1, 2, payload)
        assert lossy.ledger.total_wire_bytes() > ideal.ledger.total_wire_bytes()
        assert lossy.ledger.total_attempts() > ideal.ledger.total_attempts()
        assert lossy.nodes[1].battery.consumed_j \
            > ideal.nodes[1].battery.consumed_j

    def test_records_carry_attempts_and_delivery(self):
        lossy = self._lossy_network(loss=0.6, seed=2)
        for _ in range(20):
            lossy.unicast(1, 2, 2000)
        attempts = [r.attempts for r in lossy.ledger.records]
        assert max(attempts) > min(attempts)
        fraction = lossy.ledger.delivered_fraction()
        assert 0.0 <= fraction <= 1.0

    def test_delivery_failure_recorded_not_raised(self):
        from repro.sim import ARQConfig, ChannelSpec
        net = small_network()
        net.attach_unreliable(
            sensor=ChannelSpec(loss=0.9, arq=ARQConfig(max_retries=0)),
            rng=np.random.default_rng(0))
        for _ in range(20):
            net.unicast(1, 2, 2000)
        assert net.ledger.delivered_fraction() < 1.0

    def test_unattached_links_stay_ideal(self):
        from repro.sim import ChannelSpec
        net = small_network()
        net.attach_unreliable(up=ChannelSpec(loss=0.5),
                              rng=np.random.default_rng(0))
        elapsed = net.unicast(1, 2, 1000)
        assert elapsed == net.sensor_link.transfer_time(1000)
        record = net.ledger.records[-1]
        assert record.delivered and record.wire_bytes == \
            net.sensor_link.wire_bytes(1000)

    def test_lossless_channel_matches_ideal_accounting(self):
        from repro.sim import ChannelSpec
        ideal = small_network()
        clean = small_network()
        clean.attach_unreliable(sensor=ChannelSpec(loss=0.0),
                                rng=np.random.default_rng(0))
        t_ideal = ideal.unicast(1, 2, 3000)
        t_clean = clean.unicast(1, 2, 3000)
        assert t_ideal == t_clean
        assert ideal.ledger.total_wire_bytes() == clean.ledger.total_wire_bytes()
        assert ideal.nodes[1].battery.consumed_j \
            == clean.nodes[1].battery.consumed_j
