"""Property tests for the vectorized channel kernel (PR 6 tentpole).

The block sampler and the batched ARQ/FEC/hybrid pricing must be
**bit-identical** to the scalar per-frame reference path — same RNG
stream consumption, same verdicts, same ``TransmitResult`` fields
(including the order-sensitive float ``elapsed_s``).  Hypothesis drives
the loss-model parameters, payload sizes and recovery budgets; a fixed
grid covers the published Gilbert-Elliott presets.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    ARQConfig,
    BernoulliLoss,
    BernoulliSampler,
    ChannelSpec,
    ChannelTrace,
    ChunkedChannelTrace,
    CodingSpec,
    GILBERT_ELLIOTT_PRESETS,
    GilbertElliottLoss,
    GilbertElliottSampler,
    TracePolicy,
    UnreliableChannel,
    make_loss_sampler,
)
from repro.wsn.link import sensor_link, uplink


def _result_fields(result):
    """Every field, elapsed_s compared exactly (dataclass equality)."""
    return result


def _pair(seed, loss, arq=None, coding=None, link=None):
    """Same spec, same seed: one kernel channel, one reference channel.

    ``loss`` may be a rate or a zero-arg factory — stateful models
    (Gilbert-Elliott) must NOT be shared between the two channels.
    """
    link = link or sensor_link()

    def build(vectorize):
        return UnreliableChannel(link, loss=loss() if callable(loss) else loss,
                                 arq=arq, coding=coding,
                                 rng=np.random.default_rng(seed),
                                 vectorize=vectorize)
    return build(True), build(False)


def _assert_transmits_identical(vec, ref, payloads):
    for payload in payloads:
        a = vec.transmit(payload)
        b = ref.transmit(payload)
        assert _result_fields(a) == _result_fields(b)
    # Both channels must leave their RNG streams in the same state
    # relative to future draws: one more transmit each still agrees.
    assert _result_fields(vec.transmit(64)) == _result_fields(ref.transmit(64))


# ----------------------------------------------------------------------
# Sampler layer: verdicts draw-for-draw against the scalar models
# ----------------------------------------------------------------------
class TestSamplerBitIdentity:
    @given(rate=st.floats(0.01, 0.95), seed=st.integers(0, 2 ** 16),
           n=st.integers(1, 600))
    @settings(max_examples=40, deadline=None)
    def test_bernoulli_verdicts_match_scalar_draws(self, rate, seed, n):
        sampler = BernoulliSampler(BernoulliLoss(rate),
                                   np.random.default_rng(seed))
        model, rng = BernoulliLoss(rate), np.random.default_rng(seed)
        got = [bool(v) for v in sampler.peek(n)]
        want = [model.frame_lost(rng) for _ in range(n)]
        assert got == want

    @given(p_gb=st.floats(0.01, 0.9), p_bg=st.floats(0.01, 0.9),
           loss_g=st.floats(0.001, 0.5), loss_b=st.floats(0.1, 0.95),
           seed=st.integers(0, 2 ** 16), n=st.integers(1, 600))
    @settings(max_examples=40, deadline=None)
    def test_gilbert_elliott_verdicts_match_scalar_draws(
            self, p_gb, p_bg, loss_g, loss_b, seed, n):
        params = dict(p_good_to_bad=p_gb, p_bad_to_good=p_bg,
                      loss_good=loss_g, loss_bad=loss_b)
        sampler = GilbertElliottSampler(GilbertElliottLoss(**params),
                                        np.random.default_rng(seed))
        model, rng = GilbertElliottLoss(**params), np.random.default_rng(seed)
        got = [bool(v) for v in sampler.peek(n)]
        want = [model.frame_lost(rng) for _ in range(n)]
        assert got == want

    @pytest.mark.parametrize("preset", sorted(GILBERT_ELLIOTT_PRESETS))
    def test_presets_match_across_block_boundaries(self, preset):
        params = GILBERT_ELLIOTT_PRESETS[preset]
        sampler = GilbertElliottSampler(GilbertElliottLoss(**params),
                                        np.random.default_rng(7))
        model, rng = GilbertElliottLoss(**params), np.random.default_rng(7)
        # Consume in ragged chunks so refills land mid-burst.
        for chunk in (1, 3, 511, 512, 513, 1000, 2048):
            got = [bool(v) for v in sampler.peek(chunk)[:chunk]]
            sampler.advance(chunk)
            want = [model.frame_lost(rng) for _ in range(chunk)]
            assert got == want

    def test_interleaved_take_peek_reset_matches_scalar(self):
        params = GILBERT_ELLIOTT_PRESETS["noisy_office"]
        sampler = GilbertElliottSampler(GilbertElliottLoss(**params),
                                        np.random.default_rng(3))
        model, rng = GilbertElliottLoss(**params), np.random.default_rng(3)
        got, want = [], []
        for round_no in range(6):
            got.extend(bool(v) for v in sampler.peek(40))
            sampler.advance(40)
            want.extend(model.frame_lost(rng) for _ in range(40))
            got.append(sampler.take())
            want.append(model.frame_lost(rng))
            sampler.reset()
            model.reset()
        assert got == want

    def test_factory_gates_unsupported_models(self):
        rng = np.random.default_rng(0)
        assert make_loss_sampler(None, rng) is None
        assert make_loss_sampler(BernoulliLoss(0.0), rng) is None
        assert make_loss_sampler(BernoulliLoss(0.3), rng) is not None
        assert make_loss_sampler(BernoulliLoss(0.3), rng,
                                 jitter_s=0.001) is None
        assert make_loss_sampler(object(), rng) is None


# ----------------------------------------------------------------------
# pin/position/rewind: the trace re-recording API (PR 9)
# ----------------------------------------------------------------------
class TestSamplerRewindPin:
    def _samplers(self):
        return [
            BernoulliSampler(BernoulliLoss(0.3), np.random.default_rng(5)),
            GilbertElliottSampler(
                GilbertElliottLoss(
                    **GILBERT_ELLIOTT_PRESETS["noisy_office"]),
                np.random.default_rng(5)),
        ]

    def test_position_counts_consumed_verdicts(self):
        for sampler in self._samplers():
            assert sampler.position == 0
            sampler.peek(10)
            assert sampler.position == 0     # peeking never consumes
            sampler.advance(7)
            assert sampler.position == 7
            sampler.take()
            assert sampler.position == 8

    def test_rewind_replays_identical_verdicts(self):
        for sampler in self._samplers():
            first = [bool(v) for v in sampler.peek(200)[:200]]
            sampler.advance(200)
            sampler.pin(60)
            sampler.rewind(60)
            assert sampler.position == 60
            assert [bool(v) for v in sampler.peek(140)[:140]] == first[60:]

    def test_pin_survives_compaction(self):
        """Refills compact consumed verdicts away — but never past the
        pin, so a later rewind to the pinned offset stays legal."""
        for sampler in self._samplers():
            sampler.peek(50)
            sampler.advance(50)
            sampler.pin(20)
            for _ in range(40):
                sampler.peek(600)
                sampler.advance(600)
            sampler.rewind(20)
            assert sampler.position == 20

    def test_rewind_before_retained_origin_raises(self):
        for sampler in self._samplers():
            sampler.peek(50)
            sampler.advance(50)
            for _ in range(40):   # unpinned compaction drops history
                sampler.peek(600)
                sampler.advance(600)
            with pytest.raises(ValueError):
                sampler.rewind(0)

    def test_pin_beyond_consumed_raises(self):
        for sampler in self._samplers():
            sampler.peek(10)
            sampler.advance(10)
            with pytest.raises(ValueError):
                sampler.pin(11)

    def test_rewind_then_reconsume_continues_the_same_stream(self):
        """Externally, rewind + re-consume is a no-op: future draws
        continue the chain exactly where an un-rewound twin's do —
        the property Gilbert-Elliott needs its state re-sync for."""
        for sampler, twin in zip(self._samplers(), self._samplers()):
            for s in (sampler, twin):
                s.peek(200)
                s.advance(200)
            sampler.pin(90)
            sampler.rewind(90)
            sampler.advance(110)
            sampler.pin(None)
            got = [bool(v) for v in sampler.peek(700)[:700]]
            want = [bool(v) for v in twin.peek(700)[:700]]
            assert got == want

    def test_gilbert_elliott_reset_releases_pin(self):
        """A chain reset re-derives buffered verdicts from GOOD, so the
        retained pre-reset verdicts a rewind would replay are invalid.
        (Bernoulli verdicts are i.i.d. — reset keeps them, and the pin.)"""
        sampler = self._samplers()[1]
        sampler.peek(50)
        sampler.advance(50)
        sampler.pin(10)
        sampler.model.reset()
        sampler.reset()
        sampler.peek(50)
        sampler.advance(50)
        with pytest.raises(ValueError):
            sampler.rewind(10)   # pre-reset offsets are gone


# ----------------------------------------------------------------------
# Channel layer: batched pricing vs the per-frame reference
# ----------------------------------------------------------------------
CODINGS = [None, CodingSpec(parity_frames=2),
           CodingSpec(parity_frames=2, arq_fallback=True)]


class TestBatchedPricingBitIdentity:
    @given(rate=st.floats(0.05, 0.7), seed=st.integers(0, 2 ** 16),
           retries=st.integers(0, 3),
           payload=st.sampled_from([4, 60, 300, 1200]),
           coding_idx=st.integers(0, len(CODINGS) - 1))
    @settings(max_examples=30, deadline=None)
    def test_bernoulli_live_transmits(self, rate, seed, retries, payload,
                                      coding_idx):
        vec, ref = _pair(seed, rate, arq=ARQConfig(max_retries=retries),
                         coding=CODINGS[coding_idx])
        _assert_transmits_identical(vec, ref, [payload] * 30)

    @given(preset=st.sampled_from(sorted(GILBERT_ELLIOTT_PRESETS)),
           seed=st.integers(0, 2 ** 16), retries=st.integers(0, 2),
           payload=st.sampled_from([4, 300, 1200]),
           coding_idx=st.integers(0, len(CODINGS) - 1))
    @settings(max_examples=30, deadline=None)
    def test_gilbert_elliott_live_transmits(self, preset, seed, retries,
                                            payload, coding_idx):
        vec, ref = _pair(
            seed,
            lambda: GilbertElliottLoss(**GILBERT_ELLIOTT_PRESETS[preset]),
            arq=ARQConfig(max_retries=retries), coding=CODINGS[coding_idx])
        _assert_transmits_identical(vec, ref, [payload] * 30)

    @given(rate=st.floats(0.05, 0.6), seed=st.integers(0, 2 ** 16),
           transmits=st.integers(0, 200),
           chunk=st.sampled_from([None, 1, 7, 64]))
    @settings(max_examples=30, deadline=None)
    def test_recorded_traces_match_reference(self, rate, seed, transmits,
                                             chunk):
        policy = TracePolicy(chunk=chunk) if chunk else TracePolicy()
        vec, ref = _pair(seed, rate, arq=ARQConfig(max_retries=1))
        trace_v = vec.record_trace(300, transmits, policy=policy)
        trace_r = ref.record_trace(300, transmits, policy=policy)
        entries_v = [trace_v.next() for _ in range(transmits)]
        entries_r = [trace_r.next() for _ in range(transmits)]
        assert [_result_fields(e) for e in entries_v] \
            == [_result_fields(e) for e in entries_r]

    def test_coded_chunked_trace_matches_reference_on_uplink(self):
        for coding in CODINGS[1:]:
            vec, ref = _pair(11, 0.2, arq=ARQConfig(max_retries=1),
                             coding=coding, link=uplink())
            trace_v = vec.record_trace(5000, 150,
                                       policy=TracePolicy(chunk=16))
            trace_r = ref.record_trace(5000, 150)
            fields_v = [_result_fields(trace_v.next()) for _ in range(150)]
            fields_r = [_result_fields(trace_r.next()) for _ in range(150)]
            assert fields_v == fields_r

    def test_live_then_record_then_live_shares_one_stream(self):
        """Mixing live transmits, batch recording and resets must keep
        the kernel channel on the reference channel's RNG stream."""
        vec, ref = _pair(
            5,
            lambda: GilbertElliottLoss(
                **GILBERT_ELLIOTT_PRESETS["802154_indoor"]),
            arq=ARQConfig(max_retries=2))
        assert _result_fields(vec.transmit(300)) \
            == _result_fields(ref.transmit(300))
        batch_v = list(vec.transmit_batch(120, 25))
        batch_r = [ref.transmit(120) for _ in range(25)]
        assert [_result_fields(r) for r in batch_v] \
            == [_result_fields(r) for r in batch_r]
        vec.reset()
        ref.reset()
        _assert_transmits_identical(vec, ref, [300, 120, 4, 1200])


# ----------------------------------------------------------------------
# TracePolicy semantics
# ----------------------------------------------------------------------
class TestTracePolicy:
    def test_defaults_auto_chunk_past_threshold(self):
        policy = TracePolicy()
        assert policy.chunk_for(4096) is None
        assert policy.chunk_for(4097) == 1024

    def test_explicit_chunk_wins(self):
        assert TracePolicy(chunk=7).chunk_for(10) == 7
        assert TracePolicy(chunk=7).chunk_for(100000) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            TracePolicy(chunk=0)
        with pytest.raises(ValueError):
            TracePolicy(auto_threshold=-1)

    def test_spec_carries_policy_into_channel(self):
        spec = ChannelSpec(loss=0.1, trace=TracePolicy(chunk=5))
        channel = spec.build(sensor_link(), np.random.default_rng(0))
        assert isinstance(channel.record_trace(100, 20),
                          ChunkedChannelTrace)
        plain = ChannelSpec(loss=0.1).build(sensor_link(),
                                            np.random.default_rng(0))
        assert isinstance(plain.record_trace(100, 20), ChannelTrace)


# ----------------------------------------------------------------------
# Engine level: an unfused lossy run must not notice the kernel
# ----------------------------------------------------------------------
class TestEngineBitIdentity:
    def _run(self, vectorize):
        from repro.core import (EdgeTrainingScheduler, OrcoDCSConfig,
                                OrcoDCSFramework,
                                ResilientOrchestrationPolicy)
        spec = ChannelSpec(loss=0.15, arq=ARQConfig(max_retries=1),
                           vectorize=vectorize)
        scheduler = EdgeTrainingScheduler(
            "round_robin", rng=np.random.default_rng(0), engine="event",
            channels=spec, segment_batching=False,
            resilience=ResilientOrchestrationPolicy(recovery="arq"))
        for index in range(3):
            config = OrcoDCSConfig(input_dim=16, latent_dim=4, seed=index,
                                   noise_sigma=0.05, batch_size=8)
            data = np.random.default_rng(100 + index).random((32, 16))
            scheduler.add_cluster(f"c{index}", OrcoDCSFramework(config),
                                  data, batch_size=8)
        report = scheduler.run(rounds_per_cluster=12)
        return scheduler, report

    def test_unfused_lossy_run_identical_with_and_without_kernel(self):
        fast, fast_report = self._run(vectorize=True)
        slow, slow_report = self._run(vectorize=False)
        assert fast_report.makespan_s == slow_report.makespan_s
        assert fast_report.completion_times == slow_report.completion_times
        assert fast_report.failed_rounds == slow_report.failed_rounds
        assert fast_report.energy_j == slow_report.energy_j
        for c_f, c_s in zip(fast.clusters, slow.clusters):
            assert c_f.trainer.clock_s == c_s.trainer.clock_s
            assert c_f.trainer.ledger.by_kind() == c_s.trainer.ledger.by_kind()
            assert np.array_equal(c_f.history.times, c_s.history.times)
