"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn
from repro.cs import from_dct, to_dct
from repro.datasets import denormalize_rounds, normalized_rounds
from repro.nn.tensor import Tensor
from repro.wsn.aggregation import AggregationTree, TDMASchedule, hybrid_encode

finite_floats = st.floats(min_value=-50, max_value=50,
                          allow_nan=False, allow_infinity=False)


def small_arrays(max_side=6):
    shapes = st.tuples(st.integers(1, max_side), st.integers(1, max_side))
    return hnp.arrays(np.float64, shapes, elements=finite_floats)


@st.composite
def random_trees(draw, max_nodes=20):
    """Random rooted trees as parent maps (node 0 is the root)."""
    count = draw(st.integers(min_value=1, max_value=max_nodes))
    parent = {0: None}
    for node in range(1, count):
        parent[node] = draw(st.integers(min_value=0, max_value=node - 1))
    return AggregationTree(parent)


class TestAutogradProperties:
    @given(small_arrays(), small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_addition_gradient_is_ones(self, a, b):
        if a.shape != b.shape:
            return
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta + tb).sum().backward()
        assert np.allclose(ta.grad, 1.0)
        assert np.allclose(tb.grad, 1.0)

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_sum_of_parts_matches_total(self, a):
        t = Tensor(a)
        assert np.allclose(t.sum(axis=0).data.sum(), a.sum())

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_relu_output_nonnegative_grad_binary(self, a):
        t = Tensor(a, requires_grad=True)
        out = t.relu()
        assert (out.data >= 0).all()
        out.sum().backward()
        assert set(np.unique(t.grad)).issubset({0.0, 1.0})

    @given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_matmul_grad_shapes(self, m, k, n):
        rng = np.random.default_rng(0)
        a = Tensor(rng.standard_normal((m, k)), requires_grad=True)
        b = Tensor(rng.standard_normal((k, n)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (m, k)
        assert b.grad.shape == (k, n)

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_numeric_gradient_of_tanh_square(self, a):
        t = Tensor(a, requires_grad=True)
        (t.tanh() ** 2).sum().backward()
        expected = 2 * np.tanh(a) * (1 - np.tanh(a) ** 2)
        assert np.allclose(t.grad, expected, atol=1e-10)


class TestLossProperties:
    @given(small_arrays(), st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=40, deadline=None)
    def test_huber_between_zero_and_half_mse(self, a, delta):
        target = np.zeros_like(a)
        huber = nn.HuberLoss(delta)(Tensor(a), target).item()
        half_mse = 0.5 * float(np.mean(a ** 2))
        scaled_l1 = delta * float(np.mean(np.abs(a)))
        assert huber >= 0
        assert huber <= half_mse + 1e-9
        assert huber <= scaled_l1 + 1e-9

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_losses_zero_iff_exact(self, a):
        for loss in (nn.MSELoss(), nn.L1Loss(), nn.HuberLoss(1.0)):
            assert loss(Tensor(a), a).item() == 0.0

    @given(st.integers(2, 16), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_cross_entropy_lower_bounded_by_zero(self, classes, batch):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.standard_normal((batch, classes)))
        targets = rng.integers(0, classes, batch)
        assert nn.CrossEntropyLoss()(logits, targets).item() >= 0


class TestDCTProperties:
    @given(hnp.arrays(np.float64, st.integers(2, 64), elements=finite_floats))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_identity(self, x):
        assert np.allclose(from_dct(to_dct(x)), x, atol=1e-8)

    @given(hnp.arrays(np.float64, st.integers(2, 64), elements=finite_floats))
    @settings(max_examples=40, deadline=None)
    def test_parseval_energy(self, x):
        assert abs(np.linalg.norm(to_dct(x)) - np.linalg.norm(x)) < 1e-8


class TestNormalizationProperties:
    @given(hnp.arrays(np.float64, st.tuples(st.integers(1, 8), st.integers(1, 8)),
                      elements=finite_floats))
    @settings(max_examples=40, deadline=None)
    def test_bounds_and_inverse(self, rounds):
        scaled, low, high = normalized_rounds(rounds)
        assert scaled.min() >= -1e-12
        assert scaled.max() <= 1 + 1e-12
        assert np.allclose(denormalize_rounds(scaled, low, high), rounds,
                           atol=1e-8)


class TestTreeProperties:
    @given(random_trees())
    @settings(max_examples=50, deadline=None)
    def test_subtree_sizes_sum_over_children(self, tree):
        for node in tree.nodes:
            expected = 1 + sum(tree.subtree_size(c)
                               for c in tree.children[node])
            assert tree.subtree_size(node) == expected
        assert tree.subtree_size(tree.root) == len(tree.nodes)

    @given(random_trees())
    @settings(max_examples=50, deadline=None)
    def test_post_order_is_valid_aggregation_order(self, tree):
        order = tree.post_order()
        assert sorted(order) == sorted(tree.nodes)
        position = {n: i for i, n in enumerate(order)}
        for node in tree.nodes:
            for child in tree.children[node]:
                assert position[child] < position[node]

    @given(random_trees())
    @settings(max_examples=50, deadline=None)
    def test_tdma_each_non_root_exactly_once(self, tree):
        schedule = TDMASchedule(tree)
        sent = [n for slot in schedule.slots for n in slot]
        assert sorted(sent) == sorted(n for n in tree.nodes if n != tree.root)
        for slot in schedule.slots:
            receivers = [tree.parent[n] for n in slot]
            assert len(receivers) == len(set(receivers))

    @given(random_trees(), st.integers(1, 8), st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_hybrid_encode_equals_centralized(self, tree, latent_dim, seed):
        rng = np.random.default_rng(seed)
        ids = sorted(tree.nodes)
        readings = {nid: float(rng.standard_normal()) for nid in ids}
        index = {nid: i for i, nid in enumerate(ids)}
        weight = rng.standard_normal((latent_dim, len(ids)))
        latent, sent = hybrid_encode(tree, readings, weight, index)
        stacked = np.array([readings[nid] for nid in ids])
        assert np.allclose(latent, weight @ stacked, atol=1e-9)
        # Nobody ever transmits more than M scalars (the hybrid cap).
        assert all(count <= latent_dim for count in sent.values())
