"""Unit tests for conv/pool primitives and their gradients."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def numeric_grad(func, array, eps=1e-6):
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        array[idx] += eps
        up = func()
        array[idx] -= 2 * eps
        down = func()
        array[idx] += eps
        grad[idx] = (up - down) / (2 * eps)
    return grad


class TestIm2Col:
    def test_shapes(self):
        x = np.arange(2 * 3 * 5 * 5, dtype=float).reshape(2, 3, 5, 5)
        cols = F.im2col_array(x, (3, 3))
        assert cols.shape == (2, 3 * 9, 9)

    def test_stride_and_padding_shapes(self):
        x = np.zeros((1, 1, 6, 6))
        cols = F.im2col_array(x, (3, 3), stride=2, padding=1)
        assert cols.shape == (1, 9, 9)

    def test_known_window_content(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        cols = F.im2col_array(x, (2, 2))
        # First window is the top-left 2x2 block.
        assert np.allclose(cols[0, :, 0], [0, 1, 4, 5])

    def test_col2im_is_adjoint_of_im2col(self):
        # <im2col(x), y> == <x, col2im(y)> for all x, y — the defining
        # property that makes col2im the correct conv gradient.
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 6, 6))
        cols = F.im2col_array(x, (3, 3), stride=2, padding=1)
        y = rng.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        back = F.col2im_array(y, x.shape, (3, 3), stride=2, padding=1)
        rhs = float((x * back).sum())
        assert abs(lhs - rhs) < 1e-9

    def test_output_shape_validation(self):
        with pytest.raises(ValueError):
            F.conv_output_shape(2, 2, (5, 5))


class TestConv2d:
    def test_identity_kernel(self):
        x = Tensor(np.arange(9.0).reshape(1, 1, 3, 3))
        w = Tensor(np.ones((1, 1, 1, 1)))
        out = F.conv2d(x, w)
        assert np.allclose(out.data, x.data)

    def test_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 2, 4, 4)))
        w = Tensor(np.zeros((1, 3, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 2, 4, 4))
        w = rng.standard_normal((3, 2, 2, 2))
        out = F.conv2d(Tensor(x), Tensor(w)).data
        for oc in range(3):
            for i in range(3):
                for j in range(3):
                    expected = (x[0, :, i:i + 2, j:j + 2] * w[oc]).sum()
                    assert abs(out[0, oc, i, j] - expected) < 1e-9

    def test_gradients_numeric(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.standard_normal((2, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 3, 3)) * 0.4, requires_grad=True)
        b = Tensor(rng.standard_normal(3), requires_grad=True)

        def value():
            return float((F.conv2d(Tensor(x.data), Tensor(w.data),
                                   Tensor(b.data), stride=2, padding=1) ** 2)
                         .sum().data)

        (F.conv2d(x, w, b, stride=2, padding=1) ** 2).sum().backward()
        for tensor in (x, w, b):
            approx = numeric_grad(value, tensor.data)
            assert np.allclose(tensor.grad, approx, atol=1e-4)


class TestConvTranspose2d:
    def test_upsamples_spatially(self):
        x = Tensor(np.ones((1, 1, 3, 3)))
        w = Tensor(np.ones((1, 1, 2, 2)))
        out = F.conv_transpose2d(x, w, stride=2)
        assert out.shape == (1, 1, 6, 6)

    def test_inverse_shape_of_conv(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((1, 4, 8, 8))
        down = F.conv2d(Tensor(x), Tensor(rng.standard_normal((6, 4, 3, 3))),
                        stride=2, padding=1)
        up = F.conv_transpose2d(down, Tensor(rng.standard_normal((6, 4, 4, 4))),
                                stride=2, padding=1)
        assert up.shape == (1, 4, 8, 8)

    def test_gradients_numeric(self):
        rng = np.random.default_rng(4)
        x = Tensor(rng.standard_normal((1, 2, 3, 3)), requires_grad=True)
        w = Tensor(rng.standard_normal((2, 2, 2, 2)) * 0.4, requires_grad=True)

        def value():
            return float((F.conv_transpose2d(Tensor(x.data), Tensor(w.data),
                                             stride=2) ** 2).sum().data)

        (F.conv_transpose2d(x, w, stride=2) ** 2).sum().backward()
        for tensor in (x, w):
            approx = numeric_grad(value, tensor.data)
            assert np.allclose(tensor.grad, approx, atol=1e-4)


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        out = F.max_pool2d(x, 2)
        assert np.allclose(out.data, [[[[4.0]]]])

    def test_max_pool_grad_goes_to_argmax(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        assert np.allclose(x.grad, [[[[0, 0], [0, 1]]]])

    def test_avg_pool_values_and_grad(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]), requires_grad=True)
        out = F.avg_pool2d(x, 2)
        assert np.allclose(out.data, [[[[2.5]]]])
        out.sum().backward()
        assert np.allclose(x.grad, np.full((1, 1, 2, 2), 0.25))

    def test_strided_pooling_shape(self):
        x = Tensor(np.zeros((2, 3, 8, 8)))
        assert F.max_pool2d(x, 2).shape == (2, 3, 4, 4)
        assert F.avg_pool2d(x, (2, 2), stride=(4, 4)).shape == (2, 3, 2, 2)


class TestUpsample:
    def test_nearest_repeat(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        out = F.upsample2d(x, 2)
        assert out.shape == (1, 1, 4, 4)
        assert np.allclose(out.data[0, 0, :2, :2], 1.0)

    def test_grad_sums_window(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        F.upsample2d(x, 3).sum().backward()
        assert np.allclose(x.grad, np.full((1, 1, 2, 2), 9.0))

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            F.upsample2d(Tensor(np.zeros((1, 1, 2, 2))), 0)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).standard_normal((4, 7)))
        out = F.softmax(x, axis=1)
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_shift_invariance(self):
        x = np.array([[1.0, 2.0, 3.0]])
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 1000.0)).data
        assert np.allclose(a, b)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(1).standard_normal((3, 5)))
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data))


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_zero_rate_is_identity(self):
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.0, np.random.default_rng(0), training=True)
        assert out is x

    def test_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, rng, training=True)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, np.random.default_rng(0))
