"""Unit tests for Module machinery and individual layers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestModuleMachinery:
    def test_parameter_registration(self):
        dense = nn.Dense(4, 3)
        names = [name for name, _ in dense.named_parameters()]
        assert set(names) == {"weight", "bias"}

    def test_nested_registration(self):
        model = nn.Sequential(nn.Dense(4, 3), nn.ReLU(), nn.Dense(3, 2))
        assert len(model.parameters()) == 4
        names = [name for name, _ in model.named_parameters()]
        assert "0.weight" in names and "2.bias" in names

    def test_num_parameters(self):
        dense = nn.Dense(4, 3)
        assert dense.num_parameters() == 4 * 3 + 3

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dense(2, 2), nn.Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears(self):
        dense = nn.Dense(2, 2)
        out = dense(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert dense.weight.grad is not None
        dense.zero_grad()
        assert dense.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = nn.Sequential(nn.Dense(3, 4), nn.ReLU(), nn.Dense(4, 2))
        b = nn.Sequential(nn.Dense(3, 4), nn.ReLU(), nn.Dense(4, 2))
        b.load_state_dict(a.state_dict())
        x = Tensor(np.random.default_rng(0).standard_normal((2, 3)))
        assert np.allclose(a(x).data, b(x).data)

    def test_load_state_dict_shape_mismatch(self):
        a = nn.Dense(3, 4)
        b = nn.Dense(3, 5)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_load_state_dict_unknown_key(self):
        dense = nn.Dense(2, 2)
        with pytest.raises(KeyError):
            dense.load_state_dict({"nonsense": np.zeros(2)})

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module()(Tensor(np.zeros(1)))


class TestSequential:
    def test_applies_in_order(self):
        model = nn.Sequential(nn.Identity(), nn.ReLU())
        out = model(Tensor(np.array([-1.0, 2.0])))
        assert np.allclose(out.data, [0.0, 2.0])

    def test_len_getitem_append(self):
        model = nn.Sequential(nn.Identity())
        assert len(model) == 1
        model.append(nn.ReLU())
        assert len(model) == 2
        assert isinstance(model[1], nn.ReLU)
        assert len(model.parameters()) == 0

    def test_appended_layer_params_registered(self):
        model = nn.Sequential()
        model.append(nn.Dense(2, 2))
        assert len(model.parameters()) == 2


class TestDense:
    def test_output_shape(self):
        dense = nn.Dense(5, 3, rng=np.random.default_rng(0))
        assert dense(Tensor(np.zeros((7, 5)))).shape == (7, 3)

    def test_no_bias(self):
        dense = nn.Dense(5, 3, bias=False)
        assert dense.bias is None
        assert len(dense.parameters()) == 1

    def test_linear_map_matches_numpy(self):
        dense = nn.Dense(3, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((4, 3))
        expected = x @ dense.weight.data + dense.bias.data
        assert np.allclose(dense(Tensor(x)).data, expected)

    def test_deterministic_with_seeded_rng(self):
        a = nn.Dense(4, 4, rng=np.random.default_rng(42))
        b = nn.Dense(4, 4, rng=np.random.default_rng(42))
        assert np.allclose(a.weight.data, b.weight.data)


class TestConvLayers:
    def test_conv2d_shape(self):
        conv = nn.Conv2D(3, 8, 3, padding=1, rng=np.random.default_rng(0))
        assert conv(Tensor(np.zeros((2, 3, 8, 8)))).shape == (2, 8, 8, 8)

    def test_conv_transpose_shape(self):
        deconv = nn.ConvTranspose2D(8, 3, 2, stride=2,
                                    rng=np.random.default_rng(0))
        assert deconv(Tensor(np.zeros((2, 8, 4, 4)))).shape == (2, 3, 8, 8)

    def test_pool_layers(self):
        x = Tensor(np.zeros((1, 2, 8, 8)))
        assert nn.MaxPool2D(2)(x).shape == (1, 2, 4, 4)
        assert nn.AvgPool2D(4)(x).shape == (1, 2, 2, 2)

    def test_upsample_layer(self):
        x = Tensor(np.zeros((1, 2, 4, 4)))
        assert nn.Upsample2D(2)(x).shape == (1, 2, 8, 8)


class TestShapeLayers:
    def test_flatten(self):
        assert nn.Flatten()(Tensor(np.zeros((3, 2, 4)))).shape == (3, 8)

    def test_reshape(self):
        layer = nn.Reshape((2, 2))
        assert layer(Tensor(np.zeros((5, 4)))).shape == (5, 2, 2)


class TestActivationLayers:
    @pytest.mark.parametrize("name,fn", [
        ("relu", lambda x: np.maximum(x, 0)),
        ("sigmoid", lambda x: 1 / (1 + np.exp(-x))),
        ("tanh", np.tanh),
        ("identity", lambda x: x),
    ])
    def test_matches_numpy(self, name, fn):
        layer = nn.make_activation(name)
        x = np.linspace(-2, 2, 7)
        assert np.allclose(layer(Tensor(x)).data, fn(x))

    def test_softmax_layer(self):
        out = nn.Softmax()(Tensor(np.zeros((2, 4))))
        assert np.allclose(out.data, 0.25)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            nn.make_activation("swish9000")

    def test_leaky_relu_layer(self):
        layer = nn.LeakyReLU(0.2)
        assert np.allclose(layer(Tensor(np.array([-1.0]))).data, [-0.2])


class TestDropoutLayer:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)

    def test_eval_passthrough(self):
        layer = nn.Dropout(0.9, rng=np.random.default_rng(0))
        layer.eval()
        x = Tensor(np.ones((4, 4)))
        assert np.allclose(layer(x).data, 1.0)

    def test_train_mode_zeroes_some(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((32, 32))))
        assert (out.data == 0).sum() > 0


class TestBatchNorm:
    def test_1d_normalises_batch(self):
        bn = nn.BatchNorm1d(3)
        x = np.random.default_rng(0).standard_normal((64, 3)) * 5 + 2
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(axis=0), 0, atol=1e-6)
        assert np.allclose(out.std(axis=0), 1, atol=1e-2)

    def test_1d_eval_uses_running_stats(self):
        bn = nn.BatchNorm1d(2, momentum=1.0)
        x = np.random.default_rng(0).standard_normal((128, 2)) * 3 + 1
        bn(Tensor(x))
        bn.eval()
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(axis=0), 0, atol=0.1)

    def test_2d_shapes_and_stats(self):
        bn = nn.BatchNorm2d(4)
        x = np.random.default_rng(0).standard_normal((8, 4, 5, 5)) + 3
        out = bn(Tensor(x)).data
        assert out.shape == x.shape
        assert abs(out.mean()) < 1e-6

    def test_buffers_serialise(self):
        bn = nn.BatchNorm1d(2)
        bn(Tensor(np.random.default_rng(0).standard_normal((16, 2))))
        state = bn.state_dict()
        assert "running_mean" in state
        fresh = nn.BatchNorm1d(2)
        fresh.load_state_dict(state)
        assert np.allclose(fresh._buffers["running_mean"],
                           bn._buffers["running_mean"])
