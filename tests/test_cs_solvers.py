"""Unit tests for sparse-recovery solvers."""

import numpy as np
import pytest

from repro.cs import fista, gaussian_matrix, get_solver, ista, omp, ridge_lstsq


def sparse_problem(m=40, n=80, k=4, seed=0):
    rng = np.random.default_rng(seed)
    A = gaussian_matrix(m, n, rng)
    x = np.zeros(n)
    support = rng.choice(n, k, replace=False)
    x[support] = rng.standard_normal(k) * 3
    return A, x, A @ x


class TestOMP:
    def test_exact_recovery(self):
        A, x, y = sparse_problem()
        result = omp(A, y, sparsity=4)
        assert np.allclose(result.solution, x, atol=1e-8)
        assert result.converged

    def test_residual_decreases_with_budget(self):
        A, x, y = sparse_problem(k=6)
        low = omp(A, y, sparsity=2).residual_norm
        high = omp(A, y, sparsity=6).residual_norm
        assert high <= low + 1e-12

    def test_validation(self):
        A, _, y = sparse_problem()
        with pytest.raises(ValueError):
            omp(A, y, sparsity=0)
        with pytest.raises(ValueError):
            omp(A, y[:-1], sparsity=2)


class TestISTA:
    def test_recovers_support(self):
        A, x, y = sparse_problem()
        result = ista(A, y, lam=0.001, max_iters=3000)
        top = np.argsort(np.abs(result.solution))[-4:]
        assert set(top) == set(np.flatnonzero(x))

    def test_small_lambda_fits_observation(self):
        A, _, y = sparse_problem()
        result = ista(A, y, lam=1e-5, max_iters=4000)
        assert result.residual_norm < 0.3 * np.linalg.norm(y)

    def test_huge_lambda_gives_zero(self):
        A, _, y = sparse_problem()
        result = ista(A, y, lam=1e6, max_iters=50)
        assert np.allclose(result.solution, 0)

    def test_validation(self):
        A, _, y = sparse_problem()
        with pytest.raises(ValueError):
            ista(A, y, lam=-1.0)
        with pytest.raises(ValueError):
            ista(A, y, max_iters=0)


class TestFISTA:
    def test_agrees_with_ista_solution(self):
        A, _, y = sparse_problem()
        slow = ista(A, y, lam=0.01, max_iters=5000, tol=1e-10)
        fast = fista(A, y, lam=0.01, max_iters=5000, tol=1e-10)
        assert np.allclose(slow.solution, fast.solution, atol=1e-3)

    def test_converges_in_fewer_iterations(self):
        A, _, y = sparse_problem(k=6, seed=3)
        slow = ista(A, y, lam=0.01, max_iters=5000, tol=1e-8)
        fast = fista(A, y, lam=0.01, max_iters=5000, tol=1e-8)
        assert fast.iterations < slow.iterations


class TestRidge:
    def test_interpolates_underdetermined(self):
        A, _, y = sparse_problem()
        result = ridge_lstsq(A, y, alpha=1e-10)
        assert result.residual_norm < 1e-6

    def test_alpha_validation(self):
        A, _, y = sparse_problem()
        with pytest.raises(ValueError):
            ridge_lstsq(A, y, alpha=-1.0)


class TestRegistry:
    def test_lookup(self):
        assert get_solver("omp") is omp
        with pytest.raises(KeyError):
            get_solver("amp")
