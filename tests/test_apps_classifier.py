"""Unit tests for the follow-up CNN classifier."""

import numpy as np
import pytest

from repro.apps import ImageClassifier, build_simple_cnn
from repro.nn import Conv2D
from repro.nn.tensor import Tensor


def easy_task(count=120, size=8, seed=0):
    """Two trivially separable classes: bright vs dark images."""
    rng = np.random.default_rng(seed)
    labels = np.arange(count) % 2
    images = np.zeros((count, size, size))
    images[labels == 0] = rng.random((int(count / 2), size, size)) * 0.3
    images[labels == 1] = 0.7 + rng.random((count - int(count / 2), size, size)) * 0.3
    return images, labels


class TestArchitecture:
    def test_two_conv_layers(self):
        model = build_simple_cnn((1, 28, 28), 10, np.random.default_rng(0))
        convs = [l for l in model.layers if isinstance(l, Conv2D)]
        assert len(convs) == 2

    def test_logit_shape(self):
        model = build_simple_cnn((3, 32, 32), 43, np.random.default_rng(0))
        out = model(Tensor(np.random.default_rng(1).random((2, 3, 32, 32))))
        assert out.shape == (2, 43)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            build_simple_cnn((1, 30, 30), 10)


class TestInputHandling:
    def test_flat_rows_grayscale(self):
        clf = ImageClassifier((1, 8, 8), 2)
        nchw = clf._to_nchw(np.zeros((4, 64)))
        assert nchw.shape == (4, 1, 8, 8)

    def test_flat_rows_color(self):
        clf = ImageClassifier((3, 8, 8), 2)
        nchw = clf._to_nchw(np.zeros((4, 192)))
        assert nchw.shape == (4, 3, 8, 8)

    def test_hw_images(self):
        clf = ImageClassifier((1, 8, 8), 2)
        assert clf._to_nchw(np.zeros((4, 8, 8))).shape == (4, 1, 8, 8)

    def test_nhwc_images(self):
        clf = ImageClassifier((3, 8, 8), 2)
        assert clf._to_nchw(np.zeros((4, 8, 8, 3))).shape == (4, 3, 8, 8)

    def test_nchw_passthrough(self):
        clf = ImageClassifier((3, 8, 8), 2)
        assert clf._to_nchw(np.zeros((4, 3, 8, 8))).shape == (4, 3, 8, 8)

    def test_unknown_rank_rejected(self):
        clf = ImageClassifier((1, 8, 8), 2)
        with pytest.raises(ValueError):
            clf._to_nchw(np.zeros((2, 2, 2, 2, 2)))


class TestTraining:
    def test_learns_easy_task(self):
        images, labels = easy_task()
        clf = ImageClassifier((1, 8, 8), 2, learning_rate=5e-3, seed=0)
        history = clf.fit(images[:80], labels[:80], images[80:], labels[80:],
                          epochs=4)
        assert history.final_accuracy > 0.9

    def test_history_fields_aligned(self):
        images, labels = easy_task(40)
        clf = ImageClassifier((1, 8, 8), 2, seed=0)
        history = clf.fit(images[:30], labels[:30], images[30:], labels[30:],
                          epochs=3)
        assert len(history.epochs) == len(history.test_accuracy) \
            == len(history.test_loss) == len(history.train_loss) == 3

    def test_eval_epochs_subset(self):
        images, labels = easy_task(40)
        clf = ImageClassifier((1, 8, 8), 2, seed=0)
        history = clf.fit(images[:30], labels[:30], images[30:], labels[30:],
                          epochs=4, eval_epochs=[2, 4])
        assert history.epochs == [2, 4]

    def test_predict_labels_in_range(self):
        images, labels = easy_task(20)
        clf = ImageClassifier((1, 8, 8), 2, seed=0)
        preds = clf.predict(images)
        assert preds.shape == (20,)
        assert set(preds.tolist()) <= {0, 1}

    def test_evaluate_returns_accuracy_and_loss(self):
        images, labels = easy_task(30)
        clf = ImageClassifier((1, 8, 8), 2, seed=0)
        accuracy, loss = clf.evaluate(images, labels)
        assert 0.0 <= accuracy <= 1.0
        assert loss > 0

    def test_epochs_validation(self):
        images, labels = easy_task(10)
        clf = ImageClassifier((1, 8, 8), 2)
        with pytest.raises(ValueError):
            clf.fit(images, labels, images, labels, epochs=0)

    def test_history_empty_guard(self):
        from repro.apps import ClassifierHistory
        with pytest.raises(ValueError):
            _ = ClassifierHistory().final_accuracy
