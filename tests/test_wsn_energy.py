"""Unit tests for the first-order radio energy model and batteries."""

import numpy as np
import pytest

from repro.wsn import Battery, BatteryDepletedError, RadioEnergyModel


class TestRadioModel:
    def test_tx_monotone_in_bits(self):
        radio = RadioEnergyModel()
        assert radio.tx_energy(2000, 10) > radio.tx_energy(1000, 10)

    def test_tx_monotone_in_distance(self):
        radio = RadioEnergyModel()
        assert radio.tx_energy(1000, 50) > radio.tx_energy(1000, 10)

    def test_rx_independent_of_distance(self):
        radio = RadioEnergyModel()
        assert radio.rx_energy(1000) == radio.electronics_j_per_bit * 1000

    def test_crossover_distance_value(self):
        radio = RadioEnergyModel()
        expected = np.sqrt(radio.amp_free_space_j_per_bit_m2
                           / radio.amp_multipath_j_per_bit_m4)
        assert abs(radio.crossover_distance_m - expected) < 1e-9
        assert 80 < radio.crossover_distance_m < 95   # the canonical ~87.7 m

    def test_continuous_at_crossover(self):
        radio = RadioEnergyModel()
        d0 = radio.crossover_distance_m
        below = radio.tx_energy(1000, d0 * (1 - 1e-9))
        above = radio.tx_energy(1000, d0 * (1 + 1e-9))
        assert abs(below - above) / below < 1e-6

    def test_multipath_dominates_far(self):
        radio = RadioEnergyModel()
        near_slope = radio.tx_energy(1, 20) - radio.tx_energy(1, 10)
        far_slope = radio.tx_energy(1, 200) - radio.tx_energy(1, 190)
        assert far_slope > near_slope

    def test_validation(self):
        radio = RadioEnergyModel()
        with pytest.raises(ValueError):
            radio.tx_energy(-1, 10)
        with pytest.raises(ValueError):
            radio.rx_energy(-1)


class TestBattery:
    def test_drain_tracks_consumed(self):
        battery = Battery(2.0)
        battery.drain(0.5)
        assert abs(battery.remaining_j - 1.5) < 1e-12
        assert abs(battery.consumed_j - 0.5) < 1e-12
        assert abs(battery.fraction_remaining - 0.75) < 1e-12

    def test_overdrain_raises(self):
        battery = Battery(1.0)
        with pytest.raises(BatteryDepletedError):
            battery.drain(1.5)

    def test_negative_drain_rejected(self):
        with pytest.raises(ValueError):
            Battery(1.0).drain(-0.1)

    def test_recharge(self):
        battery = Battery(1.0)
        battery.drain(0.7)
        battery.recharge()
        assert battery.remaining_j == 1.0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Battery(0.0)
