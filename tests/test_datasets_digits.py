"""Unit tests for the synthetic digit dataset."""

import numpy as np
import pytest

from repro.datasets import (
    DigitConfig,
    flatten_images,
    generate_digits,
    glyph_bitmap,
    render_digit,
    unflatten_images,
)


class TestGlyphs:
    def test_bitmap_shape(self):
        for digit in range(10):
            assert glyph_bitmap(digit).shape == (7, 5)

    def test_bitmaps_distinct(self):
        flat = [tuple(glyph_bitmap(d).ravel().tolist()) for d in range(10)]
        assert len(set(flat)) == 10

    def test_invalid_digit(self):
        with pytest.raises(ValueError):
            glyph_bitmap(10)


class TestRender:
    def test_shape_and_range(self):
        img = render_digit(5, np.random.default_rng(0))
        assert img.shape == (28, 28)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_has_ink(self):
        img = render_digit(8, np.random.default_rng(0))
        assert img.max() > 0.5
        assert img.mean() < 0.5      # mostly dark background

    def test_randomised_instances_differ(self):
        rng = np.random.default_rng(0)
        a = render_digit(3, rng)
        b = render_digit(3, rng)
        assert not np.allclose(a, b)

    def test_custom_config(self):
        config = DigitConfig(image_size=20, noise_std=0.0, blur_sigma=0.0)
        img = render_digit(1, np.random.default_rng(0), config)
        assert img.shape == (20, 20)


class TestGenerate:
    def test_shapes_and_types(self):
        images, labels = generate_digits(30, np.random.default_rng(0))
        assert images.shape == (30, 28, 28)
        assert labels.shape == (30,)
        assert labels.dtype == np.int64

    def test_balanced_label_distribution(self):
        _, labels = generate_digits(100, np.random.default_rng(0))
        counts = np.bincount(labels, minlength=10)
        assert np.all(counts == 10)

    def test_unbalanced_mode(self):
        _, labels = generate_digits(50, np.random.default_rng(0),
                                    balanced=False)
        assert labels.min() >= 0 and labels.max() < 10

    def test_deterministic_with_seed(self):
        a_images, a_labels = generate_digits(10, np.random.default_rng(7))
        b_images, b_labels = generate_digits(10, np.random.default_rng(7))
        assert np.allclose(a_images, b_images)
        assert np.array_equal(a_labels, b_labels)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            generate_digits(0)

    def test_classes_are_visually_distinct(self):
        # Mean images per class should differ pairwise — if the renderer
        # collapsed classes the classifier experiments would be vacuous.
        rng = np.random.default_rng(0)
        images, labels = generate_digits(200, rng)
        means = np.stack([images[labels == d].mean(axis=0) for d in range(10)])
        for a in range(10):
            for b in range(a + 1, 10):
                assert np.abs(means[a] - means[b]).mean() > 0.01


class TestFlatten:
    def test_round_trip(self):
        images, _ = generate_digits(5, np.random.default_rng(0))
        rows = flatten_images(images)
        assert rows.shape == (5, 784)
        restored = unflatten_images(rows, (28, 28))
        assert np.allclose(images, restored)

    def test_color_images(self):
        images = np.zeros((3, 8, 8, 3))
        rows = flatten_images(images)
        assert rows.shape == (3, 192)
        assert unflatten_images(rows, (8, 8, 3)).shape == (3, 8, 8, 3)
