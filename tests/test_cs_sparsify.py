"""Unit tests for the DCT sparsifying basis and compressibility helpers."""

import numpy as np
import pytest

from repro.cs import (
    best_k_term_error,
    dct_basis,
    effective_sparsity,
    from_dct,
    hard_threshold,
    to_dct,
)


class TestDCTBasis:
    def test_orthonormal(self):
        psi = dct_basis(16)
        assert np.allclose(psi.T @ psi, np.eye(16), atol=1e-10)

    def test_synthesis_matches_idct(self):
        psi = dct_basis(8)
        s = np.random.default_rng(0).standard_normal(8)
        assert np.allclose(psi @ s, from_dct(s))

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            dct_basis(0)


class TestTransforms:
    def test_round_trip(self):
        x = np.random.default_rng(0).standard_normal(32)
        assert np.allclose(from_dct(to_dct(x)), x)

    def test_energy_preserved(self):
        x = np.random.default_rng(1).standard_normal(32)
        assert abs(np.linalg.norm(to_dct(x)) - np.linalg.norm(x)) < 1e-10

    def test_constant_signal_single_coefficient(self):
        coeffs = to_dct(np.ones(16))
        assert abs(coeffs[0]) > 1.0
        assert np.allclose(coeffs[1:], 0, atol=1e-12)

    def test_batched_last_axis(self):
        x = np.random.default_rng(2).standard_normal((4, 16))
        assert np.allclose(from_dct(to_dct(x)), x)


class TestThreshold:
    def test_keeps_largest(self):
        coeffs = np.array([1.0, -5.0, 2.0, 0.5])
        out = hard_threshold(coeffs, 2)
        assert np.allclose(out, [0, -5, 2, 0])

    def test_keep_validation(self):
        with pytest.raises(ValueError):
            hard_threshold(np.ones(4), 0)
        with pytest.raises(ValueError):
            hard_threshold(np.ones(4), 5)


class TestCompressibility:
    def test_smooth_beats_noise(self):
        rng = np.random.default_rng(0)
        t = np.linspace(0, 1, 128)
        smooth = np.sin(2 * np.pi * t) + 0.5 * np.cos(6 * np.pi * t)
        noise = rng.standard_normal(128)
        assert best_k_term_error(smooth, 8) < best_k_term_error(noise, 8)

    def test_zero_signal(self):
        assert best_k_term_error(np.zeros(16), 4) == 0.0

    def test_effective_sparsity_smooth_signal_small(self):
        t = np.linspace(0, 1, 128)
        smooth = np.sin(2 * np.pi * t)
        assert effective_sparsity(smooth, 0.99) < 16

    def test_effective_sparsity_bounds(self):
        x = np.random.default_rng(0).standard_normal(64)
        k = effective_sparsity(x, 0.99)
        assert 1 <= k <= 64

    def test_effective_sparsity_validation(self):
        with pytest.raises(ValueError):
            effective_sparsity(np.ones(4), 0.0)
