"""Unit tests for the experiment harness plumbing."""

import json

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, digits_workload, signs_workload
from repro.experiments.common import (
    ExperimentResult,
    epochs_for_scale,
    scaled,
    workload_by_name,
)


class TestExperimentResult:
    def test_series_alignment_enforced(self):
        result = ExperimentResult("x", "desc")
        with pytest.raises(ValueError):
            result.add_series("s", [1, 2], [1])

    def test_checks_recorded(self):
        result = ExperimentResult("x", "desc")
        assert result.all_checks_pass
        result.check("good", True)
        result.check("bad", False)
        assert not result.all_checks_pass
        assert result.checks == {"good": True, "bad": False}

    def test_format_report_contains_everything(self):
        result = ExperimentResult("My Figure", "does things")
        result.add_row(framework="OrcoDCS", value=1.5)
        result.add_series("curve", [1, 2], [0.5, 0.25], "epoch", "loss")
        result.summary["headline"] = 10.0
        result.check("ordering holds", True)
        text = result.format_report()
        assert "My Figure" in text
        assert "OrcoDCS" in text
        assert "curve" in text
        assert "headline" in text
        assert "[PASS] ordering holds" in text

    def test_save_json_roundtrip(self, tmp_path):
        result = ExperimentResult("x", "desc")
        result.add_series("s", [1], [2])
        result.summary["v"] = np.float64(3.5)
        path = str(tmp_path / "out" / "x.json")
        result.save_json(path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["series"]["s"]["y"] == [2.0]
        assert payload["summary"]["v"] == 3.5


class TestWorkloads:
    def test_digits_workload_shapes(self):
        workload = digits_workload(scale=0.02, seed=0)
        assert workload.train_images.shape[1:] == (28, 28)
        assert workload.input_dim == 784
        assert workload.train_rows.shape[1] == 784
        assert workload.num_classes == 10
        assert workload.default_latent == 128

    def test_signs_workload_shapes(self):
        workload = signs_workload(scale=0.02, seed=0)
        assert workload.train_images.shape[1:] == (32, 32, 3)
        assert workload.input_dim == 3072
        assert workload.num_classes == 43
        assert workload.default_latent == 512

    def test_scale_shrinks_counts(self):
        small = digits_workload(scale=0.02)
        large = digits_workload(scale=0.05)
        assert len(small.train_images) < len(large.train_images)

    def test_workload_by_name(self):
        assert workload_by_name("digits", 0.02).name == "digits"
        with pytest.raises(ValueError):
            workload_by_name("imagenet")


class TestScaling:
    def test_scaled_floor(self):
        assert scaled(100, 0.001, minimum=8) == 8
        assert scaled(100, 0.5) == 50

    def test_epochs_for_scale(self):
        assert epochs_for_scale(10, 1.0) == 10
        assert epochs_for_scale(10, 0.1) == 2
        assert epochs_for_scale(10, 0.4) == 8


class TestRegistry:
    def test_all_figures_registered(self):
        expected = {"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
                    "overhead", "finetune", "multicluster", "resilience"}
        assert expected == set(EXPERIMENTS)

    def test_entries_are_callables(self):
        assert all(callable(fn) for fn in EXPERIMENTS.values())


class TestComparisonHelpers:
    def test_common_val_mse_matches_numpy(self):
        from repro.core import OrcoDCSConfig, OrcoDCSFramework
        from repro.experiments.common import common_val_mse

        framework = OrcoDCSFramework(OrcoDCSConfig(input_dim=12, latent_dim=3,
                                                   seed=0))
        rows = np.random.default_rng(0).random((6, 12))
        expected = float(np.mean((framework.reconstruct(rows) - rows) ** 2))
        assert abs(common_val_mse(framework, rows) - expected) < 1e-12

    def test_mse_at_time_step_interpolation(self):
        from repro.experiments.common import mse_at_time

        times = [1.0, 2.0, 3.0]
        mses = [0.5, 0.3, 0.1]
        assert mse_at_time(times, mses, 0.5) == 0.5    # before first point
        assert mse_at_time(times, mses, 2.0) == 0.3    # exact hit
        assert mse_at_time(times, mses, 2.5) == 0.3    # between points
        assert mse_at_time(times, mses, 99.0) == 0.1   # past the end
        with pytest.raises(ValueError):
            mse_at_time([], [], 1.0)

    def test_train_with_mse_curve_records_per_epoch(self):
        from repro.core import OrcoDCSConfig, OrcoDCSFramework
        from repro.experiments.common import train_with_mse_curve

        framework = OrcoDCSFramework(OrcoDCSConfig(input_dim=12, latent_dim=3,
                                                   seed=0, noise_sigma=0.0))
        rows = np.random.default_rng(0).random((32, 12))
        times, mses, history = train_with_mse_curve(framework, rows, rows[:8],
                                                    epochs=3, batch_size=16)
        assert len(times) == len(mses) == 3
        assert all(b > a for a, b in zip(times, times[1:]))
        assert len(history.epochs) == 3

    def test_train_with_mse_curve_respects_budget(self):
        from repro.core import OrcoDCSConfig, OrcoDCSFramework
        from repro.experiments.common import train_with_mse_curve

        framework = OrcoDCSFramework(OrcoDCSConfig(input_dim=12, latent_dim=3,
                                                   seed=0))
        rows = np.random.default_rng(0).random((64, 12))
        probe = OrcoDCSFramework(OrcoDCSConfig(input_dim=12, latent_dim=3,
                                               seed=0))
        probe.train_round(rows[:16])
        budget = probe.clock_s * 3.5
        times, mses, _ = train_with_mse_curve(framework, rows, rows[:8],
                                              epochs=50, batch_size=16,
                                              time_budget_s=budget)
        assert times[-1] <= budget + probe.clock_s
        assert len(times) < 50
