"""Unit tests for aggregation trees and the three aggregation modes."""

import numpy as np
import pytest

from repro.sim import ARQConfig, UnreliableChannel
from repro.wsn import (
    AggregationTree,
    TDMASchedule,
    WSNetwork,
    build_aggregation_tree,
    hybrid_encode,
    hybrid_encode_partial,
    reachable_nodes,
    simulate_encoder_distribution,
    simulate_hybrid_aggregation,
    simulate_masked_hybrid_aggregation,
    simulate_raw_aggregation,
)


def line_network(n=7, spacing=10.0, range_m=15.0):
    positions = np.array([[i * spacing, 0.0] for i in range(n)])
    net = WSNetwork(positions, comm_range_m=range_m)
    net.set_aggregator(0)
    return net


def grid_network(n=25, range_m=30.0):
    side = int(np.sqrt(n))
    positions = np.array([[i * 10.0, j * 10.0]
                          for i in range(side) for j in range(side)])
    net = WSNetwork(positions, comm_range_m=range_m)
    net.set_aggregator(0)
    return net


class TestAggregationTree:
    def test_structure_accessors(self):
        tree = AggregationTree({0: None, 1: 0, 2: 0, 3: 1})
        assert tree.root == 0
        assert sorted(tree.children[0]) == [1, 2]
        assert tree.depth(3) == 2
        assert tree.max_depth() == 2
        assert tree.subtree_size(0) == 4
        assert tree.subtree_size(1) == 2

    def test_post_order_children_first(self):
        tree = AggregationTree({0: None, 1: 0, 2: 1, 3: 1})
        order = tree.post_order()
        assert order.index(2) < order.index(1) < order.index(0)
        assert order.index(3) < order.index(1)
        assert order[-1] == 0

    def test_path_to_root(self):
        tree = AggregationTree({0: None, 1: 0, 2: 1})
        assert tree.path_to_root(2) == [2, 1, 0]

    def test_rejects_multiple_roots(self):
        with pytest.raises(ValueError):
            AggregationTree({0: None, 1: None})

    def test_rejects_unknown_parent(self):
        with pytest.raises(ValueError):
            AggregationTree({0: None, 1: 9})

    def test_rejects_cycle(self):
        with pytest.raises(ValueError):
            AggregationTree({0: None, 1: 2, 2: 1})


class TestBuildTree:
    def test_line_topology_chains(self):
        net = line_network()
        tree = build_aggregation_tree(net)
        assert tree.root == 0
        for node in range(1, 7):
            assert tree.parent[node] == node - 1

    def test_spans_every_node(self):
        net = grid_network()
        tree = build_aggregation_tree(net)
        assert sorted(tree.nodes) == net.device_ids

    def test_bridges_disconnected_components(self):
        positions = np.array([[0.0, 0.0], [5.0, 0.0], [500.0, 0.0]])
        net = WSNetwork(positions, comm_range_m=10.0)
        net.set_aggregator(0)
        tree = build_aggregation_tree(net)
        assert sorted(tree.nodes) == [0, 1, 2]
        assert len(tree.extended_edges) == 1

    def test_requires_root(self):
        net = WSNetwork(np.array([[0.0, 0.0], [1.0, 1.0]]))
        with pytest.raises(ValueError):
            build_aggregation_tree(net)

    def test_hops_metric_shallower_or_equal(self):
        net = grid_network(range_m=25.0)
        by_dist = build_aggregation_tree(net, weight="distance")
        by_hops = build_aggregation_tree(net, weight="hops")
        assert by_hops.max_depth() <= by_dist.max_depth()


class TestTDMA:
    def test_every_non_root_transmits_once(self):
        net = grid_network()
        tree = build_aggregation_tree(net)
        schedule = TDMASchedule(tree)
        transmitted = [n for slot in schedule.slots for n in slot]
        assert sorted(transmitted) == sorted(n for n in tree.nodes
                                             if n != tree.root)

    def test_no_shared_receiver_within_slot(self):
        net = grid_network()
        tree = build_aggregation_tree(net)
        for slot in TDMASchedule(tree).slots:
            parents = [tree.parent[n] for n in slot]
            assert len(parents) == len(set(parents))

    def test_children_transmit_before_parents(self):
        net = grid_network()
        tree = build_aggregation_tree(net)
        schedule = TDMASchedule(tree)
        slot_of = {}
        for index, slot in enumerate(schedule.slots):
            for node in slot:
                slot_of[node] = index
        for node in tree.nodes:
            parent = tree.parent[node]
            if parent is not None and parent != tree.root:
                assert slot_of[node] < slot_of[parent]


class TestRawAggregation:
    def test_line_counts_are_subtree_sizes(self):
        net = line_network()
        tree = build_aggregation_tree(net)
        report = simulate_raw_aggregation(net, tree)
        # Line of 7 rooted at 0: node i forwards 7-i values.
        assert report.values_transmitted == sum(7 - i for i in range(1, 7))
        assert report.per_node_values[6] == 1
        assert report.per_node_values[1] == 6

    def test_payload_bytes_match_counts(self):
        net = line_network()
        tree = build_aggregation_tree(net)
        report = simulate_raw_aggregation(net, tree, value_bytes=4)
        assert report.payload_bytes == report.values_transmitted * 4

    def test_vector_payloads_scale(self):
        net = line_network()
        tree = build_aggregation_tree(net)
        single = simulate_raw_aggregation(net, tree, values_per_node=1)
        net2 = line_network()
        double = simulate_raw_aggregation(net2, build_aggregation_tree(net2),
                                          values_per_node=2)
        assert double.values_transmitted == 2 * single.values_transmitted


class TestHybridAggregation:
    def test_counts_capped_at_latent_dim(self):
        net = line_network()
        tree = build_aggregation_tree(net)
        report = simulate_hybrid_aggregation(net, tree, latent_dim=3)
        assert report.values_transmitted == sum(min(7 - i, 3)
                                                for i in range(1, 7))
        assert max(report.per_node_values.values()) == 3

    def test_cheaper_than_raw_when_m_small(self):
        net_a, net_b = grid_network(), grid_network()
        tree_a = build_aggregation_tree(net_a)
        tree_b = build_aggregation_tree(net_b)
        raw = simulate_raw_aggregation(net_a, tree_a)
        hybrid = simulate_hybrid_aggregation(net_b, tree_b, latent_dim=2)
        assert hybrid.values_transmitted < raw.values_transmitted

    def test_equals_raw_when_m_huge(self):
        net_a, net_b = line_network(), line_network()
        raw = simulate_raw_aggregation(net_a, build_aggregation_tree(net_a))
        hybrid = simulate_hybrid_aggregation(
            net_b, build_aggregation_tree(net_b), latent_dim=100)
        assert hybrid.values_transmitted == raw.values_transmitted

    def test_latent_dim_validation(self):
        net = line_network()
        with pytest.raises(ValueError):
            simulate_hybrid_aggregation(net, build_aggregation_tree(net), 0)


class TestHybridEncode:
    def _check_equivalence(self, net, latent_dim, seed=0):
        tree = build_aggregation_tree(net)
        rng = np.random.default_rng(seed)
        ids = net.device_ids
        readings = {nid: float(rng.standard_normal()) for nid in ids}
        index = {nid: i for i, nid in enumerate(ids)}
        weight = rng.standard_normal((latent_dim, len(ids)))
        latent, sent = hybrid_encode(tree, readings, weight, index)
        stacked = np.array([readings[nid] for nid in ids])
        assert np.allclose(latent, weight @ stacked, atol=1e-10)
        return sent

    def test_distributed_equals_centralized_line(self):
        self._check_equivalence(line_network(), latent_dim=3)

    def test_distributed_equals_centralized_grid(self):
        self._check_equivalence(grid_network(), latent_dim=5)

    def test_distributed_equals_centralized_m_exceeds_n(self):
        self._check_equivalence(line_network(4, range_m=35.0), latent_dim=9)

    def test_coded_nodes_send_m_values(self):
        net = line_network()
        sent = self._check_equivalence(net, latent_dim=3)
        # Deep-in-tree nodes (large subtree) must be in coded mode.
        assert sent[1] == 3
        # The farthest leaf forwards raw: one scalar.
        assert sent[6] == 1


class TestEncoderDistribution:
    def test_values_counted_per_subtree(self):
        net = line_network()
        tree = build_aggregation_tree(net)
        report = simulate_encoder_distribution(net, tree, latent_dim=4)
        # Edge into node i carries subtree_size(i) columns of (M+1) scalars.
        expected = sum((7 - i) * 5 for i in range(1, 7))
        assert report.values_transmitted == expected

    def test_network_is_charged(self):
        net = line_network()
        tree = build_aggregation_tree(net)
        simulate_encoder_distribution(net, tree, latent_dim=4)
        assert net.ledger.total_wire_bytes("encoder_distribution") > 0


class TestMaskedHybridEncode:
    def _setup(self, net, latent_dim, seed=0):
        tree = build_aggregation_tree(net)
        rng = np.random.default_rng(seed)
        ids = net.device_ids
        readings = {nid: float(rng.standard_normal()) for nid in ids}
        index = {nid: i for i, nid in enumerate(ids)}
        weight = rng.standard_normal((latent_dim, len(ids)))
        return tree, readings, index, weight

    def test_no_failures_matches_full_encode(self):
        net = line_network()
        tree, readings, index, weight = self._setup(net, latent_dim=3)
        full, _ = hybrid_encode(tree, readings, weight, index)
        partial, sent, contributors = hybrid_encode_partial(
            tree, readings, weight, index)
        assert np.allclose(partial, full, atol=1e-12)
        assert contributors == frozenset(tree.nodes)

    def test_dead_leaf_masks_its_column(self):
        net = grid_network()
        tree, readings, index, weight = self._setup(net, latent_dim=5)
        leaves = [n for n in tree.nodes if not tree.children[n]]
        dead = leaves[0]
        partial, _, contributors = hybrid_encode_partial(
            tree, readings, weight, index, failed={dead})
        assert dead not in contributors
        stacked = np.array([readings[n] if n in contributors else 0.0
                            for n in net.device_ids])
        assert np.allclose(partial, weight @ stacked, atol=1e-10)

    def test_dead_relay_drops_its_subtree(self):
        net = line_network()   # chain 0-1-2-...-6, root 0
        tree, readings, index, weight = self._setup(net, latent_dim=3)
        partial, sent, contributors = hybrid_encode_partial(
            tree, readings, weight, index, failed={3})
        # Nodes 3..6 are all severed: 3 is dead, 4-6 route through it.
        assert contributors == frozenset({0, 1, 2})
        stacked = np.array([readings[n] if n <= 2 else 0.0
                            for n in net.device_ids])
        assert np.allclose(partial, weight @ stacked, atol=1e-10)
        assert all(n not in sent for n in (3, 4, 5, 6))

    def test_masked_equals_centralized_masked_product(self):
        net = grid_network()
        tree, readings, index, weight = self._setup(net, latent_dim=4, seed=3)
        failed = {7, 12}
        partial, _, contributors = hybrid_encode_partial(
            tree, readings, weight, index, failed=failed)
        alive_cols = sorted(index[n] for n in contributors)
        stacked = np.array([readings[n] for n in sorted(contributors)])
        reference = weight[:, alive_cols] @ stacked
        assert np.allclose(partial, reference, atol=1e-10)

    def test_failed_root_requires_failover(self):
        net = line_network()
        tree, readings, index, weight = self._setup(net, latent_dim=3)
        with pytest.raises(ValueError):
            hybrid_encode_partial(tree, readings, weight, index, failed={0})

    def test_reachable_nodes_helper(self):
        tree = AggregationTree({0: None, 1: 0, 2: 1, 3: 1, 4: 0})
        assert reachable_nodes(tree, set()) == frozenset({0, 1, 2, 3, 4})
        assert reachable_nodes(tree, {1}) == frozenset({0, 4})


class TestMaskedHybridAggregationCost:
    def test_masked_cost_cheaper_than_full(self):
        full_net = line_network()
        full_tree = build_aggregation_tree(full_net)
        full = simulate_hybrid_aggregation(full_net, full_tree, latent_dim=3)

        masked_net = line_network()
        masked_tree = build_aggregation_tree(masked_net)
        masked = simulate_masked_hybrid_aggregation(
            masked_net, masked_tree, latent_dim=3, failed={4})
        assert masked.values_transmitted < full.values_transmitted
        assert masked.wire_bytes < full.wire_bytes

    def test_masked_with_no_failures_matches_full(self):
        net_a, net_b = line_network(), line_network()
        tree_a = build_aggregation_tree(net_a)
        tree_b = build_aggregation_tree(net_b)
        full = simulate_hybrid_aggregation(net_a, tree_a, latent_dim=3)
        masked = simulate_masked_hybrid_aggregation(net_b, tree_b,
                                                    latent_dim=3)
        assert masked.values_transmitted == full.values_transmitted
        assert masked.wire_bytes == full.wire_bytes

    def test_surviving_counts_shrink_with_dead_descendants(self):
        net = line_network()
        tree = build_aggregation_tree(net)
        report = simulate_masked_hybrid_aggregation(net, tree, latent_dim=5,
                                                    failed={5})
        # Node 4's surviving subtree is itself only (5 and 6 are gone).
        assert report.per_node_values[4] == 1
        assert 5 not in report.per_node_values
        assert 6 not in report.per_node_values


class _FirstFrameLoss:
    """Loss model that kills exactly the first frame it ever sees —
    with a zero-retry ARQ budget the first message fails, the rest
    sail through (deterministic, ignores the RNG)."""

    def __init__(self):
        self.armed = True

    def frame_lost(self, rng):
        verdict = self.armed
        self.armed = False
        return verdict

    def reset(self):
        pass

    @property
    def mean_loss_rate(self):
        return 0.0


def _lossy_line_network():
    """Line network whose deepest hop (node 6 -> 5) deterministically
    exhausts its zero-retry budget; every later hop is clean."""
    net = line_network()
    channel = UnreliableChannel(net.sensor_link, loss=0.0,
                                arq=ARQConfig(max_retries=0),
                                rng=np.random.default_rng(0))
    channel.loss = _FirstFrameLoss()
    net.sensor_channel = channel
    return net


class TestLossAdaptiveCounts:
    """A severed subtree shrinks the payloads its ancestors forward —
    the TDMA cost model no longer assumes full participation."""

    def test_raw_ancestors_forward_only_delivered_values(self):
        net = _lossy_line_network()
        tree = build_aggregation_tree(net)
        report = simulate_raw_aggregation(net, tree)
        assert report.failed_hops == {6}
        # Deepest-first TDMA: 6 fails, so 5..1 forward one value less.
        assert report.per_node_values == {6: 1, 5: 1, 4: 2, 3: 3,
                                          2: 4, 1: 5}
        assert report.values_transmitted == 16   # 21 under full delivery
        assert report.payload_bytes == 16 * 4

    def test_hybrid_switchover_tracks_surviving_pool(self):
        net = _lossy_line_network()
        tree = build_aggregation_tree(net)
        report = simulate_hybrid_aggregation(net, tree, latent_dim=3)
        assert report.failed_hops == {6}
        # Node 3's surviving pool is exactly 3 -> it codes; with full
        # delivery it would have coded at node 4 already.
        assert report.per_node_values == {6: 1, 5: 1, 4: 2, 3: 3,
                                          2: 3, 1: 3}
        assert report.values_transmitted == 13   # 15 under full delivery

    def test_ideal_links_reproduce_static_subtree_counts(self):
        net = line_network()
        tree = build_aggregation_tree(net)
        report = simulate_raw_aggregation(net, tree)
        assert report.failed_hops == set()
        assert report.per_node_values == {
            node: tree.subtree_size(node) for node in tree.nodes
            if node != tree.root}
