"""Unit tests for optimisers and LR schedules."""

import numpy as np
import pytest

from repro import nn


def quadratic_param(start=5.0):
    return nn.Parameter(np.array([start]))


def quadratic_step(param, optimizer):
    loss = (param * param).sum()
    optimizer.zero_grad()
    loss.backward()
    optimizer.step()
    return float(loss.data)


class TestSGD:
    def test_vanilla_step_math(self):
        p = quadratic_param(1.0)
        opt = nn.SGD([p], lr=0.1)
        quadratic_step(p, opt)          # grad = 2 -> p = 1 - 0.2
        assert np.allclose(p.data, [0.8])

    def test_momentum_accumulates(self):
        p = quadratic_param(1.0)
        opt = nn.SGD([p], lr=0.1, momentum=0.9)
        quadratic_step(p, opt)
        first = p.data.copy()
        quadratic_step(p, opt)
        # Second update is bigger than plain SGD would give from first.
        assert abs(1.0 - first[0]) < abs(first[0] - p.data[0]) / 0.9 + 1e-9

    def test_weight_decay_shrinks(self):
        p = nn.Parameter(np.array([1.0]))
        opt = nn.SGD([p], lr=0.1, weight_decay=0.5)
        # Zero-loss gradient: only decay acts.
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 1.0

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            nn.SGD([quadratic_param()], lr=0.1, nesterov=True)

    def test_skips_params_without_grad(self):
        p = quadratic_param(1.0)
        opt = nn.SGD([p], lr=0.1)
        opt.step()
        assert np.allclose(p.data, [1.0])

    def test_converges_on_quadratic(self):
        p = quadratic_param(3.0)
        opt = nn.SGD([p], lr=0.1, momentum=0.5)
        for _ in range(100):
            quadratic_step(p, opt)
        assert abs(p.data[0]) < 1e-3


class TestAdam:
    def test_first_step_is_lr_sized(self):
        p = quadratic_param(1.0)
        opt = nn.Adam([p], lr=0.01)
        quadratic_step(p, opt)
        # With bias correction the first step is ~lr * sign(grad).
        assert abs((1.0 - p.data[0]) - 0.01) < 1e-6

    def test_converges_on_quadratic(self):
        p = quadratic_param(3.0)
        opt = nn.Adam([p], lr=0.3)
        for _ in range(200):
            quadratic_step(p, opt)
        assert abs(p.data[0]) < 1e-2

    def test_weight_decay(self):
        p = nn.Parameter(np.array([1.0]))
        opt = nn.Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 1.0


class TestRMSPropAdaGrad:
    def test_rmsprop_converges(self):
        p = quadratic_param(2.0)
        opt = nn.RMSProp([p], lr=0.05)
        for _ in range(300):
            quadratic_step(p, opt)
        assert abs(p.data[0]) < 0.05

    def test_adagrad_steps_shrink(self):
        p = quadratic_param(5.0)
        opt = nn.AdaGrad([p], lr=1.0)
        quadratic_step(p, opt)
        first_step = abs(5.0 - p.data[0])
        before = p.data[0]
        quadratic_step(p, opt)
        second_step = abs(before - p.data[0])
        assert second_step < first_step


class TestValidation:
    def test_empty_params(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_nonpositive_lr(self):
        with pytest.raises(ValueError):
            nn.Adam([quadratic_param()], lr=0.0)

    def test_make_optimizer(self):
        opt = nn.make_optimizer("sgd", [quadratic_param()], lr=0.1)
        assert isinstance(opt, nn.SGD)
        with pytest.raises(KeyError):
            nn.make_optimizer("lion", [quadratic_param()])


class TestSchedulers:
    def test_step_lr(self):
        # step() is called at the end of each epoch (PyTorch semantics):
        # epochs 0-1 run at the base rate, 2-3 at base*gamma, ...
        opt = nn.SGD([quadratic_param()], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert np.allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_exponential_lr(self):
        opt = nn.SGD([quadratic_param()], lr=1.0)
        sched = nn.ExponentialLR(opt, gamma=0.5)
        sched.step()
        sched.step()
        assert abs(opt.lr - 0.25) < 1e-12

    def test_cosine_reaches_min(self):
        opt = nn.SGD([quadratic_param()], lr=1.0)
        sched = nn.CosineAnnealingLR(opt, t_max=10, min_lr=0.1)
        for _ in range(10):
            sched.step()
        assert abs(opt.lr - 0.1) < 1e-9

    def test_cosine_monotone_decreasing(self):
        opt = nn.SGD([quadratic_param()], lr=1.0)
        sched = nn.CosineAnnealingLR(opt, t_max=5)
        lrs = [sched.step() for _ in range(5)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))


class TestClipGradNorm:
    def test_scales_down_large_grads(self):
        p = nn.Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = nn.clip_grad_norm([p], max_norm=1.0)
        assert abs(norm - 20.0) < 1e-9
        assert abs(np.linalg.norm(p.grad) - 1.0) < 1e-9

    def test_leaves_small_grads(self):
        p = nn.Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1)
        nn.clip_grad_norm([p], max_norm=10.0)
        assert np.allclose(p.grad, 0.1)
