"""Unit tests for the DCSNet baseline."""

import numpy as np
import pytest

from repro.baselines import (
    DCSNET_LATENT_DIM,
    DCSNetOffline,
    DCSNetOnline,
    build_dcsnet_decoder,
    build_dcsnet_encoder,
    dcsnet_decoder_flops,
)
from repro.nn import Conv2D
from repro.nn.tensor import Tensor


class TestArchitecture:
    def test_encoder_maps_to_fixed_latent(self):
        encoder = build_dcsnet_encoder(784, np.random.default_rng(0))
        out = encoder(Tensor(np.random.default_rng(1).random((2, 784))))
        assert out.shape == (2, DCSNET_LATENT_DIM)

    def test_decoder_has_four_conv_layers(self):
        decoder = build_dcsnet_decoder((1, 28, 28), np.random.default_rng(0))
        convs = [l for l in decoder.layers if isinstance(l, Conv2D)]
        assert len(convs) == 4

    def test_decoder_output_shape_grayscale(self):
        decoder = build_dcsnet_decoder((1, 28, 28), np.random.default_rng(0))
        out = decoder(Tensor(np.random.default_rng(1).random((2, 1024))))
        assert out.shape == (2, 784)

    def test_decoder_output_shape_color(self):
        decoder = build_dcsnet_decoder((3, 32, 32), np.random.default_rng(0))
        out = decoder(Tensor(np.random.default_rng(1).random((2, 1024))))
        assert out.shape == (2, 3072)

    def test_decoder_output_in_unit_interval(self):
        decoder = build_dcsnet_decoder((1, 28, 28), np.random.default_rng(0))
        out = decoder(Tensor(np.random.default_rng(1).standard_normal((1, 1024))))
        assert out.data.min() >= 0 and out.data.max() <= 1

    def test_decoder_shape_validation(self):
        with pytest.raises(ValueError):
            build_dcsnet_decoder((1, 30, 30))

    def test_flops_positive_and_scale_with_image(self):
        small = dcsnet_decoder_flops((1, 28, 28))
        large = dcsnet_decoder_flops((3, 32, 32))
        assert 0 < small < large


class TestOnlineFramework:
    def test_factories(self):
        digits = DCSNetOnline.for_digits(seed=0)
        assert digits.input_dim == 784
        assert digits.latent_dim == DCSNET_LATENT_DIM
        signs = DCSNetOnline.for_signs(seed=0)
        assert signs.input_dim == 3072

    def test_name_includes_fraction(self):
        assert DCSNetOnline.for_digits(data_fraction=0.3).name == "DCSNet-30%"

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            DCSNetOnline.for_digits(data_fraction=0.0)

    def test_fit_fraction_trains_and_reduces_loss(self):
        framework = DCSNetOnline.for_digits(seed=0, data_fraction=0.5)
        rows = np.random.default_rng(0).random((64, 784))
        history = framework.fit_fraction(rows, epochs=3, batch_size=16)
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss

    def test_fraction_limits_rounds(self):
        full = DCSNetOnline.for_digits(seed=0, data_fraction=1.0)
        half = DCSNetOnline.for_digits(seed=0, data_fraction=0.5)
        rows = np.random.default_rng(0).random((64, 784))
        history_full = full.fit_fraction(rows, epochs=1, batch_size=16)
        history_half = half.fit_fraction(rows, epochs=1, batch_size=16)
        assert len(history_half.rounds) == len(history_full.rounds) // 2

    def test_no_latent_noise(self):
        assert DCSNetOnline.for_digits().noise is None

    def test_reconstruct_shape(self):
        framework = DCSNetOnline.for_digits(seed=0)
        out = framework.reconstruct(np.random.default_rng(0).random((3, 784)))
        assert out.shape == (3, 784)


class TestOfflineFramework:
    def test_charges_raw_upload_before_training(self):
        framework = DCSNetOffline((1, 28, 28), seed=0, data_fraction=0.5)
        rows = np.random.default_rng(0).random((32, 784))
        framework.fit_fraction(rows, epochs=1, batch_size=16)
        assert framework.ledger.total_wire_bytes("raw_cloud_upload") > 0

    def test_cloud_compute_is_fast(self):
        offline = DCSNetOffline((1, 28, 28), seed=0)
        online = DCSNetOnline.for_digits(seed=0)
        rows = np.random.default_rng(0).random((32, 784))
        offline_hist = offline.fit_fraction(rows, epochs=1, batch_size=16)
        online_hist = online.fit_fraction(rows, epochs=1, batch_size=16)
        # Per-round compute in the cloud is far cheaper than on the
        # aggregator (upload dominates the offline clock instead).
        offline_compute = offline_hist.total_time_s - \
            offline.ledger.total_time_s("raw_cloud_upload")
        assert offline_compute < online_hist.total_time_s

    def test_name(self):
        assert "offline" in DCSNetOffline((1, 28, 28)).name
