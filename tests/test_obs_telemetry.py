"""Telemetry bus tests: bit-identity, null-bus elision, exporters, metrics.

The hard contract under test: attaching a :class:`TelemetryBus` to any
engine path changes *nothing* about the simulation — clock, ledger,
losses and report stay bit-identical, because the bus never draws RNG
and never reorders float accumulation.  And with telemetry off, the
hot-path event objects are never even constructed.
"""

import io
import json

import numpy as np
import pytest

import repro.core.rounds as rounds_mod
import repro.core.scheduler as scheduler_mod
import repro.sim.channel as channel_mod
import repro.sim.faults as faults_mod
from repro.core import (
    OrcoDCSConfig,
    OrcoDCSFramework,
    ResilientOrchestrationPolicy,
)
from repro.core.scheduler import EdgeTrainingScheduler
from repro.obs import (
    EVENT_TYPES,
    NULL_BUS,
    ArqRederived,
    ClusterRetired,
    Counter,
    DeadlineMissed,
    FaultApplied,
    Gauge,
    Histogram,
    JsonlWriter,
    LiveConsole,
    MetricsCollector,
    ParityChosen,
    QuorumCheck,
    RingSeries,
    RoundCompleted,
    SegmentFused,
    SpanClosed,
    TelemetryBus,
    TransmitBatch,
    WavePlanned,
    read_events,
    summary_table,
)
from repro.sim import ARQConfig, ChannelSpec, FaultEvent, FaultSchedule

DIM = 24
LATENT = 4
BATCH = 8
ROWS = 48


def build_scheduler(policy="round_robin", clusters=3, seed=0, **kwargs):
    scheduler = EdgeTrainingScheduler(policy, rng=np.random.default_rng(seed),
                                      engine="event", **kwargs)
    for index in range(clusters):
        config = OrcoDCSConfig(input_dim=DIM, latent_dim=LATENT, seed=index,
                               noise_sigma=0.05, batch_size=BATCH)
        data = np.random.default_rng(100 + index).random((ROWS, DIM))
        scheduler.add_cluster(f"c{index}", OrcoDCSFramework(config), data,
                              batch_size=BATCH, aggregator_battery_j=1e9)
    return scheduler


#: Named engine-path scenarios for the bit-identity sweep.
SCENARIOS = {
    "fused_fault_only": dict(
        fault_schedule=FaultSchedule.first_death("c0", 1e-4, device=5)),
    "lossy": dict(
        channels=ChannelSpec(loss=0.15, arq=ARQConfig(max_retries=1))),
    "coded_hybrid": dict(
        channels=ChannelSpec(loss=0.15, arq=ARQConfig(max_retries=1)),
        resilience=ResilientOrchestrationPolicy(recovery="hybrid")),
    "wave_by_wave": dict(
        policy="loss_priority",
        channels=ChannelSpec(loss=0.1, arq=ARQConfig(max_retries=1))),
}


class TestBitIdentity:
    """Telemetry on vs off: every observable simulation output matches."""

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS),
                             ids=sorted(SCENARIOS))
    def test_run_is_bit_identical_with_bus_attached(self, scenario):
        kwargs = dict(SCENARIOS[scenario])

        off = build_scheduler(**kwargs)
        report_off = off.run(rounds_per_cluster=10)

        events = []
        bus = TelemetryBus()
        bus.subscribe(events.append)  # all kinds, spans included
        on = build_scheduler(telemetry=bus, **kwargs)
        report_on = on.run(rounds_per_cluster=10)

        assert events, "bus saw no events — the 'on' run was not observed"
        for c_on, c_off in zip(on.clusters, off.clusters):
            assert np.array_equal(c_on.history.losses, c_off.history.losses)
            assert np.array_equal(c_on.history.times, c_off.history.times)
            assert c_on.trainer.clock_s == c_off.trainer.clock_s
            assert len(c_on.trainer.ledger) == len(c_off.trainer.ledger)
            assert c_on.trainer.ledger.by_kind() \
                == c_off.trainer.ledger.by_kind()
            assert c_on.trainer.ledger.total_wire_bytes() \
                == c_off.trainer.ledger.total_wire_bytes()
        assert report_on.makespan_s == report_off.makespan_s
        assert report_on.completion_times == report_off.completion_times
        assert report_on.failed_rounds == report_off.failed_rounds
        assert report_on.energy_j == report_off.energy_j
        assert report_on.dead_clusters == report_off.dead_clusters
        assert report_on.deadline_misses == report_off.deadline_misses
        assert report_on.deadline_miss_rounds == report_off.deadline_miss_rounds
        assert report_on.retirement_reasons == report_off.retirement_reasons
        # Zero RNG draws attributable to the bus: the scheduler's own
        # generator ends both runs in the identical state.
        assert on.rng.bit_generator.state == off.rng.bit_generator.state

    def test_scenarios_exercise_their_advertised_paths(self):
        kinds_by_scenario = {}
        for scenario, kwargs in SCENARIOS.items():
            events = []
            bus = TelemetryBus()
            bus.subscribe(events.append)
            build_scheduler(telemetry=bus, **dict(kwargs)).run(
                rounds_per_cluster=10)
            kinds_by_scenario[scenario] = {e.kind for e in events}
        assert FaultApplied.kind in kinds_by_scenario["fused_fault_only"]
        assert SegmentFused.kind in kinds_by_scenario["fused_fault_only"]
        assert TransmitBatch.kind in kinds_by_scenario["lossy"]
        assert ParityChosen.kind in kinds_by_scenario["coded_hybrid"]
        assert WavePlanned.kind in kinds_by_scenario["wave_by_wave"]
        for kinds in kinds_by_scenario.values():
            assert RoundCompleted.kind in kinds
            assert SpanClosed.kind in kinds


class TestFusionBounds:
    """The ``bound`` field on fusion events names the proof that fired.

    Each planner decision carries a machine-readable slug so post-hoc
    analysis can attribute fused throughput to the specific bound that
    justified it (see ``ExecutionPlan.reasons`` for the unfused side).
    """

    def _bounds(self, rounds=10, **kwargs):
        events = []
        bus = TelemetryBus()
        bus.subscribe(events.append,
                      kinds=(SegmentFused.kind, WavePlanned.kind))
        report = build_scheduler(telemetry=bus, **kwargs).run(
            rounds_per_cluster=rounds)
        by_kind = {}
        for event in events:
            by_kind.setdefault(event.kind, set()).add(event.bound)
        return by_kind, report

    def test_segment_mode_fault_run_uses_horizon_bound(self):
        by_kind, _ = self._bounds(
            fault_schedule=FaultSchedule.first_death("c0", 1e-4, device=5))
        assert by_kind[SegmentFused.kind] == {"before-horizon"}
        assert WavePlanned.kind not in by_kind

    def test_quorum_risk_bound_on_projected_battery_deaths(self):
        # Starved aggregator batteries: every wave's fault horizon
        # projects cluster deaths that could drop the fleet below
        # quorum, so no wave may prove more than the requesting round.
        events = []
        bus = TelemetryBus()
        bus.subscribe(events.append,
                      kinds=(SegmentFused.kind, WavePlanned.kind))
        scheduler = build_scheduler(
            telemetry=bus, policy="loss_priority",
            resilience=ResilientOrchestrationPolicy(quorum=0.5))
        for cluster in scheduler.clusters:
            cluster.aggregator_battery_j = 0.015
        report = scheduler.run(rounds_per_cluster=40)
        assert report.halted
        bounds = {e.bound for e in events}
        assert bounds == {"quorum-risk"}

    def test_wave_mode_fault_run_emits_all_and_requesting_bounds(self):
        by_kind, _ = self._bounds(
            policy="loss_priority",
            channels=ChannelSpec(loss=0.1, arq=ARQConfig(max_retries=1)),
            fault_schedule=FaultSchedule.first_death("c0", 0.3, device=5))
        assert by_kind[WavePlanned.kind] \
            == {"all-before-horizon", "requesting-only"}

    def test_prefix_bound_fuses_partial_wave_near_late_fault(self):
        # A fault near the end of the run leaves each cluster a tail
        # that only partially fits before the horizon: the per-cluster
        # incremental bound fuses the provable prefix.
        spec = ChannelSpec(loss=0.1, arq=ARQConfig(max_retries=1))
        makespan = build_scheduler(
            policy="loss_priority", channels=spec,
            segment_batching=False).run(rounds_per_cluster=10).makespan_s
        by_kind, _ = self._bounds(
            policy="loss_priority", channels=spec,
            fault_schedule=FaultSchedule([FaultEvent(
                0.9 * makespan, "node_death", "c0", device=5)]))
        assert "prefix" in by_kind[WavePlanned.kind]

    def test_adaptive_rederivation_keeps_run_fused(self):
        # Budget re-derivation at a fault boundary used to force the
        # whole run back to unfused; trace re-recording keeps it fused
        # and the ArqRederived events observable mid-segment.
        spec = ChannelSpec(loss=0.1, arq=ARQConfig(max_retries=3))
        adaptive = ResilientOrchestrationPolicy(adaptive_arq=True)
        makespan = build_scheduler(
            channels=spec, resilience=adaptive,
            segment_batching=False).run(rounds_per_cluster=10).makespan_s
        events = []
        bus = TelemetryBus()
        bus.subscribe(events.append)
        report = build_scheduler(
            telemetry=bus, channels=spec, resilience=adaptive,
            fault_schedule=FaultSchedule([FaultEvent(
                0.5 * makespan, "brownout", "c0", magnitude=1e-12)]),
        ).run(rounds_per_cluster=10)
        kinds = {e.kind for e in events}
        assert ArqRederived.kind in kinds
        assert SegmentFused.kind in kinds
        assert report.fused_rounds > 0
        rederived = [e for e in events if e.kind == ArqRederived.kind]
        assert {(e.cluster, e.direction) for e in rederived} \
            == {("c0", "up"), ("c0", "down")}
        assert all(e.new_retries == 0 for e in rederived)


def _exploding(kind):
    """A stand-in event class whose construction is a test failure."""

    class Exploding:
        def __init__(self, *args, **kwargs):
            raise AssertionError(
                f"{kind} event constructed with telemetry off")

    Exploding.kind = kind
    return Exploding


class TestNullBusElision:
    """With no subscriber, emission sites never construct events."""

    def test_hot_path_events_elided_when_telemetry_off(self, monkeypatch):
        # Patch every hot-path event class at its emission sites with a
        # constructor that explodes.  ClusterRetired stays real: the
        # report tap legitimately wants it even with telemetry off.
        for mod, name in [
            (scheduler_mod, "RoundCompleted"),
            (scheduler_mod, "QuorumCheck"),
            (scheduler_mod, "ParityChosen"),
            (scheduler_mod, "ArqRederived"),
            (scheduler_mod, "DeadlineMissed"),
            (rounds_mod, "RoundCompleted"),
            (rounds_mod, "SegmentFused"),
            (rounds_mod, "WavePlanned"),
            (rounds_mod, "DeadlineMissed"),
            (channel_mod, "TransmitBatchEvent"),
            (faults_mod, "FaultApplied"),
        ]:
            monkeypatch.setattr(mod, name,
                                _exploding(getattr(mod, name).kind))
        scheduler = build_scheduler(
            channels=ChannelSpec(loss=0.1, arq=ARQConfig(max_retries=1)),
            fault_schedule=FaultSchedule.first_death("c0", 1e-4, device=5))
        report = scheduler.run(rounds_per_cluster=8)
        assert report.faults_applied == 1

    def test_null_bus_wants_nothing_and_rejects_subscribers(self):
        assert not NULL_BUS.wants(RoundCompleted.kind)
        assert not NULL_BUS.wants(SpanClosed.kind)
        with pytest.raises(TypeError):
            NULL_BUS.subscribe(lambda event: None)
        with NULL_BUS.span("noop"):
            pass  # span is a plain passthrough


class TestTelemetryBus:
    def test_kind_filtered_delivery_and_unsubscribe(self):
        bus = TelemetryBus()
        rounds, faults = [], []
        unsub = bus.subscribe(rounds.append, kinds=(RoundCompleted.kind,))
        bus.subscribe(faults.append, kinds=(FaultApplied.kind,))
        assert bus.wants(RoundCompleted.kind)
        assert not bus.wants(TransmitBatch.kind)
        bus.emit(RoundCompleted(cluster="c0", round=1, delivered=True,
                                loss=0.5, time_s=1.0))
        bus.emit(FaultApplied(cluster="c0", fault="node_death", time_s=2.0))
        assert len(rounds) == 1 and len(faults) == 1
        unsub()
        assert not bus.wants(RoundCompleted.kind)
        bus.emit(RoundCompleted(cluster="c0", round=2, delivered=True,
                                loss=0.4, time_s=2.0))
        assert len(rounds) == 1

    def test_span_nesting_depth(self):
        bus = TelemetryBus()
        spans = []
        bus.subscribe(spans.append, kinds=(SpanClosed.kind,))
        with bus.span("outer"):
            with bus.span("inner"):
                pass
        assert [(s.name, s.depth) for s in spans] \
            == [("inner", 1), ("outer", 0)]
        assert all(s.elapsed_s >= 0.0 for s in spans)

    def test_span_skips_timing_without_subscriber(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe(seen.append, kinds=(RoundCompleted.kind,))
        with bus.span("unwatched"):
            pass
        assert seen == []


class TestJsonlRoundTrip:
    SAMPLES = [
        RoundCompleted(cluster="c0", round=3, delivered=False, loss=None,
                       time_s=1.5, battery_j=9.0, radio_energy_j=0.25),
        SegmentFused(index=0, mode="segment", horizon_s=None, clusters=3,
                     successes=30, failures=0),
        WavePlanned(clusters=3, rounds=3, fused_all=True),
        FaultApplied(cluster="c1", fault="node_death", time_s=0.5),
        ArqRederived(cluster="c1", direction="up", old_retries=3,
                     new_retries=1, time_s=0.5),
        ParityChosen(cluster="c2", direction="down", parity=2,
                     loss_rate=0.15, headroom_j=12.0),
        TransmitBatch(payload_bytes=512, count=4, delivered=4, attempts=6,
                      lost_frames=2, retransmissions=2, wire_bytes=3100),
        QuorumCheck(alive=2, total=3, quorum=0.5, halted=False, time_s=7.0),
        ClusterRetired(cluster="c0", reason="battery", time_s=8.0),
        DeadlineMissed(cluster="c0", round=5, finish_s=9.0, deadline_s=8.5),
        SpanClosed(name="plan", elapsed_s=0.01, depth=0),
    ]

    def test_every_event_kind_round_trips(self, tmp_path):
        assert {e.kind for e in self.SAMPLES} == set(EVENT_TYPES)
        path = tmp_path / "events.jsonl"
        bus = TelemetryBus()
        with JsonlWriter(path, bus) as writer:
            for event in self.SAMPLES:
                bus.emit(event)
            assert writer.events_written == len(self.SAMPLES)
        assert list(read_events(path)) == self.SAMPLES

    def test_unknown_kind_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "martian", "x": 1}) + "\n")
        with pytest.raises(KeyError):
            list(read_events(path))

    def test_write_after_close_raises(self, tmp_path):
        writer = JsonlWriter(tmp_path / "closed.jsonl")
        writer.close()
        with pytest.raises(ValueError):
            writer.write_event(self.SAMPLES[0])

    def test_scheduler_run_streams_to_jsonl(self, tmp_path):
        path = tmp_path / "run.jsonl"
        bus = TelemetryBus()
        with JsonlWriter(path, bus):
            build_scheduler(
                telemetry=bus,
                channels=ChannelSpec(loss=0.1, arq=ARQConfig(max_retries=1)),
            ).run(rounds_per_cluster=6)
        kinds = {event.kind for event in read_events(path)}
        assert {RoundCompleted.kind, TransmitBatch.kind,
                SegmentFused.kind, SpanClosed.kind} <= kinds


class TestMetricPrimitives:
    def test_counter_rejects_negative(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_last_value(self):
        gauge = Gauge()
        assert gauge.value is None
        gauge.set(4.0)
        gauge.set(2.0)
        assert gauge.value == 2.0

    def test_histogram_bucket_edges_inclusive(self):
        hist = Histogram((1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 2.0, 2.5, 4.0, 100.0):
            hist.observe(value)
        # value == edge lands in that edge's bucket (inclusive upper).
        assert hist.counts == [2, 1, 2, 1]
        assert hist.count == 6
        assert hist.min == 0.5 and hist.max == 100.0
        assert hist.mean == pytest.approx(110.0 / 6)
        as_dict = hist.as_dict()
        assert as_dict["buckets"] == {"1.0": 2, "2.0": 1, "4.0": 2,
                                      "+inf": 1}

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))

    def test_histogram_empty_mean_is_none(self):
        assert Histogram((1.0,)).mean is None

    def test_ring_series_wraps_oldest_first(self):
        series = RingSeries(3)
        assert len(series) == 0 and series.last is None
        for value in (1.0, 2.0):
            series.push(value)
        assert series.values() == [1.0, 2.0]
        for value in (3.0, 4.0, 5.0):
            series.push(value)
        assert len(series) == 3
        assert series.values() == [3.0, 4.0, 5.0]
        assert series.last == 5.0
        assert series.total == 5

    def test_ring_series_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingSeries(0)


class TestMetricsCollector:
    def _collector_with_traffic(self):
        bus = TelemetryBus()
        collector = MetricsCollector(bus)
        bus.emit(RoundCompleted(cluster="c0", round=0, delivered=True,
                                loss=0.3, time_s=1.0, battery_j=90.0,
                                radio_energy_j=0.5))
        bus.emit(RoundCompleted(cluster="c0", round=1, delivered=False,
                                loss=None, time_s=2.0, battery_j=80.0,
                                radio_energy_j=0.7))
        bus.emit(RoundCompleted(cluster="c1", round=0, delivered=True,
                                loss=0.2, time_s=1.5, battery_j=70.0,
                                radio_energy_j=0.4))
        bus.emit(TransmitBatch(payload_bytes=512, count=4, delivered=3,
                               attempts=6, lost_frames=3, retransmissions=2,
                               wire_bytes=3000))
        bus.emit(SegmentFused(index=0, mode="segment", horizon_s=None,
                              clusters=2, successes=5, failures=1))
        bus.emit(FaultApplied(cluster="c0", fault="node_death", time_s=0.5))
        bus.emit(ClusterRetired(cluster="c1", reason="battery", time_s=9.0))
        bus.emit(DeadlineMissed(cluster="c0", round=1, finish_s=3.0,
                                deadline_s=2.0))
        with bus.span("plan"):
            pass
        return collector

    def test_fold_and_flat_snapshot(self):
        collector = self._collector_with_traffic()
        assert collector.clusters["c0"].rounds.value == 2
        assert collector.clusters["c0"].delivered.value == 1
        assert collector.clusters["c0"].faults.value == 1
        assert collector.clusters["c0"].loss.value == 0.3
        assert collector.clusters["c0"].loss_series.values() == [0.3]
        # radio energy is the fleet sum of per-cluster cumulative gauges
        assert collector.radio_energy_j == pytest.approx(0.7 + 0.4)
        assert collector.retirements == {"battery": 1}
        flat = collector.flat()
        assert flat["transmits"] == 4
        assert flat["frames_sent"] == 6
        assert flat["retransmissions"] == 2
        assert flat["payloads_delivered"] == 3
        assert flat["wire_bytes"] == 3000
        assert flat["deadline_misses"] == 1
        assert flat["segments"] == 1
        assert flat["clusters"] == 2
        assert flat["retired_battery"] == 1
        assert flat["cluster_c0_rounds"] == 2
        assert flat["cluster_c1_battery_j"] == 70.0
        assert flat["span_plan_calls"] == 1
        assert flat["span_plan_s"] >= 0.0

    def test_summary_table_renders(self):
        table = summary_table(self._collector_with_traffic())
        assert "c0" in table and "c1" in table
        assert "retired" in table
        assert "plan" in table

    def test_collector_on_live_run(self):
        bus = TelemetryBus()
        collector = MetricsCollector(bus)
        report = build_scheduler(
            telemetry=bus,
            channels=ChannelSpec(loss=0.1, arq=ARQConfig(max_retries=1)),
        ).run(rounds_per_cluster=6)
        assert set(collector.clusters) == {"c0", "c1", "c2"}
        total_rounds = sum(s.rounds.value for s in collector.clusters.values())
        assert total_rounds == sum(report.rounds_per_cluster.values()) \
            + sum(report.failed_rounds.values())
        assert collector.transmits.value > 0
        assert {"plan", "execute"} <= set(collector.span_hists)


class TestLiveConsole:
    def test_renders_fold_of_event_stream(self):
        bus = TelemetryBus()
        stream = io.StringIO()
        console = LiveConsole(bus, stream=stream, refresh_s=0.0)
        bus.emit(RoundCompleted(cluster="c0", round=1, delivered=True,
                                loss=0.25, time_s=1.0, battery_j=42.0))
        bus.emit(FaultApplied(cluster="c0", fault="node_death", time_s=1.5))
        bus.emit(ClusterRetired(cluster="c0", reason="battery", time_s=2.0))
        assert console.renders == 3
        output = stream.getvalue()
        assert "c0" in output
        assert "retired:battery" in output.splitlines()[-2] \
            or "retired:battery" in output
        assert console.rows["c0"].faults == 1

    def test_quorum_halt_marks_running_rows(self):
        bus = TelemetryBus()
        console = LiveConsole(bus, stream=io.StringIO(), refresh_s=0.0)
        bus.emit(RoundCompleted(cluster="c0", round=1, delivered=True,
                                loss=0.1, time_s=1.0))
        bus.emit(RoundCompleted(cluster="c1", round=1, delivered=True,
                                loss=0.1, time_s=1.0))
        bus.emit(ClusterRetired(cluster="c1", reason="death", time_s=2.0))
        bus.emit(QuorumCheck(alive=1, total=2, quorum=0.5, halted=True,
                             time_s=2.0))
        assert console.rows["c0"].status == "quorum-halt"
        assert console.rows["c1"].status == "retired:death"

    def test_wall_clock_throttle(self):
        bus = TelemetryBus()
        console = LiveConsole(bus, stream=io.StringIO(), refresh_s=3600.0)
        console._last_render = __import__("time").perf_counter()
        for round_index in range(10):
            bus.emit(RoundCompleted(cluster="c0", round=round_index,
                                    delivered=True, loss=0.1, time_s=1.0))
        assert console.renders == 0
        assert console.rows["c0"].round == 9


class TestReportPopulation:
    """Satellite: ScheduleReport fields fed by the bus / miss tracking."""

    def test_retirement_reasons_populated_without_telemetry(self):
        scheduler = build_scheduler(
            clusters=2,
            channels=ChannelSpec(loss=0.9, arq=ARQConfig(max_retries=0)),
            resilience=ResilientOrchestrationPolicy(
                max_consecutive_failures=3))
        report = scheduler.run(rounds_per_cluster=20)
        assert report.dead_clusters
        assert sum(report.retirement_reasons.values()) \
            == len(report.dead_clusters)

    def test_deadline_miss_rounds_event_engine(self):
        scheduler = EdgeTrainingScheduler(
            "round_robin", rng=np.random.default_rng(0), engine="event")
        config = OrcoDCSConfig(input_dim=DIM, latent_dim=LATENT, seed=0,
                               batch_size=BATCH)
        data = np.random.default_rng(0).random((ROWS, DIM))
        scheduler.add_cluster("tight", OrcoDCSFramework(config), data,
                              batch_size=BATCH, deadline_s=1e-9)
        report = scheduler.run(rounds_per_cluster=3)
        assert report.deadline_misses == ["tight"]
        # 1-based: the first completed round already blows the deadline.
        assert report.deadline_miss_rounds == {"tight": 1}

    def test_deadline_miss_rounds_sequential_engine(self):
        scheduler = EdgeTrainingScheduler(
            "round_robin", rng=np.random.default_rng(0), engine="sequential")
        config = OrcoDCSConfig(input_dim=DIM, latent_dim=LATENT, seed=0,
                               batch_size=BATCH)
        data = np.random.default_rng(0).random((ROWS, DIM))
        scheduler.add_cluster("tight", OrcoDCSFramework(config), data,
                              batch_size=BATCH, deadline_s=1e-9)
        report = scheduler.run(rounds_per_cluster=3)
        assert report.deadline_miss_rounds == {"tight": 1}

    def test_deadline_missed_event_emitted_once(self):
        events = []
        bus = TelemetryBus()
        bus.subscribe(events.append, kinds=(DeadlineMissed.kind,))
        scheduler = EdgeTrainingScheduler(
            "round_robin", rng=np.random.default_rng(0), engine="event",
            telemetry=bus)
        config = OrcoDCSConfig(input_dim=DIM, latent_dim=LATENT, seed=0,
                               batch_size=BATCH)
        data = np.random.default_rng(0).random((ROWS, DIM))
        scheduler.add_cluster("tight", OrcoDCSFramework(config), data,
                              batch_size=BATCH, deadline_s=1e-9)
        scheduler.run(rounds_per_cluster=5)
        assert len(events) == 1
        assert events[0].cluster == "tight"

    def test_retired_events_match_report(self):
        events = []
        bus = TelemetryBus()
        bus.subscribe(events.append, kinds=(ClusterRetired.kind,))
        scheduler = build_scheduler(
            telemetry=bus, clusters=2,
            channels=ChannelSpec(loss=0.9, arq=ARQConfig(max_retries=0)),
            resilience=ResilientOrchestrationPolicy(
                max_consecutive_failures=3))
        report = scheduler.run(rounds_per_cluster=20)
        assert {e.cluster for e in events} == set(report.dead_clusters)
        reasons = {}
        for event in events:
            reasons[event.reason] = reasons.get(event.reason, 0) + 1
        assert reasons == report.retirement_reasons
