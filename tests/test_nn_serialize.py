"""Unit tests for checkpoint save/load."""

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor


class TestSerialize:
    def test_state_roundtrip(self, tmp_path):
        state = {"a": np.arange(4.0), "b.c": np.ones((2, 2))}
        path = str(tmp_path / "ckpt")
        nn.save_state(path, state)
        loaded = nn.load_state(path)
        assert set(loaded) == set(state)
        assert np.allclose(loaded["b.c"], state["b.c"])

    def test_npz_suffix_optional(self, tmp_path):
        path = str(tmp_path / "model.npz")
        nn.save_state(path, {"w": np.zeros(3)})
        assert np.allclose(nn.load_state(str(tmp_path / "model"))["w"], 0)

    def test_module_roundtrip(self, tmp_path):
        model = nn.Sequential(nn.Dense(4, 8), nn.ReLU(), nn.Dense(8, 2))
        path = str(tmp_path / "nested" / "model")
        nn.save_module(path, model)
        clone = nn.Sequential(nn.Dense(4, 8), nn.ReLU(), nn.Dense(8, 2))
        nn.load_module(path, clone)
        x = Tensor(np.random.default_rng(0).standard_normal((3, 4)))
        assert np.allclose(model(x).data, clone(x).data)

    def test_creates_missing_directories(self, tmp_path):
        path = str(tmp_path / "a" / "b" / "c" / "ckpt")
        nn.save_state(path, {"x": np.zeros(1)})
        assert np.allclose(nn.load_state(path)["x"], 0)
