"""Unit tests for checkpoint save/load."""

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor


class TestSerialize:
    def test_state_roundtrip(self, tmp_path):
        state = {"a": np.arange(4.0), "b.c": np.ones((2, 2))}
        path = str(tmp_path / "ckpt")
        nn.save_state(path, state)
        loaded = nn.load_state(path)
        assert set(loaded) == set(state)
        assert np.allclose(loaded["b.c"], state["b.c"])

    def test_npz_suffix_optional(self, tmp_path):
        path = str(tmp_path / "model.npz")
        nn.save_state(path, {"w": np.zeros(3)})
        assert np.allclose(nn.load_state(str(tmp_path / "model"))["w"], 0)

    def test_module_roundtrip(self, tmp_path):
        model = nn.Sequential(nn.Dense(4, 8), nn.ReLU(), nn.Dense(8, 2))
        path = str(tmp_path / "nested" / "model")
        nn.save_module(path, model)
        clone = nn.Sequential(nn.Dense(4, 8), nn.ReLU(), nn.Dense(8, 2))
        nn.load_module(path, clone)
        x = Tensor(np.random.default_rng(0).standard_normal((3, 4)))
        assert np.allclose(model(x).data, clone(x).data)

    def test_creates_missing_directories(self, tmp_path):
        path = str(tmp_path / "a" / "b" / "c" / "ckpt")
        nn.save_state(path, {"x": np.zeros(1)})
        assert np.allclose(nn.load_state(path)["x"], 0)


class TestDeploymentRoundTrip:
    """Satellite coverage: checkpoints survive the full deployment path.

    A trained encoder is saved, reloaded into a fresh model, and the
    *reloaded* weights are distributed column-by-column through an
    EncoderDeployment — the restored distributed encode must equal the
    original centralized one bit-for-bit-ish.
    """

    def _trained_model(self, devices=12, latent=3, seed=0):
        from repro.core import OrcoDCSConfig
        from repro.core.autoencoder import AsymmetricAutoencoder

        config = OrcoDCSConfig(input_dim=devices, latent_dim=latent,
                               seed=seed, noise_sigma=0.0)
        return AsymmetricAutoencoder(config, np.random.default_rng(seed))

    def _cluster(self, devices=12):
        from repro.wsn import WSNetwork, build_aggregation_tree

        positions = np.array([[i * 9.0, (i % 4) * 9.0]
                              for i in range(devices)])
        network = WSNetwork(positions, comm_range_m=30.0,
                            battery_capacity_j=50.0)
        network.set_aggregator(0)
        return network, build_aggregation_tree(network)

    def test_roundtrip_through_column_distribution(self, tmp_path):
        from repro.core import OrcoDCSConfig
        from repro.core.autoencoder import AsymmetricAutoencoder
        from repro.core.deployment import EncoderDeployment

        model = self._trained_model()
        path = str(tmp_path / "encoder")
        nn.save_module(path, model)

        config = OrcoDCSConfig(input_dim=12, latent_dim=3, seed=99,
                               noise_sigma=0.0)
        clone = AsymmetricAutoencoder(config, np.random.default_rng(99))
        nn.load_module(path, clone)

        network, tree = self._cluster()
        deployment = EncoderDeployment(clone, network, tree)
        deployment.distribute()
        readings = {nid: float(np.sin(nid)) for nid in network.device_ids}
        collected = deployment.compressed_round(readings,
                                                charge_network=False)

        reference = EncoderDeployment(model, *self._cluster())
        centralized = reference.centralized_latent(readings)
        assert np.allclose(collected.latent, centralized, atol=1e-12)
        assert collected.contributors == tuple(network.device_ids)

    def test_roundtrip_preserves_state_dict_exactly(self, tmp_path):
        model = self._trained_model(seed=4)
        path = str(tmp_path / "ckpt")
        nn.save_module(path, model)
        state = nn.load_state(path)
        for name, value in model.state_dict().items():
            assert np.array_equal(state[name], value)
