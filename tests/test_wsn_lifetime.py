"""Unit tests for the network-lifetime simulation."""

import numpy as np
import pytest

from repro.wsn import (
    compare_lifetime,
    lifetime_extension_factor,
    place_uniform,
    simulate_lifetime,
)


def deployment(n=40, seed=0):
    return place_uniform(n, (80.0, 80.0), np.random.default_rng(seed))


class TestSimulateLifetime:
    def test_raw_mode_eventually_kills_a_node(self):
        report = simulate_lifetime(deployment(), "raw", battery_j=0.01,
                                   max_rounds=5000)
        assert report.mode == "raw"
        assert report.rounds_to_first_death < 5000

    def test_hybrid_outlives_raw(self):
        reports = compare_lifetime(deployment(), latent_dim=4,
                                   battery_j=0.01, max_rounds=5000)
        assert reports["hybrid"].rounds_to_first_death > \
            reports["raw"].rounds_to_first_death
        assert lifetime_extension_factor(reports) > 1.0

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            simulate_lifetime(deployment(), "quantum")

    def test_energy_spread_reflects_hotspots(self):
        # Nodes near the aggregator relay everyone's data under raw
        # aggregation, so the consumption spread is well above uniform.
        report = simulate_lifetime(deployment(), "raw", battery_j=0.01,
                                   max_rounds=2000)
        assert report.energy_spread > 1.5

    def test_large_battery_survives_run(self):
        report = simulate_lifetime(deployment(16, seed=1), "hybrid",
                                   latent_dim=4, battery_j=100.0,
                                   max_rounds=20)
        assert report.survived_whole_run
        assert report.rounds_to_fraction_dead is None

    def test_fraction_death_round_after_first(self):
        report = simulate_lifetime(deployment(), "raw", battery_j=0.02,
                                   max_rounds=8000, death_fraction=0.1)
        if report.rounds_to_fraction_dead is not None:
            assert report.rounds_to_fraction_dead >= report.rounds_to_first_death


class TestCosamp:
    def test_exact_recovery(self):
        from repro.cs import cosamp, gaussian_matrix
        rng = np.random.default_rng(0)
        A = gaussian_matrix(48, 96, rng)
        x = np.zeros(96)
        support = rng.choice(96, 6, replace=False)
        x[support] = rng.standard_normal(6) * 2
        result = cosamp(A, A @ x, sparsity=6)
        assert np.allclose(result.solution, x, atol=1e-6)
        assert result.converged

    def test_registry_lookup(self):
        from repro.cs import cosamp, get_solver
        assert get_solver("cosamp") is cosamp

    def test_sparsity_validation(self):
        from repro.cs import cosamp
        with pytest.raises(ValueError):
            cosamp(np.eye(8), np.ones(8), sparsity=5)
