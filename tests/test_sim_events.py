"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import EventScheduler, SimulationError


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert EventScheduler().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = EventScheduler()
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_same_time_events_fire_fifo(self):
        sim = EventScheduler()
        fired = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_schedule_at_absolute_time(self):
        sim = EventScheduler()
        fired = []
        sim.schedule_at(5.0, fired.append, "x")
        sim.run()
        assert fired == ["x"] and sim.now == 5.0

    def test_cannot_schedule_into_the_past(self):
        sim = EventScheduler(start_s=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_events_can_schedule_more_events(self):
        sim = EventScheduler()
        fired = []

        def chain(depth):
            fired.append(sim.now)
            if depth:
                sim.schedule(1.0, chain, depth - 1)

        sim.schedule(1.0, chain, 3)
        sim.run()
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_cancel_skips_callback(self):
        sim = EventScheduler()
        fired = []
        handle = sim.schedule(1.0, fired.append, "dropped")
        sim.schedule(2.0, fired.append, "kept")
        handle.cancel()
        sim.run()
        assert fired == ["kept"]
        assert sim.events_processed == 1

    def test_len_and_empty_ignore_cancelled(self):
        sim = EventScheduler()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert len(sim) == 1 and not sim.empty
        keep.cancel()
        assert sim.empty


class TestRunUntil:
    def test_run_until_leaves_later_events_queued(self):
        sim = EventScheduler()
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=2.0)
        assert fired == ["early"] and sim.now == 2.0
        sim.run()
        assert fired == ["early", "late"] and sim.now == 5.0

    def test_run_until_advances_idle_clock(self):
        sim = EventScheduler()
        sim.run(until=7.5)
        assert sim.now == 7.5

    def test_max_events_guard(self):
        sim = EventScheduler()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=50)

    def test_step_returns_false_when_drained(self):
        sim = EventScheduler()
        sim.schedule(1.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False


class TestProcesses:
    def test_process_yields_delays(self):
        sim = EventScheduler()
        trace = []

        def proc():
            trace.append(("start", sim.now))
            yield 2.0
            trace.append(("mid", sim.now))
            yield 3.0
            trace.append(("end", sim.now))

        sim.process(proc())
        sim.run()
        assert trace == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]

    def test_processes_interleave_with_events(self):
        sim = EventScheduler()
        trace = []

        def proc():
            yield 1.0
            trace.append("proc@1")
            yield 2.0
            trace.append("proc@3")

        sim.process(proc())
        sim.schedule(2.0, trace.append, "event@2")
        sim.run()
        assert trace == ["proc@1", "event@2", "proc@3"]

    def test_process_rejects_bad_yield(self):
        sim = EventScheduler()

        def proc():
            yield -1.0

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_two_processes_share_the_clock(self):
        sim = EventScheduler()
        trace = []

        def worker(name, period):
            for _ in range(2):
                yield period
                trace.append((name, sim.now))

        sim.process(worker("fast", 1.0))
        sim.process(worker("slow", 1.5))
        sim.run()
        assert trace == [("fast", 1.0), ("slow", 1.5), ("fast", 2.0),
                         ("slow", 3.0)]


class TestTaggedEvents:
    def test_next_time_finds_earliest_pending_tag(self):
        sim = EventScheduler()
        sim.schedule(5.0, lambda: None, tag="fault")
        sim.schedule(2.0, lambda: None, tag="fault")
        sim.schedule(1.0, lambda: None)          # untagged
        assert sim.next_time("fault") == 2.0

    def test_next_time_ignores_cancelled_and_fired(self):
        sim = EventScheduler()
        early = sim.schedule(1.0, lambda: None, tag="fault")
        sim.schedule(3.0, lambda: None, tag="fault")
        early.cancel()
        assert sim.next_time("fault") == 3.0
        sim.run()
        assert sim.next_time("fault") == float("inf")

    def test_next_time_empty_is_inf(self):
        assert EventScheduler().next_time("fault") == float("inf")
