"""Unit tests for the compute/transmission timing model."""

import pytest

from repro.core import (
    DeviceProfile,
    OrchestrationTimingModel,
    cloud_profile,
    conv2d_flops,
    dense_flops,
    dense_stack_flops,
    edge_server_profile,
    iot_aggregator_profile,
    overhead_report,
    training_flops,
)


class TestDeviceProfile:
    def test_seconds_for(self):
        device = DeviceProfile("x", 1e6)
        assert device.seconds_for(2e6) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile("x", 0)
        with pytest.raises(ValueError):
            DeviceProfile("x", 1e6).seconds_for(-1)

    def test_profile_ordering(self):
        # IoT-class << edge << cloud, the premise of the whole design.
        assert iot_aggregator_profile().flops_per_second * 100 < \
            edge_server_profile().flops_per_second
        assert edge_server_profile().flops_per_second < \
            cloud_profile().flops_per_second


class TestFlopFormulas:
    def test_dense(self):
        assert dense_flops(10, 20) == 400

    def test_conv(self):
        assert conv2d_flops(3, 8, (3, 3), (28, 28)) == \
            2 * 8 * 28 * 28 * 3 * 9

    def test_training_multiplier(self):
        assert training_flops(100) == 300.0

    def test_stack(self):
        assert dense_stack_flops([10, 20, 5]) == 2 * 10 * 20 + 2 * 20 * 5


class TestTimingModel:
    def test_round_bytes(self):
        model = OrchestrationTimingModel()
        up, down = model.round_bytes(batch_size=32, input_dim=784,
                                     latent_dim=128)
        assert up == 32 * 128 * 4
        assert down == 32 * (784 + 128) * 4

    def test_round_components_positive_and_additive(self):
        model = OrchestrationTimingModel()
        timing = model.training_round(32, 784, 128,
                                      encoder_forward_flops=1e5,
                                      decoder_forward_flops=1e5)
        parts = [timing.aggregator_compute_s, timing.edge_compute_s,
                 timing.uplink_s, timing.downlink_s]
        assert all(p > 0 for p in parts)
        assert abs(timing.total_s - sum(parts)) < 1e-12

    def test_weak_aggregator_dominates_equal_flops(self):
        model = OrchestrationTimingModel()
        timing = model.training_round(32, 784, 128, 1e6, 1e6)
        assert timing.aggregator_compute_s > 50 * timing.edge_compute_s

    def test_bigger_latent_costs_more_uplink(self):
        model = OrchestrationTimingModel()
        small = model.training_round(32, 784, 128, 1e5, 1e5)
        large = model.training_round(32, 784, 1024, 1e5, 1e5)
        assert large.uplink_s > small.uplink_s

    def test_inference_round_cheaper_than_training(self):
        model = OrchestrationTimingModel()
        train = model.training_round(32, 784, 128, 1e5, 1e5).total_s
        infer = model.inference_round(32, 128, 1e5)
        assert infer < train


class TestOverheadReport:
    def test_edge_share(self):
        report = overhead_report(32, 784, 128,
                                 encoder_forward_flops=1e5,
                                 decoder_forward_flops=9e5)
        assert abs(report.edge_compute_share - 0.9) < 1e-12

    def test_byte_counts(self):
        report = overhead_report(10, 100, 20, 1e3, 1e3)
        assert report.uplink_bytes_per_round == 10 * 20 * 4
        assert report.downlink_bytes_per_round == 10 * 120 * 4

    def test_zero_flops_share(self):
        report = overhead_report(1, 1, 1, 0, 0)
        assert report.edge_compute_share == 0.0
