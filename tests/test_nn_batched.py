"""Unit tests for the stacked (fleet) nn primitives."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BatchedDense,
    Dense,
    Dropout,
    FleetAdam,
    FleetIncompatibilityError,
    FleetSGD,
    HuberLoss,
    MSELoss,
    ReLU,
    SGD,
    Sequential,
    Sigmoid,
    Tensor,
    VectorHuberLoss,
    fleet_optimizer_from,
    fleet_optimizer_to,
    run_stack,
    stack_sequential,
    unstack_sequential,
)
from repro.nn.losses import BCELoss, CrossEntropyLoss


def make_models(K=3, din=6, dout=4, seed=0):
    rng = np.random.default_rng(seed)
    return [Sequential(Dense(din, dout, rng=rng), Sigmoid()) for _ in range(K)]


class TestBatchedDense:
    def test_forward_matches_slices(self):
        rng = np.random.default_rng(0)
        layers = [Dense(5, 3, rng=rng) for _ in range(4)]
        batched = BatchedDense.from_layers(layers)
        x = rng.random((4, 7, 5))
        out = batched(Tensor(x))
        assert out.shape == (4, 7, 3)
        for k, layer in enumerate(layers):
            expected = layer(Tensor(x[k])).data
            np.testing.assert_array_equal(out.data[k], expected)

    def test_backward_matches_slices(self):
        rng = np.random.default_rng(1)
        layers = [Dense(5, 3, rng=rng) for _ in range(3)]
        batched = BatchedDense.from_layers(layers)
        x = rng.random((3, 6, 5))
        batched(Tensor(x)).sum().backward()
        for k, layer in enumerate(layers):
            layer(Tensor(x[k])).sum().backward()
            np.testing.assert_allclose(batched.weight.grad[k],
                                       layer.weight.grad, atol=1e-12)
            np.testing.assert_allclose(batched.bias.grad[k, 0],
                                       layer.bias.grad, atol=1e-12)

    def test_active_subset_gathers_and_scatters(self):
        rng = np.random.default_rng(2)
        layers = [Dense(4, 2, rng=rng) for _ in range(5)]
        batched = BatchedDense.from_layers(layers)
        x = rng.random((2, 3, 4))
        out = batched(Tensor(x), active=[1, 3])
        np.testing.assert_array_equal(out.data[0], layers[1](Tensor(x[0])).data)
        np.testing.assert_array_equal(out.data[1], layers[3](Tensor(x[1])).data)
        out.sum().backward()
        # Inactive slices get zero gradient; active slices get the usual one.
        assert np.all(batched.weight.grad[[0, 2, 4]] == 0)
        assert np.any(batched.weight.grad[1] != 0)
        assert np.any(batched.weight.grad[3] != 0)

    def test_roundtrip_to_layers(self):
        layers = [Dense(3, 2, rng=np.random.default_rng(k)) for k in range(3)]
        batched = BatchedDense.from_layers(layers)
        batched.weight.data += 1.0
        batched.to_layers(layers)
        for k, layer in enumerate(layers):
            np.testing.assert_array_equal(layer.weight.data,
                                          batched.weight.data[k])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(FleetIncompatibilityError):
            BatchedDense.from_layers([Dense(3, 2), Dense(3, 4)])


class TestStackSequential:
    def test_stack_and_run_matches_models(self):
        models = make_models()
        stacked = stack_sequential(models)
        x = np.random.default_rng(3).random((3, 5, 6))
        out = run_stack(stacked, Tensor(x))
        for k, model in enumerate(models):
            np.testing.assert_array_equal(out.data[k], model(Tensor(x[k])).data)

    def test_unstack_writes_back(self):
        models = make_models()
        stacked = stack_sequential(models)
        stacked[0].weight.data *= 2.0
        unstack_sequential(stacked, models)
        np.testing.assert_array_equal(models[1][0].weight.data,
                                      stacked[0].weight.data[1])

    def test_depth_mismatch_rejected(self):
        with pytest.raises(FleetIncompatibilityError):
            stack_sequential([Sequential(Dense(3, 2)),
                              Sequential(Dense(3, 2), Sigmoid())])

    def test_layer_class_mismatch_rejected(self):
        with pytest.raises(FleetIncompatibilityError):
            stack_sequential([Sequential(Dense(3, 2), Sigmoid()),
                              Sequential(Dense(3, 2), ReLU())])

    def test_stateful_layers_rejected(self):
        with pytest.raises(FleetIncompatibilityError):
            stack_sequential([Sequential(Dense(3, 2), Dropout(0.5)),
                              Sequential(Dense(3, 2), Dropout(0.5))])


class TestFleetOptimizers:
    def _stacked_problem(self, K=3, seed=0):
        rng = np.random.default_rng(seed)
        singles = [Dense(4, 3, rng=rng) for _ in range(K)]
        batched = BatchedDense.from_layers(singles)
        x = rng.random((K, 5, 4))
        target = rng.random((K, 5, 3))
        return singles, batched, x, target

    def _train(self, module, opt, x, target, batched, steps, active=None):
        for _ in range(steps):
            if batched:
                out = module(Tensor(x), active=active)
                rows = active if active is not None else range(x.shape[0])
                diff = out - Tensor(target[list(rows)] if active is not None
                                    else target)
            else:
                out = module(Tensor(x))
                diff = out - Tensor(target)
            loss = (diff * diff).sum()
            opt.zero_grad()
            loss.backward()
            opt.step(active) if batched else opt.step()

    @pytest.mark.parametrize("fleet_cls,single_cls",
                             [(FleetAdam, Adam), (FleetSGD, SGD)])
    def test_full_step_matches_singles(self, fleet_cls, single_cls):
        singles, batched, x, target = self._stacked_problem()
        fleet_opt = fleet_cls(batched.parameters(), lr=0.01, num_slices=3)
        self._train(batched, fleet_opt, x, target, batched=True, steps=4)
        for k, layer in enumerate(singles):
            opt = single_cls(layer.parameters(), lr=0.01)
            self._train(layer, opt, x[k], target[k], batched=False, steps=4)
            np.testing.assert_allclose(batched.weight.data[k],
                                       layer.weight.data, atol=1e-12)

    def test_masked_adam_keeps_per_slice_state(self):
        singles, batched, x, target = self._stacked_problem(seed=1)
        fleet_opt = FleetAdam(batched.parameters(), lr=0.01, num_slices=3)
        # Slice 1 trains twice, slices 0/2 once: per-slice t must diverge.
        self._train(batched, fleet_opt, x, target, batched=True, steps=1)
        self._train(batched, fleet_opt, x[[1]], target, batched=True,
                    steps=1, active=[1])
        assert list(fleet_opt._t) == [1, 2, 1]
        # Slice 0 must equal a standalone model trained a single step.
        layer = singles[0]
        opt = Adam(layer.parameters(), lr=0.01)
        self._train(layer, opt, x[0], target[0], batched=False, steps=1)
        np.testing.assert_allclose(batched.weight.data[0], layer.weight.data,
                                   atol=1e-12)

    def test_state_roundtrip(self):
        singles, batched, x, target = self._stacked_problem(seed=2)
        single_opts = [Adam(layer.parameters(), lr=0.02) for layer in singles]
        for layer, opt in zip(singles, single_opts):
            self._train(layer, opt, x[0], target[0], batched=False, steps=2)
        fleet_opt = fleet_optimizer_from(single_opts, batched.parameters())
        assert list(fleet_opt._t) == [2, 2, 2]
        np.testing.assert_array_equal(fleet_opt._m[0][1], single_opts[1]._m[0])
        fleet_opt._m[0][1] += 0.5
        fleet_optimizer_to(fleet_opt, single_opts)
        np.testing.assert_array_equal(single_opts[1]._m[0], fleet_opt._m[0][1])

    def test_mixed_optimizers_rejected(self):
        layers = [Dense(2, 2), Dense(2, 2)]
        batched = BatchedDense.from_layers(layers)
        with pytest.raises(FleetIncompatibilityError):
            fleet_optimizer_from([Adam(layers[0].parameters(), lr=0.01),
                                  SGD(layers[1].parameters(), lr=0.01)],
                                 batched.parameters())

    def test_mixed_hyperparameters_rejected(self):
        # Same class + lr but different momentum must not stack silently:
        # slice 1 would be retrained with slice 0's momentum.
        layers = [Dense(2, 2), Dense(2, 2)]
        batched = BatchedDense.from_layers(layers)
        with pytest.raises(FleetIncompatibilityError):
            fleet_optimizer_from(
                [SGD(layers[0].parameters(), lr=0.01, momentum=0.9),
                 SGD(layers[1].parameters(), lr=0.01)],
                batched.parameters())
        with pytest.raises(FleetIncompatibilityError):
            fleet_optimizer_from(
                [Adam(layers[0].parameters(), lr=0.01, betas=(0.8, 0.999)),
                 Adam(layers[1].parameters(), lr=0.01)],
                batched.parameters())


class TestPerClusterLosses:
    @pytest.mark.parametrize("loss", [MSELoss(), HuberLoss(0.5),
                                      VectorHuberLoss(3.0), BCELoss()])
    def test_matches_per_slice_forward(self, loss):
        rng = np.random.default_rng(0)
        prediction = Tensor(rng.random((4, 6, 5)), requires_grad=True)
        target = rng.random((4, 6, 5))
        per = loss.per_cluster(prediction, target)
        assert per.shape == (4,)
        for k in range(4):
            single = loss(Tensor(prediction.data[k]), target[k]).item()
            assert abs(per.data[k] - single) < 1e-12

    @pytest.mark.parametrize("loss", [MSELoss(), HuberLoss(0.5)])
    def test_fused_gradient_matches_per_slice(self, loss):
        rng = np.random.default_rng(1)
        stacked = rng.random((3, 4, 5))
        prediction = Tensor(stacked, requires_grad=True)
        loss.per_cluster(prediction, np.zeros((3, 4, 5))).sum().backward()
        for k in range(3):
            single = Tensor(stacked[k], requires_grad=True)
            loss(single, np.zeros((4, 5))).backward()
            np.testing.assert_allclose(prediction.grad[k], single.grad,
                                       atol=1e-15)

    def test_unsupported_loss_raises(self):
        with pytest.raises(NotImplementedError):
            CrossEntropyLoss().per_cluster(Tensor(np.zeros((2, 3, 4))),
                                           np.zeros((2, 3, 4)))
