"""Unit tests for the multi-cluster edge training scheduler."""

import numpy as np
import pytest

from repro.core import (
    EdgeTrainingScheduler,
    OrcoDCSConfig,
    OrcoDCSFramework,
    compare_policies,
)


def make_framework(dim=24, latent=4, seed=0, decoder_layers=1, noise=0.0):
    config = OrcoDCSConfig(input_dim=dim, latent_dim=latent, seed=seed,
                           noise_sigma=noise, decoder_layers=decoder_layers)
    return OrcoDCSFramework(config)


def cluster_data(dim=24, count=64, seed=0):
    return np.random.default_rng(seed).random((count, dim))


class TestSchedulerSetup:
    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            EdgeTrainingScheduler("lottery")

    def test_duplicate_cluster_name(self):
        scheduler = EdgeTrainingScheduler("fifo")
        scheduler.add_cluster("a", make_framework(), cluster_data())
        with pytest.raises(ValueError):
            scheduler.add_cluster("a", make_framework(seed=1), cluster_data())

    def test_run_without_clusters(self):
        with pytest.raises(RuntimeError):
            EdgeTrainingScheduler("fifo").run()

    def test_rounds_validation(self):
        scheduler = EdgeTrainingScheduler("fifo")
        scheduler.add_cluster("a", make_framework(), cluster_data())
        with pytest.raises(ValueError):
            scheduler.run(rounds_per_cluster=0)


class TestSchedulerRun:
    def _scheduler(self, policy, num_clusters=3, rng_seed=0):
        scheduler = EdgeTrainingScheduler(policy,
                                          rng=np.random.default_rng(rng_seed))
        for index in range(num_clusters):
            scheduler.add_cluster(f"cluster-{index}",
                                  make_framework(seed=index),
                                  cluster_data(seed=index))
        return scheduler

    @pytest.mark.parametrize("policy", ["fifo", "round_robin",
                                        "loss_priority", "deadline"])
    def test_every_cluster_gets_its_rounds(self, policy):
        scheduler = self._scheduler(policy)
        report = scheduler.run(rounds_per_cluster=8)
        assert report.rounds_per_cluster == {
            "cluster-0": 8, "cluster-1": 8, "cluster-2": 8}
        assert report.policy == policy

    def test_training_actually_progresses(self):
        scheduler = self._scheduler("round_robin")
        scheduler.run(rounds_per_cluster=25)
        for cluster in scheduler.clusters:
            first = cluster.history.rounds[0].train_loss
            last = cluster.history.rounds[-1].train_loss
            assert last < first

    def test_edge_time_accumulates(self):
        scheduler = self._scheduler("fifo")
        report = scheduler.run(rounds_per_cluster=5)
        assert report.total_edge_time_s > 0
        assert report.makespan_s >= report.total_edge_time_s

    def test_makespan_grows_with_cluster_count(self):
        small = self._scheduler("round_robin", num_clusters=2)
        large = self._scheduler("round_robin", num_clusters=5)
        assert large.run(5).makespan_s > small.run(5).makespan_s

    def test_deadline_misses_reported(self):
        scheduler = EdgeTrainingScheduler("deadline",
                                          rng=np.random.default_rng(0))
        scheduler.add_cluster("tight", make_framework(), cluster_data(),
                              deadline_s=1e-9)
        scheduler.add_cluster("loose", make_framework(seed=1),
                              cluster_data(seed=1), deadline_s=1e9)
        report = scheduler.run(rounds_per_cluster=3)
        assert "tight" in report.deadline_misses
        assert "loose" not in report.deadline_misses

    def test_loss_priority_prefers_lossier_cluster(self):
        # A cluster with a deep decoder starts with higher loss variance;
        # loss_priority must still give every cluster its full budget.
        scheduler = EdgeTrainingScheduler("loss_priority",
                                          rng=np.random.default_rng(0))
        scheduler.add_cluster("shallow", make_framework(seed=0),
                              cluster_data(seed=0))
        scheduler.add_cluster("deep", make_framework(seed=1, decoder_layers=3),
                              cluster_data(seed=1))
        report = scheduler.run(rounds_per_cluster=6)
        assert set(report.rounds_per_cluster.values()) == {6}


class TestSchedulerEdgeCases:
    def test_zero_clusters_raises(self):
        for engine in ("auto", "sequential", "batched"):
            with pytest.raises(RuntimeError):
                EdgeTrainingScheduler("round_robin", engine=engine).run()

    def test_single_cluster_runs_all_engines(self):
        for engine in ("sequential", "batched"):
            scheduler = EdgeTrainingScheduler(
                "round_robin", rng=np.random.default_rng(0), engine=engine)
            scheduler.add_cluster("only", make_framework(), cluster_data())
            report = scheduler.run(rounds_per_cluster=5)
            assert report.rounds_per_cluster == {"only": 5}
            assert report.makespan_s > 0
            assert len(report.completion_times["only"]) == 5

    def test_single_cluster_auto_uses_sequential(self):
        # Batching one cluster buys nothing; auto should not bother.
        scheduler = EdgeTrainingScheduler("round_robin",
                                          rng=np.random.default_rng(0))
        scheduler.add_cluster("only", make_framework(), cluster_data())
        assert scheduler.run(3).engine == "sequential"

    def test_deadline_policy_with_expired_budgets(self):
        # Every deadline is already blown (0 or negative): all clusters
        # still get their full budget, and every one is reported missed.
        for engine in ("sequential", "batched"):
            scheduler = EdgeTrainingScheduler(
                "deadline", rng=np.random.default_rng(0), engine=engine)
            scheduler.add_cluster("expired-a", make_framework(seed=0),
                                  cluster_data(seed=0), deadline_s=0.0)
            scheduler.add_cluster("expired-b", make_framework(seed=1),
                                  cluster_data(seed=1), deadline_s=-5.0)
            report = scheduler.run(rounds_per_cluster=4)
            assert report.rounds_per_cluster == {"expired-a": 4,
                                                 "expired-b": 4}
            assert set(report.deadline_misses) == {"expired-a", "expired-b"}

    def test_deadline_orders_by_earliest(self):
        scheduler = EdgeTrainingScheduler("deadline",
                                          rng=np.random.default_rng(0))
        scheduler.add_cluster("late", make_framework(seed=0),
                              cluster_data(seed=0), deadline_s=100.0)
        scheduler.add_cluster("soon", make_framework(seed=1),
                              cluster_data(seed=1), deadline_s=1.0)
        scheduler.add_cluster("never", make_framework(seed=2),
                              cluster_data(seed=2))
        report = scheduler.run(rounds_per_cluster=2)
        # EDF finishes "soon" first, undeadlined clusters last.
        assert report.completion_times["soon"][-1] \
            < report.completion_times["late"][-1] \
            < report.completion_times["never"][-1]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            EdgeTrainingScheduler("fifo", engine="quantum")

    def test_batched_engine_accepts_mixed_batch_sizes(self):
        # The strict homogeneous-fleet contract is gone: clusters with
        # different batch sizes partition into separate stacking groups
        # (the group key includes the batch size) and still batch.
        def build(engine):
            scheduler = EdgeTrainingScheduler("round_robin",
                                              rng=np.random.default_rng(0),
                                              engine=engine)
            scheduler.add_cluster("small", make_framework(seed=0),
                                  cluster_data(seed=0), batch_size=8)
            scheduler.add_cluster("large", make_framework(seed=1),
                                  cluster_data(seed=1), batch_size=16)
            return scheduler

        batched = build("batched")
        assert batched.execution_plan().groups == ((0,), (1,))
        report = batched.run(rounds_per_cluster=3)
        assert report.engine == "batched"
        sequential = build("sequential")
        sequential.run(rounds_per_cluster=3)
        for c_b, c_s in zip(batched.clusters, sequential.clusters):
            np.testing.assert_allclose(c_b.history.losses,
                                       c_s.history.losses, atol=1e-6)

    def test_batched_engine_accepts_short_data(self):
        # A cluster with less than one full batch of data cannot stack;
        # it runs as a singleton group inside the batched replay.
        scheduler = EdgeTrainingScheduler("round_robin",
                                          rng=np.random.default_rng(0),
                                          engine="batched")
        scheduler.add_cluster("short", make_framework(seed=0),
                              cluster_data(seed=0, count=4), batch_size=16)
        report = scheduler.run(rounds_per_cluster=2)
        assert report.engine == "batched"
        assert report.rounds_per_cluster == {"short": 2}

    def test_batched_engine_accepts_heterogeneous_models(self):
        def build(engine):
            scheduler = EdgeTrainingScheduler("round_robin",
                                              rng=np.random.default_rng(0),
                                              engine=engine)
            scheduler.add_cluster("shallow", make_framework(seed=0),
                                  cluster_data(seed=0))
            scheduler.add_cluster("deep",
                                  make_framework(seed=1, decoder_layers=3),
                                  cluster_data(seed=1))
            return scheduler

        batched = build("batched")
        report = batched.run(rounds_per_cluster=2)
        assert report.engine == "batched"
        sequential = build("sequential")
        report_seq = sequential.run(rounds_per_cluster=2)
        for c_b, c_s in zip(batched.clusters, sequential.clusters):
            np.testing.assert_allclose(c_b.history.losses,
                                       c_s.history.losses, atol=1e-6)
        assert report.makespan_s == pytest.approx(report_seq.makespan_s)

    def test_auto_falls_back_for_heterogeneous_models(self):
        scheduler = EdgeTrainingScheduler("round_robin",
                                          rng=np.random.default_rng(0))
        scheduler.add_cluster("shallow", make_framework(seed=0),
                              cluster_data(seed=0))
        scheduler.add_cluster("deep", make_framework(seed=1, decoder_layers=3),
                              cluster_data(seed=1))
        report = scheduler.run(rounds_per_cluster=3)
        assert report.engine == "sequential"
        assert report.rounds_per_cluster == {"shallow": 3, "deep": 3}

    def test_auto_batches_homogeneous_fleet(self):
        scheduler = EdgeTrainingScheduler("round_robin",
                                          rng=np.random.default_rng(0))
        for index in range(3):
            scheduler.add_cluster(f"c{index}", make_framework(seed=index),
                                  cluster_data(seed=index))
        assert scheduler.run(3).engine == "batched"


class TestEngineEquivalence:
    def _scheduler(self, policy, engine, num_clusters=3, deadlines=None):
        scheduler = EdgeTrainingScheduler(policy,
                                          rng=np.random.default_rng(7),
                                          engine=engine)
        for index in range(num_clusters):
            deadline = deadlines[index] if deadlines else None
            scheduler.add_cluster(f"cluster-{index}",
                                  make_framework(seed=index, noise=0.05),
                                  cluster_data(seed=index),
                                  deadline_s=deadline)
        return scheduler

    @pytest.mark.parametrize("policy", ["fifo", "round_robin",
                                        "loss_priority", "deadline"])
    def test_loss_trajectories_match(self, policy):
        sequential = self._scheduler(policy, "sequential")
        batched = self._scheduler(policy, "batched")
        report_seq = sequential.run(rounds_per_cluster=10)
        report_bat = batched.run(rounds_per_cluster=10)
        assert report_seq.engine == "sequential"
        assert report_bat.engine == "batched"
        for c_seq, c_bat in zip(sequential.clusters, batched.clusters):
            np.testing.assert_allclose(c_bat.history.losses,
                                       c_seq.history.losses, atol=1e-6)
            np.testing.assert_allclose(c_bat.history.times,
                                       c_seq.history.times, rtol=1e-12)

    @pytest.mark.parametrize("policy", ["fifo", "round_robin",
                                        "loss_priority", "deadline"])
    def test_schedule_accounting_matches(self, policy):
        deadlines = [1e-6, None, 1e9]
        report_seq = self._scheduler(policy, "sequential",
                                     deadlines=deadlines).run(8)
        report_bat = self._scheduler(policy, "batched",
                                     deadlines=deadlines).run(8)
        assert report_bat.makespan_s == pytest.approx(report_seq.makespan_s)
        assert report_bat.total_edge_time_s == \
            pytest.approx(report_seq.total_edge_time_s)
        assert report_bat.deadline_misses == report_seq.deadline_misses
        for name, times in report_seq.completion_times.items():
            np.testing.assert_allclose(report_bat.completion_times[name],
                                       times, rtol=1e-12)

    def test_ledgers_match_across_engines(self):
        sequential = self._scheduler("round_robin", "sequential")
        batched = self._scheduler("round_robin", "batched")
        sequential.run(6)
        batched.run(6)
        for c_seq, c_bat in zip(sequential.clusters, batched.clusters):
            assert c_bat.trainer.ledger.by_kind() == \
                c_seq.trainer.ledger.by_kind()


class TestComparePolicies:
    def test_all_policies_complete_same_workload(self):
        def make_clusters():
            return [(f"c{i}", make_framework(seed=i), cluster_data(seed=i))
                    for i in range(2)]

        reports = compare_policies(make_clusters, rounds_per_cluster=6)
        assert set(reports) == {"fifo", "round_robin", "loss_priority",
                                "deadline"}
        edge_times = {round(r.total_edge_time_s, 9) for r in reports.values()}
        # Same work -> same total edge compute, whatever the order.
        assert len(edge_times) == 1
        for report in reports.values():
            assert report.mean_final_loss < float("inf")


class TestGroupBatching:
    """auto resolves mixed fleets into homogeneous stacking groups."""

    def _mixed(self, engine="auto"):
        scheduler = EdgeTrainingScheduler("round_robin",
                                          rng=np.random.default_rng(0),
                                          engine=engine)
        for index, layers in enumerate([1, 1, 3, 3]):
            scheduler.add_cluster(
                f"c{index}",
                make_framework(seed=index, decoder_layers=layers,
                               noise=0.05),
                cluster_data(seed=index))
        return scheduler

    def test_auto_batches_mixed_fleet_by_group(self):
        scheduler = self._mixed()
        plan = scheduler.execution_plan()
        assert plan.engine == "batched"
        assert sorted(plan.groups) == [(0, 1), (2, 3)]
        assert scheduler.run(4).engine == "batched"

    def test_group_batched_matches_sequential(self):
        batched = self._mixed()
        report_bat = batched.run(rounds_per_cluster=8)
        sequential = self._mixed(engine="sequential")
        report_seq = sequential.run(rounds_per_cluster=8)
        for c_b, c_s in zip(batched.clusters, sequential.clusters):
            np.testing.assert_allclose(c_b.history.losses,
                                       c_s.history.losses, atol=1e-6)
            np.testing.assert_allclose(c_b.history.times,
                                       c_s.history.times, rtol=1e-12)
        assert report_bat.makespan_s == pytest.approx(report_seq.makespan_s)
        assert report_bat.completion_times == report_seq.completion_times

    def test_explicit_batched_batches_mixed_fleet_by_group(self):
        # engine="batched" now takes the same ExecutionPlan stacking
        # groups as auto: a mixed fleet batches group by group instead
        # of raising.
        batched = self._mixed(engine="batched")
        plan = batched.execution_plan()
        assert plan.engine == "batched"
        assert sorted(plan.groups) == [(0, 1), (2, 3)]
        report = batched.run(rounds_per_cluster=4)
        assert report.engine == "batched"
        sequential = self._mixed(engine="sequential")
        report_seq = sequential.run(rounds_per_cluster=4)
        for c_b, c_s in zip(batched.clusters, sequential.clusters):
            np.testing.assert_allclose(c_b.history.losses,
                                       c_s.history.losses, atol=1e-6)
        assert report.completion_times == report_seq.completion_times

    def test_two_odd_singletons_fall_back_to_sequential(self):
        scheduler = EdgeTrainingScheduler("round_robin",
                                          rng=np.random.default_rng(0))
        scheduler.add_cluster("shallow", make_framework(seed=0),
                              cluster_data(seed=0))
        scheduler.add_cluster("deep",
                              make_framework(seed=1, decoder_layers=3),
                              cluster_data(seed=1))
        plan = scheduler.execution_plan()
        assert plan.engine == "sequential"
        assert plan.groups == ((0,), (1,))
