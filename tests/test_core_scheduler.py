"""Unit tests for the multi-cluster edge training scheduler."""

import numpy as np
import pytest

from repro.core import (
    EdgeTrainingScheduler,
    OrcoDCSConfig,
    OrcoDCSFramework,
    compare_policies,
)


def make_framework(dim=24, latent=4, seed=0, decoder_layers=1):
    config = OrcoDCSConfig(input_dim=dim, latent_dim=latent, seed=seed,
                           noise_sigma=0.0, decoder_layers=decoder_layers)
    return OrcoDCSFramework(config)


def cluster_data(dim=24, count=64, seed=0):
    return np.random.default_rng(seed).random((count, dim))


class TestSchedulerSetup:
    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            EdgeTrainingScheduler("lottery")

    def test_duplicate_cluster_name(self):
        scheduler = EdgeTrainingScheduler("fifo")
        scheduler.add_cluster("a", make_framework(), cluster_data())
        with pytest.raises(ValueError):
            scheduler.add_cluster("a", make_framework(seed=1), cluster_data())

    def test_run_without_clusters(self):
        with pytest.raises(RuntimeError):
            EdgeTrainingScheduler("fifo").run()

    def test_rounds_validation(self):
        scheduler = EdgeTrainingScheduler("fifo")
        scheduler.add_cluster("a", make_framework(), cluster_data())
        with pytest.raises(ValueError):
            scheduler.run(rounds_per_cluster=0)


class TestSchedulerRun:
    def _scheduler(self, policy, num_clusters=3, rng_seed=0):
        scheduler = EdgeTrainingScheduler(policy,
                                          rng=np.random.default_rng(rng_seed))
        for index in range(num_clusters):
            scheduler.add_cluster(f"cluster-{index}",
                                  make_framework(seed=index),
                                  cluster_data(seed=index))
        return scheduler

    @pytest.mark.parametrize("policy", ["fifo", "round_robin",
                                        "loss_priority", "deadline"])
    def test_every_cluster_gets_its_rounds(self, policy):
        scheduler = self._scheduler(policy)
        report = scheduler.run(rounds_per_cluster=8)
        assert report.rounds_per_cluster == {
            "cluster-0": 8, "cluster-1": 8, "cluster-2": 8}
        assert report.policy == policy

    def test_training_actually_progresses(self):
        scheduler = self._scheduler("round_robin")
        report = scheduler.run(rounds_per_cluster=25)
        for cluster in scheduler.clusters:
            first = cluster.history.rounds[0].train_loss
            last = cluster.history.rounds[-1].train_loss
            assert last < first

    def test_edge_time_accumulates(self):
        scheduler = self._scheduler("fifo")
        report = scheduler.run(rounds_per_cluster=5)
        assert report.total_edge_time_s > 0
        assert report.makespan_s >= report.total_edge_time_s

    def test_makespan_grows_with_cluster_count(self):
        small = self._scheduler("round_robin", num_clusters=2)
        large = self._scheduler("round_robin", num_clusters=5)
        assert large.run(5).makespan_s > small.run(5).makespan_s

    def test_deadline_misses_reported(self):
        scheduler = EdgeTrainingScheduler("deadline",
                                          rng=np.random.default_rng(0))
        scheduler.add_cluster("tight", make_framework(), cluster_data(),
                              deadline_s=1e-9)
        scheduler.add_cluster("loose", make_framework(seed=1),
                              cluster_data(seed=1), deadline_s=1e9)
        report = scheduler.run(rounds_per_cluster=3)
        assert "tight" in report.deadline_misses
        assert "loose" not in report.deadline_misses

    def test_loss_priority_prefers_lossier_cluster(self):
        # A cluster with a deep decoder starts with higher loss variance;
        # loss_priority must still give every cluster its full budget.
        scheduler = EdgeTrainingScheduler("loss_priority",
                                          rng=np.random.default_rng(0))
        scheduler.add_cluster("shallow", make_framework(seed=0),
                              cluster_data(seed=0))
        scheduler.add_cluster("deep", make_framework(seed=1, decoder_layers=3),
                              cluster_data(seed=1))
        report = scheduler.run(rounds_per_cluster=6)
        assert set(report.rounds_per_cluster.values()) == {6}


class TestComparePolicies:
    def test_all_policies_complete_same_workload(self):
        def make_clusters():
            return [(f"c{i}", make_framework(seed=i), cluster_data(seed=i))
                    for i in range(2)]

        reports = compare_policies(make_clusters, rounds_per_cluster=6)
        assert set(reports) == {"fifo", "round_robin", "loss_priority",
                                "deadline"}
        edge_times = {round(r.total_edge_time_s, 9) for r in reports.values()}
        # Same work -> same total edge compute, whatever the order.
        assert len(edge_times) == 1
        for report in reports.values():
            assert report.mean_final_loss < float("inf")
