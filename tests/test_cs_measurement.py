"""Unit tests for measurement matrices."""

import numpy as np
import pytest

from repro.cs import (
    bernoulli_matrix,
    gaussian_matrix,
    mutual_coherence,
    restricted_isometry_estimate,
    sparse_binary_matrix,
)


class TestGaussian:
    def test_shape(self):
        assert gaussian_matrix(10, 50, np.random.default_rng(0)).shape == (10, 50)

    def test_normalized_column_norms_near_one(self):
        m = gaussian_matrix(64, 128, np.random.default_rng(0))
        norms = np.linalg.norm(m, axis=0)
        assert abs(norms.mean() - 1.0) < 0.1

    def test_unnormalized_unit_variance(self):
        m = gaussian_matrix(100, 100, np.random.default_rng(0), normalize=False)
        assert abs(m.std() - 1.0) < 0.05

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            gaussian_matrix(50, 10)
        with pytest.raises(ValueError):
            gaussian_matrix(0, 10)


class TestBernoulli:
    def test_entries_are_pm_one_over_sqrt_m(self):
        m = bernoulli_matrix(16, 32, np.random.default_rng(0))
        assert set(np.round(np.abs(m).ravel(), 10)) == {0.25}

    def test_both_signs_present(self):
        m = bernoulli_matrix(16, 32, np.random.default_rng(0))
        assert (m > 0).any() and (m < 0).any()


class TestSparseBinary:
    def test_column_weight(self):
        m = sparse_binary_matrix(20, 40, ones_per_column=4,
                                 rng=np.random.default_rng(0))
        nonzeros = (m != 0).sum(axis=0)
        assert np.all(nonzeros == 4)

    def test_column_unit_norm(self):
        m = sparse_binary_matrix(20, 40, ones_per_column=4,
                                 rng=np.random.default_rng(0))
        assert np.allclose(np.linalg.norm(m, axis=0), 1.0)

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            sparse_binary_matrix(4, 8, ones_per_column=5)


class TestCoherence:
    def test_orthonormal_is_zero(self):
        assert mutual_coherence(np.eye(5)) == 0.0

    def test_duplicate_columns_give_one(self):
        col = np.random.default_rng(0).standard_normal((6, 1))
        m = np.hstack([col, col])
        assert abs(mutual_coherence(m) - 1.0) < 1e-9

    def test_gaussian_has_moderate_coherence(self):
        m = gaussian_matrix(64, 128, np.random.default_rng(0))
        mu = mutual_coherence(m)
        assert 0.0 < mu < 0.8


class TestRIPEstimate:
    def test_identity_is_perfect_isometry(self):
        assert restricted_isometry_estimate(np.eye(20), 3,
                                            rng=np.random.default_rng(0)) < 1e-12

    def test_gaussian_beats_badly_scaled(self):
        rng = np.random.default_rng(0)
        good = gaussian_matrix(60, 100, rng)
        bad = good * 3.0
        assert restricted_isometry_estimate(good, 4, rng=rng) < \
            restricted_isometry_estimate(bad, 4, rng=rng)

    def test_sparsity_validation(self):
        with pytest.raises(ValueError):
            restricted_isometry_estimate(np.eye(4), 0)
