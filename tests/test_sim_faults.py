"""Unit tests for declarative fault schedules and injection."""

import numpy as np
import pytest

from repro.sim import (
    EventScheduler,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    NetworkFaultTarget,
    apply_fault,
    apply_fault_to_network,
)
from repro.wsn import DeadNodeError, WSNetwork, select_aggregator


class RecordingTarget:
    """Minimal FaultTarget that logs every mutation."""

    def __init__(self):
        self.calls = []

    def kill_device(self, device):
        self.calls.append(("kill_device", device))

    def revive_device(self, device):
        self.calls.append(("revive_device", device))

    def kill_aggregator(self):
        self.calls.append(("kill_aggregator",))

    def brownout(self, fraction):
        self.calls.append(("brownout", fraction))

    def set_slow_factor(self, factor):
        self.calls.append(("set_slow_factor", factor))

    def kill_cluster(self):
        self.calls.append(("kill_cluster",))


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "meteor_strike", "c0")

    def test_node_death_needs_device(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "node_death", "c0")

    def test_brownout_magnitude_bounds(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "brownout", "c0", magnitude=1.5)

    def test_straggler_must_slow_down(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "straggler", "c0", magnitude=0.5)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(-1.0, "cluster_death", "c0")


class TestFaultSchedule:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule([
            FaultEvent(5.0, "cluster_death", "b"),
            FaultEvent(1.0, "node_death", "a", device=0),
        ])
        assert [e.time_s for e in schedule] == [1.0, 5.0]
        assert len(schedule) == 2 and bool(schedule)

    def test_between_window(self):
        schedule = FaultSchedule([
            FaultEvent(t, "cluster_death", "a") for t in (1.0, 2.0, 3.0)])
        assert [e.time_s for e in schedule.between(1.0, 3.0)] == [2.0, 3.0]

    def test_for_cluster_and_clusters(self):
        schedule = FaultSchedule([
            FaultEvent(1.0, "cluster_death", "a"),
            FaultEvent(2.0, "cluster_death", "b"),
            FaultEvent(3.0, "recover", "a"),
        ])
        assert schedule.clusters() == ["a", "b"]
        assert len(schedule.for_cluster("a")) == 2

    def test_scenario_builders(self):
        first = FaultSchedule.first_death("c", 10.0, device=3)
        assert first.events[0].kind == "node_death"
        attrition = FaultSchedule.attrition("c", [1, 2, 3], 5.0, 2.0)
        assert [e.time_s for e in attrition] == [5.0, 7.0, 9.0]
        window = FaultSchedule.straggler_window("c", 1.0, 4.0, 3.0)
        assert [e.kind for e in window] == ["straggler", "recover"]
        with pytest.raises(ValueError):
            FaultSchedule.straggler_window("c", 4.0, 1.0, 3.0)
        merged = first.merged(attrition, window)
        assert len(merged) == 6

    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule()


class TestInjector:
    def test_dispatch_covers_all_kinds(self):
        target = RecordingTarget()
        events = [
            FaultEvent(1.0, "node_death", "c", device=2),
            FaultEvent(2.0, "node_revive", "c", device=2),
            FaultEvent(3.0, "aggregator_death", "c"),
            FaultEvent(4.0, "brownout", "c", magnitude=0.5),
            FaultEvent(5.0, "straggler", "c", magnitude=4.0),
            FaultEvent(6.0, "recover", "c"),
            FaultEvent(7.0, "cluster_death", "c"),
        ]
        for event in events:
            apply_fault(event, target)
        assert target.calls == [
            ("kill_device", 2), ("revive_device", 2), ("kill_aggregator",),
            ("brownout", 0.5), ("set_slow_factor", 4.0),
            ("set_slow_factor", 1.0), ("kill_cluster",)]

    def test_armed_injector_fires_at_simulated_times(self):
        sim = EventScheduler()
        target = RecordingTarget()
        schedule = FaultSchedule([
            FaultEvent(2.0, "straggler", "c", magnitude=2.0),
            FaultEvent(1.0, "brownout", "c", magnitude=0.9),
        ])
        injector = FaultInjector(schedule, {"c": target})
        injector.arm(sim)
        sim.run(until=1.5)
        assert target.calls == [("brownout", 0.9)]
        sim.run()
        assert len(injector.applied) == 2
        assert injector.applied[0].kind == "brownout"

    def test_unknown_cluster_fails_loudly(self):
        injector = FaultInjector(
            FaultSchedule([FaultEvent(1.0, "cluster_death", "ghost")]),
            {"real": RecordingTarget()})
        with pytest.raises(KeyError):
            injector.arm(EventScheduler())


class TestNetworkTarget:
    def make_network(self, n=9):
        positions = np.array([[i * 10.0, (i % 3) * 10.0] for i in range(n)])
        network = WSNetwork(positions, comm_range_m=200.0,
                            battery_capacity_j=5.0)
        network.set_aggregator(int(select_aggregator(positions)))
        return network

    def test_node_death_marks_dead(self):
        network = self.make_network()
        apply_fault_to_network(
            FaultEvent(0.0, "node_death", "c", device=2), network)
        assert not network.is_alive(2)
        assert 2 not in network.alive_device_ids
        with pytest.raises(DeadNodeError):
            network.unicast(2, 3, 10)
        with pytest.raises(DeadNodeError):
            network.unicast(3, 2, 10)

    def test_aggregator_death_triggers_proximity_failover(self):
        network = self.make_network()
        old_head = network.aggregator_id
        target = apply_fault_to_network(
            FaultEvent(0.0, "aggregator_death", "c"), network)
        assert network.aggregator_id != old_head
        assert network.is_alive(network.aggregator_id)
        assert target.failovers == [network.aggregator_id]
        # The replacement is the proximity-rule winner among survivors.
        alive = network.alive_device_ids
        expected = alive[select_aggregator(
            np.array([network.nodes[n].position for n in alive]))]
        assert network.aggregator_id == expected

    def test_brownout_scales_batteries(self):
        network = self.make_network()
        before = [network.nodes[n].battery.remaining_j
                  for n in network.device_ids]
        apply_fault_to_network(
            FaultEvent(0.0, "brownout", "c", magnitude=0.25), network)
        after = [network.nodes[n].battery.remaining_j
                 for n in network.device_ids]
        assert all(b == pytest.approx(0.25 * a)
                   for a, b in zip(before, after))

    def test_revive_restores_node(self):
        network = self.make_network()
        target = NetworkFaultTarget(network)
        target.kill_device(4)
        assert not network.is_alive(4)
        target.revive_device(4)
        assert network.is_alive(4)

    def test_kill_cluster_empties_network(self):
        network = self.make_network()
        apply_fault_to_network(
            FaultEvent(0.0, "cluster_death", "c"), network)
        assert network.alive_device_ids == []
        assert network.alive_fraction() == 0.0


class TestFaultHorizon:
    def schedule(self):
        return FaultSchedule([
            FaultEvent(1.0, "straggler", "c", magnitude=2.0),
            FaultEvent(4.0, "recover", "c"),
        ])

    def test_next_after_walks_the_schedule(self):
        schedule = self.schedule()
        assert schedule.next_after(-1.0) == 1.0
        assert schedule.next_after(1.0) == 4.0   # strictly after
        assert schedule.next_after(4.0) == float("inf")

    def test_horizon_tracks_unfired_faults(self):
        sim = EventScheduler()
        target = RecordingTarget()
        injector = FaultInjector(self.schedule(), {"c": target})
        assert injector.horizon() == 1.0          # pre-arm: schedule order
        injector.arm(sim)
        assert injector.horizon() == 1.0
        sim.run(until=2.0)
        assert injector.horizon() == 4.0
        sim.run()
        assert injector.horizon() == float("inf")
        assert len(injector.applied) == 2
