"""Unified round pipeline + segment-batched event engine tests.

The fused engine's contract (ISSUE 3): a fault-schedule-only run (no
channel loss) reproduces the unfused event engine's modeled clock,
transmission ledger, completion times and report *bit-for-bit*, and its
per-cluster losses to stacked-GEMM reduction noise; the zero-fault
anchor still matches the sequential engine to <= 1e-6.
"""

import numpy as np
import pytest

from repro.core import (
    EdgeTrainingScheduler,
    OrcoDCSConfig,
    OrcoDCSFramework,
    ResilientOrchestrationPolicy,
)
from repro.sim import ARQConfig, ChannelSpec, FaultEvent, FaultSchedule

DIM = 24
LATENT = 4
BATCH = 8
ROWS = 48
ROUNDS = 10


def build_scheduler(fused=True, clusters=4, policy="round_robin", seed=0,
                    faults=None, batteries=None, engine="event",
                    latents=None, **kwargs):
    scheduler = EdgeTrainingScheduler(policy, rng=np.random.default_rng(seed),
                                      engine=engine, fault_schedule=faults,
                                      segment_batching=fused, **kwargs)
    for index in range(clusters):
        latent = latents[index] if latents else LATENT
        config = OrcoDCSConfig(input_dim=DIM, latent_dim=latent, seed=index,
                               noise_sigma=0.05, batch_size=BATCH)
        data = np.random.default_rng(100 + index).random((ROWS, DIM))
        scheduler.add_cluster(
            f"c{index}", OrcoDCSFramework(config), data, batch_size=BATCH,
            aggregator_battery_j=batteries[index] if batteries else 1e9)
    return scheduler


def run_pair(rounds=ROUNDS, **kwargs):
    """The same scenario under the fused and the unfused event engine."""
    fused = build_scheduler(fused=True, **kwargs)
    fused_report = fused.run(rounds_per_cluster=rounds)
    unfused = build_scheduler(fused=False, **kwargs)
    unfused_report = unfused.run(rounds_per_cluster=rounds)
    return fused, fused_report, unfused, unfused_report


def assert_fused_matches_unfused(fused, fused_report, unfused,
                                 unfused_report):
    """The bit-identity contract (losses to GEMM reduction noise)."""
    for c_f, c_u in zip(fused.clusters, unfused.clusters):
        assert len(c_f.history.rounds) == len(c_u.history.rounds)
        if len(c_f.history.losses):
            assert np.abs(c_f.history.losses
                          - c_u.history.losses).max() <= 1e-9
        # Modeled clock and ledger are exact, not merely close.
        assert np.array_equal(c_f.history.times, c_u.history.times)
        assert c_f.trainer.clock_s == c_u.trainer.clock_s
        ledger_f, ledger_u = c_f.trainer.ledger, c_u.trainer.ledger
        assert len(ledger_f) == len(ledger_u)
        assert ledger_f.total_wire_bytes() == ledger_u.total_wire_bytes()
        assert ledger_f.by_kind() == ledger_u.by_kind()
    assert fused_report.makespan_s == unfused_report.makespan_s
    assert fused_report.total_edge_time_s == unfused_report.total_edge_time_s
    assert fused_report.completion_times == unfused_report.completion_times
    assert fused_report.rounds_per_cluster == unfused_report.rounds_per_cluster
    assert fused_report.deadline_misses == unfused_report.deadline_misses
    assert fused_report.dead_clusters == unfused_report.dead_clusters
    assert fused_report.energy_j == unfused_report.energy_j
    assert fused_report.halted == unfused_report.halted
    assert fused_report.faults_applied == unfused_report.faults_applied


def mid_training_faults(fraction_times):
    """Faults placed at fractions of a zero-fault probe run's makespan."""
    probe = build_scheduler(fused=False)
    makespan = probe.run(rounds_per_cluster=ROUNDS).makespan_s
    return FaultSchedule([
        FaultEvent(f * makespan, kind, cluster, device=device,
                   magnitude=magnitude)
        for f, kind, cluster, device, magnitude in fraction_times])


class TestFusedEquivalence:
    @pytest.mark.parametrize("policy", ["fifo", "round_robin", "deadline"])
    def test_fault_only_run_matches_unfused(self, policy):
        faults = mid_training_faults([
            (0.25, "node_death", "c0", 5, 1.0),
            (0.4, "straggler", "c1", None, 3.0),
            (0.7, "recover", "c1", None, 1.0),
        ])
        pair = run_pair(policy=policy, faults=faults)
        assert_fused_matches_unfused(*pair)
        assert pair[1].fused_rounds > 0
        assert pair[1].segments >= 2          # the faults split the run
        assert pair[3].fused_rounds == 0      # the reference stayed unfused

    def test_zero_fault_fused_matches_sequential_anchor(self):
        fused = build_scheduler(fused=True)
        fused_report = fused.run(rounds_per_cluster=ROUNDS)
        sequential = build_scheduler(engine="sequential")
        seq_report = sequential.run(rounds_per_cluster=ROUNDS)
        assert fused_report.fused_rounds == 4 * ROUNDS
        for c_f, c_s in zip(fused.clusters, sequential.clusters):
            assert np.abs(c_f.history.losses
                          - c_s.history.losses).max() <= 1e-6
            assert np.abs(c_f.history.times
                          - c_s.history.times).max() <= 1e-9
            assert c_f.trainer.ledger.total_wire_bytes() \
                == c_s.trainer.ledger.total_wire_bytes()
        assert fused_report.makespan_s == pytest.approx(
            seq_report.makespan_s, abs=1e-9)

    def test_loss_priority_fuses_wave_by_wave_with_faults(self):
        """Loss-coupled picks no longer disable fusion wholesale: the
        executor fuses everything provably consumed before the next
        fault and runs one-round waves while a fault is imminent."""
        report = build_scheduler(policy="loss_priority").run(
            rounds_per_cluster=ROUNDS)
        assert report.fused_rounds == 4 * ROUNDS
        faults = FaultSchedule([FaultEvent(1e-3, "node_death", "c0",
                                           device=2)])
        pair = run_pair(policy="loss_priority", faults=faults)
        assert_fused_matches_unfused(*pair)
        report = pair[1]
        assert report.fused_rounds > 0
        assert report.rounds_per_cluster == {f"c{i}": ROUNDS
                                             for i in range(4)}

    def test_loss_priority_with_quorum_fuses(self):
        """Quorum-guarded loss_priority fleets fuse now: the wave
        planner proves per wave that no death can land inside the
        outstanding window (deaths are terminal), and falls back to a
        requesting-round-only plan when one could."""
        faults = FaultSchedule([FaultEvent(1e-3, "cluster_death", "c0")])
        pair = run_pair(policy="loss_priority", faults=faults,
                        resilience=ResilientOrchestrationPolicy(quorum=0.5),
                        rounds=5)
        assert_fused_matches_unfused(*pair)
        assert pair[1].fused_rounds > 0
        assert not pair[1].halted          # 3/4 alive >= 0.5

    def test_loss_priority_fault_free_matches_unfused(self):
        pair = run_pair(policy="loss_priority")
        assert_fused_matches_unfused(*pair)

    @pytest.mark.parametrize("policy", ["round_robin", "loss_priority"])
    def test_lossy_fault_run_matches_unfused(self, policy):
        """Channel traces + faults together: the planner prices lossy
        rounds from the pre-sampled traces on both sides of each fault
        boundary, bit-identical to the live unfused run."""
        faults = mid_training_faults([
            (0.25, "node_death", "c0", 5, 1.0),
            (0.4, "straggler", "c1", None, 3.0),
            (0.7, "recover", "c1", None, 1.0),
        ])
        pair = run_pair(policy=policy, faults=faults,
                        channels=ChannelSpec(loss=0.1,
                                             arq=ARQConfig(max_retries=1)))
        assert_fused_matches_unfused(*pair)
        assert pair[1].fused_rounds > 0
        assert pair[1].failed_rounds == pair[3].failed_rounds


class TestSegmentEdgeCases:
    def test_fault_at_round_zero(self):
        """A t=0 fault fires before the first pick in both engines."""
        faults = FaultSchedule([FaultEvent(0.0, "node_death", "c0",
                                           device=3)])
        fused, fused_report, unfused, unfused_report = run_pair(faults=faults)
        assert_fused_matches_unfused(fused, fused_report, unfused,
                                     unfused_report)
        # The dead device was masked from round one onward.
        assert fused_report.faults_applied == 1
        assert fused_report.segments == 1     # nothing left to split on

    def test_fault_in_final_round_tail(self):
        """A fault after the last round's edge math but before its links
        finish fires during the run's tail: one segment, still exact."""
        probe = build_scheduler(fused=False)
        makespan = probe.run(rounds_per_cluster=ROUNDS).makespan_s
        faults = FaultSchedule([FaultEvent(0.98 * makespan, "node_death",
                                           "c1", device=7)])
        pair = run_pair(faults=faults)
        assert_fused_matches_unfused(*pair)
        assert pair[1].faults_applied == 1

    def test_fault_on_the_final_round(self):
        """A fault landing between the final wave's edge-math points
        splits the plan: the straddling rounds replay per cluster."""
        probe = build_scheduler(fused=False)
        probe_report = probe.run(rounds_per_cluster=ROUNDS)
        timing = probe.clusters[0].trainer.round_costs(BATCH).timing
        tail = (timing.aggregator_compute_s + timing.uplink_s
                + timing.downlink_s)
        # completion = edge-math finish + link tail, so subtracting the
        # tail recovers each cluster's final-round math time exactly.
        math_times = sorted(times[-1] - tail for times
                            in probe_report.completion_times.values())
        faults = FaultSchedule([FaultEvent(
            0.5 * (math_times[0] + math_times[-1]), "node_death", "c1",
            device=7)])
        pair = run_pair(faults=faults)
        assert_fused_matches_unfused(*pair)
        assert pair[1].faults_applied == 1
        assert pair[1].segments >= 2

    def test_all_clusters_dead_mid_segment(self):
        """Battery retirement is the one in-segment death: every cluster
        drains mid-plan and the run ends early, identically."""
        pair = run_pair(batteries=[0.015] * 4, rounds=60)
        fused_report = pair[1]
        assert_fused_matches_unfused(*pair)
        assert len(fused_report.dead_clusters) == 4
        assert all("battery" in reason
                   for reason in fused_report.dead_clusters.values())
        assert all(n < 60 for n in fused_report.rounds_per_cluster.values())
        assert fused_report.fused_rounds > 0

    def test_no_two_homogeneous_survivors(self):
        """Faults that leave one survivor degenerate the waves to
        per-cluster event execution — still exact."""
        probe = build_scheduler(fused=False)
        makespan = probe.run(rounds_per_cluster=ROUNDS).makespan_s
        faults = FaultSchedule([
            FaultEvent(0.3 * makespan, "cluster_death", "c0"),
            FaultEvent(0.3 * makespan, "cluster_death", "c1"),
            FaultEvent(0.3 * makespan, "cluster_death", "c2"),
        ])
        pair = run_pair(faults=faults)
        assert_fused_matches_unfused(*pair)
        report = pair[1]
        assert set(report.dead_clusters) == {"c0", "c1", "c2"}
        assert report.rounds_per_cluster["c3"] == ROUNDS
        assert report.fused_rounds > 0

    def test_lossy_channels_fuse_bit_identically(self):
        """Pre-sampled channel traces make lossy rounds plan-time
        computable: the fused run matches the live unfused event loop
        bit for bit — delivered/attempt ledger, modeled clock,
        completion times — while pre-executing the successes as waves."""
        spec = ChannelSpec(loss=0.15, arq=ARQConfig(max_retries=1))
        pair = run_pair(channels=spec)
        assert_fused_matches_unfused(*pair)
        report = pair[1]
        assert report.fused_rounds > 0
        assert report.failed_rounds == pair[3].failed_rounds
        assert sum(report.failed_rounds.values()) > 0  # the sweep regime

    def test_jittery_channels_fuse_bit_identically(self):
        spec = ChannelSpec(loss=0.05, arq=ARQConfig(max_retries=2),
                           jitter_s=0.0005)
        pair = run_pair(channels=spec)
        assert_fused_matches_unfused(*pair)
        assert pair[1].fused_rounds > 0

    def test_gilbert_elliott_preset_fuses_bit_identically(self):
        """Bursty (stateful) loss traces replay exactly too."""
        spec = ChannelSpec.preset("noisy_office",
                                  arq=ARQConfig(max_retries=1))
        pair = run_pair(channels=spec)
        assert_fused_matches_unfused(*pair)
        assert pair[1].fused_rounds > 0

    def test_segment_batching_flag_forces_unfused(self):
        report = build_scheduler(fused=False).run(rounds_per_cluster=5)
        assert report.fused_rounds == 0 and report.segments == 0

    def test_quorum_halt_matches_unfused(self):
        probe = build_scheduler(fused=False)
        makespan = probe.run(rounds_per_cluster=ROUNDS).makespan_s
        faults = FaultSchedule([
            FaultEvent(0.2 * makespan, "cluster_death", "c0"),
            FaultEvent(0.4 * makespan, "cluster_death", "c1"),
        ])
        resilience = ResilientOrchestrationPolicy(quorum=0.7)
        pair = run_pair(faults=faults, resilience=resilience)
        assert_fused_matches_unfused(*pair)
        assert pair[1].halted


class TestIdealLoopSharing:
    """The sequential engine and batched replay drive one loop."""

    def test_sequential_still_matches_batched(self):
        sequential = build_scheduler(engine="sequential")
        seq_report = sequential.run(rounds_per_cluster=ROUNDS)
        batched = build_scheduler(engine="batched")
        bat_report = batched.run(rounds_per_cluster=ROUNDS)
        for c_s, c_b in zip(sequential.clusters, batched.clusters):
            assert np.abs(c_s.history.losses
                          - c_b.history.losses).max() <= 1e-6
            assert np.array_equal(c_s.history.times, c_b.history.times)
        assert seq_report.makespan_s == bat_report.makespan_s
        assert seq_report.completion_times == bat_report.completion_times

    def test_deadline_miss_shared_across_engines(self):
        def run(engine):
            scheduler = EdgeTrainingScheduler(
                "deadline", rng=np.random.default_rng(0), engine=engine)
            config = OrcoDCSConfig(input_dim=DIM, latent_dim=LATENT, seed=0,
                                   batch_size=BATCH)
            data = np.random.default_rng(0).random((ROWS, DIM))
            scheduler.add_cluster("tight", OrcoDCSFramework(config), data,
                                  batch_size=BATCH, deadline_s=1e-9)
            return scheduler.run(rounds_per_cluster=3)

        assert run("sequential").deadline_misses \
            == run("event").deadline_misses == ["tight"]


class TestHeterogeneousStacking:
    """Mixed-architecture fleets batch group by group (ISSUE 4)."""

    def test_mixed_fleet_fuses_and_matches_unfused(self):
        pair = run_pair(latents=[4, 4, 6, 6])
        assert_fused_matches_unfused(*pair)
        assert pair[1].fused_rounds == 4 * ROUNDS
        assert pair[1].segments >= 1

    def test_mixed_fleet_matches_sequential_engine(self):
        fused = build_scheduler(fused=True, latents=[4, 4, 6, 6])
        fused.run(rounds_per_cluster=ROUNDS)
        sequential = build_scheduler(engine="sequential",
                                     latents=[4, 4, 6, 6])
        sequential.run(rounds_per_cluster=ROUNDS)
        for c_f, c_s in zip(fused.clusters, sequential.clusters):
            assert np.abs(c_f.history.losses
                          - c_s.history.losses).max() <= 1e-6
            assert np.abs(c_f.history.times
                          - c_s.history.times).max() <= 1e-9

    def test_single_odd_cluster_no_longer_disables_fusion(self):
        """Three stackable clusters + one odd one: the trio fuses as a
        group, the odd cluster pre-executes per round — exactly."""
        pair = run_pair(latents=[4, 4, 4, 6])
        assert_fused_matches_unfused(*pair)
        assert pair[1].fused_rounds == 4 * ROUNDS

    def test_mixed_fleet_with_faults_and_loss(self):
        faults = mid_training_faults([
            (0.3, "node_death", "c0", 5, 1.0),
            (0.5, "straggler", "c2", None, 2.0),
        ])
        pair = run_pair(latents=[4, 4, 6, 6], faults=faults,
                        channels=ChannelSpec(loss=0.1,
                                             arq=ARQConfig(max_retries=1)))
        assert_fused_matches_unfused(*pair)
        assert pair[1].fused_rounds > 0

    def test_all_singleton_groups_stay_unfused(self):
        """With no group of >= 2 there is nothing to stack."""
        report = build_scheduler(latents=[3, 4, 5, 6]).run(
            rounds_per_cluster=5)
        assert report.fused_rounds == 0 and report.segments == 0


class TestExecutionPlan:
    """Engine gates route through one introspectable ExecutionPlan."""

    def test_lossless_homogeneous_plan(self):
        plan = build_scheduler().execution_plan()
        assert plan.engine == "event" and plan.fused
        assert plan.mode == "segment" and not plan.traced
        assert plan.groups == ((0, 1, 2, 3),)
        assert plan.stacked_clusters == 4

    def test_lossy_plan_records_traces(self):
        plan = build_scheduler(
            channels=ChannelSpec(loss=0.1)).execution_plan()
        assert plan.fused and plan.traced

    def test_loss_priority_plan_uses_wave_mode(self):
        plan = build_scheduler(policy="loss_priority").execution_plan()
        assert plan.fused and plan.mode == "wave"

    def test_quorum_loss_priority_plan_fused(self):
        """The quorum gate is gone: safety is proved per wave instead."""
        plan = build_scheduler(
            policy="loss_priority",
            resilience=ResilientOrchestrationPolicy(
                quorum=0.5)).execution_plan()
        assert plan.fused and plan.mode == "wave"
        assert plan.reasons == ()

    def test_adaptive_arq_with_faults_and_loss_fuses(self):
        """Mid-run ARQ re-derivation no longer disables fusion: the
        affected channels re-record their remaining trace horizon at
        the fault boundary instead."""
        faults = FaultSchedule([FaultEvent(1.0, "brownout", "c0",
                                           magnitude=0.5)])
        plan = build_scheduler(
            channels=ChannelSpec(loss=0.1), faults=faults,
            resilience=ResilientOrchestrationPolicy(
                adaptive_arq=True)).execution_plan()
        assert plan.fused and plan.traced and plan.reasons == ()
        # Lossless channels never consult the retry budget: fusable.
        plan = build_scheduler(
            faults=faults,
            resilience=ResilientOrchestrationPolicy(
                adaptive_arq=True)).execution_plan()
        assert plan.fused

    def test_jittered_rederiving_channel_stays_unfused(self):
        """Jittered draws cannot rewind, so re-derivation under faults
        keeps the one remaining loss/fault coupling gate closed."""
        faults = FaultSchedule([FaultEvent(1.0, "brownout", "c0",
                                           magnitude=0.5)])
        plan = build_scheduler(
            channels=ChannelSpec(loss=0.1, jitter_s=0.0005), faults=faults,
            resilience=ResilientOrchestrationPolicy(
                adaptive_arq=True)).execution_plan()
        assert not plan.fused
        assert plan.reasons == ("non-rerecordable-channel",)
        assert "re-record" in plan.reason
        # Without faults nothing re-derives: jittered traces replay fine.
        plan = build_scheduler(
            channels=ChannelSpec(loss=0.1, jitter_s=0.0005),
            resilience=ResilientOrchestrationPolicy(
                adaptive_arq=True)).execution_plan()
        assert plan.fused

    def test_segment_batching_flag_in_plan(self):
        plan = build_scheduler(fused=False).execution_plan()
        assert not plan.fused and "disabled" in plan.reason
        assert plan.reasons == ("segment-batching-disabled",)

    def test_hetero_plan_groups(self):
        plan = build_scheduler(latents=[4, 6, 4, 6]).execution_plan()
        assert sorted(plan.groups) == [(0, 2), (1, 3)]

    def test_decision_matrix(self):
        """Enumerate engine × recovery × faults × adaptive_arq × quorum
        and assert each combination's fused/unfused outcome and reason
        slugs.  Under the new gates the *only* event-engine blockers
        are the flag, unstackable fleets and non-rerecordable channels
        — resilience knobs never disable fusion on rewindable draws."""
        faults = FaultSchedule([FaultEvent(1.0, "brownout", "c0",
                                           magnitude=0.5)])
        lossy = ChannelSpec(loss=0.1)
        jittery = ChannelSpec(loss=0.1, jitter_s=0.0005)
        for recovery in ("arq", "fec", "hybrid"):
            for with_faults in (False, True):
                for adaptive in (False, True):
                    for quorum in (0.0, 0.5):
                        resilience = ResilientOrchestrationPolicy(
                            recovery=recovery, adaptive_arq=adaptive,
                            quorum=quorum)
                        for policy in ("round_robin", "loss_priority"):
                            combo = (recovery, with_faults, adaptive,
                                     quorum, policy)
                            plan = build_scheduler(
                                policy=policy, channels=lossy,
                                faults=faults if with_faults else None,
                                resilience=resilience).execution_plan()
                            assert plan.fused and plan.traced, combo
                            assert plan.reasons == (), combo
                            expected = ("wave" if policy == "loss_priority"
                                        else "segment")
                            assert plan.mode == expected, combo
                            # Jittered channels flip exactly the combos
                            # that re-derive budgets at fault boundaries.
                            plan = build_scheduler(
                                policy=policy, channels=jittery,
                                faults=faults if with_faults else None,
                                resilience=resilience).execution_plan()
                            rederives = with_faults and (
                                adaptive or recovery != "arq")
                            assert plan.fused == (not rederives), combo
                            assert plan.reasons == (
                                ("non-rerecordable-channel",)
                                if rederives else ()), combo
        # The non-event engines and the flag keep their own slugs.
        plan = build_scheduler(fused=False).execution_plan()
        assert plan.reasons == ("segment-batching-disabled",)
        plan = build_scheduler(latents=[3, 4, 5, 6]).execution_plan()
        assert plan.reasons == ("no-stackable-group",)
        plan = build_scheduler(engine="analytic").execution_plan()
        assert plan.reasons == ("analytic-engine",)


def assert_rng_states_match(fused, unfused):
    """The fused run leaves every training RNG stream where the
    unfused run does — re-recording must not perturb a draw."""
    for c_f, c_u in zip(fused.clusters, unfused.clusters):
        assert c_f.trainer.rng.bit_generator.state \
            == c_u.trainer.rng.bit_generator.state
        assert c_f.stream_rng.bit_generator.state \
            == c_u.stream_rng.bit_generator.state


class TestRerecordFusion:
    """The run classes PR 9 unfuses the gates for: adaptive budgets
    re-derived at fault boundaries (trace re-recording) and
    quorum-guarded loss_priority fleets (terminality bound)."""

    def _brownout(self, fraction=0.5, cluster="c0", **kwargs):
        probe = build_scheduler(fused=False, **kwargs)
        makespan = probe.run(rounds_per_cluster=ROUNDS).makespan_s
        return FaultSchedule([FaultEvent(fraction * makespan, "brownout",
                                         cluster, magnitude=1e-12)])

    @pytest.mark.parametrize("policy", ["round_robin", "loss_priority"])
    def test_adaptive_arq_lossy_faults_fuses_bit_identically(self, policy):
        """The tentpole contract: a brownout collapses c0's re-derived
        retry budget mid-run; the fused run re-records c0's remaining
        trace horizon and still matches the live unfused loop bit for
        bit — clock, ledger, report and RNG state."""
        spec = ChannelSpec(loss=0.1, arq=ARQConfig(max_retries=3))
        resilience = ResilientOrchestrationPolicy(adaptive_arq=True)
        faults = self._brownout(channels=spec, resilience=resilience,
                                policy=policy)
        pair = run_pair(policy=policy, channels=spec,
                        resilience=resilience, faults=faults)
        assert_fused_matches_unfused(*pair)
        assert_rng_states_match(pair[0], pair[2])
        assert pair[1].fused_rounds > 0
        assert pair[1].arq_budgets == pair[3].arq_budgets
        assert pair[1].arq_budgets["c0"] == 0   # battery-poor: minimum
        assert pair[1].arq_budgets["c1"] == 6   # untouched: slack-rich

    def test_parity_rederivation_at_fault_boundary(self):
        """Brownouts change the battery headroom the energy-optimal FEC
        parity depends on: the hook re-derives k per direction and the
        fused run matches the unfused one exactly."""
        spec = ChannelSpec(loss=0.12, arq=ARQConfig(max_retries=2))
        resilience = ResilientOrchestrationPolicy(recovery="fec")
        faults = self._brownout(cluster="c1", channels=spec,
                                resilience=resilience)
        pair = run_pair(channels=spec, resilience=resilience, faults=faults)
        assert_fused_matches_unfused(*pair)
        assert_rng_states_match(pair[0], pair[2])
        assert pair[1].fused_rounds > 0
        assert pair[1].coding_budgets == pair[3].coding_budgets
        # The browned-out cluster fell to the energy-optimal budget.
        assert pair[1].coding_budgets["c1"] < pair[1].coding_budgets["c0"]

    def test_hybrid_adaptive_rederivation_wave_mode(self):
        """ARQ and parity re-derive together (hybrid recovery) under
        the loss-coupled wave planner."""
        spec = ChannelSpec(loss=0.12, arq=ARQConfig(max_retries=2))
        resilience = ResilientOrchestrationPolicy(recovery="hybrid",
                                                  adaptive_arq=True)
        faults = self._brownout(policy="loss_priority", channels=spec,
                                resilience=resilience)
        pair = run_pair(policy="loss_priority", channels=spec,
                        resilience=resilience, faults=faults)
        assert_fused_matches_unfused(*pair)
        assert pair[1].fused_rounds > 0
        assert pair[1].arq_budgets == pair[3].arq_budgets
        assert pair[1].coding_budgets == pair[3].coding_budgets

    def test_bursty_channel_rerecords_bit_identically(self):
        """Gilbert-Elliott re-recording must restore the channel-state
        machine at the resume point, not just the draw offset."""
        spec = ChannelSpec.preset("noisy_office",
                                  arq=ARQConfig(max_retries=2))
        resilience = ResilientOrchestrationPolicy(adaptive_arq=True)
        faults = self._brownout(channels=spec, resilience=resilience)
        pair = run_pair(channels=spec, resilience=resilience, faults=faults)
        assert_fused_matches_unfused(*pair)
        assert_rng_states_match(pair[0], pair[2])
        assert pair[1].fused_rounds > 0

    def test_quorum_wave_halt_matches_unfused(self):
        """Two deaths trip a 0.7 quorum mid-run: the fused wave planner
        never pre-executes past the halt (terminality bound) and the
        halted reports match bit for bit."""
        probe = build_scheduler(fused=False, policy="loss_priority")
        makespan = probe.run(rounds_per_cluster=ROUNDS).makespan_s
        faults = FaultSchedule([
            FaultEvent(0.2 * makespan, "cluster_death", "c0"),
            FaultEvent(0.4 * makespan, "cluster_death", "c1"),
        ])
        pair = run_pair(policy="loss_priority", faults=faults,
                        resilience=ResilientOrchestrationPolicy(quorum=0.7))
        assert_fused_matches_unfused(*pair)
        assert_rng_states_match(pair[0], pair[2])
        assert pair[1].halted
        assert pair[1].fused_rounds > 0

    def test_jittered_channel_runs_unfused_under_rederivation(self):
        """The fallback still works end to end for the one run class
        that cannot re-record (jittered draws)."""
        spec = ChannelSpec(loss=0.1, arq=ARQConfig(max_retries=2),
                           jitter_s=0.0005)
        resilience = ResilientOrchestrationPolicy(adaptive_arq=True)
        faults = FaultSchedule([FaultEvent(0.01, "brownout", "c0",
                                           magnitude=1e-12)])
        report = build_scheduler(channels=spec, resilience=resilience,
                                 faults=faults).run(rounds_per_cluster=5)
        assert report.fused_rounds == 0
        assert report.arq_budgets["c0"] == 0


class TestAdaptiveArqRederivation:
    """ARQ budgets re-derive at every fault application (ISSUE 4)."""

    def _scheduler(self, faults=None, adaptive=True, battery=1e9):
        resilience = ResilientOrchestrationPolicy(adaptive_arq=adaptive)
        scheduler = EdgeTrainingScheduler(
            "round_robin", rng=np.random.default_rng(0), engine="event",
            channels=ChannelSpec(loss=0.05, arq=ARQConfig(max_retries=3)),
            fault_schedule=faults, resilience=resilience)
        for index in range(2):
            config = OrcoDCSConfig(input_dim=DIM, latent_dim=LATENT,
                                   seed=index, noise_sigma=0.05,
                                   batch_size=BATCH)
            data = np.random.default_rng(100 + index).random((ROWS, DIM))
            scheduler.add_cluster(f"c{index}", OrcoDCSFramework(config),
                                  data, batch_size=BATCH,
                                  aggregator_battery_j=battery)
        return scheduler

    def test_budgets_rederived_at_brownout(self):
        """A brownout guts the battery headroom mid-run: the affected
        cluster's retry budget collapses to the minimum while the
        untouched cluster keeps its slack-rich maximum."""
        probe = self._scheduler()
        probe_report = probe.run(rounds_per_cluster=ROUNDS)
        makespan = probe_report.makespan_s
        # Slack-rich, battery-rich run start: both clusters get the
        # adaptive maximum (6) over the spec's base budget of 3.
        assert probe_report.arq_budgets == {"c0": 6, "c1": 6}
        faults = FaultSchedule([FaultEvent(0.5 * makespan, "brownout",
                                           "c0", magnitude=1e-12)])
        scheduler = self._scheduler(faults=faults)
        report = scheduler.run(rounds_per_cluster=ROUNDS)
        assert report.faults_applied == 1
        assert report.arq_budgets["c0"] == 0    # battery-poor: minimum
        assert report.arq_budgets["c1"] == 6    # untouched: slack-rich max

    def test_budgets_static_without_adaptive_arq(self):
        faults = FaultSchedule([FaultEvent(0.01, "brownout", "c0",
                                           magnitude=1e-12)])
        report = self._scheduler(faults=faults, adaptive=False).run(
            rounds_per_cluster=ROUNDS)
        assert report.arq_budgets == {"c0": 3, "c1": 3}
