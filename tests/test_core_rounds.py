"""Unified round pipeline + segment-batched event engine tests.

The fused engine's contract (ISSUE 3): a fault-schedule-only run (no
channel loss) reproduces the unfused event engine's modeled clock,
transmission ledger, completion times and report *bit-for-bit*, and its
per-cluster losses to stacked-GEMM reduction noise; the zero-fault
anchor still matches the sequential engine to <= 1e-6.
"""

import numpy as np
import pytest

from repro.core import (
    EdgeTrainingScheduler,
    OrcoDCSConfig,
    OrcoDCSFramework,
    ResilientOrchestrationPolicy,
)
from repro.sim import ChannelSpec, FaultEvent, FaultSchedule

DIM = 24
LATENT = 4
BATCH = 8
ROWS = 48
ROUNDS = 10


def build_scheduler(fused=True, clusters=4, policy="round_robin", seed=0,
                    faults=None, batteries=None, engine="event",
                    latents=None, **kwargs):
    scheduler = EdgeTrainingScheduler(policy, rng=np.random.default_rng(seed),
                                      engine=engine, fault_schedule=faults,
                                      segment_batching=fused, **kwargs)
    for index in range(clusters):
        latent = latents[index] if latents else LATENT
        config = OrcoDCSConfig(input_dim=DIM, latent_dim=latent, seed=index,
                               noise_sigma=0.05, batch_size=BATCH)
        data = np.random.default_rng(100 + index).random((ROWS, DIM))
        scheduler.add_cluster(
            f"c{index}", OrcoDCSFramework(config), data, batch_size=BATCH,
            aggregator_battery_j=batteries[index] if batteries else 1e9)
    return scheduler


def run_pair(rounds=ROUNDS, **kwargs):
    """The same scenario under the fused and the unfused event engine."""
    fused = build_scheduler(fused=True, **kwargs)
    fused_report = fused.run(rounds_per_cluster=rounds)
    unfused = build_scheduler(fused=False, **kwargs)
    unfused_report = unfused.run(rounds_per_cluster=rounds)
    return fused, fused_report, unfused, unfused_report


def assert_fused_matches_unfused(fused, fused_report, unfused,
                                 unfused_report):
    """The bit-identity contract (losses to GEMM reduction noise)."""
    for c_f, c_u in zip(fused.clusters, unfused.clusters):
        assert len(c_f.history.rounds) == len(c_u.history.rounds)
        if len(c_f.history.losses):
            assert np.abs(c_f.history.losses
                          - c_u.history.losses).max() <= 1e-9
        # Modeled clock and ledger are exact, not merely close.
        assert np.array_equal(c_f.history.times, c_u.history.times)
        assert c_f.trainer.clock_s == c_u.trainer.clock_s
        ledger_f, ledger_u = c_f.trainer.ledger, c_u.trainer.ledger
        assert len(ledger_f) == len(ledger_u)
        assert ledger_f.total_wire_bytes() == ledger_u.total_wire_bytes()
        assert ledger_f.by_kind() == ledger_u.by_kind()
    assert fused_report.makespan_s == unfused_report.makespan_s
    assert fused_report.total_edge_time_s == unfused_report.total_edge_time_s
    assert fused_report.completion_times == unfused_report.completion_times
    assert fused_report.rounds_per_cluster == unfused_report.rounds_per_cluster
    assert fused_report.deadline_misses == unfused_report.deadline_misses
    assert fused_report.dead_clusters == unfused_report.dead_clusters
    assert fused_report.energy_j == unfused_report.energy_j
    assert fused_report.halted == unfused_report.halted
    assert fused_report.faults_applied == unfused_report.faults_applied


def mid_training_faults(fraction_times):
    """Faults placed at fractions of a zero-fault probe run's makespan."""
    probe = build_scheduler(fused=False)
    makespan = probe.run(rounds_per_cluster=ROUNDS).makespan_s
    return FaultSchedule([
        FaultEvent(f * makespan, kind, cluster, device=device,
                   magnitude=magnitude)
        for f, kind, cluster, device, magnitude in fraction_times])


class TestFusedEquivalence:
    @pytest.mark.parametrize("policy", ["fifo", "round_robin", "deadline"])
    def test_fault_only_run_matches_unfused(self, policy):
        faults = mid_training_faults([
            (0.25, "node_death", "c0", 5, 1.0),
            (0.4, "straggler", "c1", None, 3.0),
            (0.7, "recover", "c1", None, 1.0),
        ])
        pair = run_pair(policy=policy, faults=faults)
        assert_fused_matches_unfused(*pair)
        assert pair[1].fused_rounds > 0
        assert pair[1].segments >= 2          # the faults split the run
        assert pair[3].fused_rounds == 0      # the reference stayed unfused

    def test_zero_fault_fused_matches_sequential_anchor(self):
        fused = build_scheduler(fused=True)
        fused_report = fused.run(rounds_per_cluster=ROUNDS)
        sequential = build_scheduler(engine="sequential")
        seq_report = sequential.run(rounds_per_cluster=ROUNDS)
        assert fused_report.fused_rounds == 4 * ROUNDS
        for c_f, c_s in zip(fused.clusters, sequential.clusters):
            assert np.abs(c_f.history.losses
                          - c_s.history.losses).max() <= 1e-6
            assert np.abs(c_f.history.times
                          - c_s.history.times).max() <= 1e-9
            assert c_f.trainer.ledger.total_wire_bytes() \
                == c_s.trainer.ledger.total_wire_bytes()
        assert fused_report.makespan_s == pytest.approx(
            seq_report.makespan_s, abs=1e-9)

    def test_loss_priority_fuses_only_when_uncoupled(self):
        report = build_scheduler(policy="loss_priority").run(
            rounds_per_cluster=ROUNDS)
        assert report.fused_rounds == 4 * ROUNDS
        faults = FaultSchedule([FaultEvent(1e-3, "node_death", "c0",
                                           device=2)])
        report = build_scheduler(policy="loss_priority", faults=faults).run(
            rounds_per_cluster=ROUNDS)
        assert report.fused_rounds == 0
        assert report.rounds_per_cluster == {f"c{i}": ROUNDS
                                             for i in range(4)}

    def test_loss_priority_fault_free_matches_unfused(self):
        pair = run_pair(policy="loss_priority")
        assert_fused_matches_unfused(*pair)


class TestSegmentEdgeCases:
    def test_fault_at_round_zero(self):
        """A t=0 fault fires before the first pick in both engines."""
        faults = FaultSchedule([FaultEvent(0.0, "node_death", "c0",
                                           device=3)])
        fused, fused_report, unfused, unfused_report = run_pair(faults=faults)
        assert_fused_matches_unfused(fused, fused_report, unfused,
                                     unfused_report)
        # The dead device was masked from round one onward.
        assert fused_report.faults_applied == 1
        assert fused_report.segments == 1     # nothing left to split on

    def test_fault_in_final_round_tail(self):
        """A fault after the last round's edge math but before its links
        finish fires during the run's tail: one segment, still exact."""
        probe = build_scheduler(fused=False)
        makespan = probe.run(rounds_per_cluster=ROUNDS).makespan_s
        faults = FaultSchedule([FaultEvent(0.98 * makespan, "node_death",
                                           "c1", device=7)])
        pair = run_pair(faults=faults)
        assert_fused_matches_unfused(*pair)
        assert pair[1].faults_applied == 1

    def test_fault_on_the_final_round(self):
        """A fault landing between the final wave's edge-math points
        splits the plan: the straddling rounds replay per cluster."""
        probe = build_scheduler(fused=False)
        probe_report = probe.run(rounds_per_cluster=ROUNDS)
        timing = probe.clusters[0].trainer.round_costs(BATCH).timing
        tail = (timing.aggregator_compute_s + timing.uplink_s
                + timing.downlink_s)
        # completion = edge-math finish + link tail, so subtracting the
        # tail recovers each cluster's final-round math time exactly.
        math_times = sorted(times[-1] - tail for times
                            in probe_report.completion_times.values())
        faults = FaultSchedule([FaultEvent(
            0.5 * (math_times[0] + math_times[-1]), "node_death", "c1",
            device=7)])
        pair = run_pair(faults=faults)
        assert_fused_matches_unfused(*pair)
        assert pair[1].faults_applied == 1
        assert pair[1].segments >= 2

    def test_all_clusters_dead_mid_segment(self):
        """Battery retirement is the one in-segment death: every cluster
        drains mid-plan and the run ends early, identically."""
        pair = run_pair(batteries=[0.015] * 4, rounds=60)
        fused_report = pair[1]
        assert_fused_matches_unfused(*pair)
        assert len(fused_report.dead_clusters) == 4
        assert all("battery" in reason
                   for reason in fused_report.dead_clusters.values())
        assert all(n < 60 for n in fused_report.rounds_per_cluster.values())
        assert fused_report.fused_rounds > 0

    def test_no_two_homogeneous_survivors(self):
        """Faults that leave one survivor degenerate the waves to
        per-cluster event execution — still exact."""
        probe = build_scheduler(fused=False)
        makespan = probe.run(rounds_per_cluster=ROUNDS).makespan_s
        faults = FaultSchedule([
            FaultEvent(0.3 * makespan, "cluster_death", "c0"),
            FaultEvent(0.3 * makespan, "cluster_death", "c1"),
            FaultEvent(0.3 * makespan, "cluster_death", "c2"),
        ])
        pair = run_pair(faults=faults)
        assert_fused_matches_unfused(*pair)
        report = pair[1]
        assert set(report.dead_clusters) == {"c0", "c1", "c2"}
        assert report.rounds_per_cluster["c3"] == ROUNDS
        assert report.fused_rounds > 0

    def test_heterogeneous_fleet_runs_unfused(self):
        """Clusters that cannot stack fall back to per-round execution."""
        report = build_scheduler(latents=[4, 4, 6, 6]).run(
            rounds_per_cluster=5)
        assert report.fused_rounds == 0 and report.segments == 0
        assert report.rounds_per_cluster == {f"c{i}": 5 for i in range(4)}

    def test_lossy_channels_run_unfused(self):
        report = build_scheduler(channels=ChannelSpec(loss=0.1)).run(
            rounds_per_cluster=5)
        assert report.fused_rounds == 0

    def test_segment_batching_flag_forces_unfused(self):
        report = build_scheduler(fused=False).run(rounds_per_cluster=5)
        assert report.fused_rounds == 0 and report.segments == 0

    def test_quorum_halt_matches_unfused(self):
        probe = build_scheduler(fused=False)
        makespan = probe.run(rounds_per_cluster=ROUNDS).makespan_s
        faults = FaultSchedule([
            FaultEvent(0.2 * makespan, "cluster_death", "c0"),
            FaultEvent(0.4 * makespan, "cluster_death", "c1"),
        ])
        resilience = ResilientOrchestrationPolicy(quorum=0.7)
        pair = run_pair(faults=faults, resilience=resilience)
        assert_fused_matches_unfused(*pair)
        assert pair[1].halted


class TestIdealLoopSharing:
    """The sequential engine and batched replay drive one loop."""

    def test_sequential_still_matches_batched(self):
        sequential = build_scheduler(engine="sequential")
        seq_report = sequential.run(rounds_per_cluster=ROUNDS)
        batched = build_scheduler(engine="batched")
        bat_report = batched.run(rounds_per_cluster=ROUNDS)
        for c_s, c_b in zip(sequential.clusters, batched.clusters):
            assert np.abs(c_s.history.losses
                          - c_b.history.losses).max() <= 1e-6
            assert np.array_equal(c_s.history.times, c_b.history.times)
        assert seq_report.makespan_s == bat_report.makespan_s
        assert seq_report.completion_times == bat_report.completion_times

    def test_deadline_miss_shared_across_engines(self):
        def run(engine):
            scheduler = EdgeTrainingScheduler(
                "deadline", rng=np.random.default_rng(0), engine=engine)
            config = OrcoDCSConfig(input_dim=DIM, latent_dim=LATENT, seed=0,
                                   batch_size=BATCH)
            data = np.random.default_rng(0).random((ROWS, DIM))
            scheduler.add_cluster("tight", OrcoDCSFramework(config), data,
                                  batch_size=BATCH, deadline_s=1e-9)
            return scheduler.run(rounds_per_cluster=3)

        assert run("sequential").deadline_misses \
            == run("event").deadline_misses == ["tight"]
