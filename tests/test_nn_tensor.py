"""Unit tests for the autograd Tensor."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, concatenate, stack, where


def grads_of(expr, *tensors):
    expr.backward()
    return [t.grad for t in tensors]


class TestConstruction:
    def test_from_list_promotes_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype.kind == "f"
        assert t.shape == (3,)

    def test_from_array_keeps_float_dtype(self):
        t = Tensor(np.zeros(3, dtype=np.float32))
        assert t.dtype == np.float32

    def test_rejects_string_payloads(self):
        with pytest.raises(TypeError):
            Tensor(np.array(["a", "b"]))

    def test_zeros_ones_randn(self):
        assert np.all(Tensor.zeros((2, 2)).data == 0)
        assert np.all(Tensor.ones((2, 2)).data == 1)
        rng = np.random.default_rng(0)
        assert Tensor.randn(3, 4, rng=rng).shape == (3, 4)

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_len_size_ndim(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2


class TestArithmetic:
    def test_add_backward_both_sides(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        ga, gb = grads_of((a + b).sum(), a, b)
        assert np.allclose(ga, [1, 1])
        assert np.allclose(gb, [1, 1])

    def test_add_broadcast_reduces_grad(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        (a + b).sum().backward()
        assert b.grad.shape == (2,)
        assert np.allclose(b.grad, [3, 3])

    def test_scalar_radd_rsub_rmul_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        assert np.allclose((1 + a).data, [3])
        assert np.allclose((5 - a).data, [3])
        assert np.allclose((3 * a).data, [6])
        assert np.allclose((8 / a).data, [4])

    def test_mul_backward_product_rule(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [5, 7])
        assert np.allclose(b.grad, [2, 3])

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).sum().backward()
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [-1.5])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 3).sum().backward()
        assert np.allclose(a.grad, [27.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_neg(self):
        a = Tensor([1.0, -2.0], requires_grad=True)
        (-a).sum().backward()
        assert np.allclose(a.grad, [-1, -1])

    def test_grad_accumulates_across_uses(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a + a).sum().backward()
        assert np.allclose(a.grad, [5.0])   # 2a + 1


class TestUnaryOps:
    def test_exp_log_inverse_grads(self):
        a = Tensor([0.5, 1.5], requires_grad=True)
        a.exp().sum().backward()
        assert np.allclose(a.grad, np.exp([0.5, 1.5]))
        b = Tensor([0.5, 1.5], requires_grad=True)
        b.log().sum().backward()
        assert np.allclose(b.grad, [2.0, 1 / 1.5])

    def test_sqrt_abs(self):
        a = Tensor([4.0], requires_grad=True)
        a.sqrt().sum().backward()
        assert np.allclose(a.grad, [0.25])
        b = Tensor([-3.0, 3.0], requires_grad=True)
        b.abs().sum().backward()
        assert np.allclose(b.grad, [-1, 1])

    def test_sigmoid_range_and_grad(self):
        a = Tensor([0.0], requires_grad=True)
        out = a.sigmoid()
        assert np.allclose(out.data, [0.5])
        out.sum().backward()
        assert np.allclose(a.grad, [0.25])

    def test_tanh_grad(self):
        a = Tensor([0.0], requires_grad=True)
        a.tanh().sum().backward()
        assert np.allclose(a.grad, [1.0])

    def test_relu_zeroes_negatives(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        out = a.relu()
        assert np.allclose(out.data, [0, 2])
        out.sum().backward()
        assert np.allclose(a.grad, [0, 1])

    def test_leaky_relu_slope(self):
        a = Tensor([-2.0, 2.0], requires_grad=True)
        a.leaky_relu(0.1).sum().backward()
        assert np.allclose(a.grad, [0.1, 1.0])

    def test_clip_gradient_mask(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        out = a.clip(0.0, 1.0)
        assert np.allclose(out.data, [0, 0.5, 1])
        out.sum().backward()
        assert np.allclose(a.grad, [0, 1, 0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.backward(np.ones((2, 1)))
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_sum_negative_axis(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        a.sum(axis=-1).sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_mean_scales_gradient(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        a.mean().backward()
        assert np.allclose(a.grad, np.full((2, 3), 1 / 6))

    def test_max_splits_ties(self):
        a = Tensor([1.0, 5.0, 5.0], requires_grad=True)
        out = a.max()
        assert out.item() == 5.0
        out.backward()
        assert np.allclose(a.grad, [0, 0.5, 0.5])

    def test_max_axis(self):
        a = Tensor(np.array([[1.0, 4.0], [7.0, 2.0]]), requires_grad=True)
        out = a.max(axis=1)
        assert np.allclose(out.data, [4, 7])
        out.sum().backward()
        assert np.allclose(a.grad, [[0, 1], [1, 0]])

    def test_min_via_max(self):
        a = Tensor([3.0, -1.0], requires_grad=True)
        out = a.min()
        assert out.item() == -1.0


class TestShapes:
    def test_reshape_roundtrip_grad(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        assert a.grad.shape == (6,)

    def test_flatten_keeps_batch(self):
        a = Tensor(np.zeros((4, 2, 3)))
        assert a.flatten().shape == (4, 6)

    def test_transpose_inverse_permutation(self):
        a = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        a.transpose((2, 0, 1)).sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_T_property(self):
        a = Tensor(np.zeros((2, 5)))
        assert a.T.shape == (5, 2)

    def test_getitem_scatter_grad(self):
        a = Tensor(np.arange(5.0), requires_grad=True)
        a[1:3].sum().backward()
        assert np.allclose(a.grad, [0, 1, 1, 0, 0])

    def test_getitem_fancy_index_accumulates(self):
        a = Tensor(np.zeros(3), requires_grad=True)
        a[np.array([0, 0, 2])].sum().backward()
        assert np.allclose(a.grad, [2, 0, 1])

    def test_pad2d_and_grad(self):
        a = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        padded = a.pad2d((1, 1))
        assert padded.shape == (1, 1, 4, 4)
        padded.sum().backward()
        assert np.allclose(a.grad, np.ones((1, 1, 2, 2)))


class TestMatmul:
    def test_matrix_matrix(self):
        a = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        b = Tensor(np.array([[3.0], [4.0]]), requires_grad=True)
        out = a @ b
        assert np.allclose(out.data, [[11.0]])
        out.sum().backward()
        assert np.allclose(a.grad, [[3, 4]])
        assert np.allclose(b.grad, [[1], [2]])

    def test_vector_matrix(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.eye(2), requires_grad=True)
        out = a @ b
        assert out.shape == (2,)
        out.sum().backward()
        assert a.grad.shape == (2,)
        assert b.grad.shape == (2, 2)

    def test_matrix_vector(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        out = a @ b
        assert out.shape == (3,)
        out.sum().backward()
        assert np.allclose(b.grad, [3, 3])

    def test_vector_vector_dot(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        out = a.dot(b)
        assert out.item() == 11.0
        out.backward()
        assert np.allclose(a.grad, [3, 4])

    def test_batched_matmul_unbroadcasts_weight_grad(self):
        a = Tensor(np.ones((5, 3, 2)), requires_grad=True)
        w = Tensor(np.ones((2, 4)), requires_grad=True)
        (a @ w).sum().backward()
        assert w.grad.shape == (2, 4)
        assert np.allclose(w.grad, np.full((2, 4), 15))


class TestBackwardProtocol:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad_argument(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_with_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 2).backward(np.array([1.0, 10.0]))
        assert np.allclose(a.grad, [2.0, 20.0])

    def test_detach_cuts_graph(self):
        a = Tensor([2.0], requires_grad=True)
        (a.detach() * a).sum().backward()
        assert np.allclose(a.grad, [2.0])   # only the live branch

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 1).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_deep_chain_does_not_recurse(self):
        # Iterative topological sort must survive graphs deeper than the
        # Python recursion limit.
        a = Tensor([1.0], requires_grad=True)
        out = a
        for _ in range(3000):
            out = out + 1.0
        out.sum().backward()
        assert np.allclose(a.grad, [1.0])

    def test_diamond_graph_accumulates_once_per_path(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2
        c = a * 3
        (b + c).sum().backward()
        assert np.allclose(a.grad, [5.0])


class TestCombinators:
    def test_concatenate_values_and_grads(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        out = concatenate([a, b])
        assert np.allclose(out.data, [1, 2, 3])
        (out * Tensor([1.0, 2.0, 3.0])).sum().backward()
        assert np.allclose(a.grad, [1, 2])
        assert np.allclose(b.grad, [3])

    def test_stack_new_axis(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b])
        assert out.shape == (2, 2)
        out.sum().backward()
        assert np.allclose(a.grad, [1, 1])

    def test_where_routes_gradient(self):
        cond = np.array([True, False])
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([10.0, 20.0], requires_grad=True)
        out = where(cond, a, b)
        assert np.allclose(out.data, [1, 20])
        out.sum().backward()
        assert np.allclose(a.grad, [1, 0])
        assert np.allclose(b.grad, [0, 1])
