"""Unit tests for trained-encoder deployment (Sec. III-C)."""

import numpy as np
import pytest

from repro.core import (
    AsymmetricAutoencoder,
    EncoderDeployment,
    OrcoDCSConfig,
)
from repro.wsn import WSNetwork, build_aggregation_tree, select_aggregator


def deployed_cluster(n=16, latent=4, seed=0, activation="sigmoid"):
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0, 60, (n, 2))
    network = WSNetwork(positions, comm_range_m=25.0, battery_capacity_j=100.0)
    network.set_aggregator(select_aggregator(positions))
    tree = build_aggregation_tree(network)
    config = OrcoDCSConfig(input_dim=n, latent_dim=latent, seed=seed,
                           activation=activation)
    model = AsymmetricAutoencoder(config)
    return EncoderDeployment(model, network, tree), network, tree, model


def readings_for(network, seed=1):
    rng = np.random.default_rng(seed)
    return {nid: float(rng.random()) for nid in network.device_ids}


class TestSetup:
    def test_device_count_must_match(self):
        rng = np.random.default_rng(0)
        positions = rng.uniform(0, 50, (10, 2))
        network = WSNetwork(positions, comm_range_m=30.0)
        network.set_aggregator(0)
        tree = build_aggregation_tree(network)
        model = AsymmetricAutoencoder(OrcoDCSConfig(input_dim=12, latent_dim=3))
        with pytest.raises(ValueError):
            EncoderDeployment(model, network, tree)

    def test_requires_distribution_before_rounds(self):
        deployment, network, _, _ = deployed_cluster()
        with pytest.raises(RuntimeError):
            deployment.compressed_round(readings_for(network))

    def test_distribute_charges_network(self):
        deployment, network, _, _ = deployed_cluster()
        report = deployment.distribute()
        assert report.wire_bytes > 0
        assert network.ledger.total_wire_bytes("encoder_distribution") > 0
        assert deployment.distributed


class TestEquivalence:
    def test_distributed_encoding_matches_centralized(self):
        deployment, network, _, model = deployed_cluster()
        deployment.distribute()
        readings = readings_for(network)
        collected = deployment.compressed_round(readings, charge_network=False)
        centralized = deployment.centralized_latent(readings)
        assert np.allclose(collected.latent, centralized, atol=1e-10)

    def test_matches_model_encode(self):
        deployment, network, _, model = deployed_cluster()
        deployment.distribute()
        readings = readings_for(network)
        collected = deployment.compressed_round(readings, charge_network=False)
        stacked = np.array([readings[nid] for nid in network.device_ids])
        from repro.nn.tensor import Tensor
        model.eval()
        expected = model.encode(Tensor(stacked[None, :])).data[0]
        assert np.allclose(collected.latent, expected, atol=1e-10)

    def test_equivalence_holds_for_tanh(self):
        deployment, network, _, _ = deployed_cluster(activation="tanh")
        deployment.distribute()
        readings = readings_for(network)
        collected = deployment.compressed_round(readings, charge_network=False)
        assert np.allclose(collected.latent,
                           deployment.centralized_latent(readings), atol=1e-10)

    def test_unsupported_activation_rejected(self):
        with pytest.raises(ValueError):
            deployed_cluster(activation="softmax")


class TestRounds:
    def test_missing_reading_rejected(self):
        deployment, network, _, _ = deployed_cluster()
        deployment.distribute()
        readings = readings_for(network)
        readings.pop(network.device_ids[0])
        with pytest.raises(ValueError):
            deployment.compressed_round(readings)

    def test_charged_round_bills_network(self):
        deployment, network, _, _ = deployed_cluster()
        deployment.distribute()
        before = network.ledger.total_wire_bytes()
        deployment.compressed_round(readings_for(network))
        billed = network.ledger.total_wire_bytes("compressed_round")
        assert billed > 0
        assert network.ledger.total_wire_bytes() > before

    def test_uplink_latent_charges_backhaul(self):
        deployment, network, _, _ = deployed_cluster()
        deployment.distribute()
        collected = deployment.compressed_round(readings_for(network))
        elapsed = deployment.uplink_latent(collected.latent)
        assert elapsed > 0
        assert network.ledger.total_wire_bytes("latent_uplink") > 0

    def test_end_to_end_round(self):
        deployment, network, _, _ = deployed_cluster()
        deployment.distribute()
        latent, reconstruction = deployment.end_to_end_round(
            readings_for(network))
        assert latent.shape == (4,)
        assert reconstruction.shape == (16,)
        assert reconstruction.min() >= 0 and reconstruction.max() <= 1

    def test_cheaper_than_raw_plus_full_uplink(self):
        # Per-round cost of compressed collection must undercut shipping
        # the raw vector when M << N.
        deployment, network, tree, _ = deployed_cluster(n=40, latent=3)
        deployment.distribute()
        network.reset_ledger()
        deployment.compressed_round(readings_for(network))
        compressed = network.ledger.total_wire_bytes()
        network.reset_ledger()
        from repro.wsn import simulate_raw_aggregation
        simulate_raw_aggregation(network, tree)
        raw = network.ledger.total_wire_bytes()
        assert compressed < raw
