"""Unit tests for trained-encoder deployment (Sec. III-C)."""

import numpy as np
import pytest

from repro.core import (
    AsymmetricAutoencoder,
    EncoderDeployment,
    OrcoDCSConfig,
)
from repro.wsn import WSNetwork, build_aggregation_tree, select_aggregator


def deployed_cluster(n=16, latent=4, seed=0, activation="sigmoid"):
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0, 60, (n, 2))
    network = WSNetwork(positions, comm_range_m=25.0, battery_capacity_j=100.0)
    network.set_aggregator(select_aggregator(positions))
    tree = build_aggregation_tree(network)
    config = OrcoDCSConfig(input_dim=n, latent_dim=latent, seed=seed,
                           activation=activation)
    model = AsymmetricAutoencoder(config)
    return EncoderDeployment(model, network, tree), network, tree, model


def readings_for(network, seed=1):
    rng = np.random.default_rng(seed)
    return {nid: float(rng.random()) for nid in network.device_ids}


class TestSetup:
    def test_device_count_must_match(self):
        rng = np.random.default_rng(0)
        positions = rng.uniform(0, 50, (10, 2))
        network = WSNetwork(positions, comm_range_m=30.0)
        network.set_aggregator(0)
        tree = build_aggregation_tree(network)
        model = AsymmetricAutoencoder(OrcoDCSConfig(input_dim=12, latent_dim=3))
        with pytest.raises(ValueError):
            EncoderDeployment(model, network, tree)

    def test_requires_distribution_before_rounds(self):
        deployment, network, _, _ = deployed_cluster()
        with pytest.raises(RuntimeError):
            deployment.compressed_round(readings_for(network))

    def test_distribute_charges_network(self):
        deployment, network, _, _ = deployed_cluster()
        report = deployment.distribute()
        assert report.wire_bytes > 0
        assert network.ledger.total_wire_bytes("encoder_distribution") > 0
        assert deployment.distributed


class TestEquivalence:
    def test_distributed_encoding_matches_centralized(self):
        deployment, network, _, model = deployed_cluster()
        deployment.distribute()
        readings = readings_for(network)
        collected = deployment.compressed_round(readings, charge_network=False)
        centralized = deployment.centralized_latent(readings)
        assert np.allclose(collected.latent, centralized, atol=1e-10)

    def test_matches_model_encode(self):
        deployment, network, _, model = deployed_cluster()
        deployment.distribute()
        readings = readings_for(network)
        collected = deployment.compressed_round(readings, charge_network=False)
        stacked = np.array([readings[nid] for nid in network.device_ids])
        from repro.nn.tensor import Tensor
        model.eval()
        expected = model.encode(Tensor(stacked[None, :])).data[0]
        assert np.allclose(collected.latent, expected, atol=1e-10)

    def test_equivalence_holds_for_tanh(self):
        deployment, network, _, _ = deployed_cluster(activation="tanh")
        deployment.distribute()
        readings = readings_for(network)
        collected = deployment.compressed_round(readings, charge_network=False)
        assert np.allclose(collected.latent,
                           deployment.centralized_latent(readings), atol=1e-10)

    def test_unsupported_activation_rejected(self):
        with pytest.raises(ValueError):
            deployed_cluster(activation="softmax")


class TestRounds:
    def test_missing_reading_rejected(self):
        deployment, network, _, _ = deployed_cluster()
        deployment.distribute()
        readings = readings_for(network)
        readings.pop(network.device_ids[0])
        with pytest.raises(ValueError):
            deployment.compressed_round(readings)

    def test_charged_round_bills_network(self):
        deployment, network, _, _ = deployed_cluster()
        deployment.distribute()
        before = network.ledger.total_wire_bytes()
        deployment.compressed_round(readings_for(network))
        billed = network.ledger.total_wire_bytes("compressed_round")
        assert billed > 0
        assert network.ledger.total_wire_bytes() > before

    def test_uplink_latent_charges_backhaul(self):
        deployment, network, _, _ = deployed_cluster()
        deployment.distribute()
        collected = deployment.compressed_round(readings_for(network))
        elapsed = deployment.uplink_latent(collected.latent)
        assert elapsed > 0
        assert network.ledger.total_wire_bytes("latent_uplink") > 0

    def test_end_to_end_round(self):
        deployment, network, _, _ = deployed_cluster()
        deployment.distribute()
        latent, reconstruction = deployment.end_to_end_round(
            readings_for(network))
        assert latent.shape == (4,)
        assert reconstruction.shape == (16,)
        assert reconstruction.min() >= 0 and reconstruction.max() <= 1

    def test_cheaper_than_raw_plus_full_uplink(self):
        # Per-round cost of compressed collection must undercut shipping
        # the raw vector when M << N.
        deployment, network, tree, _ = deployed_cluster(n=40, latent=3)
        deployment.distribute()
        network.reset_ledger()
        deployment.compressed_round(readings_for(network))
        compressed = network.ledger.total_wire_bytes()
        network.reset_ledger()
        from repro.wsn import simulate_raw_aggregation
        simulate_raw_aggregation(network, tree)
        raw = network.ledger.total_wire_bytes()
        assert compressed < raw


class TestUnreliableSensorHops:
    """Intra-cluster loss on sensor hops: severed subtrees vs coding."""

    def _deployed_lossy(self, loss, coding=None, retries=0, seed=0):
        from repro.sim import ARQConfig, ChannelSpec
        deployment, network, tree, model = deployed_cluster(seed=seed)
        network.attach_unreliable(
            sensor=ChannelSpec(loss=loss, arq=ARQConfig(max_retries=retries),
                               coding=coding),
            rng=np.random.default_rng(42))
        deployment.distribute()
        return deployment, network, tree

    def test_failed_hops_sever_contributions(self):
        deployment, network, _ = self._deployed_lossy(loss=0.4)
        readings = readings_for(network)
        collected = deployment.compressed_round(readings)
        assert collected.report.failed_hops
        assert len(collected.contributors) < network.num_devices
        # The latent equals the centralized masked product over the
        # contributors that actually reached the aggregator.
        stacked = np.array([readings[nid] if nid in collected.contributors
                            else 0.0 for nid in network.device_ids])
        expected = deployment._activation(
            deployment.weight_e @ stacked + deployment.bias_e)
        np.testing.assert_array_equal(collected.latent, expected)

    def test_delivered_rounds_unchanged_by_channel(self):
        deployment, network, _ = self._deployed_lossy(loss=0.0)
        readings = readings_for(network)
        collected = deployment.compressed_round(readings)
        assert not collected.report.failed_hops
        np.testing.assert_allclose(
            collected.latent, deployment.centralized_latent(readings),
            rtol=1e-12, atol=0)

    def test_coded_hops_restore_contributors_at_parity_cost(self):
        from repro.sim import CodingSpec
        readings = None
        plain_contrib = coded_contrib = None
        plain, plain_net, _ = self._deployed_lossy(loss=0.35)
        readings = readings_for(plain_net)
        plain_round = plain.compressed_round(readings)
        plain_contrib = len(plain_round.contributors)
        coded, coded_net, _ = self._deployed_lossy(
            loss=0.35, coding=CodingSpec(parity_frames=4))
        coded_round = coded.compressed_round(readings)
        coded_contrib = len(coded_round.contributors)
        assert coded_contrib > plain_contrib
        # Parity frames radiate extra bytes on every hop.
        assert coded_net.ledger.total_wire_bytes("compressed_round") \
            > plain_net.ledger.total_wire_bytes("compressed_round")

    def test_partial_sum_rides_coded_scalars_exactly(self):
        """Coded partial sums through hybrid_encode_partial: the M-vector
        a relay forwards survives any k erasures of its M+k coded
        scalars, bit for bit."""
        from repro.sim import decode_floats, encode_floats
        from repro.wsn.aggregation import hybrid_encode_partial

        deployment, network, tree = self._deployed_lossy(loss=0.0)
        readings = readings_for(network)
        partial, _, _ = hybrid_encode_partial(
            tree, readings, deployment.weight_e, deployment.device_index)
        coded = encode_floats(partial, 3)
        assert coded.size == partial.size + 3
        # Drop any 3 coded scalars; the aggregator still decodes the
        # exact partial sum.
        survivors = [6, 1, 5, 2][:partial.size]
        decoded = decode_floats(survivors, coded[survivors], partial.size)
        assert np.array_equal(decoded.view(np.uint64),
                              partial.view(np.uint64))
