"""Unit tests for the asymmetric autoencoder."""

import numpy as np

from repro.core import (
    AsymmetricAutoencoder,
    OrcoDCSConfig,
    build_decoder,
    build_encoder,
)
from repro.nn import Dense, Sigmoid
from repro.nn.tensor import Tensor


def config(**kwargs):
    defaults = dict(input_dim=40, latent_dim=8, seed=0)
    defaults.update(kwargs)
    return OrcoDCSConfig(**defaults)


class TestArchitecture:
    def test_encoder_is_single_dense_plus_activation(self):
        encoder = build_encoder(config())
        assert len(encoder) == 2
        assert isinstance(encoder[0], Dense)
        assert isinstance(encoder[1], Sigmoid)
        assert encoder[0].in_features == 40
        assert encoder[0].out_features == 8

    def test_single_layer_decoder(self):
        decoder = build_decoder(config(decoder_layers=1))
        dense_layers = [l for l in decoder.layers if isinstance(l, Dense)]
        assert len(dense_layers) == 1
        assert isinstance(decoder.layers[-1], Sigmoid)

    def test_deep_decoder_layer_count(self):
        for depth in (2, 3, 5):
            decoder = build_decoder(config(decoder_layers=depth))
            dense_layers = [l for l in decoder.layers if isinstance(l, Dense)]
            assert len(dense_layers) == depth

    def test_deep_decoder_uses_hidden_width(self):
        cfg = config(decoder_layers=3, decoder_hidden=16)
        decoder = build_decoder(cfg)
        dense_layers = [l for l in decoder.layers if isinstance(l, Dense)]
        assert dense_layers[0].out_features == 16
        assert dense_layers[-1].in_features == 16
        assert dense_layers[-1].out_features == 40

    def test_deterministic_init_with_seed(self):
        a = AsymmetricAutoencoder(config())
        b = AsymmetricAutoencoder(config())
        x = np.random.default_rng(0).random((2, 40))
        assert np.allclose(a.reconstruct(x), b.reconstruct(x))

    def test_asymmetry_deep_decoder_bigger(self):
        model = AsymmetricAutoencoder(config(decoder_layers=5))
        enc_params = sum(p.size for p in model.encoder_parameters())
        dec_params = sum(p.size for p in model.decoder_parameters())
        assert dec_params > 3 * enc_params


class TestForward:
    def test_shapes(self):
        model = AsymmetricAutoencoder(config())
        x = Tensor(np.random.default_rng(0).random((5, 40)))
        latent = model.encode(x)
        assert latent.shape == (5, 8)
        recon = model.decode(latent)
        assert recon.shape == (5, 40)

    def test_outputs_in_unit_interval(self):
        model = AsymmetricAutoencoder(config())
        recon = model.reconstruct(np.random.default_rng(0).random((4, 40)))
        assert recon.min() >= 0.0 and recon.max() <= 1.0

    def test_training_forward_is_noisy(self):
        model = AsymmetricAutoencoder(config(noise_sigma=0.5))
        model.train()
        x = Tensor(np.random.default_rng(0).random((3, 40)))
        a = model(x).data
        b = model(x).data
        assert not np.allclose(a, b)

    def test_reconstruct_is_deterministic(self):
        model = AsymmetricAutoencoder(config(noise_sigma=0.5))
        x = np.random.default_rng(0).random((3, 40))
        assert np.allclose(model.reconstruct(x), model.reconstruct(x))

    def test_reconstruct_restores_training_mode(self):
        model = AsymmetricAutoencoder(config())
        model.train()
        model.reconstruct(np.zeros((1, 40)))
        assert model.training


class TestEncoderWeights:
    def test_orientation_matches_eq1(self):
        model = AsymmetricAutoencoder(config())
        weight_e, bias_e = model.encoder_weights()
        assert weight_e.shape == (8, 40)    # We in R^{M x N}
        x = np.random.default_rng(0).random(40)
        manual = 1.0 / (1.0 + np.exp(-(weight_e @ x + bias_e)))
        latent = model.encode(Tensor(x[None, :])).data[0]
        assert np.allclose(manual, latent, atol=1e-12)

    def test_device_column(self):
        model = AsymmetricAutoencoder(config())
        weight_e, _ = model.encoder_weights()
        assert np.allclose(model.device_column(7), weight_e[:, 7])

    def test_columns_are_copies(self):
        model = AsymmetricAutoencoder(config())
        column = model.device_column(0)
        column[:] = 99.0
        assert not np.allclose(model.device_column(0), 99.0)
