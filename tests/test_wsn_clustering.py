"""Unit tests for cluster-head selection and partitioning."""

import numpy as np
import pytest

from repro.wsn import (
    cluster_aggregators,
    leach_rotation,
    lloyd_clusters,
    pairwise_distances,
    select_aggregator,
)


class TestSelectAggregator:
    def test_proximity_picks_min_total_distance(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [10.0, 0.0]])
        chosen = select_aggregator(pts)
        totals = pairwise_distances(pts).sum(axis=1)
        assert chosen == int(np.argmin(totals))

    def test_central_node_wins(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 0.1], [0.0, 10.0],
                        [10.0, 10.0]])
        assert select_aggregator(pts) == 2

    def test_energy_method(self):
        pts = np.zeros((3, 2)) + np.arange(3)[:, None]
        assert select_aggregator(pts, "energy", [0.1, 0.9, 0.5]) == 1

    def test_hybrid_balances(self):
        pts = np.array([[0.0, 0.0], [5.0, 0.0], [10.0, 0.0]])
        # Central node also has the most energy -> must win under hybrid.
        assert select_aggregator(pts, "hybrid", [0.0, 1.0, 0.0]) == 1

    def test_energy_requires_energies(self):
        with pytest.raises(ValueError):
            select_aggregator(np.zeros((3, 2)), "energy")

    def test_energies_length_mismatch(self):
        with pytest.raises(ValueError):
            select_aggregator(np.zeros((3, 2)), "energy", [1.0])

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            select_aggregator(np.zeros((3, 2)), "random", [1, 2, 3])


class TestLeach:
    def test_probability_statistics(self):
        rng = np.random.default_rng(0)
        counts = [len(leach_rotation(0, 1000, 0.1, rng)) for _ in range(20)]
        mean = np.mean(counts)
        assert 60 < mean < 140    # ~10% election rate

    def test_threshold_rises_through_epoch(self):
        # Late in the epoch the election probability grows.
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        early = len(leach_rotation(0, 2000, 0.1, rng_a))
        late = len(leach_rotation(9, 2000, 0.1, rng_b))
        assert late > early

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            leach_rotation(0, 10, 0.0)


class TestLloyd:
    def test_partition_covers_all_nodes(self):
        pts = np.random.default_rng(0).uniform(0, 100, (60, 2))
        assignment, centers = lloyd_clusters(pts, 4,
                                             rng=np.random.default_rng(0))
        assert assignment.shape == (60,)
        assert centers.shape == (4, 2)
        assert set(assignment.tolist()) <= {0, 1, 2, 3}

    def test_separated_blobs_recovered(self):
        rng = np.random.default_rng(0)
        blob_a = rng.normal(0, 1, (20, 2))
        blob_b = rng.normal(50, 1, (20, 2))
        pts = np.vstack([blob_a, blob_b])
        assignment, _ = lloyd_clusters(pts, 2, rng=rng)
        assert len(set(assignment[:20].tolist())) == 1
        assert len(set(assignment[20:].tolist())) == 1
        assert assignment[0] != assignment[20]

    def test_nodes_assigned_to_nearest_center(self):
        pts = np.random.default_rng(1).uniform(0, 100, (40, 2))
        assignment, centers = lloyd_clusters(pts, 3,
                                             rng=np.random.default_rng(1))
        dists = ((pts[:, None, :] - centers[None]) ** 2).sum(axis=-1)
        assert np.array_equal(assignment, dists.argmin(axis=1))

    def test_validation(self):
        with pytest.raises(ValueError):
            lloyd_clusters(np.zeros((3, 2)), 5)


class TestClusterAggregators:
    def test_one_head_per_cluster(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 100, (30, 2))
        assignment, _ = lloyd_clusters(pts, 3, rng=rng)
        heads = cluster_aggregators(pts, assignment)
        assert len(heads) == 3
        head_labels = [assignment[h] for h in heads]
        assert sorted(head_labels) == [0, 1, 2]

    def test_heads_are_cluster_members(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 100, (24, 2))
        assignment, _ = lloyd_clusters(pts, 2, rng=rng)
        for head in cluster_aggregators(pts, assignment):
            assert 0 <= head < 24
