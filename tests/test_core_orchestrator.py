"""Unit tests for the IoT-Edge orchestrated online trainer."""

import numpy as np
import pytest

from repro.core import (
    OrcoDCSConfig,
    OrcoDCSFramework,
    OrchestratedTrainer,
    TrainingHistory,
)
from repro.nn import Dense, HuberLoss, Sequential, Sigmoid


def toy_rows(count=64, dim=20, seed=0):
    return np.random.default_rng(seed).random((count, dim))


def toy_trainer(dim=20, latent=4, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    encoder = Sequential(Dense(dim, latent, rng=rng), Sigmoid())
    decoder = Sequential(Dense(latent, dim, rng=rng), Sigmoid())
    defaults = dict(input_dim=dim, latent_dim=latent, loss=HuberLoss(1.0),
                    noise=None, encoder_forward_flops=2 * dim * latent,
                    decoder_forward_flops=2 * dim * latent,
                    rng=rng, name="toy")
    defaults.update(kwargs)
    return OrchestratedTrainer(encoder, decoder, **defaults)


class TestTrainRound:
    def test_returns_record_with_accounting(self):
        trainer = toy_trainer()
        record = trainer.train_round(toy_rows(8))
        assert record.round_index == 1
        assert record.train_loss > 0
        assert record.uplink_bytes == 8 * 4 * 4
        assert record.downlink_bytes == 8 * (20 + 4) * 4
        assert record.time_s > 0

    def test_clock_accumulates(self):
        trainer = toy_trainer()
        first = trainer.train_round(toy_rows(8))
        second = trainer.train_round(toy_rows(8))
        assert second.time_s > first.time_s

    def test_ledger_kinds(self):
        trainer = toy_trainer()
        trainer.train_round(toy_rows(8))
        kinds = trainer.ledger.by_kind()
        assert "latent_uplink" in kinds and "recon_downlink" in kinds

    def test_updates_both_sides(self):
        trainer = toy_trainer()
        enc_before = trainer.encoder.parameters()[0].data.copy()
        dec_before = trainer.decoder.parameters()[0].data.copy()
        trainer.train_round(toy_rows(16))
        assert not np.allclose(enc_before, trainer.encoder.parameters()[0].data)
        assert not np.allclose(dec_before, trainer.decoder.parameters()[0].data)

    def test_dimension_validation(self):
        trainer = toy_trainer()
        with pytest.raises(ValueError):
            trainer.train_round(np.zeros((4, 7)))


class TestFit:
    def test_loss_decreases(self):
        trainer = toy_trainer()
        history = trainer.fit(toy_rows(128), epochs=20, batch_size=32)
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss

    def test_round_and_epoch_counts(self):
        trainer = toy_trainer()
        history = trainer.fit(toy_rows(64), epochs=3, batch_size=16)
        assert len(history.epochs) == 3
        assert len(history.rounds) == 3 * 4

    def test_validation_loss_recorded(self):
        trainer = toy_trainer()
        history = trainer.fit(toy_rows(32), epochs=2, batch_size=16,
                              val_rows=toy_rows(16, seed=1))
        assert all(e.val_loss is not None for e in history.epochs)

    def test_time_budget_stops_early(self):
        trainer = toy_trainer()
        probe = trainer.train_round(toy_rows(16))
        budget = probe.time_s * 3.5
        trainer.fit(toy_rows(256), epochs=50, batch_size=16,
                    time_budget_s=budget)
        assert trainer.clock_s <= budget + probe.time_s

    def test_max_rounds_stops_early(self):
        trainer = toy_trainer()
        history = trainer.fit(toy_rows(256), epochs=50, batch_size=16,
                              max_rounds=5)
        assert len(history.rounds) == 5

    def test_history_continuation(self):
        trainer = toy_trainer()
        history = trainer.fit(toy_rows(32), epochs=1, batch_size=16)
        continued = trainer.fit(toy_rows(32), epochs=1, batch_size=16,
                                history=history)
        assert continued is history
        assert len(history.epochs) == 2

    def test_parameter_validation(self):
        trainer = toy_trainer()
        with pytest.raises(ValueError):
            trainer.fit(toy_rows(8), epochs=0)


class TestEvaluateReconstruct:
    def test_evaluate_does_not_update(self):
        trainer = toy_trainer()
        before = trainer.encoder.parameters()[0].data.copy()
        trainer.evaluate(toy_rows(8))
        assert np.allclose(before, trainer.encoder.parameters()[0].data)

    def test_evaluate_does_not_advance_clock(self):
        trainer = toy_trainer()
        trainer.evaluate(toy_rows(8))
        assert trainer.clock_s == 0.0

    def test_reconstruct_shape_and_range(self):
        trainer = toy_trainer()
        out = trainer.reconstruct(toy_rows(5))
        assert out.shape == (5, 20)
        assert out.min() >= 0 and out.max() <= 1


class TestTrainingHistory:
    def test_time_to_loss(self):
        history = TrainingHistory("x")
        from repro.core import RoundRecord
        history.rounds = [RoundRecord(1, 1, 1.0, 0.5, 0, 0),
                          RoundRecord(2, 1, 2.0, 0.2, 0, 0),
                          RoundRecord(3, 1, 3.0, 0.1, 0, 0)]
        assert history.time_to_loss(0.25) == 2.0
        assert history.time_to_loss(0.05) is None
        assert history.final_loss == 0.1
        assert history.total_time_s == 3.0

    def test_empty_history_guards(self):
        history = TrainingHistory("x")
        assert history.total_time_s == 0.0
        with pytest.raises(ValueError):
            _ = history.final_loss

    def test_smoothed_losses_shorter_or_equal(self):
        history = TrainingHistory("x")
        from repro.core import RoundRecord
        history.rounds = [RoundRecord(i, 1, i, 1.0 / (i + 1), 0, 0)
                          for i in range(20)]
        smooth = history.smoothed_losses(5)
        assert len(smooth) == 16


class TestOrcoDCSFramework:
    def test_framework_wires_config(self):
        config = OrcoDCSConfig(input_dim=30, latent_dim=6, seed=0,
                               batch_size=8)
        framework = OrcoDCSFramework(config)
        assert framework.input_dim == 30
        assert framework.latent_dim == 6
        assert framework.name == "OrcoDCS"

    def test_fit_config_uses_config_batch(self):
        config = OrcoDCSConfig(input_dim=30, latent_dim=6, seed=0,
                               batch_size=8)
        framework = OrcoDCSFramework(config)
        history = framework.fit_config(toy_rows(32, 30), epochs=1)
        assert len(history.rounds) == 4

    def test_training_reduces_loss_on_structured_data(self):
        rng = np.random.default_rng(0)
        basis = rng.random((3, 30))
        rows = np.clip(rng.random((96, 3)) @ basis / 3.0, 0, 1)
        config = OrcoDCSConfig(input_dim=30, latent_dim=6, seed=0,
                               noise_sigma=0.05)
        framework = OrcoDCSFramework(config)
        history = framework.fit_config(rows, epochs=30)
        assert history.epochs[-1].train_loss < 0.5 * history.epochs[0].train_loss

    def test_noise_decay_hook_runs(self):
        config = OrcoDCSConfig(input_dim=30, latent_dim=6, noise_sigma=0.2)
        framework = OrcoDCSFramework(config)
        framework.noise.decay = 0.5
        framework.fit_config(toy_rows(16, 30), epochs=2)
        assert abs(framework.noise.sigma - 0.05) < 1e-12

    def test_overhead_reflects_decoder_depth(self):
        shallow = OrcoDCSFramework(OrcoDCSConfig(input_dim=64, latent_dim=8,
                                                 decoder_layers=1))
        deep = OrcoDCSFramework(OrcoDCSConfig(input_dim=64, latent_dim=8,
                                              decoder_layers=5))
        assert deep.overhead().edge_compute_share > \
            shallow.overhead().edge_compute_share

    def test_vector_huber_loss_option(self):
        config = OrcoDCSConfig(input_dim=30, latent_dim=6,
                               loss="vector_huber", huber_delta=5.0)
        framework = OrcoDCSFramework(config)
        history = framework.fit_config(toy_rows(16, 30), epochs=1)
        assert history.rounds[0].train_loss > 0

    def test_reconstruct_diverse_shapes_and_clean_head(self):
        config = OrcoDCSConfig(input_dim=30, latent_dim=6, noise_sigma=0.3,
                               seed=0)
        framework = OrcoDCSFramework(config)
        rows = toy_rows(5, 30)
        out = framework.reconstruct_diverse(rows, copies=3)
        assert out.shape == (15, 30)
        # The first block is the clean decode.
        assert np.allclose(out[:5], framework.reconstruct(rows))
        # Noisy copies differ from the clean ones.
        assert not np.allclose(out[5:10], out[:5])

    def test_reconstruct_diverse_single_copy_is_clean(self):
        config = OrcoDCSConfig(input_dim=30, latent_dim=6, noise_sigma=0.3)
        framework = OrcoDCSFramework(config)
        rows = toy_rows(4, 30)
        assert np.allclose(framework.reconstruct_diverse(rows, copies=1),
                           framework.reconstruct(rows))

    def test_reconstruct_diverse_validation(self):
        config = OrcoDCSConfig(input_dim=30, latent_dim=6)
        framework = OrcoDCSFramework(config)
        with pytest.raises(ValueError):
            framework.reconstruct_diverse(toy_rows(2, 30), copies=0)
