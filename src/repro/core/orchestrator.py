"""IoT-Edge orchestrated online training (the paper's central mechanism).

One *round* of the protocol (Sec. III-B, "Training procedure"):

1. the data aggregator encodes a raw minibatch into latent vectors
   (eq. 1) and perturbs them with Gaussian noise (eq. 2);
2. the noisy latents travel over the uplink to the edge server;
3. the edge decodes them into reconstructions (eq. 3);
4. reconstructions (and latent gradients) travel back over the cheap
   downlink; the reconstruction error (eq. 4) is evaluated;
5. the edge updates the decoder, the aggregator updates the encoder.

The :class:`OrchestratedTrainer` executes these rounds with one shared
autograd graph (mathematically identical updates to the distributed
message exchange) while *accounting* for the distribution: every round is
charged modeled compute seconds on each side and bytes on each link.
The same trainer class drives both OrcoDCS and the online-DCSNet
baseline, which differ only in their modules, loss and noise policy.

The round is exposed as a composable pipeline — ``encode_batch`` ->
``decode_latent`` -> ``reconstruction_loss`` -> ``apply_updates`` — with
``step`` orchestrating one full accounted round.
:class:`repro.core.fleet.FleetTrainer` reimplements the same pipeline
over a *stacked* batch of K clusters (one block-diagonal tensor program
instead of K Python-level passes); the scheduler picks between the two
engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..nn import losses as losses_mod
from ..nn import optim as optim_mod
from ..nn.layers import Module
from ..nn.tensor import Tensor
from ..wsn.network import TransmissionLedger
from .autoencoder import AsymmetricAutoencoder
from .config import OrcoDCSConfig
from .noise import GaussianNoiseInjector
from .timing import (
    OrchestrationTimingModel,
    RoundTiming,
    dense_flops,
    dense_stack_flops,
    overhead_report,
)


@dataclass(frozen=True)
class RoundCosts:
    """Memoised per-round cost profile for one (trainer, batch size)."""

    timing: RoundTiming
    up_bytes: int
    down_bytes: int
    up_wire_bytes: int
    down_wire_bytes: int


@dataclass
class RoundRecord:
    """One orchestrated minibatch round."""

    round_index: int
    epoch: int
    time_s: float          # cumulative modeled seconds after this round
    train_loss: float
    uplink_bytes: int
    downlink_bytes: int


@dataclass
class EpochRecord:
    """Aggregated view at an epoch boundary."""

    epoch: int
    time_s: float
    train_loss: float
    val_loss: Optional[float]


class TrainingHistory:
    """Loss-vs-modeled-time trajectory of one training run.

    This is the object Figures 4 and 6-8 are drawn from.
    """

    def __init__(self, name: str):
        self.name = name
        self.rounds: List[RoundRecord] = []
        self.epochs: List[EpochRecord] = []

    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        return np.array([r.time_s for r in self.rounds])

    @property
    def losses(self) -> np.ndarray:
        return np.array([r.train_loss for r in self.rounds])

    @property
    def epoch_times(self) -> np.ndarray:
        return np.array([e.time_s for e in self.epochs])

    @property
    def epoch_losses(self) -> np.ndarray:
        return np.array([e.train_loss for e in self.epochs])

    @property
    def val_losses(self) -> np.ndarray:
        return np.array([e.val_loss if e.val_loss is not None else np.nan
                         for e in self.epochs])

    @property
    def final_loss(self) -> float:
        if not self.rounds:
            raise ValueError("history is empty")
        return self.rounds[-1].train_loss

    @property
    def total_time_s(self) -> float:
        return self.rounds[-1].time_s if self.rounds else 0.0

    def time_to_loss(self, threshold: float) -> Optional[float]:
        """Modeled seconds until train loss first dips below ``threshold``
        (None if never)."""
        for record in self.rounds:
            if record.train_loss <= threshold:
                return record.time_s
        return None

    def smoothed_losses(self, window: int = 10) -> np.ndarray:
        """Running-mean loss curve (round-level losses are noisy)."""
        losses = self.losses
        if window <= 1 or len(losses) < 2:
            return losses
        kernel = np.ones(min(window, len(losses))) / min(window, len(losses))
        return np.convolve(losses, kernel, mode="valid")


class OrchestratedTrainer:
    """Generic IoT-Edge orchestrated online trainer.

    Parameters
    ----------
    encoder / decoder:
        Aggregator-side and edge-side modules.  ``decoder(encoder(x))``
        must map ``(B, input_dim)`` rows back to ``(B, input_dim)`` rows.
    input_dim / latent_dim:
        Data and code dimensions (drive the byte accounting).
    loss:
        Reconstruction loss object.
    noise:
        Latent-noise injector (``None`` disables — DCSNet's setting).
    encoder_forward_flops / decoder_forward_flops:
        Per-sample forward FLOPs of each side, for the timing model.
    timing:
        :class:`OrchestrationTimingModel` (devices + links).
    optimizer / learning_rate:
        Optimiser spec, instantiated separately per side — the aggregator
        and the edge each keep their own optimiser state, as in the real
        deployment.
    """

    def __init__(self, encoder: Module, decoder: Module, *,
                 input_dim: int, latent_dim: int,
                 loss: losses_mod.Loss,
                 noise: Optional[GaussianNoiseInjector],
                 encoder_forward_flops: float,
                 decoder_forward_flops: float,
                 timing: Optional[OrchestrationTimingModel] = None,
                 optimizer: str = "adam",
                 learning_rate: float = 1e-3,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "orchestrated"):
        self.encoder = encoder
        self.decoder = decoder
        self.input_dim = input_dim
        self.latent_dim = latent_dim
        self.loss = loss
        self.noise = noise
        self.encoder_forward_flops = encoder_forward_flops
        self.decoder_forward_flops = decoder_forward_flops
        self.timing = timing or OrchestrationTimingModel()
        self.rng = rng or np.random.default_rng()
        self.name = name
        self.encoder_optimizer = optim_mod.make_optimizer(
            optimizer, encoder.parameters(), lr=learning_rate)
        self.decoder_optimizer = optim_mod.make_optimizer(
            optimizer, decoder.parameters(), lr=learning_rate)
        self.ledger = TransmissionLedger()
        self.clock_s = 0.0
        self._round_index = 0
        self._training = True
        self._round_costs_cache: Dict[int, RoundCosts] = {}

    # ------------------------------------------------------------------
    # Protocol steps (each maps to one leg of the Sec. III-B round; the
    # fleet engine mirrors this pipeline over stacked K-cluster batches)
    # ------------------------------------------------------------------
    def encode_batch(self, x: Tensor, training: bool = True) -> Tensor:
        """Aggregator side: eq. (1) encode, plus eq. (2) train-time noise."""
        latent = self.encoder(x)
        if self.noise is not None and training:
            latent = self.noise(latent, training=True)
        return latent

    def decode_latent(self, latent: Tensor) -> Tensor:
        """Edge side: eq. (3) decode latents into reconstructions."""
        return self.decoder(latent)

    def reconstruction_loss(self, reconstruction: Tensor, batch) -> Tensor:
        """Eq. (4) reconstruction error (differentiable)."""
        return self.loss(reconstruction, batch)

    def apply_updates(self, loss_value: Tensor) -> None:
        """Backprop and step both sides' optimisers (edge first)."""
        self.encoder_optimizer.zero_grad()
        self.decoder_optimizer.zero_grad()
        loss_value.backward()
        self.decoder_optimizer.step()   # edge updates first (has grads first)
        self.encoder_optimizer.step()

    def _forward(self, batch: np.ndarray, training: bool) -> Tensor:
        return self.decode_latent(self.encode_batch(Tensor(batch), training))

    def round_costs(self, batch_size: int) -> RoundCosts:
        """Memoised :class:`RoundCosts` for one batch size.

        The cost of a round depends only on the batch size for a fixed
        trainer, so schedulers and the fleet engine reuse this instead of
        re-deriving the cost model every round.
        """
        cached = self._round_costs_cache.get(batch_size)
        if cached is None:
            timing = self.timing.training_round(
                batch_size, self.input_dim, self.latent_dim,
                self.encoder_forward_flops, self.decoder_forward_flops)
            up_bytes, down_bytes = self.timing.round_bytes(
                batch_size, self.input_dim, self.latent_dim)
            cached = RoundCosts(timing, up_bytes, down_bytes,
                                self.timing.up.wire_bytes(up_bytes),
                                self.timing.down.wire_bytes(down_bytes))
            self._round_costs_cache[batch_size] = cached
        return cached

    def account_round(self, batch_size: int, epoch: int,
                      train_loss: float) -> RoundRecord:
        """Charge one round's modeled time/bytes and emit its record.

        Split out from :meth:`step` so the fleet engine — which executes
        the tensor math for K clusters at once — can reuse the identical
        per-cluster clock and ledger bookkeeping.
        """
        costs = self.round_costs(batch_size)
        timing = costs.timing
        self.clock_s += timing.total_s
        self.ledger.record(0, -1, costs.up_bytes, costs.up_wire_bytes,
                           "latent_uplink", timing.uplink_s)
        self.ledger.record(-1, 0, costs.down_bytes, costs.down_wire_bytes,
                           "recon_downlink", timing.downlink_s)
        self._round_index += 1
        return RoundRecord(self._round_index, epoch, self.clock_s,
                           train_loss, costs.up_bytes, costs.down_bytes)

    def step(self, batch: np.ndarray, epoch: int = 0) -> RoundRecord:
        """Run one orchestrated minibatch round and account for it."""
        batch = np.atleast_2d(np.asarray(batch, dtype=float))
        if batch.shape[1] != self.input_dim:
            raise ValueError(f"batch dim {batch.shape[1]} != input_dim {self.input_dim}")
        reconstruction = self._forward(batch, training=True)
        loss_value = self.reconstruction_loss(reconstruction, batch)
        self.apply_updates(loss_value)
        return self.account_round(batch.shape[0], epoch,
                                  float(loss_value.item()))

    # Historical name for :meth:`step`, kept for callers of the original API.
    train_round = step

    def evaluate(self, rows: np.ndarray) -> float:
        """Reconstruction loss without noise or parameter updates."""
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        reconstruction = self._forward(rows, training=False)
        return float(self.loss(reconstruction, rows).item())

    def reconstruct(self, rows: np.ndarray) -> np.ndarray:
        """Reconstruct rows (inference path, no noise)."""
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        return self._forward(rows, training=False).data

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def fit(self, train_rows: np.ndarray, epochs: int = 10,
            batch_size: int = 32, val_rows: Optional[np.ndarray] = None,
            shuffle: bool = True, time_budget_s: Optional[float] = None,
            max_rounds: Optional[int] = None,
            history: Optional[TrainingHistory] = None) -> TrainingHistory:
        """Online training over ``train_rows`` (``(num_samples, N)``).

        Stops early when the modeled clock exceeds ``time_budget_s`` or
        after ``max_rounds`` minibatch rounds.  Passing an existing
        ``history`` continues it (used by fine-tuning relaunches).
        """
        train_rows = np.atleast_2d(np.asarray(train_rows, dtype=float))
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        history = history or TrainingHistory(self.name)
        for epoch in range(1, epochs + 1):
            order = np.arange(len(train_rows))
            if shuffle:
                self.rng.shuffle(order)
            epoch_losses: List[float] = []
            for start in range(0, len(order), batch_size):
                batch = train_rows[order[start:start + batch_size]]
                record = self.train_round(batch, epoch)
                history.rounds.append(record)
                epoch_losses.append(record.train_loss)
                if time_budget_s is not None and self.clock_s >= time_budget_s:
                    break
                if max_rounds is not None and self._round_index >= max_rounds:
                    break
            val_loss = self.evaluate(val_rows) if val_rows is not None else None
            history.epochs.append(EpochRecord(
                epoch, self.clock_s, float(np.mean(epoch_losses)), val_loss))
            if self.noise is not None:
                self.noise.on_epoch_end()
            if time_budget_s is not None and self.clock_s >= time_budget_s:
                break
            if max_rounds is not None and self._round_index >= max_rounds:
                break
        return history


class OrcoDCSFramework(OrchestratedTrainer):
    """OrcoDCS wired from an :class:`OrcoDCSConfig`.

    Builds the asymmetric autoencoder, the Huber loss and the Gaussian
    noise injector, computes the FLOP profile of both sides and exposes
    the trained model for deployment (Sec. III-C).
    """

    def __init__(self, config: OrcoDCSConfig,
                 timing: Optional[OrchestrationTimingModel] = None,
                 rng: Optional[np.random.Generator] = None):
        rng = rng or np.random.default_rng(config.seed)
        model = AsymmetricAutoencoder(config, rng)
        if config.loss in ("huber", "vector_huber"):
            loss = losses_mod.make_loss(config.loss, delta=config.huber_delta)
        else:
            loss = losses_mod.make_loss(config.loss)
        decoder_dims = self._decoder_dims(config)
        super().__init__(
            model.encoder, model.decoder,
            input_dim=config.input_dim, latent_dim=config.latent_dim,
            loss=loss, noise=model.noise,
            encoder_forward_flops=dense_flops(config.input_dim, config.latent_dim),
            decoder_forward_flops=dense_stack_flops(decoder_dims),
            timing=timing, optimizer=config.optimizer,
            learning_rate=config.learning_rate, rng=rng, name="OrcoDCS")
        self.config = config
        self.model = model

    @staticmethod
    def _decoder_dims(config: OrcoDCSConfig) -> List[int]:
        if config.decoder_layers == 1:
            return [config.latent_dim, config.input_dim]
        hidden = config.hidden_width
        return ([config.latent_dim]
                + [hidden] * (config.decoder_layers - 1)
                + [config.input_dim])

    def fit_config(self, train_rows: np.ndarray, epochs: int = 10,
                   val_rows: Optional[np.ndarray] = None,
                   **kwargs) -> TrainingHistory:
        """`fit` with the batch size taken from the config."""
        return self.fit(train_rows, epochs=epochs,
                        batch_size=self.config.batch_size,
                        val_rows=val_rows, **kwargs)

    def reconstruct_diverse(self, rows: np.ndarray,
                            copies: int = 2) -> np.ndarray:
        """Decode one clean and ``copies - 1`` noise-perturbed latents
        per row.

        This is the mechanism behind the paper's Fig. 5 claim: "the
        addition of Gaussian noise to the latent spaces ... leads to the
        generation of more diverse data by the decoder", which the
        follow-up classifier benefits from.  Returns ``copies *
        len(rows)`` rows; the first ``len(rows)`` are clean decodes.
        """
        if copies < 1:
            raise ValueError("copies must be >= 1")
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        outputs = [self.reconstruct(rows)]
        for _ in range(copies - 1):
            latent = self.encoder(Tensor(rows))
            noisy = self.noise(latent, training=True)
            outputs.append(self.decoder(noisy).data)
        return np.vstack(outputs)

    def overhead(self):
        """Sec. III-E's overhead breakdown for this configuration."""
        return overhead_report(
            self.config.batch_size, self.config.input_dim,
            self.config.latent_dim, self.encoder_forward_flops,
            self.decoder_forward_flops)
