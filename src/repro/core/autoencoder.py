"""The asymmetric autoencoder at the heart of OrcoDCS (Sec. III-B).

*Asymmetric* means the two halves are sized for where they run: the
encoder is a single fully-connected layer (eq. 1) cheap enough for a
battery-powered data aggregator, while the decoder (eq. 3) runs on the
edge server and may grow as deep as the reconstruction task demands.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..nn import layers as L
from ..nn.tensor import Tensor
from .config import OrcoDCSConfig
from .noise import GaussianNoiseInjector


def build_encoder(config: OrcoDCSConfig,
                  rng: Optional[np.random.Generator] = None) -> L.Sequential:
    """One dense layer + activation: the paper's eq. (1)."""
    rng = rng or np.random.default_rng(config.seed)
    return L.Sequential(
        L.Dense(config.input_dim, config.latent_dim, rng=rng),
        L.make_activation(config.activation),
    )


def build_decoder(config: OrcoDCSConfig,
                  rng: Optional[np.random.Generator] = None) -> L.Sequential:
    """Decoder of ``config.decoder_layers`` dense layers (eq. 3).

    One layer reproduces the paper's default; deeper variants interleave
    ReLU hidden layers (Fig. 8's 3L/5L sensitivity points).  The output
    layer is always sigmoid so reconstructions live in [0, 1].
    """
    rng = rng or np.random.default_rng(config.seed + 1)
    layers: List[L.Module] = []
    if config.decoder_layers == 1:
        layers.append(L.Dense(config.latent_dim, config.input_dim, rng=rng))
    else:
        hidden = config.hidden_width
        layers.append(L.Dense(config.latent_dim, hidden, rng=rng,
                              weight_init="he_uniform"))
        layers.append(L.ReLU())
        for _ in range(config.decoder_layers - 2):
            layers.append(L.Dense(hidden, hidden, rng=rng,
                                  weight_init="he_uniform"))
            layers.append(L.ReLU())
        layers.append(L.Dense(hidden, config.input_dim, rng=rng))
    layers.append(L.Sigmoid())
    return L.Sequential(*layers)


class AsymmetricAutoencoder(L.Module):
    """Encoder + noisy latent + decoder, wired as one trainable module.

    The module is *logically* split across two machines — the
    orchestrator keeps separate optimisers for :attr:`encoder`
    (aggregator-side) and :attr:`decoder` (edge-side) — but shares one
    autograd graph, which computes updates mathematically identical to
    the paper's distributed ping-pong protocol.
    """

    def __init__(self, config: OrcoDCSConfig,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.config = config
        rng = rng or np.random.default_rng(config.seed)
        self.encoder = build_encoder(config, rng)
        self.decoder = build_decoder(config, rng)
        self.noise = GaussianNoiseInjector(config.noise_sigma, rng)

    # ------------------------------------------------------------------
    def encode(self, x: Tensor) -> Tensor:
        """Eq. (1): raw data rows ``(B, N)`` -> latent rows ``(B, M)``."""
        return self.encoder(x)

    def decode(self, y: Tensor) -> Tensor:
        """Eq. (3): latent rows -> reconstructed rows ``(B, N)``."""
        return self.decoder(y)

    def forward(self, x: Tensor) -> Tensor:
        """Full round trip with train-time latent noise (eq. 2)."""
        latent = self.encode(x)
        noisy = self.noise(latent, training=self.training)
        return self.decode(noisy)

    # ------------------------------------------------------------------
    def reconstruct(self, rows: np.ndarray) -> np.ndarray:
        """Inference helper on raw numpy rows (no noise, no grad)."""
        was_training = self.training
        self.eval()
        out = self.forward(Tensor(np.atleast_2d(rows))).data
        self.train(was_training)
        return out

    def encoder_parameters(self) -> List[L.Parameter]:
        """Parameters living on the data aggregator."""
        return self.encoder.parameters()

    def decoder_parameters(self) -> List[L.Parameter]:
        """Parameters living on the edge server."""
        return self.decoder.parameters()

    def encoder_weights(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(We, be)`` in the paper's orientation.

        Eq. (1) uses ``We in R^{M x N}`` acting on the stacked device
        vector; our Dense stores ``W in R^{N x M}`` for row-vector
        batches, so ``We = W.T``.
        """
        dense = self.encoder[0]
        return dense.weight.data.T.copy(), dense.bias.data.copy()

    def device_column(self, device_index: int) -> np.ndarray:
        """Column ``i`` of ``We`` — the only weights device ``i`` needs
        for distributed encoding (Sec. III-C)."""
        weight_e, _ = self.encoder_weights()
        return weight_e[:, device_index].copy()
