"""Batched fleet execution of many cluster training sessions.

The paper's conclusion names edge-side training overhead under many
concurrent data aggregators as the open problem.  The scheduler models
that contention; this module makes simulating it *fast*: a
:class:`FleetTrainer` takes K live :class:`~repro.core.orchestrator.
OrchestratedTrainer` instances whose models share an architecture (the
multi-cluster experiments' setting — same device count and latent size,
independent weights) and executes one training round for **all K
clusters as a single stacked tensor program**:

* encoders/decoders become block-diagonal ``(K, B, N) @ (K, N, M)``
  matmuls via :mod:`repro.nn.batched`;
* per-cluster reconstruction losses come from the loss's
  ``per_cluster`` reduction, so every cluster keeps its own exact loss
  value and gradient;
* optimisers are slice-stacked with per-slice Adam step counts, so a
  cluster's update sequence is identical to training it alone.

Equivalence contract: for identical seeds (weights, noise draws and
minibatch streams), the per-cluster loss trajectory produced by
:meth:`FleetTrainer.step` matches running each trainer's
:meth:`~repro.core.orchestrator.OrchestratedTrainer.step` sequentially to
within floating-point reduction noise (asserted to <= 1e-6 in the test
suite and benchmarks; observed ~1e-12).  Modeled-time and byte accounting
are delegated to each trainer's own
:meth:`~repro.core.orchestrator.OrchestratedTrainer.account_round`, so
:class:`~repro.wsn.network.TransmissionLedger` entries stay per-cluster.

What batching changes is *wall-clock* cost only: K Python-level autograd
passes collapse into one pass over stacked arrays.  The modeled clock —
where edge compute serialises across clusters — is still produced by
:class:`~repro.core.scheduler.EdgeTrainingScheduler`, which replays its
policy over the fleet-executed rounds.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn.batched import (
    _OPTIMIZER_HYPERPARAMS,
    ActiveSlices,
    FleetIncompatibilityError,
    check_fleet_optimizers,
    fleet_optimizer_from,
    fleet_optimizer_to,
    run_stack,
    stack_sequential,
    unstack_sequential,
)
from ..nn.layers import Module, Sequential
from ..nn.tensor import Tensor
from ..wsn.network import TransmissionRecord
from .orchestrator import OrchestratedTrainer, RoundRecord

__all__ = ["FleetTrainer", "FleetSubset", "FleetIncompatibilityError",
           "fleet_compatible", "stacking_key"]


def _check_homogeneous(trainers: Sequence[OrchestratedTrainer]) -> None:
    first = trainers[0]
    for trainer in trainers[1:]:
        if (trainer.input_dim, trainer.latent_dim) != \
                (first.input_dim, first.latent_dim):
            raise FleetIncompatibilityError(
                "input/latent dimensions differ across trainers: "
                f"({trainer.input_dim}, {trainer.latent_dim}) vs "
                f"({first.input_dim}, {first.latent_dim})")
        if type(trainer.loss) is not type(first.loss) or \
                vars(trainer.loss) != vars(first.loss):
            raise FleetIncompatibilityError(
                "loss type/parameters differ across trainers")
    for trainer in trainers:
        for side in (trainer.encoder, trainer.decoder):
            if not isinstance(side, Sequential):
                raise FleetIncompatibilityError(
                    "fleet execution requires Sequential encoder/decoder "
                    f"models, got {type(side).__name__}")


def fleet_compatible(trainers: Sequence[OrchestratedTrainer]) -> bool:
    """True when the trainers can be executed as one stacked fleet."""
    if not trainers:
        return False
    try:
        _check_homogeneous(trainers)
        stack_sequential([t.encoder for t in trainers])
        stack_sequential([t.decoder for t in trainers])
        check_fleet_optimizers([t.encoder_optimizer for t in trainers])
        check_fleet_optimizers([t.decoder_optimizer for t in trainers])
        probe = np.zeros((len(trainers), 1, trainers[0].input_dim))
        trainers[0].loss.per_cluster(Tensor(probe), probe)
    except (FleetIncompatibilityError, NotImplementedError):
        return False
    return True


def stacking_key(trainer: OrchestratedTrainer) -> Optional[tuple]:
    """Hashable architecture signature for homogeneous-group stacking.

    Trainers with equal keys are candidates for the same stacked
    program (same dimensions, layer stack, loss and optimiser recipe);
    mixed-architecture fleets partition into groups by this key, each
    group batching on its own.  ``None`` marks a trainer with no
    stacked form at all (non-``Sequential`` models).  The key is a
    cheap *pre-filter*: candidate groups are still validated with
    :func:`fleet_compatible` before a fleet is built, so a key
    collision can cost a fallback but never correctness.
    """
    encoder, decoder = trainer.encoder, trainer.decoder
    if not isinstance(encoder, Sequential) or not isinstance(decoder,
                                                             Sequential):
        return None

    def model_signature(model: Sequential) -> tuple:
        signature = []
        for layer in model.layers:
            entry = [type(layer).__name__]
            for attr in ("in_features", "out_features", "negative_slope",
                         "axis"):
                if hasattr(layer, attr):
                    entry.append((attr, getattr(layer, attr)))
            entry.append(getattr(layer, "bias", None) is not None)
            signature.append(tuple(entry))
        return tuple(signature)

    def optimizer_signature(optimizer) -> tuple:
        # Same fields check_fleet_optimizers compares: a hyperparameter
        # mismatch must land in a *different* group, not shatter a
        # candidate group at validation time.
        hyperparams = _OPTIMIZER_HYPERPARAMS.get(type(optimizer), ())
        return (type(optimizer).__name__, optimizer.lr,
                tuple((name, getattr(optimizer, name))
                      for name in hyperparams))

    loss = trainer.loss
    return (trainer.input_dim, trainer.latent_dim,
            type(loss).__name__,
            tuple(sorted((k, repr(v)) for k, v in vars(loss).items())),
            model_signature(encoder), model_signature(decoder),
            optimizer_signature(trainer.encoder_optimizer),
            optimizer_signature(trainer.decoder_optimizer))


class FleetTrainer:
    """Executes K orchestrated trainers' rounds as stacked tensor ops.

    Parameters
    ----------
    trainers:
        Architecture-homogeneous :class:`OrchestratedTrainer` instances.
        Weights, optimiser state (including mid-training state) and noise
        RNG streams are taken from them at construction; call
        :meth:`sync_to_trainers` to write trained state back.

    Notes
    -----
    Noise sigmas *may* differ per cluster (each cluster keeps its own
    :class:`~repro.core.noise.GaussianNoiseInjector` and RNG); model
    dimensions, loss and optimiser settings may not.
    """

    def __init__(self, trainers: Sequence[OrchestratedTrainer]):
        if not trainers:
            raise FleetIncompatibilityError("fleet needs at least one trainer")
        _check_homogeneous(trainers)
        self.trainers: List[OrchestratedTrainer] = list(trainers)
        first = trainers[0]
        self.input_dim = first.input_dim
        self.latent_dim = first.latent_dim
        self.loss = first.loss
        self.encoder_layers: List[Module] = stack_sequential(
            [t.encoder for t in trainers])
        self.decoder_layers: List[Module] = stack_sequential(
            [t.decoder for t in trainers])
        self.encoder_optimizer = fleet_optimizer_from(
            [t.encoder_optimizer for t in trainers],
            _layer_params(self.encoder_layers))
        self.decoder_optimizer = fleet_optimizer_from(
            [t.decoder_optimizer for t in trainers],
            _layer_params(self.decoder_layers))
        self._noise_buffer: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def num_clusters(self) -> int:
        return len(self.trainers)

    def _active_trainers(self, active: ActiveSlices
                         ) -> List[OrchestratedTrainer]:
        if active is None:
            return self.trainers
        index = np.asarray(active)
        if index.dtype == bool:
            index = np.flatnonzero(index)
        return [self.trainers[int(k)] for k in index]

    def _inject_noise(self, latent: Tensor,
                      trainers: Sequence[OrchestratedTrainer]) -> Tensor:
        """Per-cluster latent noise, drawn from each cluster's own RNG.

        Draw order is cluster order, matching a sequential sweep over the
        same trainers; clusters without noise contribute exact zeros.
        """
        buffer = self._noise_buffer
        if buffer is None or buffer.shape != latent.shape:
            buffer = self._noise_buffer = np.empty(latent.shape)
        any_noise = False
        slice_shape = latent.shape[1:]
        for row, trainer in enumerate(trainers):
            injector = trainer.noise
            if injector is not None and injector.sigma > 0.0:
                any_noise = True
                buffer[row] = injector.rng.normal(0.0, injector.sigma,
                                                  slice_shape)
            else:
                buffer[row] = 0.0
        if not any_noise:
            return latent
        return latent + Tensor(buffer)

    # ------------------------------------------------------------------
    def forward(self, batches: np.ndarray, training: bool = True,
                active: ActiveSlices = None) -> Tensor:
        """Stacked encode -> noise -> decode over ``(K, B, N)`` batches."""
        trainers = self._active_trainers(active)
        x = Tensor(batches)
        latent = run_stack(self.encoder_layers, x, active)
        if training:
            latent = self._inject_noise(latent, trainers)
        return run_stack(self.decoder_layers, latent, active)

    def step(self, batches: np.ndarray,
             epochs: Optional[Sequence[int]] = None,
             active: ActiveSlices = None) -> List[RoundRecord]:
        """One training round for every (active) cluster, in one pass.

        Parameters
        ----------
        batches:
            ``(A, B, N)`` stack, one minibatch per active cluster, in
            active-index order (all clusters when ``active`` is None).
        epochs:
            Optional per-active-cluster epoch labels for the records.
        active:
            Subset of cluster indices to train this round; the other
            clusters' weights and optimiser state are untouched.

        Returns
        -------
        One :class:`RoundRecord` per active cluster (same order), after
        charging each cluster's own modeled clock and ledger.
        """
        batches = np.asarray(batches, dtype=float)
        trainers = self._active_trainers(active)
        if batches.ndim != 3 or batches.shape[0] != len(trainers):
            raise ValueError(
                f"expected ({len(trainers)}, B, {self.input_dim}) batch "
                f"stack, got {batches.shape}")
        if batches.shape[2] != self.input_dim:
            raise ValueError(f"batch dim {batches.shape[2]} != "
                             f"input_dim {self.input_dim}")
        reconstruction = self.forward(batches, training=True, active=active)
        per_cluster = self.loss.per_cluster(reconstruction, batches)
        total = per_cluster.sum()
        self.encoder_optimizer.zero_grad()
        self.decoder_optimizer.zero_grad()
        total.backward()
        self.decoder_optimizer.step(active)   # edge first, as sequentially
        self.encoder_optimizer.step(active)

        batch_size = batches.shape[1]
        losses = per_cluster.data
        records = []
        for row, trainer in enumerate(trainers):
            epoch = int(epochs[row]) if epochs is not None else 0
            # Inline fast path of OrchestratedTrainer.account_round —
            # identical clock, ledger and record semantics, minus the
            # per-cluster call overhead on the engine's hottest loop.
            costs = trainer.round_costs(batch_size)
            timing = costs.timing
            trainer.clock_s += timing.total_s
            ledger_records = trainer.ledger.records
            ledger_records.append(TransmissionRecord(
                0, -1, costs.up_bytes, costs.up_wire_bytes,
                "latent_uplink", timing.uplink_s))
            ledger_records.append(TransmissionRecord(
                -1, 0, costs.down_bytes, costs.down_wire_bytes,
                "recon_downlink", timing.downlink_s))
            trainer._round_index += 1
            records.append(RoundRecord(trainer._round_index, epoch,
                                       trainer.clock_s, float(losses[row]),
                                       costs.up_bytes, costs.down_bytes))
        return records

    def evaluate(self, rows: np.ndarray) -> np.ndarray:
        """Per-cluster reconstruction loss on a shared ``(B, N)`` row set
        (or a per-cluster ``(K, B, N)`` stack) — no noise, no updates."""
        rows = np.asarray(rows, dtype=float)
        if rows.ndim == 2:
            rows = np.broadcast_to(rows, (self.num_clusters,) + rows.shape)
        reconstruction = self.forward(rows, training=False)
        return self.loss.per_cluster(reconstruction, rows).data.copy()

    # ------------------------------------------------------------------
    def subset(self, indices) -> "FleetSubset":
        """A stacked program over an arbitrary subset of the clusters.

        Returns a lightweight :class:`FleetSubset` view bound to
        ``indices`` (a sequence of cluster positions or a boolean mask
        over the fleet).  Nothing is copied: the view executes through
        this fleet's stacked parameters and optimiser state via the
        ``active``-slice machinery, so it can be created mid-training at
        every membership change (the event engine re-slices the
        surviving clusters at each fault boundary) for the cost of an
        index array.
        """
        index = np.asarray(indices)
        if index.dtype == bool:
            if index.shape != (self.num_clusters,):
                raise ValueError(
                    f"boolean subset mask must have shape "
                    f"({self.num_clusters},), got {index.shape}")
            index = np.flatnonzero(index)
        index = index.astype(np.intp)
        if index.size == 0:
            raise ValueError("fleet subset needs at least one cluster")
        if index.size != np.unique(index).size:
            raise ValueError(f"duplicate cluster indices in subset: "
                             f"{index.tolist()}")
        if index.min() < 0 or index.max() >= self.num_clusters:
            raise IndexError(f"subset indices {index.tolist()} out of range "
                             f"for a {self.num_clusters}-cluster fleet")
        return FleetSubset(self, index)

    # ------------------------------------------------------------------
    def sync_to_trainers(self) -> None:
        """Write trained weights and optimiser state back to the trainers.

        After this, each trainer continues sequentially exactly as if it
        had executed its rounds itself.
        """
        unstack_sequential(self.encoder_layers,
                           [t.encoder for t in self.trainers])
        unstack_sequential(self.decoder_layers,
                           [t.decoder for t in self.trainers])
        fleet_optimizer_to(self.encoder_optimizer,
                           [t.encoder_optimizer for t in self.trainers])
        fleet_optimizer_to(self.decoder_optimizer,
                           [t.decoder_optimizer for t in self.trainers])


class FleetSubset:
    """A partial fleet: K' of the fleet's K clusters as one program.

    Built by :meth:`FleetTrainer.subset`; holds only the parent fleet
    and an index array.  ``step``/``forward``/``evaluate`` run the
    stacked tensor program gathered over exactly these clusters —
    untouched clusters keep their weights *and* optimiser state (the
    per-slice masked updates of :mod:`repro.nn.batched`) — so the
    trajectory of each member matches training it in any other
    grouping, or alone.
    """

    def __init__(self, fleet: FleetTrainer, index: np.ndarray):
        self.fleet = fleet
        self.index = index

    @property
    def num_clusters(self) -> int:
        return int(self.index.size)

    @property
    def trainers(self) -> List[OrchestratedTrainer]:
        return [self.fleet.trainers[int(k)] for k in self.index]

    def forward(self, batches: np.ndarray, training: bool = True) -> Tensor:
        return self.fleet.forward(batches, training=training,
                                  active=self.index)

    def step(self, batches: np.ndarray,
             epochs: Optional[Sequence[int]] = None) -> List[RoundRecord]:
        """One training round for every member cluster, in one pass.

        ``batches`` is ``(K', B, N)`` in subset order; returns one
        :class:`RoundRecord` per member, exactly as
        :meth:`FleetTrainer.step` would with ``active=self.index``.
        """
        return self.fleet.step(batches, epochs=epochs, active=self.index)

    def evaluate(self, rows: np.ndarray) -> np.ndarray:
        """Per-member reconstruction loss (no noise, no updates)."""
        rows = np.asarray(rows, dtype=float)
        if rows.ndim == 2:
            rows = np.broadcast_to(rows, (self.num_clusters,) + rows.shape)
        reconstruction = self.forward(rows, training=False)
        return self.fleet.loss.per_cluster(reconstruction, rows).data.copy()


def _layer_params(layers: Sequence[Module]):
    params = []
    for layer in layers:
        params.extend(layer.parameters())
    return params
