"""`repro.core` — the OrcoDCS framework (the paper's contribution).

Asymmetric autoencoder (Sec. III-B), latent Gaussian noise (eq. 2),
IoT-Edge orchestrated online trainer with compute/byte accounting,
trained-encoder deployment into the WSN (Sec. III-C) and the
fine-tuning monitor (Sec. III-D).
"""

from .autoencoder import AsymmetricAutoencoder, build_decoder, build_encoder
from .config import OrcoDCSConfig, gtsrb_task_config, mnist_task_config
from .deployment import CompressedRound, EncoderDeployment
from .finetune import (
    AdaptationEvent,
    AdaptationLog,
    FineTuningMonitor,
    OnlineAdaptationLoop,
)
from .fleet import (
    FleetIncompatibilityError,
    FleetSubset,
    FleetTrainer,
    fleet_compatible,
    stacking_key,
)
from .noise import GaussianNoiseInjector
from .rounds import (
    IdealRoundLoop,
    InlineRoundExecutor,
    SegmentedFleetExecutor,
    contributor_batch,
    epoch_of,
)
from .scheduler import (
    EdgeTrainingScheduler,
    ExecutionPlan,
    ResilientOrchestrationPolicy,
    ScheduledCluster,
    ScheduleReport,
    compare_policies,
)
from .orchestrator import (
    EpochRecord,
    OrchestratedTrainer,
    OrcoDCSFramework,
    RoundRecord,
    TrainingHistory,
)
from .timing import (
    DeviceProfile,
    OrchestrationTimingModel,
    OverheadReport,
    RoundTiming,
    cloud_profile,
    conv2d_flops,
    dense_flops,
    dense_stack_flops,
    edge_server_profile,
    iot_aggregator_profile,
    overhead_report,
    training_flops,
)

__all__ = [
    "AsymmetricAutoencoder", "build_decoder", "build_encoder",
    "OrcoDCSConfig", "gtsrb_task_config", "mnist_task_config",
    "CompressedRound", "EncoderDeployment",
    "AdaptationEvent", "AdaptationLog", "FineTuningMonitor",
    "OnlineAdaptationLoop",
    "FleetIncompatibilityError", "FleetSubset", "FleetTrainer",
    "fleet_compatible", "stacking_key",
    "GaussianNoiseInjector",
    "IdealRoundLoop", "InlineRoundExecutor", "SegmentedFleetExecutor",
    "contributor_batch", "epoch_of",
    "EdgeTrainingScheduler", "ExecutionPlan",
    "ResilientOrchestrationPolicy",
    "ScheduledCluster", "ScheduleReport", "compare_policies",
    "EpochRecord", "OrchestratedTrainer", "OrcoDCSFramework", "RoundRecord",
    "TrainingHistory",
    "DeviceProfile", "OrchestrationTimingModel", "OverheadReport",
    "RoundTiming", "cloud_profile", "conv2d_flops", "dense_flops",
    "dense_stack_flops", "edge_server_profile", "iot_aggregator_profile",
    "overhead_report", "training_flops",
]
