"""Latent-space Gaussian noise injection (eq. 2 of the paper).

OrcoDCS perturbs latent vectors with zero-mean Gaussian noise during
training so the decoder learns to reconstruct from a *neighbourhood* of
each code, improving robustness and downstream-classifier diversity
(Sec. III-B).  The noise is treated as a constant w.r.t. the autograd
graph — gradients flow through the identity, exactly as in denoising
autoencoders.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.tensor import Tensor


class GaussianNoiseInjector:
    """Adds ``N(0, sigma^2)`` noise to latent tensors during training.

    Parameters
    ----------
    sigma:
        Noise standard deviation; 0 disables injection.
    rng:
        Generator for the draws (seeded by the orchestrator).
    decay:
        Optional multiplicative decay applied per epoch via
        :meth:`on_epoch_end`, letting long runs anneal the noise.
    """

    def __init__(self, sigma: float, rng: Optional[np.random.Generator] = None,
                 decay: float = 1.0):
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if not 0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.initial_sigma = float(sigma)
        self.sigma = float(sigma)
        self.decay = decay
        self.rng = rng or np.random.default_rng()

    @property
    def variance(self) -> float:
        """The sigma^2 the paper reports on its Fig. 7 axis labels."""
        return self.sigma ** 2

    def __call__(self, latent: Tensor, training: bool = True) -> Tensor:
        """Return ``latent + noise`` (or ``latent`` unchanged at inference)."""
        if not training or self.sigma == 0.0:
            return latent
        noise = self.rng.normal(0.0, self.sigma, latent.shape)
        return latent + Tensor(noise)

    def on_epoch_end(self) -> None:
        """Apply the per-epoch decay schedule."""
        self.sigma *= self.decay

    def reset(self) -> None:
        self.sigma = self.initial_sigma
