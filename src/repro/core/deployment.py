"""Deploying the trained encoder into the sensor network (Sec. III-C).

After orchestrated training finishes, each IoT device needs only *its*
column of the encoder weight matrix to participate in compressed
aggregation: device ``i`` computes ``We[:, i] * x_i`` and partial sums
accumulate up the aggregation tree (the hybrid-CS reading of eq. 6 — see
DESIGN.md for the dimensional note).  The aggregator finishes with the
bias and activation, recovering exactly the centralized eq. (1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from ..wsn.aggregation import (
    AggregationReport,
    AggregationTree,
    hybrid_encode,
    hybrid_encode_partial,
    simulate_encoder_distribution,
    simulate_hybrid_aggregation,
    simulate_masked_hybrid_aggregation,
)
from ..wsn.network import WSNetwork
from .autoencoder import AsymmetricAutoencoder

_ACTIVATIONS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "sigmoid": lambda z: 1.0 / (1.0 + np.exp(-z)),
    "tanh": np.tanh,
    "relu": lambda z: np.maximum(z, 0.0),
    "identity": lambda z: z,
    "linear": lambda z: z,
}


@dataclass
class CompressedRound:
    """Result of one compressed data-collection round.

    ``contributors`` lists the devices whose readings reached the
    aggregator (all of them on a healthy cluster; a strict subset under
    node faults, when the partial sum is masked).
    """

    latent: np.ndarray
    report: AggregationReport
    contributors: Tuple[int, ...] = ()


class EncoderDeployment:
    """Binds a trained autoencoder to a WSN cluster for data collection.

    Parameters
    ----------
    model:
        Trained :class:`AsymmetricAutoencoder`; ``model.config.input_dim``
        must equal the cluster's device count (every device, including
        the aggregator, contributes one reading per round).
    network / tree:
        The cluster and its aggregation tree.
    """

    def __init__(self, model: AsymmetricAutoencoder, network: WSNetwork,
                 tree: AggregationTree):
        if network.num_devices != model.config.input_dim:
            raise ValueError(
                f"model expects {model.config.input_dim} devices, network has "
                f"{network.num_devices}")
        if model.config.activation not in _ACTIVATIONS:
            raise ValueError(f"unsupported activation {model.config.activation!r} "
                             "for distributed encoding")
        self.model = model
        self.network = network
        self.tree = tree
        self.weight_e, self.bias_e = model.encoder_weights()
        # Device -> encoder column assignment: sorted node ids map to
        # columns 0..N-1 so the stacked vector X is well defined.
        self.device_index = {nid: idx for idx, nid in enumerate(network.device_ids)}
        self._activation = _ACTIVATIONS[model.config.activation]
        self.distributed = False

    # ------------------------------------------------------------------
    def distribute(self) -> AggregationReport:
        """Ship each device its encoder column down the tree; returns the
        cost report (the one-time deployment overhead of Fig. 3)."""
        report = simulate_encoder_distribution(
            self.network, self.tree, self.model.config.latent_dim,
            self.network.value_bytes)
        self.distributed = True
        return report

    def compressed_round(self, readings: Dict[int, float],
                         charge_network: bool = True) -> CompressedRound:
        """Collect one round of readings as an M-dimensional latent vector.

        Performs the actual distributed numerics (partial-sum hybrid
        aggregation) and — when ``charge_network`` — bills the network for
        the transmissions of the hybrid scheme.

        With an unreliable sensor channel attached
        (:meth:`~repro.wsn.network.WSNetwork.attach_unreliable`), hops
        whose recovery budget is exhausted sever their subtree from the
        partial sum — the round's latent is the masked product over the
        readings that actually reached the aggregator, exactly like a
        dead relay.  Erasure-coded sensor channels
        (``ChannelSpec(..., coding=CodingSpec(k))``) tolerate up to
        ``k`` lost frames per hop without retransmission, keeping
        subtrees attached at a fixed parity-airtime premium: the
        coded-partial-sum path the intra-cluster loss sweep measures.

        Raises
        ------
        RuntimeError
            If the encoder has not been distributed yet.
        """
        if not self.distributed:
            raise RuntimeError("call distribute() before compressed rounds")
        failed = {nid for nid in self.network.device_ids
                  if not self.network.is_alive(nid)}
        missing = [nid for nid in self.network.device_ids
                   if nid not in readings and nid not in failed]
        if missing:
            raise ValueError(f"missing readings for devices {missing[:5]}")
        # Charge the network first: on unreliable sensor links the
        # transmissions decide which subtrees' contributions survive.
        if charge_network and failed:
            report = simulate_masked_hybrid_aggregation(
                self.network, self.tree, self.model.config.latent_dim,
                failed=failed, values_per_node=1,
                value_bytes=self.network.value_bytes,
                kind="compressed_round")
        elif charge_network:
            report = simulate_hybrid_aggregation(
                self.network, self.tree, self.model.config.latent_dim,
                values_per_node=1, value_bytes=self.network.value_bytes,
                kind="compressed_round")
        else:
            report = AggregationReport()
        severed = failed | report.failed_hops
        if severed:
            partial, _, contributors = hybrid_encode_partial(
                self.tree, readings, self.weight_e, self.device_index,
                failed=severed)
        else:
            partial, _ = hybrid_encode(self.tree, readings, self.weight_e,
                                       self.device_index)
            contributors = frozenset(self.network.device_ids)
        latent = self._activation(partial + self.bias_e)
        return CompressedRound(latent, report, tuple(sorted(contributors)))

    def centralized_latent(self, readings: Dict[int, float]) -> np.ndarray:
        """Reference eq. (1) computation for equivalence checks."""
        stacked = np.array([readings[nid] for nid in self.network.device_ids])
        return self._activation(self.weight_e @ stacked + self.bias_e)

    def uplink_latent(self, latent: np.ndarray) -> float:
        """Send the aggregated latent to the edge; returns elapsed seconds."""
        payload = latent.size * self.network.value_bytes
        return self.network.uplink_to_edge(payload, kind="latent_uplink")

    def reconstruct_at_edge(self, latent: np.ndarray) -> np.ndarray:
        """Edge-side decode of an aggregated latent vector."""
        from ..nn.tensor import Tensor
        was_training = self.model.training
        self.model.eval()
        out = self.model.decode(Tensor(np.atleast_2d(latent))).data[0]
        self.model.train(was_training)
        return out

    def end_to_end_round(self, readings: Dict[int, float]) -> Tuple[np.ndarray, np.ndarray]:
        """Full Sec. III-C data path: distributed encode -> uplink ->
        edge decode.  Returns (latent, reconstruction)."""
        collected = self.compressed_round(readings)
        self.uplink_latent(collected.latent)
        reconstruction = self.reconstruct_at_edge(collected.latent)
        return collected.latent, reconstruction
