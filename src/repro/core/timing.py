"""Compute/transmission time model for IoT-Edge orchestrated training.

"Time" in the paper's Figures 4 and 6-8 is wall-clock on their testbed.
This reproduction replaces the testbed with a deterministic cost model:
every training round is charged the FLOPs it executes on each device
class (aggregator = IoT-class hardware, edge = server-class) and the
bytes it moves over each link.  The model preserves the *orderings* the
paper reports — a shallow encoder on a weak device plus a small latent
uplink beats a fixed wide model — while keeping runs laptop-scale and
reproducible (see DESIGN.md substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..wsn.link import LinkModel, downlink, uplink


@dataclass(frozen=True)
class DeviceProfile:
    """Sustained compute throughput of one device class."""

    name: str
    flops_per_second: float

    def __post_init__(self):
        if self.flops_per_second <= 0:
            raise ValueError("flops_per_second must be positive")

    def seconds_for(self, flops: float) -> float:
        """Modeled seconds to execute ``flops`` floating-point ops."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        return flops / self.flops_per_second


def iot_aggregator_profile() -> DeviceProfile:
    """Cortex-M7-class data aggregator: tens of MFLOPS sustained."""
    return DeviceProfile("iot-aggregator", 5.0e7)


def edge_server_profile() -> DeviceProfile:
    """Small edge server (embedded GPU class): tens of GFLOPS."""
    return DeviceProfile("edge-server", 2.0e10)


def cloud_profile() -> DeviceProfile:
    """Cloud training node, used by fully offline baselines."""
    return DeviceProfile("cloud", 1.0e11)


# ----------------------------------------------------------------------
# FLOP counting
# ----------------------------------------------------------------------
def dense_flops(in_features: int, out_features: int) -> int:
    """Multiply-accumulate FLOPs for one dense forward pass, per sample."""
    return 2 * in_features * out_features


def conv2d_flops(in_channels: int, out_channels: int,
                 kernel: Tuple[int, int], out_hw: Tuple[int, int]) -> int:
    """FLOPs for one conv2d forward pass, per sample."""
    kh, kw = kernel
    oh, ow = out_hw
    return 2 * out_channels * oh * ow * in_channels * kh * kw


def training_flops(forward_flops: float) -> float:
    """Forward + backward + update, the standard ~3x forward estimate."""
    return 3.0 * forward_flops


def dense_stack_flops(dims: Sequence[int]) -> int:
    """Forward FLOPs of a dense chain ``dims[0] -> dims[1] -> ...``."""
    return sum(dense_flops(a, b) for a, b in zip(dims[:-1], dims[1:]))


# ----------------------------------------------------------------------
# Round timing
# ----------------------------------------------------------------------
@dataclass
class RoundTiming:
    """Per-minibatch time breakdown of the orchestrated protocol."""

    aggregator_compute_s: float
    edge_compute_s: float
    uplink_s: float
    downlink_s: float

    @property
    def total_s(self) -> float:
        return (self.aggregator_compute_s + self.edge_compute_s
                + self.uplink_s + self.downlink_s)


class OrchestrationTimingModel:
    """Charges one ping-pong training round its compute and bytes.

    The protocol (Sec. III-B): aggregator encodes the batch and uplinks
    noisy latents; the edge decodes, downlinks reconstructions; loss and
    gradients flow back (latent gradients ride the downlink); both sides
    update.

    Parameters
    ----------
    aggregator, edge:
        Device profiles for the two sides.
    up, down:
        Link models for latent uplink and reconstruction/gradient
        downlink.
    value_bytes:
        Bytes per scalar on the wire.
    """

    def __init__(self, aggregator: DeviceProfile = None,
                 edge: DeviceProfile = None,
                 up: LinkModel = None, down: LinkModel = None,
                 value_bytes: int = 4):
        self.aggregator = aggregator or iot_aggregator_profile()
        self.edge = edge or edge_server_profile()
        self.up = up or uplink()
        self.down = down or downlink()
        self.value_bytes = value_bytes

    def round_bytes(self, batch_size: int, input_dim: int,
                    latent_dim: int) -> Tuple[int, int]:
        """(uplink_bytes, downlink_bytes) for one training round.

        Uplink: noisy latents, ``B x M`` scalars.  Downlink:
        reconstructions ``B x N`` plus latent gradients ``B x M``.
        """
        up_bytes = batch_size * latent_dim * self.value_bytes
        down_bytes = batch_size * (input_dim + latent_dim) * self.value_bytes
        return up_bytes, down_bytes

    def training_round(self, batch_size: int, input_dim: int, latent_dim: int,
                       encoder_forward_flops: float,
                       decoder_forward_flops: float) -> RoundTiming:
        """Time one orchestrated minibatch round.

        ``*_forward_flops`` are per-sample forward costs; training charges
        the standard 3x factor for forward+backward+update.
        """
        up_bytes, down_bytes = self.round_bytes(batch_size, input_dim, latent_dim)
        agg_s = self.aggregator.seconds_for(
            training_flops(encoder_forward_flops) * batch_size)
        edge_s = self.edge.seconds_for(
            training_flops(decoder_forward_flops) * batch_size)
        return RoundTiming(
            aggregator_compute_s=agg_s,
            edge_compute_s=edge_s,
            uplink_s=self.up.transfer_time(up_bytes),
            downlink_s=self.down.transfer_time(down_bytes),
        )

    def inference_round(self, batch_size: int, latent_dim: int,
                        encoder_forward_flops: float) -> float:
        """Steady-state cost of shipping one compressed batch (Sec. III-C)."""
        up_bytes = batch_size * latent_dim * self.value_bytes
        return (self.aggregator.seconds_for(encoder_forward_flops * batch_size)
                + self.up.transfer_time(up_bytes))


@dataclass
class OverheadReport:
    """Sec. III-E's overhead analysis, quantified for one configuration."""

    aggregator_flops_per_round: float
    edge_flops_per_round: float
    uplink_bytes_per_round: int
    downlink_bytes_per_round: int

    @property
    def edge_compute_share(self) -> float:
        """Fraction of training compute carried by the edge server."""
        total = self.aggregator_flops_per_round + self.edge_flops_per_round
        return self.edge_flops_per_round / total if total else 0.0


def overhead_report(batch_size: int, input_dim: int, latent_dim: int,
                    encoder_forward_flops: float, decoder_forward_flops: float,
                    value_bytes: int = 4) -> OverheadReport:
    """Quantify how OrcoDCS splits training overhead (Sec. III-E).

    The claim to verify: the aggregator's share is minimal because the
    encoder is a single dense layer, while the edge absorbs the decoder.
    """
    return OverheadReport(
        aggregator_flops_per_round=training_flops(encoder_forward_flops) * batch_size,
        edge_flops_per_round=training_flops(decoder_forward_flops) * batch_size,
        uplink_bytes_per_round=batch_size * latent_dim * value_bytes,
        downlink_bytes_per_round=batch_size * (input_dim + latent_dim) * value_bytes,
    )
