"""Edge-side scheduling of many concurrent OrcoDCS training sessions.

The paper's conclusion names this as the open problem: "optimization of
training overhead on edge servers when a large number of data
aggregators need to perform training procedures of OrcoDCS".  This
module implements that layer: an :class:`EdgeTrainingScheduler` that
owns one edge compute budget and time-shares it across the orchestrated
trainers of many clusters, under pluggable policies:

* ``fifo`` — clusters train to completion in arrival order;
* ``round_robin`` — one minibatch round per cluster per cycle;
* ``loss_priority`` — the cluster with the highest current loss gets the
  next round (greedy max-improvement);
* ``deadline`` — earliest-deadline-first over per-cluster time budgets.

The scheduler advances a shared modeled clock: while the edge decodes
for one cluster, other clusters' *aggregator-side* compute and uplinks
proceed in parallel (they are independent devices), but edge compute
serialises — the contention the paper worries about.

Execution engines
-----------------
The *modeled* clock above is independent of how fast this Python process
can simulate the rounds, and a cluster's weight/loss trajectory depends
only on its own data stream, weights and noise draws — never on when the
edge got around to serving it.  The scheduler exploits that split with
two engines:

* ``sequential`` — the literal discrete-event loop: pick a cluster, run
  one :meth:`~repro.core.orchestrator.OrchestratedTrainer.step`, advance
  the clocks.  O(K) Python-level autograd passes per cycle.
* ``batched`` — execute every cluster's rounds up front through a
  :class:`~repro.core.fleet.FleetTrainer` (one stacked tensor program
  per cycle for all K clusters), then **replay** the scheduling policy
  over the recorded per-round losses and the per-cluster round timings
  to produce the identical modeled clock, ledger and deadline
  accounting.  Wall-clock cost drops by roughly the cluster count; the
  per-cluster loss trajectories match the sequential engine to <= 1e-6
  (observed ~1e-12) for identical seeds.

``engine="auto"`` (the default) picks ``batched`` whenever the
registered clusters are architecture-homogeneous with a uniform batch
size, and falls back to ``sequential`` otherwise (heterogeneous models,
exotic losses, data shorter than one batch).

Determinism note: each cluster draws its minibatches from its own
``stream_rng`` (seeded from the scheduler RNG at registration), so the
data a cluster sees does not depend on the policy's interleaving — the
property that makes the two engines exactly comparable and makes policy
comparisons measure *scheduling*, not data-order luck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .fleet import FleetIncompatibilityError, FleetTrainer, fleet_compatible
from .orchestrator import OrchestratedTrainer, RoundRecord, TrainingHistory

_POLICIES = ("fifo", "round_robin", "loss_priority", "deadline")
_ENGINES = ("auto", "sequential", "batched")


@dataclass
class ScheduledCluster:
    """One cluster's training session under the scheduler."""

    name: str
    trainer: OrchestratedTrainer
    data: np.ndarray
    batch_size: int = 32
    deadline_s: Optional[float] = None
    rounds_completed: int = 0
    history: TrainingHistory = None
    stream_rng: Optional[np.random.Generator] = None
    _cursor: int = 0

    def __post_init__(self):
        self.data = np.atleast_2d(np.asarray(self.data, dtype=float))
        if self.history is None:
            self.history = TrainingHistory(self.name)
        if self.stream_rng is None:
            self.stream_rng = np.random.default_rng()
        self._order = np.arange(len(self.data))

    def next_batch(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Cycle minibatches; reshuffle at each epoch boundary.

        Draws from this cluster's own ``stream_rng`` by default, so the
        stream is independent of scheduling order.  Shuffling permutes an
        index vector rather than the data rows (same RNG draws, same row
        sequence, far cheaper per epoch).
        """
        rng = rng or self.stream_rng
        if self._cursor + self.batch_size > len(self.data):
            rng.shuffle(self._order)
            self._cursor = 0
        batch = self.data[self._order[self._cursor:self._cursor + self.batch_size]]
        self._cursor += self.batch_size
        return batch

    @property
    def rounds_per_epoch(self) -> int:
        return max(1, len(self.data) // self.batch_size)

    @property
    def current_loss(self) -> float:
        if not self.history.rounds:
            return float("inf")
        return self.history.rounds[-1].train_loss


@dataclass
class ScheduleReport:
    """Outcome of one scheduling run.

    ``completion_times`` maps each cluster to the *scheduled* (edge-
    contended) clock at which each of its rounds finished — the fairness
    signal policies differ on, since per-cluster trajectories themselves
    are schedule-independent.
    """

    policy: str
    total_edge_time_s: float
    makespan_s: float
    rounds_per_cluster: Dict[str, int]
    final_loss_per_cluster: Dict[str, float]
    deadline_misses: List[str] = field(default_factory=list)
    engine: str = "sequential"
    completion_times: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def mean_final_loss(self) -> float:
        return float(np.mean(list(self.final_loss_per_cluster.values())))

    def scheduled_time_to_loss(self, cluster_name: str,
                               losses: Sequence[float],
                               threshold: float) -> Optional[float]:
        """Scheduled seconds until ``losses`` first dips to ``threshold``.

        ``losses`` is the cluster's per-round loss trajectory (e.g.
        ``history.losses``); returns None if the threshold is never hit.
        """
        times = self.completion_times.get(cluster_name, [])
        for loss, when in zip(losses, times):
            if loss <= threshold:
                return when
        return None


class EdgeTrainingScheduler:
    """Time-shares one edge server across many cluster training sessions.

    Parameters
    ----------
    policy:
        One of ``fifo``, ``round_robin``, ``loss_priority``, ``deadline``.
    rng:
        Root generator; per-cluster minibatch streams are seeded from it
        at registration.
    engine:
        ``auto`` (default), ``sequential`` or ``batched`` — see the
        module docstring.  ``batched`` raises if the clusters cannot be
        stacked; ``auto`` silently falls back to ``sequential``.
    """

    def __init__(self, policy: str = "round_robin",
                 rng: Optional[np.random.Generator] = None,
                 engine: str = "auto"):
        if policy not in _POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {_POLICIES}")
        if engine not in _ENGINES:
            raise ValueError(f"unknown engine {engine!r}; choose from {_ENGINES}")
        self.policy = policy
        self.engine = engine
        self.rng = rng or np.random.default_rng()
        self.clusters: List[ScheduledCluster] = []

    def add_cluster(self, name: str, trainer: OrchestratedTrainer,
                    data: np.ndarray, batch_size: int = 32,
                    deadline_s: Optional[float] = None) -> ScheduledCluster:
        """Register a cluster's training session."""
        if any(c.name == name for c in self.clusters):
            raise ValueError(f"duplicate cluster name {name!r}")
        stream = np.random.default_rng(self.rng.integers(2 ** 63))
        cluster = ScheduledCluster(name, trainer, data, batch_size, deadline_s,
                                   stream_rng=stream)
        self.clusters.append(cluster)
        return cluster

    # ------------------------------------------------------------------
    def _pick(self, pending: List[ScheduledCluster], rounds_budget: Dict[str, int],
              clock_s: float) -> ScheduledCluster:
        if self.policy == "fifo":
            return pending[0]
        if self.policy == "round_robin":
            return min(pending, key=lambda c: c.rounds_completed)
        if self.policy == "loss_priority":
            return max(pending, key=lambda c: c.current_loss)
        # deadline: earliest deadline first; clusters without deadlines last.
        return min(pending, key=lambda c: (c.deadline_s is None,
                                           c.deadline_s or 0.0))

    def _check_batch_geometry(self) -> None:
        """Raise a specific error when forced batching cannot stack waves."""
        batch_sizes = {c.batch_size for c in self.clusters}
        if len(batch_sizes) != 1:
            raise FleetIncompatibilityError(
                f"batched engine needs one uniform batch size, got "
                f"{sorted(batch_sizes)}")
        short = [c.name for c in self.clusters if len(c.data) < c.batch_size]
        if short:
            raise FleetIncompatibilityError(
                "batched engine needs at least one full batch of data per "
                f"cluster; too short: {short}")

    def _can_batch(self) -> bool:
        """Uniform batch geometry + stackable models -> fleet-executable."""
        if len(self.clusters) < 2:
            return False
        batch_sizes = {c.batch_size for c in self.clusters}
        if len(batch_sizes) != 1:
            return False
        if any(len(c.data) < c.batch_size for c in self.clusters):
            return False
        return fleet_compatible([c.trainer for c in self.clusters])

    def run(self, rounds_per_cluster: int = 50) -> ScheduleReport:
        """Execute training until every cluster has its round budget.

        Returns a report with edge-busy time, makespan, final losses and
        per-round scheduled completion times.  The makespan model: the
        edge serialises its decode work, while each cluster's
        aggregator-side compute + transfers overlap with other clusters'
        work.  Both engines produce identical reports (modulo
        floating-point reduction noise in the losses).
        """
        if not self.clusters:
            raise RuntimeError("no clusters registered")
        if rounds_per_cluster <= 0:
            raise ValueError("rounds_per_cluster must be positive")
        if self.engine == "batched":
            self._check_batch_geometry()
        if self.engine == "batched" or (self.engine == "auto"
                                        and self._can_batch()):
            records = self._execute_batched(rounds_per_cluster)
            return self._replay_policy(rounds_per_cluster, records,
                                       engine="batched")
        return self._run_sequential(rounds_per_cluster)

    # ------------------------------------------------------------------
    # Sequential engine: the literal discrete-event loop
    # ------------------------------------------------------------------
    def _run_sequential(self, rounds_per_cluster: int) -> ScheduleReport:
        budget = {c.name: rounds_per_cluster for c in self.clusters}
        edge_busy_s = 0.0
        cluster_clock: Dict[str, float] = {c.name: 0.0 for c in self.clusters}
        completion: Dict[str, List[float]] = {c.name: [] for c in self.clusters}
        edge_clock = 0.0
        misses: List[str] = []

        while True:
            pending = [c for c in self.clusters if budget[c.name] > 0]
            if not pending:
                break
            cluster = self._pick(pending, budget, edge_clock)
            trainer = cluster.trainer
            epoch = cluster.rounds_completed // cluster.rounds_per_epoch + 1
            record = trainer.step(cluster.next_batch(), epoch=epoch)
            timing = trainer.round_costs(cluster.batch_size).timing
            # Edge is the shared resource: its compute serialises.
            edge_clock = max(edge_clock, cluster_clock[cluster.name]) \
                + timing.edge_compute_s
            edge_busy_s += timing.edge_compute_s
            # The cluster's own pipeline (aggregator compute + links)
            # proceeds in parallel with other clusters.
            cluster_clock[cluster.name] = edge_clock \
                + timing.aggregator_compute_s + timing.uplink_s \
                + timing.downlink_s
            completion[cluster.name].append(cluster_clock[cluster.name])
            cluster.history.rounds.append(record)
            cluster.rounds_completed += 1
            budget[cluster.name] -= 1
            if cluster.deadline_s is not None and budget[cluster.name] == 0 \
                    and cluster_clock[cluster.name] > cluster.deadline_s \
                    and cluster.name not in misses:
                misses.append(cluster.name)

        return ScheduleReport(
            policy=self.policy,
            total_edge_time_s=edge_busy_s,
            makespan_s=max(cluster_clock.values()),
            rounds_per_cluster={c.name: c.rounds_completed
                                for c in self.clusters},
            final_loss_per_cluster={c.name: c.current_loss
                                    for c in self.clusters},
            deadline_misses=misses,
            engine="sequential",
            completion_times=completion,
        )

    # ------------------------------------------------------------------
    # Batched engine: fleet-execute every round, then replay the policy
    # ------------------------------------------------------------------
    def _execute_batched(self, rounds_per_cluster: int
                         ) -> List[List[RoundRecord]]:
        """Run all clusters' rounds as stacked fleet waves.

        Valid because trajectories are schedule-independent: a cluster's
        round ``r`` uses only its own weights, noise RNG and data stream.
        Returns ``records[k][r]`` for cluster ``k``, round ``r``.
        """
        fleet = FleetTrainer([c.trainer for c in self.clusters])
        records: List[List[RoundRecord]] = [[] for _ in self.clusters]
        batch_size = self.clusters[0].batch_size
        input_dim = self.clusters[0].trainer.input_dim
        # One wave buffer, reused across rounds: every tensor the wave's
        # autograd graph retains is derived from (not aliased to) it.
        wave = np.empty((len(self.clusters), batch_size, input_dim))
        rounds_per_epoch = [c.rounds_per_epoch for c in self.clusters]
        for round_index in range(rounds_per_cluster):
            for k, cluster in enumerate(self.clusters):
                wave[k] = cluster.next_batch()
            epochs = [round_index // rpe + 1 for rpe in rounds_per_epoch]
            for k, record in enumerate(fleet.step(wave, epochs=epochs)):
                records[k].append(record)
        fleet.sync_to_trainers()
        return records

    def _static_pick_order(self, rounds_per_cluster: int
                           ) -> Optional[List[ScheduledCluster]]:
        """Precomputed pick sequence for loss-independent policies.

        ``fifo``/``deadline`` drain clusters one at a time (arrival /
        earliest-deadline order); ``round_robin`` cycles the cluster list
        (ties on ``rounds_completed`` resolve in list order, exactly as
        ``min`` does in :meth:`_pick`).  ``loss_priority`` depends on the
        evolving losses and returns None (generic replay loop).
        """
        if self.policy == "fifo":
            drain_order = list(self.clusters)
        elif self.policy == "deadline":
            drain_order = sorted(self.clusters,
                                 key=lambda c: (c.deadline_s is None,
                                                c.deadline_s or 0.0))
        elif self.policy == "round_robin":
            return list(self.clusters) * rounds_per_cluster
        else:
            return None
        return [c for c in drain_order for _ in range(rounds_per_cluster)]

    def _replay_policy(self, rounds_per_cluster: int,
                       records: List[List[RoundRecord]],
                       engine: str) -> ScheduleReport:
        """Reproduce the sequential clock arithmetic over executed rounds.

        The policy still decides the order in which the shared edge
        serves clusters — identical picks to the sequential loop, since
        ``current_loss`` evolves from the same trajectories — but each
        "round" is now just clock-and-ledger bookkeeping.
        """
        index_of = {c.name: k for k, c in enumerate(self.clusters)}
        timings = [c.trainer.round_costs(c.batch_size).timing
                   for c in self.clusters]
        budget = {c.name: rounds_per_cluster for c in self.clusters}
        edge_busy_s = 0.0
        cluster_clock: Dict[str, float] = {c.name: 0.0 for c in self.clusters}
        completion: Dict[str, List[float]] = {c.name: [] for c in self.clusters}
        edge_clock = 0.0
        misses: List[str] = []

        pick_order = self._static_pick_order(rounds_per_cluster)
        pick_cursor = 0
        while True:
            if pick_order is not None:
                if pick_cursor >= len(pick_order):
                    break
                cluster = pick_order[pick_cursor]
                pick_cursor += 1
            else:
                pending = [c for c in self.clusters if budget[c.name] > 0]
                if not pending:
                    break
                cluster = self._pick(pending, budget, edge_clock)
            record = records[index_of[cluster.name]][cluster.rounds_completed]
            timing = timings[index_of[cluster.name]]
            edge_clock = max(edge_clock, cluster_clock[cluster.name]) \
                + timing.edge_compute_s
            edge_busy_s += timing.edge_compute_s
            cluster_clock[cluster.name] = edge_clock \
                + timing.aggregator_compute_s + timing.uplink_s \
                + timing.downlink_s
            completion[cluster.name].append(cluster_clock[cluster.name])
            cluster.history.rounds.append(record)
            cluster.rounds_completed += 1
            budget[cluster.name] -= 1
            if cluster.deadline_s is not None and budget[cluster.name] == 0 \
                    and cluster_clock[cluster.name] > cluster.deadline_s \
                    and cluster.name not in misses:
                misses.append(cluster.name)

        return ScheduleReport(
            policy=self.policy,
            total_edge_time_s=edge_busy_s,
            makespan_s=max(cluster_clock.values()),
            rounds_per_cluster={c.name: c.rounds_completed
                                for c in self.clusters},
            final_loss_per_cluster={c.name: c.current_loss
                                    for c in self.clusters},
            deadline_misses=misses,
            engine=engine,
            completion_times=completion,
        )


def compare_policies(make_clusters, rounds_per_cluster: int = 30,
                     policies: Sequence[str] = _POLICIES,
                     seed: int = 0,
                     engine: str = "auto") -> Dict[str, ScheduleReport]:
    """Run the same multi-cluster workload under each policy.

    ``make_clusters`` is a zero-argument callable returning a list of
    ``(name, trainer, data)`` tuples — called fresh per policy so every
    policy starts from identical initial weights.  With per-cluster data
    streams the *trajectories* are identical across policies too; what
    differs is the scheduled completion times (fairness and makespan).
    """
    reports: Dict[str, ScheduleReport] = {}
    for policy in policies:
        scheduler = EdgeTrainingScheduler(policy,
                                          rng=np.random.default_rng(seed),
                                          engine=engine)
        for name, trainer, data in make_clusters():
            scheduler.add_cluster(name, trainer, data)
        reports[policy] = scheduler.run(rounds_per_cluster)
    return reports
