"""Edge-side scheduling of many concurrent OrcoDCS training sessions.

The paper's conclusion names this as the open problem: "optimization of
training overhead on edge servers when a large number of data
aggregators need to perform training procedures of OrcoDCS".  This
module implements that layer: an :class:`EdgeTrainingScheduler` that
owns one edge compute budget and time-shares it across the orchestrated
trainers of many clusters, under pluggable policies:

* ``fifo`` — clusters train to completion in arrival order;
* ``round_robin`` — one minibatch round per cluster per cycle;
* ``loss_priority`` — the cluster with the highest current loss gets the
  next round (greedy max-improvement);
* ``deadline`` — earliest-deadline-first over per-cluster time budgets.

The scheduler advances a shared modeled clock: while the edge decodes
for one cluster, other clusters' *aggregator-side* compute and uplinks
proceed in parallel (they are independent devices), but edge compute
serialises — the contention the paper worries about.

Execution engines
-----------------
The *modeled* clock above is independent of how fast this Python process
can simulate the rounds, and a cluster's weight/loss trajectory depends
only on its own data stream, weights and noise draws — never on when the
edge got around to serving it.  Every engine drives the one shared
per-round lifecycle in :mod:`repro.core.rounds` (select contributors ->
run training step -> account clock/ledger/energy -> apply policy); they
differ only in which world they assume and where the training math runs:

* ``sequential`` — the literal loop: pick a cluster, run one
  :meth:`~repro.core.orchestrator.OrchestratedTrainer.step`, advance
  the clocks.  O(K) Python-level autograd passes per cycle.
* ``batched`` — execute every cluster's rounds up front through a
  :class:`~repro.core.fleet.FleetTrainer` (one stacked tensor program
  per cycle for all K clusters), then **replay** the scheduling policy
  over the recorded per-round losses and the per-cluster round timings
  through the same :class:`~repro.core.rounds.IdealRoundLoop` the
  sequential engine uses — identical modeled clock, ledger and deadline
  accounting.  Wall-clock cost drops by roughly the cluster count; the
  per-cluster loss trajectories match the sequential engine to <= 1e-6
  (observed ~1e-12) for identical seeds.

``engine="auto"`` (the default) picks ``batched`` whenever the
registered clusters are architecture-homogeneous with a uniform batch
size, and falls back to ``sequential`` otherwise (heterogeneous models,
exotic losses, data shorter than one batch).

* ``event`` — the unreliable-world engine: rounds execute on the
  :mod:`repro.sim.events` discrete-event kernel, completing
  asynchronously at simulated-clock times.  Uplinks/downlinks may run
  over lossy :class:`~repro.sim.channel.UnreliableChannel`\\ s (ARQ
  retransmissions lengthen rounds, radiate extra ledger bytes and drain
  the aggregator battery; a round whose transfer exhausts its ARQ
  budget *fails* — time and energy spent, no training update), a
  declarative :class:`~repro.sim.faults.FaultSchedule` can kill
  devices/aggregators, brown out batteries and straggle clusters
  mid-run, and a :class:`ResilientOrchestrationPolicy` decides how
  training proceeds with degraded clusters (failover vs. retire,
  straggler tolerance, fleet-wide quorum, per-cluster ARQ budgets,
  and the loss-recovery strategy itself: ``recovery="arq"|"fec"|
  "hybrid"`` selects stop-and-wait retransmission, open-loop erasure
  coding with per-cluster/per-direction adaptive parity, or the coded
  burst with ARQ repair — see :mod:`repro.sim.coding`).
  With zero faults and zero loss this engine reproduces the sequential
  engine's per-cluster trajectories, transmission ledger and modeled
  clock exactly — the correctness anchor mirroring the batched engine's
  contract.

  The event engine **fuses with the fleet engine** whenever at least
  one homogeneous group of clusters stacks (mixed fleets batch group
  by group; the unstackable rest runs per cluster): between
  consecutive scheduled fault times the surviving clusters' rounds are
  pre-executed as :class:`~repro.core.fleet.FleetTrainer` waves and
  replayed into the kernel's clock, ledger and RNG streams
  (:class:`~repro.core.rounds.SegmentedFleetExecutor`); rounds
  straddling a fault boundary fall back to per-cluster execution at
  their true kernel times.  Unreliable channels are no barrier: their
  whole horizon of loss/jitter draws is pre-sampled into replayable
  :class:`~repro.sim.channel.ChannelTrace`\\ s, making lossy rounds
  plan-time computable.  ``loss_priority`` — whose picks the planner
  cannot foresee — fuses **wave-by-wave** (pre-execute only what is
  provably consumed before the next fault; re-pick and re-plan
  otherwise).  A fused run is bit-identical in clock, ledger,
  delivered/attempt counts and report to the unfused loop (losses
  match to stacked-GEMM reduction noise); pass
  ``segment_batching=False`` to force the unfused loop.  The resolved
  strategy is introspectable via :meth:`EdgeTrainingScheduler.
  execution_plan`, which routes every engine gate through one
  :class:`ExecutionPlan` object.

* ``analytic`` — the ensemble-pricing engine
  (:mod:`repro.scale.analytic`): no rounds execute at all.  Expected
  delivered rounds, radio energy, battery lifetime and deadline-miss
  probabilities are folded from the closed-form channel/coding/battery
  math (truncated-geometric ARQ attempts, binomial FEC delivery,
  Gilbert-Elliott stationary loss) per cluster in O(frames) — the mode
  that answers 1000-cluster "what if" sweeps interactively.  The
  report carries expectations (``expected_values=True``, losses NaN);
  fault schedules are refused (out of the validity envelope — see the
  module docstring and README "Scaling out").

Determinism note: each cluster draws its minibatches from its own
``stream_rng`` (seeded from the scheduler RNG at registration), so the
data a cluster sees does not depend on the policy's interleaving — the
property that makes the two engines exactly comparable and makes policy
comparisons measure *scheduling*, not data-order luck.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.telemetry import (
    NULL_BUS,
    ArqRederived,
    ClusterRetired,
    DeadlineMissed,
    ParityChosen,
    QuorumCheck,
    RoundCompleted,
    TelemetryBus,
)
from ..sim.channel import ARQConfig, ChannelSpec, TracePolicy, as_loss_model
from ..sim.coding import (
    CodingSpec,
    delivery_probability,
    expected_frames_per_delivery,
)
from ..sim.events import EventScheduler
from ..sim.faults import FaultEvent, FaultInjector, FaultSchedule
from ..wsn.clustering import select_aggregator
from ..wsn.energy import Battery, BatteryDepletedError, RadioEnergyModel
from .fleet import (
    FleetTrainer,
    fleet_compatible,
    stacking_key,
)
from .orchestrator import OrchestratedTrainer, RoundRecord, TrainingHistory
from .rounds import (
    IdealRoundLoop,
    InlineRoundExecutor,
    ScheduleReport,
    SegmentedFleetExecutor,
    contributor_batch,
    deadline_key,
    epoch_of,
    policy_pick,
    spend_round,
)

__all__ = [
    "EdgeTrainingScheduler", "ExecutionPlan",
    "ResilientOrchestrationPolicy", "RunControlSurface",
    "ScheduledCluster", "ScheduleReport", "compare_policies",
]

_POLICIES = ("fifo", "round_robin", "loss_priority", "deadline")
_ENGINES = ("auto", "sequential", "batched", "event", "analytic")


@dataclass
class RunControlSurface:
    """Everything a between-round control checkpoint may act on.

    Handed to the run controller's ``checkpoint`` at every safe round
    boundary of the event engine.  The controller (see
    :mod:`repro.serve.commands`) is duck-typed — core never imports
    the control plane — and must only mutate through this surface at
    boundaries where ``executor.outstanding() == 0``, so no
    pre-executed fused round can have baked in pre-command state.
    """

    scheduler: "EdgeTrainingScheduler"
    sim: EventScheduler
    states: Dict[str, "_EventClusterState"]
    injector: FaultInjector
    budget: Dict[str, int]
    executor: object


@dataclass
class ScheduledCluster:
    """One cluster's training session under the scheduler.

    ``positions`` (optional ``(input_dim, 2)`` device coordinates) let
    the event engine re-run the paper's proximity rule when the
    aggregator dies; ``aggregator_battery_j`` bounds the radio energy
    the aggregator can spend on backhaul traffic before the cluster
    drops out (event engine only — the ideal engines never drain it).
    """

    name: str
    trainer: OrchestratedTrainer
    data: np.ndarray
    batch_size: int = 32
    deadline_s: Optional[float] = None
    rounds_completed: int = 0
    history: TrainingHistory = None
    stream_rng: Optional[np.random.Generator] = None
    positions: Optional[np.ndarray] = None
    aggregator_battery_j: float = 1e9
    _cursor: int = 0

    def __post_init__(self):
        self.data = np.atleast_2d(np.asarray(self.data, dtype=float))
        if self.history is None:
            self.history = TrainingHistory(self.name)
        if self.stream_rng is None:
            self.stream_rng = np.random.default_rng()
        if self.positions is not None:
            self.positions = np.asarray(self.positions, dtype=float)
            if self.positions.shape != (self.trainer.input_dim, 2):
                raise ValueError(
                    f"positions must be ({self.trainer.input_dim}, 2), got "
                    f"{self.positions.shape}")
        self._order = np.arange(len(self.data))

    def next_batch(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Cycle minibatches; reshuffle at each epoch boundary.

        Draws from this cluster's own ``stream_rng`` by default, so the
        stream is independent of scheduling order.  Shuffling permutes an
        index vector rather than the data rows (same RNG draws, same row
        sequence, far cheaper per epoch).
        """
        rng = rng or self.stream_rng
        if self._cursor + self.batch_size > len(self.data):
            rng.shuffle(self._order)
            self._cursor = 0
        batch = self.data[self._order[self._cursor:self._cursor + self.batch_size]]
        self._cursor += self.batch_size
        return batch

    @property
    def rounds_per_epoch(self) -> int:
        return max(1, len(self.data) // self.batch_size)

    @property
    def current_loss(self) -> float:
        if not self.history.rounds:
            return float("inf")
        return self.history.rounds[-1].train_loss


@dataclass(frozen=True)
class ResilientOrchestrationPolicy:
    """How the event engine keeps training when clusters degrade.

    Parameters
    ----------
    on_aggregator_death:
        ``"replace"`` — fail over by re-running the paper's proximity
        rule (:func:`~repro.wsn.clustering.select_aggregator`) over the
        surviving devices, paying ``failover_downtime_s``;
        ``"skip"`` — retire the cluster.
    on_straggler:
        ``"wait"`` — keep scheduling a straggling cluster (its rounds
        just take ``slow_factor`` longer); ``"skip"`` — retire it once
        its slowdown reaches ``straggler_cutoff``.
    min_device_fraction:
        A cluster whose live-device fraction drops below this is
        retired (too few contributors for a meaningful partial sum).
    quorum:
        Fleet-wide rule: halt the whole run when the fraction of
        clusters still alive falls below this (0 disables).
    max_consecutive_failures:
        Retire a cluster after this many consecutive round failures
        (uplink/downlink never delivered within the ARQ budget).
    failover_downtime_s:
        Simulated seconds a cluster is unavailable while a replacement
        aggregator is elected and re-provisioned.
    adaptive_arq:
        Override the fleet-uniform retransmission budget per cluster
        from its deadline slack and battery headroom (see
        :meth:`arq_retries_for`).  Off by default: every cluster keeps
        the :class:`~repro.sim.channel.ChannelSpec`'s budget.
    arq_min_retries / arq_max_retries:
        The budget clamp adaptive ARQ moves between: deadline-tight or
        battery-poor clusters drop to ``arq_min_retries`` (each retry
        costs airtime they cannot afford), slack-rich healthy clusters
        rise to ``arq_max_retries`` (a retried frame is cheaper than a
        lost round).
    arq_slack_rich:
        Deadline-over-ideal-completion ratio above which a cluster
        counts as slack-rich (no deadline is infinitely rich).
    arq_battery_margin:
        Battery-over-ideal-radio-spend ratio below which a cluster
        conserves energy (shared by the adaptive-ARQ and adaptive-FEC
        rules: both adapt to the same headroom signal).
    recovery:
        Uplink/downlink loss-recovery strategy the scheduler stamps
        onto every cluster's channels: ``"arq"`` (default — the
        channel spec's stop-and-wait budget, exactly the pre-FEC
        behaviour), ``"fec"`` (open-loop erasure coding: ``k`` parity
        frames per message, decodable from any ``F`` of ``F+k``, no
        retransmissions) or ``"hybrid"`` (the coded burst plus
        ARQ-repair of a shortfall).  For ``fec``/``hybrid`` the parity
        budget ``k`` is derived **per cluster** from the channel's
        observed mean loss rate and the cluster's battery headroom
        (:meth:`coding_parity_for`), separately per link direction
        (each link's parity protects its own message length); the
        uplink budget is reported in
        :attr:`~repro.core.rounds.ScheduleReport.coding_budgets`.  A
        spec that already carries an explicit
        :class:`~repro.sim.coding.CodingSpec` is left untouched.
    fec_max_parity:
        Upper clamp on the adaptive parity budget ``k``.
    fec_target_residual:
        Residual message-failure probability the reliability-first rule
        provisions for: slack clusters pick the smallest ``k`` whose
        binomial failure tail is at or below this.
    """

    on_aggregator_death: str = "replace"
    on_straggler: str = "wait"
    straggler_cutoff: float = 8.0
    min_device_fraction: float = 0.5
    quorum: float = 0.0
    max_consecutive_failures: int = 8
    failover_downtime_s: float = 5.0
    adaptive_arq: bool = False
    arq_min_retries: int = 0
    arq_max_retries: int = 6
    arq_slack_rich: float = 2.0
    arq_battery_margin: float = 2.0
    recovery: str = "arq"
    fec_max_parity: int = 8
    fec_target_residual: float = 1e-2

    def __post_init__(self):
        if self.recovery not in ("arq", "fec", "hybrid"):
            raise ValueError("recovery must be 'arq', 'fec' or 'hybrid'")
        if self.fec_max_parity < 0:
            raise ValueError("fec_max_parity must be >= 0")
        if not 0.0 < self.fec_target_residual <= 1.0:
            raise ValueError("fec_target_residual must be in (0, 1]")
        if self.on_aggregator_death not in ("replace", "skip"):
            raise ValueError("on_aggregator_death must be 'replace' or 'skip'")
        if self.on_straggler not in ("wait", "skip"):
            raise ValueError("on_straggler must be 'wait' or 'skip'")
        if not 0.0 <= self.min_device_fraction <= 1.0:
            raise ValueError("min_device_fraction must be in [0, 1]")
        if not 0.0 <= self.quorum <= 1.0:
            raise ValueError("quorum must be in [0, 1]")
        if self.max_consecutive_failures < 1:
            raise ValueError("max_consecutive_failures must be >= 1")
        if self.failover_downtime_s < 0 or self.straggler_cutoff < 1.0:
            raise ValueError("failover_downtime_s must be >= 0 and "
                             "straggler_cutoff >= 1")
        if not 0 <= self.arq_min_retries <= self.arq_max_retries:
            raise ValueError("need 0 <= arq_min_retries <= arq_max_retries")
        if self.arq_slack_rich < 1.0 or self.arq_battery_margin < 0.0:
            raise ValueError("arq_slack_rich must be >= 1 and "
                             "arq_battery_margin >= 0")

    def arq_retries_for(self, base_retries: int, deadline_slack: float,
                        battery_headroom: float) -> int:
        """Per-cluster retransmission budget from slack and battery.

        Parameters
        ----------
        base_retries:
            The fleet-uniform budget from the channel spec.
        deadline_slack:
            Cluster deadline over its ideal (uncontended, lossless)
            completion time; ``inf`` when it has no deadline.  Below 1
            the deadline is missed even without retries, so spending
            airtime on them only makes the miss worse.
        battery_headroom:
            Aggregator battery over the whole run's ideal backhaul
            radio energy; below ``arq_battery_margin`` the cluster
            cannot afford retransmission airtime.
        """
        if not self.adaptive_arq:
            return base_retries
        if battery_headroom < self.arq_battery_margin or deadline_slack < 1.0:
            return min(base_retries, self.arq_min_retries)
        if deadline_slack >= self.arq_slack_rich:
            return max(base_retries, self.arq_max_retries)
        return base_retries

    def coding_parity_for(self, data_frames: int, loss_rate: float,
                          battery_headroom: float) -> int:
        """Adaptive erasure-code redundancy ``k`` for one cluster.

        Two candidate budgets, both priced in closed form from the
        channel's observed mean frame-loss rate:

        * the **energy-optimal** ``k`` minimises expected radiated
          frames per *delivered* message, ``(F+k) / P[deliver]`` —
          more parity burns airtime every round, less parity wastes
          whole rounds (:func:`~repro.sim.coding.
          expected_frames_per_delivery`);
        * the **reliability-first** ``k`` is the smallest whose
          residual failure tail is at or below
          ``fec_target_residual``.

        Battery-poor clusters (headroom below ``arq_battery_margin``)
        take the energy-optimal budget; clusters with energy to spare
        take whichever is larger, buying failure-free rounds with
        airtime they can afford.  Ties in the energy rule break toward
        smaller ``k``.

        The budget is additionally clamped so ``data_frames + k`` never
        exceeds the GF(256) code's 256-shard limit; a message already
        fragmenting into 256+ frames cannot be coded at all and falls
        back to the uncoded path (``k = 0``).
        """
        if self.recovery == "arq":
            return 0
        max_parity = min(self.fec_max_parity, max(0, 256 - data_frames))
        if max_parity == 0:
            return 0
        candidates = range(max_parity + 1)
        energy_k = min(candidates, key=lambda k: (
            expected_frames_per_delivery(data_frames, k, loss_rate), k))
        if battery_headroom < self.arq_battery_margin:
            return energy_k
        reliability_k = next(
            (k for k in candidates
             if 1.0 - delivery_probability(data_frames, k, loss_rate)
             <= self.fec_target_residual), max_parity)
        return max(energy_k, reliability_k)


class _EventClusterState:
    """Mutable per-cluster world state under the event engine.

    Implements the :class:`repro.sim.faults.FaultTarget` protocol, so a
    :class:`~repro.sim.faults.FaultInjector` mutates it directly when
    the simulated clock reaches each scheduled fault.
    """

    def __init__(self, cluster: ScheduledCluster,
                 resilience: ResilientOrchestrationPolicy,
                 sim: EventScheduler,
                 channels: Tuple[Optional[ChannelSpec], Optional[ChannelSpec]],
                 rng: np.random.Generator,
                 backhaul_distance_m: float,
                 bus: TelemetryBus = NULL_BUS):
        self.cluster = cluster
        self.resilience = resilience
        self.sim = sim
        self.bus = bus
        trainer = cluster.trainer
        self.alive_mask = np.ones(trainer.input_dim, dtype=bool)
        self.aggregator_device = (
            int(select_aggregator(cluster.positions))
            if cluster.positions is not None else 0)
        self.slow_factor = 1.0
        self.dead = False
        self.dead_reason: Optional[str] = None
        self.consecutive_failures = 0
        self.failed_rounds = 0
        self.failovers = 0
        self.ready_at = 0.0
        self.battery = Battery(cluster.aggregator_battery_j)
        self.radio = RadioEnergyModel()
        self.radio_energy_j = 0.0
        self.backhaul_m = backhaul_distance_m
        up_spec, down_spec = channels
        if up_spec is not None:
            self.up_channel = up_spec.build(
                trainer.timing.up, np.random.default_rng(rng.integers(2 ** 63)))
            self.down_channel = down_spec.build(
                trainer.timing.down,
                np.random.default_rng(rng.integers(2 ** 63)))
            self.up_channel.bus = bus
            self.down_channel.bus = bus
        else:
            self.up_channel = None
            self.down_channel = None

    # -- transmissions -------------------------------------------------
    def transmit_up(self, payload_bytes: int):
        return self._transmit(self.up_channel, self.cluster.trainer.timing.up,
                              payload_bytes)

    def transmit_down(self, payload_bytes: int):
        return self._transmit(self.down_channel,
                              self.cluster.trainer.timing.down, payload_bytes)

    @staticmethod
    def _transmit(channel, link, payload_bytes: int):
        if channel is not None:
            return channel.transmit(payload_bytes)
        from ..sim.channel import TransmitResult
        wire = link.wire_bytes(payload_bytes)
        return TransmitResult(payload_bytes, link.frames_for(payload_bytes),
                              link.frames_for(payload_bytes), 0, True, wire,
                              link.transfer_time(payload_bytes), wire)

    # -- energy --------------------------------------------------------
    def charge_backhaul(self, tx_wire_bytes: int, rx_wire_bytes: int) -> None:
        """Drain the aggregator battery for radiated + received bytes."""
        joules = (self.radio.tx_energy(tx_wire_bytes * 8, self.backhaul_m)
                  + self.radio.rx_energy(rx_wire_bytes * 8))
        self.radio_energy_j += joules
        try:
            self.battery.drain(joules)
        except BatteryDepletedError:
            self.battery.remaining_j = 0.0
            self.retire("aggregator battery depleted")

    # -- round-failure bookkeeping ------------------------------------
    def round_failed(self) -> None:
        self.failed_rounds += 1
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.resilience.max_consecutive_failures:
            self.retire("link unusable (consecutive round failures)")

    def round_succeeded(self) -> None:
        self.consecutive_failures = 0

    @property
    def device_fraction(self) -> float:
        return float(self.alive_mask.mean())

    def retire(self, reason: str) -> None:
        if not self.dead:
            self.dead = True
            self.dead_reason = reason
            if self.bus.wants(ClusterRetired.kind):
                self.bus.emit(ClusterRetired(cluster=self.cluster.name,
                                             reason=reason,
                                             time_s=self.sim.now))

    # -- FaultTarget protocol ------------------------------------------
    def kill_device(self, device: int) -> None:
        if not 0 <= device < self.alive_mask.size:
            raise IndexError(f"cluster {self.cluster.name!r} has no device "
                             f"{device}")
        self.alive_mask[device] = False
        if device == self.aggregator_device:
            self._aggregator_failover()
        if self.device_fraction < self.resilience.min_device_fraction:
            self.retire("device attrition below quorum")

    def revive_device(self, device: int) -> None:
        self.alive_mask[device] = True

    def kill_aggregator(self) -> None:
        self.kill_device(self.aggregator_device)

    def brownout(self, fraction: float) -> None:
        self.battery.remaining_j *= fraction
        if self.battery.remaining_j <= 0.0:
            self.retire("brownout drained the aggregator battery")

    def set_slow_factor(self, factor: float) -> None:
        self.slow_factor = factor
        if (self.resilience.on_straggler == "skip"
                and factor >= self.resilience.straggler_cutoff):
            self.retire("straggling beyond cutoff")

    def kill_cluster(self) -> None:
        self.retire("cluster killed by fault schedule")

    def _aggregator_failover(self) -> None:
        if self.resilience.on_aggregator_death == "skip":
            self.retire("aggregator died (policy: skip)")
            return
        alive = np.flatnonzero(self.alive_mask)
        if alive.size == 0:
            self.retire("no surviving device to promote")
            return
        if self.cluster.positions is not None:
            local = select_aggregator(self.cluster.positions[alive])
            self.aggregator_device = int(alive[local])
        else:
            self.aggregator_device = int(alive[0])
        self.failovers += 1
        # Re-election + re-provisioning keeps the cluster off the air.
        self.ready_at = max(self.ready_at, self.sim.now) \
            + self.resilience.failover_downtime_s


@dataclass(frozen=True)
class ExecutionPlan:
    """Resolved execution strategy for one scheduling run.

    Every engine choice the scheduler used to make through scattered
    boolean gates is routed through this one object, computed by
    :meth:`EdgeTrainingScheduler.execution_plan` before the run and
    introspectable by tests and experiments.

    Attributes
    ----------
    engine:
        The engine that will actually execute: ``sequential``,
        ``batched`` or ``event`` (``auto`` is resolved here).
    groups:
        Homogeneous stacking groups as tuples of cluster indices
        (registration order).  Multi-member groups run as stacked
        fleet programs; singletons execute per cluster.
    fused:
        Event engine only: fault-free/channel-safe spans pre-execute as
        fleet waves (:class:`~repro.core.rounds.SegmentedFleetExecutor`).
    mode:
        Fused planning mode — ``segment`` (pick-mirroring dry-run up to
        the fault horizon) or ``wave`` (loss-coupled policies: fuse
        per-cluster futures only when provably consumed before the
        horizon, else one round at a time).
    traced:
        Channel randomness is pre-sampled into replayable
        :class:`~repro.sim.channel.ChannelTrace`\\ s so the planner can
        price lossy rounds (requires ``fused``).
    reason:
        Why fusion (or batching) is off — empty when it is on.  Human
        prose; when several gates block at once they are joined with
        ``"; "``.
    reasons:
        The same gates as machine-readable slugs, one per blocker —
        ``"segment-batching-disabled"``, ``"no-stackable-group"``,
        ``"non-rerecordable-channel"``, ``"analytic-engine"`` — empty
        when fusion (or batching) is on.  Tests and experiment drivers
        match on these instead of parsing the prose.
    """

    engine: str
    groups: Tuple[Tuple[int, ...], ...] = ()
    fused: bool = False
    mode: str = "segment"
    traced: bool = False
    reason: str = ""
    reasons: Tuple[str, ...] = ()

    @property
    def stacked_clusters(self) -> int:
        """Clusters that execute inside a multi-member stacked group."""
        return sum(len(g) for g in self.groups if len(g) >= 2)


class EdgeTrainingScheduler:
    """Time-shares one edge server across many cluster training sessions.

    Parameters
    ----------
    policy:
        One of ``fifo``, ``round_robin``, ``loss_priority``, ``deadline``.
    rng:
        Root generator; per-cluster minibatch streams are seeded from it
        at registration.
    engine:
        ``auto`` (default), ``sequential``, ``batched`` or ``event`` —
        see the module docstring.  ``batched`` raises if the clusters
        cannot be stacked; ``auto`` silently falls back to
        ``sequential``.  Faults and unreliable channels require
        ``event``.
    fault_schedule:
        Declarative :class:`~repro.sim.faults.FaultSchedule` injected at
        simulated times (event engine only).
    resilience:
        :class:`ResilientOrchestrationPolicy` governing degraded-cluster
        decisions; defaults to replace-and-wait with no quorum.
    channels:
        :class:`~repro.sim.channel.ChannelSpec` wrapping every cluster's
        uplink and downlink in unreliable channels (event engine only;
        ``None`` keeps links ideal).  With ``resilience.adaptive_arq``
        the spec's retransmission budget becomes per-cluster.
    backhaul_distance_m:
        Modeled aggregator <-> edge distance used to price backhaul
        radio energy under the event engine.
    segment_batching:
        Event engine only: fuse fault-free segments into
        :class:`~repro.core.fleet.FleetTrainer` waves whenever the
        channels are lossless and the clusters stack (see the module
        docstring).  ``False`` forces the per-round unfused loop — the
        reference the fused path is validated against.
    trace_chunk:
        **Deprecated** (warns): explicit chunk size for channel-trace
        recording.  Declare the policy on the channel spec instead —
        ``ChannelSpec(trace=TracePolicy(chunk=...))`` — whose defaults
        reproduce the old automatic behaviour (full traces for short
        horizons, chunked recording past 4096 rounds).
    telemetry:
        Optional :class:`~repro.obs.telemetry.TelemetryBus` receiving
        structured run events (rounds, segments, faults, channel
        batches, retirements, deadline misses) and phase spans.  The
        bus never draws randomness and never perturbs accumulation
        order, so a run is bit-identical with telemetry on or off;
        ``None`` keeps every instrumented site on a no-subscriber bus
        that elides event construction entirely.
    """

    def __init__(self, policy: str = "round_robin",
                 rng: Optional[np.random.Generator] = None,
                 engine: str = "auto",
                 fault_schedule: Optional[FaultSchedule] = None,
                 resilience: Optional[ResilientOrchestrationPolicy] = None,
                 channels: Optional[ChannelSpec] = None,
                 backhaul_distance_m: float = 100.0,
                 segment_batching: bool = True,
                 trace_chunk: Optional[int] = None,
                 telemetry: Optional[TelemetryBus] = None,
                 control=None):
        if policy not in _POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {_POLICIES}")
        if engine not in _ENGINES:
            raise ValueError(f"unknown engine {engine!r}; choose from {_ENGINES}")
        resilience = resilience or ResilientOrchestrationPolicy()
        degraded = bool(fault_schedule) or (
            channels is not None and (not channels.ideal
                                      or resilience.recovery != "arq"))
        if degraded and engine not in ("event", "analytic"):
            raise ValueError(
                "fault schedules, unreliable channels and coded recovery "
                "require engine='event' (or engine='analytic' for "
                "closed-form channel pricing); the sequential/batched "
                "engines model an ideal synchronous world")
        if engine == "analytic" and bool(fault_schedule):
            raise ValueError(
                "engine='analytic' prices rounds from closed-form channel/"
                "coding/battery math and cannot apply fault schedules; "
                "use engine='event' for fault injection")
        self.policy = policy
        self.engine = engine
        self.rng = rng or np.random.default_rng()
        self.clusters: List[ScheduledCluster] = []
        self.fault_schedule = fault_schedule or FaultSchedule()
        self.resilience = resilience
        self.channels = channels
        self.backhaul_distance_m = backhaul_distance_m
        self.segment_batching = segment_batching
        self.telemetry = telemetry
        # Optional run controller (duck-typed; see repro.serve.commands)
        # checked at every between-round boundary: pause points and the
        # runtime command queue.  None costs one ``is not None`` per
        # round.
        self.control = control
        # The session bus every instrumented site reads.  ``run()``
        # swaps in a tapped bus (ScheduleReport's deadline/retirement
        # fields are folded from bus events) and restores this default.
        self._bus: TelemetryBus = (telemetry if telemetry is not None
                                   else NULL_BUS)
        if trace_chunk is not None:
            warnings.warn(
                "EdgeTrainingScheduler(trace_chunk=...) is deprecated; "
                "declare the policy on the channel spec instead: "
                "ChannelSpec(trace=TracePolicy(chunk=...))",
                DeprecationWarning, stacklevel=2)
            if trace_chunk < 1:
                raise ValueError("trace_chunk must be >= 1")
        self.trace_chunk = trace_chunk
        # None lets each channel's own TracePolicy (ChannelSpec.trace)
        # govern recording; the shim maps the legacy knob onto one.
        self._trace_policy = (TracePolicy(chunk=trace_chunk)
                              if trace_chunk is not None else None)

    def attach_telemetry(self, bus: Optional[TelemetryBus]) -> None:
        """Attach (or, with ``None``, detach) a telemetry bus post-init.

        The control plane builds schedulers through user-supplied
        factories that may not expose the ``telemetry=`` parameter;
        this is the seam that wires the service bus in afterwards.
        Safe only between runs — an in-flight session holds its own
        bus reference.
        """
        self.telemetry = bus
        self._bus = bus if bus is not None else NULL_BUS

    def add_cluster(self, name: str, trainer: OrchestratedTrainer,
                    data: np.ndarray, batch_size: int = 32,
                    deadline_s: Optional[float] = None,
                    positions: Optional[np.ndarray] = None,
                    aggregator_battery_j: float = 1e9) -> ScheduledCluster:
        """Register a cluster's training session."""
        if any(c.name == name for c in self.clusters):
            raise ValueError(f"duplicate cluster name {name!r}")
        stream = np.random.default_rng(self.rng.integers(2 ** 63))
        cluster = ScheduledCluster(name, trainer, data, batch_size, deadline_s,
                                   stream_rng=stream, positions=positions,
                                   aggregator_battery_j=aggregator_battery_j)
        self.clusters.append(cluster)
        return cluster

    # ------------------------------------------------------------------
    def _pick(self, pending: List[ScheduledCluster], rounds_budget: Dict[str, int],
              clock_s: float) -> ScheduledCluster:
        # One shared pick-rule definition (rounds.policy_pick): the
        # segment planner must mirror these picks exactly.
        return policy_pick(self.policy, pending,
                           lambda c: c.rounds_completed,
                           lambda c: c.current_loss)

    def _stacking_groups(self) -> Tuple[Tuple[int, ...], ...]:
        """Partition clusters into homogeneous stacking groups.

        Clusters sharing an architecture signature (and a viable batch
        geometry) group together; each candidate group is validated
        with :func:`~repro.core.fleet.fleet_compatible` before being
        trusted with a stacked program, falling apart into singletons
        otherwise.  A mixed fleet therefore batches group by group —
        one odd cluster no longer disables fusion for the rest.
        """
        groups: List[List[int]] = []
        group_keys: List[object] = []
        for index, cluster in enumerate(self.clusters):
            key: object = None
            if len(cluster.data) >= cluster.batch_size:
                trainer_key = stacking_key(cluster.trainer)
                if trainer_key is not None:
                    key = (cluster.batch_size, trainer_key)
            if key is not None and key in group_keys:
                groups[group_keys.index(key)].append(index)
                continue
            groups.append([index])
            # Unstackable clusters carry a unique key: never merged.
            group_keys.append(key if key is not None
                              else ("__unstackable__", index))
        validated: List[List[int]] = []
        for group in groups:
            if len(group) >= 2 and not fleet_compatible(
                    [self.clusters[k].trainer for k in group]):
                validated.extend([k] for k in group)
            else:
                validated.append(group)
        return tuple(tuple(group) for group in validated)

    def execution_plan(self) -> ExecutionPlan:
        """Resolve how the registered fleet will actually execute.

        One decision point instead of scattered boolean gates: computes
        the homogeneous stacking groups, resolves ``auto``, and decides
        whether (and how) the event engine fuses — including whether
        channel randomness must be pre-sampled into traces.
        """
        groups = self._stacking_groups()
        stackable = any(len(group) >= 2 for group in groups)
        if self.engine == "analytic":
            return ExecutionPlan(
                "analytic", groups,
                reason="closed-form ensemble pricing — no per-round "
                       "execution",
                reasons=("analytic-engine",))
        if self.engine == "event":
            blockers: List[Tuple[str, str]] = []
            if not self.segment_batching:
                blockers.append(("segment-batching-disabled",
                                 "segment batching disabled"))
            if not stackable:
                blockers.append((
                    "no-stackable-group",
                    "no homogeneous group of >= 2 clusters to stack"))
            lossy = self.channels is not None and not self.channels.ideal
            # Coded channels must be trace-priced even when lossless:
            # parity frames radiate extra bytes and airtime the
            # planner's ideal closed forms do not know about.  The
            # resilience policy may stamp coding on per cluster, so the
            # base spec being uncoded is not enough to skip tracing.
            traced = lossy or (self.channels is not None
                               and self.resilience.recovery != "arq")
            # Adaptive budgets re-derive at fault boundaries; a traced
            # channel then re-records its remaining horizon, which
            # requires a rewindable draw stream (zero jitter plus a
            # block-samplable loss model).  Channels that cannot rewind
            # keep the unfused loop — the only remaining fault/loss
            # coupling gate.
            rederives = bool(self.fault_schedule) \
                and self.channels is not None \
                and (self.resilience.adaptive_arq
                     or (self.resilience.recovery in ("fec", "hybrid")
                         and self.channels.coding is None))
            if rederives and traced and not self.channels.rerecordable:
                blockers.append((
                    "non-rerecordable-channel",
                    "budget re-derivation at fault boundaries needs a "
                    "re-recordable draw stream (jittered or "
                    "scalar-fallback loss models cannot rewind)"))
            if blockers:
                return ExecutionPlan(
                    "event", groups,
                    reason="; ".join(human for _, human in blockers),
                    reasons=tuple(slug for slug, _ in blockers))
            if self.policy == "loss_priority":
                # Quorum-guarded fleets fuse too: _plan_wave proves per
                # wave that no death can land inside the outstanding
                # window (deaths are terminal, so the post-wave alive
                # count lower-bounds every intermediate one) and falls
                # back to a requesting-round-only plan otherwise.
                return ExecutionPlan("event", groups, fused=True,
                                     mode="wave", traced=traced)
            return ExecutionPlan("event", groups, fused=True, traced=traced)
        if self.engine == "batched":
            # Mixed fleets batch group by group, exactly like ``auto``
            # — the strict one-homogeneous-fleet contract is gone;
            # singleton groups (odd architectures, short data) step
            # their own trainer per round inside the same replay.
            return ExecutionPlan("batched", groups)
        if self.engine == "auto" and stackable:
            return ExecutionPlan("batched", groups)
        if self.engine == "sequential":
            return ExecutionPlan("sequential", groups)
        return ExecutionPlan(
            "sequential", groups,
            reason="no homogeneous group of >= 2 clusters to stack",
            reasons=("no-stackable-group",))

    def run(self, rounds_per_cluster: int = 50) -> ScheduleReport:
        """Execute training until every cluster has its round budget.

        Returns a report with edge-busy time, makespan, final losses and
        per-round scheduled completion times.  The makespan model: the
        edge serialises its decode work, while each cluster's
        aggregator-side compute + transfers overlap with other clusters'
        work.  Both engines produce identical reports (modulo
        floating-point reduction noise in the losses).
        """
        if not self.clusters:
            raise RuntimeError("no clusters registered")
        if rounds_per_cluster <= 0:
            raise ValueError("rounds_per_cluster must be positive")
        plan = self.execution_plan()
        if plan.engine == "analytic":
            # Lazy import: repro.scale imports core, so the gate must
            # not close the cycle at module load.
            from ..scale.analytic import run_analytic
            return run_analytic(self, rounds_per_cluster)
        if plan.engine == "event":
            return self._run_event(rounds_per_cluster, plan)
        if plan.engine == "batched":
            records = self._execute_batched(rounds_per_cluster, plan.groups)
            return self._replay_policy(rounds_per_cluster, records,
                                       engine="batched")
        return self._run_sequential(rounds_per_cluster)

    # ------------------------------------------------------------------
    # Sequential engine: the shared ideal loop, rounds stepped inline
    # ------------------------------------------------------------------
    def _run_sequential(self, rounds_per_cluster: int) -> ScheduleReport:
        loop = IdealRoundLoop(self.clusters, rounds_per_cluster, self._pick,
                              self._static_pick_order(rounds_per_cluster),
                              bus=self._bus, control=self.control)

        def live_round(cluster: ScheduledCluster) -> RoundRecord:
            batch = contributor_batch(cluster)
            return cluster.trainer.step(
                batch, epoch=epoch_of(cluster, cluster.rounds_completed))

        loop.run(live_round)
        return loop.report(self.policy, "sequential")

    # ------------------------------------------------------------------
    # Event engine: asynchronous rounds on the discrete-event kernel
    # ------------------------------------------------------------------
    def _channel_specs_for(self, cluster: ScheduledCluster,
                           rounds_per_cluster: int
                           ) -> Tuple[Optional[ChannelSpec],
                                      Optional[ChannelSpec]]:
        """The cluster's (uplink, downlink) recipes with adaptive budgets.

        With ``resilience.adaptive_arq`` the fleet-uniform spec's retry
        budget is overridden per cluster from its deadline slack
        (deadline over ideal uncontended completion) and battery
        headroom (battery over the run's ideal backhaul radio energy).
        With ``resilience.recovery`` of ``"fec"``/``"hybrid"`` an
        erasure-coding recipe is stamped on **per link direction**: the
        parity budget ``k`` protects whole messages, so it is derived
        from each direction's own frame count (a 25-frame reconstruction
        downlink needs more parity than a 4-frame latent uplink) plus
        the channel's observed mean loss rate and the cluster's battery
        headroom (:meth:`ResilientOrchestrationPolicy.coding_parity_for`).
        A spec already carrying explicit coding keeps it on both links.
        """
        spec = self.channels
        policy = self.resilience
        wants_fec = (policy.recovery in ("fec", "hybrid")
                     and spec is not None and spec.coding is None)
        if spec is None or not (policy.adaptive_arq or wants_fec):
            return spec, spec
        costs = cluster.trainer.round_costs(cluster.batch_size)
        radio = RadioEnergyModel()
        round_j = (radio.tx_energy(costs.up_wire_bytes * 8,
                                   self.backhaul_distance_m)
                   + radio.rx_energy(costs.down_wire_bytes * 8))
        headroom = cluster.aggregator_battery_j \
            / (round_j * rounds_per_cluster)
        if policy.adaptive_arq:
            ideal_total_s = costs.timing.total_s * rounds_per_cluster
            slack = (float("inf") if cluster.deadline_s is None
                     else cluster.deadline_s / ideal_total_s)
            retries = policy.arq_retries_for(spec.arq.max_retries,
                                             slack, headroom)
            if retries != spec.arq.max_retries:
                spec = spec.with_arq(ARQConfig(
                    max_retries=retries,
                    ack_timeout_s=spec.arq.ack_timeout_s))
        if not wants_fec:
            return spec, spec
        model = as_loss_model(spec.loss() if callable(spec.loss)
                              else spec.loss)
        rate = model.mean_loss_rate if model is not None else 0.0
        hybrid = policy.recovery == "hybrid"
        up_parity = policy.coding_parity_for(
            cluster.trainer.timing.up.frames_for(costs.up_bytes),
            rate, headroom)
        down_parity = policy.coding_parity_for(
            cluster.trainer.timing.down.frames_for(costs.down_bytes),
            rate, headroom)
        if self._bus.wants(ParityChosen.kind):
            for direction, parity in (("up", up_parity),
                                      ("down", down_parity)):
                self._bus.emit(ParityChosen(
                    cluster=cluster.name, direction=direction,
                    parity=parity, loss_rate=rate,
                    headroom_j=cluster.aggregator_battery_j))
        return (spec.with_coding(CodingSpec(up_parity, hybrid)),
                spec.with_coding(CodingSpec(down_parity, hybrid)))

    def _record_channel_traces(self, states: Dict[str, "_EventClusterState"],
                               rounds_per_cluster: int) -> None:
        """Pre-sample every channel's horizon of transmit outcomes.

        Each channel records ``rounds_per_cluster`` fixed-payload
        transmits from its own RNG stream and then replays them — bit
        -identical to the live draws under the same seed, since a
        channel's draw sequence never depends on the simulated clock.
        A channel is consulted at most once per round (failed uplinks
        skip the downlink), so surplus entries simply go unused.

        Recording runs on the channels' vectorized batch kernel; each
        channel's :class:`~repro.sim.channel.TracePolicy` (from
        ``ChannelSpec.trace``, or the scheduler's deprecated
        ``trace_chunk`` override) decides whether a long horizon
        records **chunked** — one chunk ahead, refilled lazily from the
        same RNG stream — so trace memory stays bounded for 1e5+-round
        runs; the entry sequence, and therefore the run, is identical
        either way.
        """
        policy = self._trace_policy
        with self._bus.span("trace_record"):
            for cluster in self.clusters:
                state = states[cluster.name]
                if state.up_channel is None:
                    continue
                costs = cluster.trainer.round_costs(cluster.batch_size)
                state.up_channel.replay(state.up_channel.record_trace(
                    costs.up_bytes, rounds_per_cluster, policy=policy))
                state.down_channel.replay(state.down_channel.record_trace(
                    costs.down_bytes, rounds_per_cluster, policy=policy))

    def _budget_rederiver(self, states: Dict[str, "_EventClusterState"],
                          budget: Dict[str, int], sim: EventScheduler):
        """Per-fault budget re-derivation hook (adaptive ARQ + FEC).

        Run-start budgets price each cluster's *initial* deadline slack
        and battery headroom; a brownout, failover or straggler changes
        both.  This callback re-runs
        :meth:`ResilientOrchestrationPolicy.arq_retries_for` (and, for
        adaptively-coded fleets, :meth:`ResilientOrchestrationPolicy.
        coding_parity_for` per link direction) with the cluster's
        *remaining* rounds, remaining deadline and current battery at
        every fault application and swaps the channel's budgets in
        place.  A channel whose budget changed then **re-records** the
        remaining horizon of its trace from the cursor's resume point
        (:meth:`~repro.sim.channel.UnreliableChannel.rerecord_trace`),
        so fused planning keeps pricing past the fault boundary from
        the exact draw stream a live run would consume.
        """
        by_name = {c.name: c for c in self.clusters}
        policy = self.resilience
        wants_fec = (policy.recovery in ("fec", "hybrid")
                     and self.channels is not None
                     and self.channels.coding is None)

        def rederive(event: FaultEvent) -> None:
            cluster = by_name.get(event.cluster)
            state = states.get(event.cluster)
            if cluster is None or state is None or state.up_channel is None:
                return
            remaining = budget[event.cluster]
            if state.dead or remaining <= 0:
                return
            costs = cluster.trainer.round_costs(cluster.batch_size)
            round_j = (state.radio.tx_energy(costs.up_wire_bytes * 8,
                                             state.backhaul_m)
                       + state.radio.rx_energy(costs.down_wire_bytes * 8))
            headroom = state.battery.remaining_j / (round_j * remaining)
            changed = {"up": False, "down": False}
            if policy.adaptive_arq:
                ideal_remaining_s = costs.timing.total_s * remaining
                slack = (float("inf") if cluster.deadline_s is None
                         else (cluster.deadline_s - sim.now)
                         / ideal_remaining_s)
                retries = policy.arq_retries_for(
                    self.channels.arq.max_retries, slack, headroom)
                for direction, channel in (("up", state.up_channel),
                                           ("down", state.down_channel)):
                    if channel.arq.max_retries != retries:
                        if self._bus.wants(ArqRederived.kind):
                            self._bus.emit(ArqRederived(
                                cluster=event.cluster, direction=direction,
                                old_retries=channel.arq.max_retries,
                                new_retries=retries, time_s=sim.now))
                        channel.set_arq(ARQConfig(
                            max_retries=retries,
                            ack_timeout_s=channel.arq.ack_timeout_s))
                        changed[direction] = True
            if wants_fec:
                model = as_loss_model(
                    self.channels.loss() if callable(self.channels.loss)
                    else self.channels.loss)
                rate = model.mean_loss_rate if model is not None else 0.0
                hybrid = policy.recovery == "hybrid"
                timing = cluster.trainer.timing
                for direction, channel, frames in (
                        ("up", state.up_channel,
                         timing.up.frames_for(costs.up_bytes)),
                        ("down", state.down_channel,
                         timing.down.frames_for(costs.down_bytes))):
                    parity = policy.coding_parity_for(frames, rate, headroom)
                    current = (channel.coding.parity_frames
                               if channel.coding is not None else 0)
                    if parity != current:
                        if self._bus.wants(ParityChosen.kind):
                            self._bus.emit(ParityChosen(
                                cluster=event.cluster, direction=direction,
                                parity=parity, loss_rate=rate,
                                headroom_j=state.battery.remaining_j))
                        channel.set_coding(CodingSpec(parity, hybrid))
                        changed[direction] = True
            for channel, was_changed in ((state.up_channel, changed["up"]),
                                         (state.down_channel,
                                          changed["down"])):
                if was_changed:
                    channel.rerecord_trace()

        return rederive

    def _run_event(self, rounds_per_cluster: int,
                   plan: ExecutionPlan) -> ScheduleReport:
        """Drive training on the :mod:`repro.sim.events` kernel.

        The edge server is one simulated process; fault injections are
        independent events interleaved by the kernel at their scheduled
        times.  Clock bookkeeping mirrors :meth:`_run_sequential`'s
        arithmetic exactly (an exact ``edge_clock`` mirror is kept
        alongside the kernel clock, so the zero-fault run is bit-equal,
        not merely close) while degraded rounds stretch, fail or retire
        clusters per the resilience policy.  The training math itself is
        produced by a :mod:`repro.core.rounds` executor — per-cluster
        steps, or segment-batched fleet waves as the
        :class:`ExecutionPlan` dictates.
        """
        # The session bus: the user's (when given) or a private one —
        # real either way, because the report's ``retirement_reasons``
        # are folded from ClusterRetired bus events by the tap below.
        # Hot-path kinds stay unsubscribed on a private bus, so their
        # event construction is still elided.
        bus = self.telemetry if self.telemetry is not None else TelemetryBus()
        retirement_reasons: Dict[str, int] = {}

        def _count_retired(event) -> None:
            retirement_reasons[event.reason] = (
                retirement_reasons.get(event.reason, 0) + 1)

        unsubscribe = bus.subscribe(_count_retired,
                                    kinds=(ClusterRetired.kind,))
        self._bus = bus
        try:
            return self._run_event_session(
                rounds_per_cluster, plan, bus, retirement_reasons)
        finally:
            unsubscribe()
            self._bus = (self.telemetry if self.telemetry is not None
                         else NULL_BUS)

    def _run_event_session(self, rounds_per_cluster: int,
                           plan: ExecutionPlan, bus: TelemetryBus,
                           retirement_reasons: Dict[str, int]
                           ) -> ScheduleReport:
        sim = EventScheduler()
        states: Dict[str, _EventClusterState] = {
            c.name: _EventClusterState(
                c, self.resilience, sim,
                self._channel_specs_for(c, rounds_per_cluster),
                self.rng, self.backhaul_distance_m, bus=bus)
            for c in self.clusters}
        if plan.traced:
            self._record_channel_traces(states, rounds_per_cluster)
        injector = FaultInjector(self.fault_schedule, states, bus=bus)
        budget = {c.name: rounds_per_cluster for c in self.clusters}
        if self.channels is not None and (
                self.resilience.adaptive_arq
                or (self.resilience.recovery in ("fec", "hybrid")
                    and self.channels.coding is None)):
            injector.on_applied = self._budget_rederiver(states, budget, sim)
        injector.arm(sim)

        completion: Dict[str, List[float]] = {c.name: [] for c in self.clusters}
        misses: List[str] = []
        miss_rounds: Dict[str, int] = {}
        edge_busy = [0.0]
        edge_clock = [0.0]       # exact mirror of the sequential arithmetic
        halted = [False]
        control = self.control
        if plan.fused:
            executor = SegmentedFleetExecutor(
                self.clusters, states, injector, budget, edge_clock,
                self.policy, self.resilience, groups=plan.groups,
                mode=plan.mode, bus=bus,
                command_gate=(control.has_pending
                              if control is not None else None))
        else:
            executor = InlineRoundExecutor()
        surface = (RunControlSurface(self, sim, states, injector,
                                     budget, executor)
                   if control is not None else None)

        def edge_process():
            while True:
                # Between-round control checkpoint: the safe boundary
                # where pause blocks and runtime commands apply (the
                # controller defers mutations until the executor has
                # zero pre-executed rounds outstanding).  One boolean
                # read per round when no command or pause is pending.
                if control is not None and not control.checkpoint(surface):
                    break
                alive = [c for c in self.clusters if not states[c.name].dead]
                if (self.resilience.quorum > 0.0 and self.clusters
                        and len(alive) / len(self.clusters)
                        < self.resilience.quorum):
                    halted[0] = True
                    if bus.wants(QuorumCheck.kind):
                        bus.emit(QuorumCheck(
                            alive=len(alive), total=len(self.clusters),
                            quorum=self.resilience.quorum, halted=True,
                            time_s=sim.now))
                    break
                if self.resilience.quorum > 0.0 \
                        and bus.wants(QuorumCheck.kind):
                    bus.emit(QuorumCheck(
                        alive=len(alive), total=len(self.clusters),
                        quorum=self.resilience.quorum, halted=False,
                        time_s=sim.now))
                pending = [c for c in alive if budget[c.name] > 0]
                if not pending:
                    break
                cluster = self._pick(pending, budget, edge_clock[0])
                state = states[cluster.name]
                start = max(edge_clock[0], state.ready_at)
                if start > sim.now:
                    yield start - sim.now
                    # Faults may have fired while the edge waited.
                    if state.dead:
                        continue
                    if state.ready_at > start + 1e-9:
                        continue   # failover downtime pushed it back out
                trainer = cluster.trainer
                costs = trainer.round_costs(cluster.batch_size)
                timing = costs.timing
                agg_s = timing.aggregator_compute_s * state.slow_factor

                up = state.transmit_up(costs.up_bytes)
                if not up.delivered:
                    # ARQ budget exhausted: the round is lost before the
                    # edge ever sees it.  Time and energy are spent.
                    trainer.ledger.record(0, -1, 0, up.wire_bytes,
                                          "latent_uplink_failed",
                                          up.elapsed_s, up.attempts, False)
                    executor.charge_failure(cluster, agg_s + up.elapsed_s)
                    state.charge_backhaul(up.wire_bytes, 0)
                    state.round_failed()
                    state.ready_at = start + agg_s + up.elapsed_s
                    spend_round(budget, misses, cluster, state.ready_at,
                                miss_rounds, bus)
                    if bus.wants(RoundCompleted.kind):
                        bus.emit(RoundCompleted(
                            cluster=cluster.name,
                            round=cluster.rounds_completed,
                            delivered=False, loss=None,
                            time_s=state.ready_at,
                            battery_j=state.battery.remaining_j,
                            radio_energy_j=state.radio_energy_j))
                    continue

                down = state.transmit_down(costs.down_bytes)
                edge_clock[0] = start + timing.edge_compute_s
                edge_busy[0] += timing.edge_compute_s
                yield timing.edge_compute_s

                if not down.delivered:
                    # Edge decoded, but reconstructions/gradients never
                    # reached the aggregator: no update on either side.
                    trainer.ledger.record(-1, 0, 0, down.wire_bytes,
                                          "recon_downlink_failed",
                                          down.elapsed_s, down.attempts,
                                          False)
                    executor.charge_failure(
                        cluster, agg_s + up.elapsed_s
                        + timing.edge_compute_s + down.elapsed_s)
                    state.charge_backhaul(up.wire_bytes,
                                          down.received_wire_bytes)
                    state.round_failed()
                    state.ready_at = edge_clock[0] + agg_s + up.elapsed_s \
                        + down.elapsed_s
                    spend_round(budget, misses, cluster, state.ready_at,
                                miss_rounds, bus)
                    if bus.wants(RoundCompleted.kind):
                        bus.emit(RoundCompleted(
                            cluster=cluster.name,
                            round=cluster.rounds_completed,
                            delivered=False, loss=None,
                            time_s=state.ready_at,
                            battery_j=state.battery.remaining_j,
                            radio_energy_j=state.radio_energy_j))
                    continue

                # Stragglers and retransmissions stretch the modeled
                # round beyond the ideal accounting step() charges; the
                # executor folds the stretch into the round it produces.
                extra = ((agg_s - timing.aggregator_compute_s)
                         + (up.elapsed_s - timing.uplink_s)
                         + (down.elapsed_s - timing.downlink_s))
                record = executor.execute(cluster, state, agg_s, extra)
                # The k overhead frames of an erasure-coded transfer
                # are ledgered apart from retransmissions: parity is a
                # fixed open-loop cost, retransmission a reactive one.
                if up.fec_wire_bytes > 0:
                    trainer.ledger.record(0, -1, 0, up.fec_wire_bytes,
                                          "latent_uplink_fec",
                                          up.fec_time_s, up.parity_frames,
                                          True)
                retx_up = up.wire_bytes - costs.up_wire_bytes \
                    - up.fec_wire_bytes
                if retx_up > 0:
                    trainer.ledger.record(0, -1, 0, retx_up,
                                          "latent_uplink_retx",
                                          up.elapsed_s - timing.uplink_s
                                          - up.fec_time_s,
                                          up.retransmissions, True)
                if down.fec_wire_bytes > 0:
                    trainer.ledger.record(-1, 0, 0, down.fec_wire_bytes,
                                          "recon_downlink_fec",
                                          down.fec_time_s,
                                          down.parity_frames, True)
                retx_down = down.wire_bytes - costs.down_wire_bytes \
                    - down.fec_wire_bytes
                if retx_down > 0:
                    trainer.ledger.record(-1, 0, 0, retx_down,
                                          "recon_downlink_retx",
                                          down.elapsed_s - timing.downlink_s
                                          - down.fec_time_s,
                                          down.retransmissions, True)
                state.charge_backhaul(up.wire_bytes, down.received_wire_bytes)
                state.round_succeeded()
                state.ready_at = edge_clock[0] + agg_s + up.elapsed_s \
                    + down.elapsed_s
                completion[cluster.name].append(state.ready_at)
                cluster.history.rounds.append(record)
                cluster.rounds_completed += 1
                spend_round(budget, misses, cluster, state.ready_at,
                            miss_rounds, bus)
                if bus.wants(RoundCompleted.kind):
                    bus.emit(RoundCompleted(
                        cluster=cluster.name,
                        round=cluster.rounds_completed,
                        delivered=True, loss=record.train_loss,
                        time_s=state.ready_at,
                        battery_j=state.battery.remaining_j,
                        radio_energy_j=state.radio_energy_j))

        sim.process(edge_process())
        sim.run()
        executor.finalize()

        return ScheduleReport(
            policy=self.policy,
            total_edge_time_s=edge_busy[0],
            makespan_s=max(states[c.name].ready_at for c in self.clusters),
            rounds_per_cluster={c.name: c.rounds_completed
                                for c in self.clusters},
            final_loss_per_cluster={c.name: c.current_loss
                                    for c in self.clusters},
            deadline_misses=misses,
            deadline_miss_rounds=miss_rounds,
            retirement_reasons=retirement_reasons,
            engine="event",
            completion_times=completion,
            failed_rounds={name: st.failed_rounds
                           for name, st in states.items() if st.failed_rounds},
            dead_clusters={name: st.dead_reason
                           for name, st in states.items() if st.dead},
            energy_j={name: st.radio_energy_j
                      for name, st in states.items()},
            halted=halted[0],
            faults_applied=len(injector.applied),
            fused_rounds=executor.fused_rounds,
            segments=executor.segments,
            arq_budgets={name: st.up_channel.arq.max_retries
                         for name, st in states.items()
                         if st.up_channel is not None},
            coding_budgets={name: st.up_channel.coding.parity_frames
                            for name, st in states.items()
                            if st.up_channel is not None
                            and st.up_channel.coding is not None},
        )

    # ------------------------------------------------------------------
    # Batched engine: fleet-execute every round, then replay the policy
    # ------------------------------------------------------------------
    def _execute_batched(self, rounds_per_cluster: int,
                         groups: Tuple[Tuple[int, ...], ...]
                         ) -> List[List[RoundRecord]]:
        """Run all clusters' rounds up front, stacked group by group.

        Valid because trajectories are schedule-independent: a cluster's
        round ``r`` uses only its own weights, noise RNG and data stream.
        Each multi-member homogeneous group runs as one
        :class:`~repro.core.fleet.FleetTrainer` wave program; singleton
        groups (the unstackable rest of a mixed fleet) step their own
        trainer per round.  Returns ``records[k][r]`` for cluster ``k``,
        round ``r``.
        """
        records: List[List[RoundRecord]] = [[] for _ in self.clusters]
        for members in groups:
            if len(members) == 1:
                cluster = self.clusters[members[0]]
                rpe = cluster.rounds_per_epoch
                for round_index in range(rounds_per_cluster):
                    records[members[0]].append(cluster.trainer.step(
                        cluster.next_batch(), epoch=round_index // rpe + 1))
                continue
            group = [self.clusters[k] for k in members]
            fleet = FleetTrainer([c.trainer for c in group])
            batch_size = group[0].batch_size
            # One wave buffer, reused across rounds: every tensor the
            # wave's autograd graph retains is derived from (not
            # aliased to) it.
            wave = np.empty((len(group), batch_size, fleet.input_dim))
            rounds_per_epoch = [c.rounds_per_epoch for c in group]
            for round_index in range(rounds_per_cluster):
                for row, cluster in enumerate(group):
                    wave[row] = cluster.next_batch()
                epochs = [round_index // rpe + 1 for rpe in rounds_per_epoch]
                for row, record in enumerate(fleet.step(wave, epochs=epochs)):
                    records[members[row]].append(record)
            fleet.sync_to_trainers()
        return records

    def _static_pick_order(self, rounds_per_cluster: int
                           ) -> Optional[List[ScheduledCluster]]:
        """Precomputed pick sequence for loss-independent policies.

        ``fifo``/``deadline`` drain clusters one at a time (arrival /
        earliest-deadline order); ``round_robin`` cycles the cluster list
        (ties on ``rounds_completed`` resolve in list order, exactly as
        ``min`` does in :meth:`_pick`).  ``loss_priority`` depends on the
        evolving losses and returns None (generic replay loop).
        """
        if self.policy == "fifo":
            drain_order = list(self.clusters)
        elif self.policy == "deadline":
            drain_order = sorted(self.clusters, key=deadline_key)
        elif self.policy == "round_robin":
            return list(self.clusters) * rounds_per_cluster
        else:
            return None
        return [c for c in drain_order for _ in range(rounds_per_cluster)]

    def _replay_policy(self, rounds_per_cluster: int,
                       records: List[List[RoundRecord]],
                       engine: str) -> ScheduleReport:
        """Reproduce the sequential clock arithmetic over executed rounds.

        The policy still decides the order in which the shared edge
        serves clusters — identical picks to the sequential loop, since
        ``current_loss`` evolves from the same trajectories — but each
        "round" is now just the shared loop's clock-and-ledger
        bookkeeping over a pre-executed record.
        """
        index_of = {c.name: k for k, c in enumerate(self.clusters)}
        loop = IdealRoundLoop(self.clusters, rounds_per_cluster, self._pick,
                              self._static_pick_order(rounds_per_cluster),
                              bus=self._bus, control=self.control)
        loop.run(lambda c: records[index_of[c.name]][c.rounds_completed])
        return loop.report(self.policy, engine)


def compare_policies(make_clusters, rounds_per_cluster: int = 30,
                     policies: Sequence[str] = _POLICIES,
                     seed: int = 0,
                     engine: str = "auto") -> Dict[str, ScheduleReport]:
    """Run the same multi-cluster workload under each policy.

    ``make_clusters`` is a zero-argument callable returning a list of
    ``(name, trainer, data)`` tuples — called fresh per policy so every
    policy starts from identical initial weights.  With per-cluster data
    streams the *trajectories* are identical across policies too; what
    differs is the scheduled completion times (fairness and makespan).
    """
    reports: Dict[str, ScheduleReport] = {}
    for policy in policies:
        scheduler = EdgeTrainingScheduler(policy,
                                          rng=np.random.default_rng(seed),
                                          engine=engine)
        for name, trainer, data in make_clusters():
            scheduler.add_cluster(name, trainer, data)
        reports[policy] = scheduler.run(rounds_per_cluster)
    return reports
