"""Edge-side scheduling of many concurrent OrcoDCS training sessions.

The paper's conclusion names this as the open problem: "optimization of
training overhead on edge servers when a large number of data
aggregators need to perform training procedures of OrcoDCS".  This
module implements that layer: an :class:`EdgeTrainingScheduler` that
owns one edge compute budget and time-shares it across the orchestrated
trainers of many clusters, under pluggable policies:

* ``fifo`` — clusters train to completion in arrival order;
* ``round_robin`` — one minibatch round per cluster per cycle;
* ``loss_priority`` — the cluster with the highest current loss gets the
  next round (greedy max-improvement);
* ``deadline`` — earliest-deadline-first over per-cluster time budgets.

The scheduler advances a shared modeled clock: while the edge decodes
for one cluster, other clusters' *aggregator-side* compute and uplinks
proceed in parallel (they are independent devices), but edge compute
serialises — the contention the paper worries about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .orchestrator import OrchestratedTrainer, TrainingHistory

_POLICIES = ("fifo", "round_robin", "loss_priority", "deadline")


@dataclass
class ScheduledCluster:
    """One cluster's training session under the scheduler."""

    name: str
    trainer: OrchestratedTrainer
    data: np.ndarray
    batch_size: int = 32
    deadline_s: Optional[float] = None
    rounds_completed: int = 0
    history: TrainingHistory = None
    _cursor: int = 0

    def __post_init__(self):
        self.data = np.atleast_2d(np.asarray(self.data, dtype=float))
        if self.history is None:
            self.history = TrainingHistory(self.name)

    def next_batch(self, rng: np.random.Generator) -> np.ndarray:
        """Cycle minibatches; reshuffle at each epoch boundary."""
        if self._cursor + self.batch_size > len(self.data):
            rng.shuffle(self.data)
            self._cursor = 0
        batch = self.data[self._cursor:self._cursor + self.batch_size]
        self._cursor += self.batch_size
        return batch

    @property
    def current_loss(self) -> float:
        if not self.history.rounds:
            return float("inf")
        return self.history.rounds[-1].train_loss


@dataclass
class ScheduleReport:
    """Outcome of one scheduling run."""

    policy: str
    total_edge_time_s: float
    makespan_s: float
    rounds_per_cluster: Dict[str, int]
    final_loss_per_cluster: Dict[str, float]
    deadline_misses: List[str] = field(default_factory=list)

    @property
    def mean_final_loss(self) -> float:
        return float(np.mean(list(self.final_loss_per_cluster.values())))


class EdgeTrainingScheduler:
    """Time-shares one edge server across many cluster training sessions.

    Parameters
    ----------
    policy:
        One of ``fifo``, ``round_robin``, ``loss_priority``, ``deadline``.
    rng:
        Generator used for minibatch shuffling.
    """

    def __init__(self, policy: str = "round_robin",
                 rng: Optional[np.random.Generator] = None):
        if policy not in _POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {_POLICIES}")
        self.policy = policy
        self.rng = rng or np.random.default_rng()
        self.clusters: List[ScheduledCluster] = []

    def add_cluster(self, name: str, trainer: OrchestratedTrainer,
                    data: np.ndarray, batch_size: int = 32,
                    deadline_s: Optional[float] = None) -> ScheduledCluster:
        """Register a cluster's training session."""
        if any(c.name == name for c in self.clusters):
            raise ValueError(f"duplicate cluster name {name!r}")
        cluster = ScheduledCluster(name, trainer, data, batch_size, deadline_s)
        self.clusters.append(cluster)
        return cluster

    # ------------------------------------------------------------------
    def _pick(self, pending: List[ScheduledCluster], rounds_budget: Dict[str, int],
              clock_s: float) -> ScheduledCluster:
        if self.policy == "fifo":
            return pending[0]
        if self.policy == "round_robin":
            return min(pending, key=lambda c: c.rounds_completed)
        if self.policy == "loss_priority":
            return max(pending, key=lambda c: c.current_loss)
        # deadline: earliest deadline first; clusters without deadlines last.
        return min(pending, key=lambda c: (c.deadline_s is None,
                                           c.deadline_s or 0.0))

    def run(self, rounds_per_cluster: int = 50) -> ScheduleReport:
        """Execute training until every cluster has its round budget.

        Returns a report with edge-busy time, makespan and final losses.
        The makespan model: the edge serialises its decode work, while
        each cluster's aggregator-side compute + transfers overlap with
        other clusters' work.
        """
        if not self.clusters:
            raise RuntimeError("no clusters registered")
        if rounds_per_cluster <= 0:
            raise ValueError("rounds_per_cluster must be positive")
        budget = {c.name: rounds_per_cluster for c in self.clusters}
        edge_busy_s = 0.0
        cluster_clock: Dict[str, float] = {c.name: 0.0 for c in self.clusters}
        edge_clock = 0.0
        misses: List[str] = []

        while True:
            pending = [c for c in self.clusters if budget[c.name] > 0]
            if not pending:
                break
            cluster = self._pick(pending, budget, edge_clock)
            trainer = cluster.trainer
            before = trainer.clock_s
            record = trainer.train_round(cluster.next_batch(self.rng),
                                         epoch=cluster.rounds_completed
                                         // max(1, len(cluster.data)
                                                // cluster.batch_size) + 1)
            round_cost = trainer.clock_s - before
            timing = trainer.timing.training_round(
                cluster.batch_size, trainer.input_dim, trainer.latent_dim,
                trainer.encoder_forward_flops, trainer.decoder_forward_flops)
            # Edge is the shared resource: its compute serialises.
            edge_clock = max(edge_clock, cluster_clock[cluster.name]) \
                + timing.edge_compute_s
            edge_busy_s += timing.edge_compute_s
            # The cluster's own pipeline (aggregator compute + links)
            # proceeds in parallel with other clusters.
            cluster_clock[cluster.name] = edge_clock \
                + timing.aggregator_compute_s + timing.uplink_s \
                + timing.downlink_s
            cluster.history.rounds.append(record)
            cluster.rounds_completed += 1
            budget[cluster.name] -= 1
            if cluster.deadline_s is not None and budget[cluster.name] == 0 \
                    and cluster_clock[cluster.name] > cluster.deadline_s \
                    and cluster.name not in misses:
                misses.append(cluster.name)

        return ScheduleReport(
            policy=self.policy,
            total_edge_time_s=edge_busy_s,
            makespan_s=max(cluster_clock.values()),
            rounds_per_cluster={c.name: c.rounds_completed
                                for c in self.clusters},
            final_loss_per_cluster={c.name: c.current_loss
                                    for c in self.clusters},
            deadline_misses=misses,
        )


def compare_policies(make_clusters, rounds_per_cluster: int = 30,
                     policies: Sequence[str] = _POLICIES,
                     seed: int = 0) -> Dict[str, ScheduleReport]:
    """Run the same multi-cluster workload under each policy.

    ``make_clusters`` is a zero-argument callable returning a list of
    ``(name, trainer, data)`` tuples — called fresh per policy so every
    policy starts from identical initial weights.
    """
    reports: Dict[str, ScheduleReport] = {}
    for policy in policies:
        scheduler = EdgeTrainingScheduler(policy,
                                          rng=np.random.default_rng(seed))
        for name, trainer, data in make_clusters():
            scheduler.add_cluster(name, trainer, data)
        reports[policy] = scheduler.run(rounds_per_cluster)
    return reports
