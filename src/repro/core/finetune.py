"""Model fine-tuning under environmental drift (Sec. III-D).

The edge server periodically compares reconstructions against raw data;
when the rolling reconstruction error exceeds a threshold, the
orchestrated training procedure is relaunched on recently collected data.
This module provides the monitor, the adaptation loop and an event log
that experiments assert on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

import numpy as np

from .orchestrator import OrchestratedTrainer, TrainingHistory


class FineTuningMonitor:
    """Rolling-mean reconstruction-error monitor with retrain cooldown.

    Parameters
    ----------
    threshold:
        Error level above which retraining is requested.
    window:
        Number of recent checks averaged before comparing.
    cooldown:
        Checks to skip right after a retrain (the fresh model needs a few
        rounds before its error is meaningful).
    """

    def __init__(self, threshold: float, window: int = 5, cooldown: int = 2):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if window < 1 or cooldown < 0:
            raise ValueError("window must be >= 1 and cooldown >= 0")
        self.threshold = threshold
        self.window = window
        self.cooldown = cooldown
        self._errors: Deque[float] = deque(maxlen=window)
        self._cooldown_left = 0

    @property
    def rolling_error(self) -> Optional[float]:
        if not self._errors:
            return None
        return float(np.mean(self._errors))

    def observe(self, error: float) -> bool:
        """Record one error; returns True when a retrain should launch."""
        if error < 0:
            raise ValueError("error must be non-negative")
        self._errors.append(float(error))
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return False
        if len(self._errors) < self.window:
            return False
        if self.rolling_error > self.threshold:
            self._cooldown_left = self.cooldown
            self._errors.clear()
            return True
        return False


@dataclass
class AdaptationEvent:
    """One fine-tuning relaunch."""

    round_index: int
    trigger_error: float
    post_retrain_error: Optional[float] = None


@dataclass
class AdaptationLog:
    """Trace of an adaptation run: errors per check + retrain events."""

    check_rounds: List[int] = field(default_factory=list)
    errors: List[float] = field(default_factory=list)
    events: List[AdaptationEvent] = field(default_factory=list)

    @property
    def num_retrains(self) -> int:
        return len(self.events)

    def errors_between(self, start_round: int, end_round: int) -> List[float]:
        return [e for r, e in zip(self.check_rounds, self.errors)
                if start_round <= r < end_round]


class OnlineAdaptationLoop:
    """Drives sensing + monitoring + fine-tuning relaunches.

    Parameters
    ----------
    trainer:
        An already-initialised (typically pre-trained)
        :class:`OrchestratedTrainer`.
    monitor:
        The error monitor.
    buffer_size:
        How many recent raw rounds are retained for retraining (the
        aggregator keeps a sliding window of raw data for relaunches).
    retrain_epochs:
        Epochs per relaunch.
    """

    def __init__(self, trainer: OrchestratedTrainer, monitor: FineTuningMonitor,
                 buffer_size: int = 128, retrain_epochs: int = 3):
        if buffer_size < 1 or retrain_epochs < 1:
            raise ValueError("buffer_size and retrain_epochs must be >= 1")
        self.trainer = trainer
        self.monitor = monitor
        self.buffer: Deque[np.ndarray] = deque(maxlen=buffer_size)
        self.retrain_epochs = retrain_epochs
        self.history = TrainingHistory(trainer.name + "-adaptive")

    def observe_round(self, raw_row: np.ndarray, round_index: int,
                      log: AdaptationLog) -> float:
        """Process one periodic check: raw row vs its reconstruction.

        Returns the reconstruction error for this round and relaunches
        training when the monitor fires.
        """
        raw_row = np.asarray(raw_row, dtype=float).reshape(1, -1)
        self.buffer.append(raw_row[0])
        error = self.trainer.evaluate(raw_row)
        log.check_rounds.append(round_index)
        log.errors.append(error)
        if self.monitor.observe(error):
            event = AdaptationEvent(round_index, error)
            self._retrain()
            event.post_retrain_error = self.trainer.evaluate(raw_row)
            log.events.append(event)
        return error

    def _retrain(self) -> None:
        data = np.stack(list(self.buffer))
        self.trainer.fit(data, epochs=self.retrain_epochs,
                         batch_size=min(32, len(data)),
                         history=self.history)

    def run(self, rows: np.ndarray, check_every: int = 1) -> AdaptationLog:
        """Feed a stream of raw rounds; check every ``check_every``-th."""
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        log = AdaptationLog()
        for index, row in enumerate(rows):
            self.buffer.append(row)
            if index % check_every == 0:
                self.observe_round(row, index, log)
        return log
