"""The unified round-execution pipeline behind every scheduler engine.

Every execution engine of :class:`~repro.core.scheduler.
EdgeTrainingScheduler` ultimately runs the same per-round lifecycle:

1. **select contributors** — draw the cluster's next minibatch from its
   own stream RNG and mask out dead devices (partial-sum semantics of
   the hybrid encode);
2. **run the training step** — one orchestrated round of tensor math,
   alone (:meth:`~repro.core.orchestrator.OrchestratedTrainer.step`) or
   stacked across clusters (:meth:`~repro.core.fleet.FleetTrainer.step`);
3. **account** — charge the modeled clock, transmission ledger and (in
   the unreliable world) the aggregator battery;
4. **apply policy** — settle the shared edge clock, spend the round
   budget and check the deadline.

Before this module those four steps were written three times — in the
sequential loop, in the batched replay and inside the event engine's
kernel process.  They now live here once:

* :class:`IdealRoundLoop` is the ideal-world clock arithmetic (edge
  compute serialises, aggregator pipelines overlap) that both the
  sequential engine and the batched replay drive, differing only in
  where each round's :class:`~repro.core.orchestrator.RoundRecord`
  comes from (a live ``trainer.step`` vs a pre-executed fleet wave);
* :func:`contributor_batch` / :func:`epoch_of` / :func:`stretch_record`
  / :func:`spend_round` are the lifecycle pieces the event engine's
  kernel process shares with the ideal loop;
* :class:`InlineRoundExecutor` and :class:`SegmentedFleetExecutor` are
  the event engine's two ways of producing step 2: per-cluster autograd
  passes, or **segment batching** — between consecutive scheduled fault
  times (and whenever every attached channel is lossless) the surviving
  clusters' rounds are pre-executed as one
  :class:`~repro.core.fleet.FleetTrainer` stacked program and replayed
  into the kernel's clock, ledger and per-cluster RNG streams.

Segment batching correctness
----------------------------
The fused executor may pre-execute a round only if *nothing that feeds
its math can still change* before the kernel reaches it.  A round's math
inputs are its cluster's weights (previous round), minibatch stream,
noise RNG and alive-device mask; the first three evolve per cluster in
round order regardless of scheduling, so the only hazard is the mask —
which changes exactly at fault times.  The kernel fires a fault armed at
``t`` before resuming the edge process at any time ``>= t`` (FIFO
tie-breaking, faults armed first), so a round whose edge compute
finishes at ``f`` sees exactly the faults with ``time_s <= f``.  Hence
the planning rule: pre-execute a round iff ``f`` lies *strictly before*
the next unfired fault (:meth:`~repro.sim.faults.FaultInjector.
horizon`).  :meth:`SegmentedFleetExecutor._plan_segment` replays the
edge process's arithmetic — same picks, same floats — up to that
boundary, stopping early on battery retirement and quorum halts, which
are the only in-segment state changes.  Rounds at or past the boundary
fall back to per-cluster execution (a one-cluster wave) at their true
kernel time, after the fault has been applied.

For a fault-only scenario (no channel loss) the fused engine therefore
reproduces the unfused engine's modeled clock, transmission ledger,
report and fault audit trail bit-for-bit, and its per-cluster losses to
stacked-vs-solo GEMM reduction noise (<= 1e-9 observed; the repo-wide
equivalence budget is 1e-6) — asserted in ``tests/test_core_rounds.py``
and ``benchmarks/bench_resilience.py``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

import numpy as np

from .fleet import FleetTrainer
from .orchestrator import RoundRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guards (typing only)
    from ..sim.faults import FaultInjector
    from .scheduler import ScheduledCluster

__all__ = [
    "ScheduleReport", "IdealRoundLoop", "InlineRoundExecutor",
    "SegmentedFleetExecutor", "contributor_batch", "deadline_key",
    "epoch_of", "policy_pick", "spend_round", "stretch_record",
]


# ----------------------------------------------------------------------
# Policy pick rules — the single definition every engine and the
# segment planner share.  The fused engine's exactness contract depends
# on identical picks (including min/max tie-breaking over the pending
# list's order), so there must be exactly one copy of these keys.
# ----------------------------------------------------------------------
def deadline_key(cluster: "ScheduledCluster"):
    """Earliest-deadline-first sort key; deadline-less clusters last."""
    return (cluster.deadline_s is None, cluster.deadline_s or 0.0)


def policy_pick(policy: str, pending: List["ScheduledCluster"],
                rounds_completed_of: Callable[["ScheduledCluster"], int],
                current_loss_of: Optional[Callable] = None
                ) -> "ScheduledCluster":
    """Pick the next cluster the shared edge serves.

    ``rounds_completed_of`` abstracts where the round counts live (the
    clusters themselves, or the segment planner's shadow copies);
    ``current_loss_of`` is only consulted by ``loss_priority``.
    """
    if policy == "fifo":
        return pending[0]
    if policy == "round_robin":
        return min(pending, key=rounds_completed_of)
    if policy == "loss_priority":
        return max(pending, key=current_loss_of)
    return min(pending, key=deadline_key)


# ----------------------------------------------------------------------
# Lifecycle pieces shared by every engine
# ----------------------------------------------------------------------
def contributor_batch(cluster: "ScheduledCluster",
                      alive_mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Step 1: draw the next minibatch and mask dead contributors.

    Dead devices contribute nothing: the aggregator's stacked vector X
    is masked (partial-sum semantics of the hybrid encode with missing
    contributors).  Draws from the cluster's own ``stream_rng``, so the
    stream is independent of which engine executes the round and when.
    """
    batch = cluster.next_batch()
    if alive_mask is not None and not alive_mask.all():
        batch = batch * alive_mask
    return batch


def epoch_of(cluster: "ScheduledCluster", round_index: int) -> int:
    """Epoch label of a cluster's 0-based ``round_index``."""
    return round_index // cluster.rounds_per_epoch + 1


def stretch_record(trainer, record: RoundRecord,
                   extra_s: float) -> RoundRecord:
    """Stretch a round beyond the ideal accounting ``step()`` charged.

    Stragglers and retransmissions lengthen the modeled round; the ideal
    engines always pass ``extra_s == 0.0``.
    """
    if extra_s != 0.0:
        trainer.clock_s += extra_s
        record.time_s += extra_s
    return record


def spend_round(budget: Dict[str, int], misses: List[str],
                cluster: "ScheduledCluster", finish_s: float) -> None:
    """Step 4 tail: consume one budget slot and settle the deadline.

    The verdict fires on whichever path exhausts the budget — under the
    event engine failed rounds burn budget too, so this must run on the
    failure paths as well (the ideal engines have no failure paths, so
    their single call site is equivalent).
    """
    budget[cluster.name] -= 1
    if cluster.deadline_s is not None and budget[cluster.name] == 0 \
            and finish_s > cluster.deadline_s \
            and cluster.name not in misses:
        misses.append(cluster.name)


# ----------------------------------------------------------------------
# Run outcome
# ----------------------------------------------------------------------
@dataclass
class ScheduleReport:
    """Outcome of one scheduling run.

    ``completion_times`` maps each cluster to the *scheduled* (edge-
    contended) clock at which each of its rounds finished — the fairness
    signal policies differ on, since per-cluster trajectories themselves
    are schedule-independent.

    The event engine additionally fills the resilience fields:
    ``failed_rounds`` (rounds whose transfers exhausted their ARQ
    budget), ``dead_clusters`` (name -> reason it left the fleet),
    ``energy_j`` (aggregator backhaul radio energy actually drained)
    and ``halted`` (the quorum rule stopped the run early).
    ``fused_rounds``/``segments`` report how much of the run executed as
    stacked fleet segments (zero under the unfused executor).
    """

    policy: str
    total_edge_time_s: float
    makespan_s: float
    rounds_per_cluster: Dict[str, int]
    final_loss_per_cluster: Dict[str, float]
    deadline_misses: List[str] = field(default_factory=list)
    engine: str = "sequential"
    completion_times: Dict[str, List[float]] = field(default_factory=dict)
    failed_rounds: Dict[str, int] = field(default_factory=dict)
    dead_clusters: Dict[str, str] = field(default_factory=dict)
    energy_j: Dict[str, float] = field(default_factory=dict)
    halted: bool = False
    faults_applied: int = 0
    fused_rounds: int = 0
    segments: int = 0

    @property
    def mean_final_loss(self) -> float:
        return float(np.mean(list(self.final_loss_per_cluster.values())))

    def scheduled_time_to_loss(self, cluster_name: str,
                               losses: Sequence[float],
                               threshold: float) -> Optional[float]:
        """Scheduled seconds until ``losses`` first dips to ``threshold``.

        ``losses`` is the cluster's per-round loss trajectory (e.g.
        ``history.losses``); returns None if the threshold is never hit.
        """
        times = self.completion_times.get(cluster_name, [])
        for loss, when in zip(losses, times):
            if loss <= threshold:
                return when
        return None


# ----------------------------------------------------------------------
# Ideal-world loop (sequential engine + batched replay)
# ----------------------------------------------------------------------
class IdealRoundLoop:
    """The ideal synchronous world's clock arithmetic, engine-agnostic.

    The makespan model: the edge serialises its decode work, while each
    cluster's aggregator-side compute + transfers overlap with other
    clusters' work.  One instance runs one scheduling session; the
    engine supplies ``next_record`` — where each round's
    :class:`RoundRecord` comes from (a live ``trainer.step`` for the
    sequential engine, a pre-executed fleet wave for the batched
    replay).  Identical pick sequences + identical arithmetic is what
    makes the engines' reports interchangeable.
    """

    def __init__(self, clusters: Sequence["ScheduledCluster"],
                 rounds_per_cluster: int,
                 pick: Callable,
                 pick_order: Optional[List["ScheduledCluster"]] = None):
        self.clusters = list(clusters)
        self.pick = pick
        self.pick_order = pick_order
        self._cursor = 0
        self.budget = {c.name: rounds_per_cluster for c in self.clusters}
        self.cluster_clock = {c.name: 0.0 for c in self.clusters}
        self.completion: Dict[str, List[float]] = {c.name: []
                                                   for c in self.clusters}
        self.edge_clock = 0.0
        self.edge_busy_s = 0.0
        self.misses: List[str] = []
        self._timings = {c.name: c.trainer.round_costs(c.batch_size).timing
                         for c in self.clusters}

    def _next_cluster(self) -> Optional["ScheduledCluster"]:
        if self.pick_order is not None:
            if self._cursor >= len(self.pick_order):
                return None
            cluster = self.pick_order[self._cursor]
            self._cursor += 1
            return cluster
        pending = [c for c in self.clusters if self.budget[c.name] > 0]
        if not pending:
            return None
        return self.pick(pending, self.budget, self.edge_clock)

    def settle(self, cluster: "ScheduledCluster",
               record: RoundRecord) -> None:
        """Steps 3-4 for one executed round (ideal world)."""
        timing = self._timings[cluster.name]
        # Edge is the shared resource: its compute serialises.
        self.edge_clock = max(self.edge_clock,
                              self.cluster_clock[cluster.name]) \
            + timing.edge_compute_s
        self.edge_busy_s += timing.edge_compute_s
        # The cluster's own pipeline (aggregator compute + links)
        # proceeds in parallel with other clusters.
        self.cluster_clock[cluster.name] = self.edge_clock \
            + timing.aggregator_compute_s + timing.uplink_s \
            + timing.downlink_s
        self.completion[cluster.name].append(
            self.cluster_clock[cluster.name])
        cluster.history.rounds.append(record)
        cluster.rounds_completed += 1
        spend_round(self.budget, self.misses, cluster,
                    self.cluster_clock[cluster.name])

    def run(self, next_record: Callable[["ScheduledCluster"], RoundRecord]
            ) -> None:
        while True:
            cluster = self._next_cluster()
            if cluster is None:
                break
            self.settle(cluster, next_record(cluster))

    def report(self, policy: str, engine: str) -> ScheduleReport:
        return ScheduleReport(
            policy=policy,
            total_edge_time_s=self.edge_busy_s,
            makespan_s=max(self.cluster_clock.values()),
            rounds_per_cluster={c.name: c.rounds_completed
                                for c in self.clusters},
            final_loss_per_cluster={c.name: c.current_loss
                                    for c in self.clusters},
            deadline_misses=self.misses,
            engine=engine,
            completion_times=self.completion,
        )


# ----------------------------------------------------------------------
# Event-engine round executors
# ----------------------------------------------------------------------
class InlineRoundExecutor:
    """Per-cluster round execution: one autograd pass at its kernel time.

    The fallback for unreliable channels (loss/jitter draws make round
    outcomes channel-state-dependent, so nothing may run early) and for
    fleets the stacked program cannot express.
    """

    fused_rounds = 0
    segments = 0

    def execute(self, cluster: "ScheduledCluster", state,
                agg_s: float, extra_s: float) -> RoundRecord:
        batch = contributor_batch(cluster, state.alive_mask)
        record = cluster.trainer.step(
            batch, epoch=epoch_of(cluster, cluster.rounds_completed))
        return stretch_record(cluster.trainer, record, extra_s)

    def finalize(self) -> None:
        """Nothing pre-executed, nothing to write back."""


class SegmentedFleetExecutor:
    """Segment batching: fault-free spans run as stacked fleet waves.

    Owns one :class:`~repro.core.fleet.FleetTrainer` over the whole
    fleet and, per segment, a plan of how many rounds each surviving
    cluster completes before the next fault horizon.  Planned rounds are
    executed immediately as fleet waves over the survivors
    (:meth:`~repro.core.fleet.FleetTrainer.subset` — no parameter
    copies) and queued; the kernel's edge process then consumes them at
    the exact simulated times the unfused engine would have produced
    them.  At a fault boundary the plan ends, so the straddling round of
    each affected cluster degenerates to a one-cluster wave at its true
    kernel time — per-cluster event execution for exactly the affected
    clusters/rounds.

    Construction requirements (checked by the scheduler): every channel
    lossless, clusters fleet-compatible with one batch geometry, and a
    policy whose picks don't depend on losses — except that
    ``loss_priority`` *is* fusable when no faults are scheduled and the
    quorum rule is off, because then every cluster simply runs until its
    budget or battery ends, independent of pick order.
    """

    def __init__(self, clusters: Sequence["ScheduledCluster"],
                 states: Dict[str, object],
                 injector: "FaultInjector",
                 budget: Dict[str, int],
                 edge_clock_ref: List[float],
                 policy: str,
                 resilience) -> None:
        self.clusters = list(clusters)
        self.states = states
        self.injector = injector
        self.budget = budget
        self.edge_clock_ref = edge_clock_ref
        self.policy = policy
        self.resilience = resilience
        self.fleet = FleetTrainer([c.trainer for c in self.clusters])
        self.queues: Dict[str, deque] = {c.name: deque()
                                         for c in self.clusters}
        self.executed = {c.name: 0 for c in self.clusters}
        self.fused_rounds = 0
        self.segments = 0
        # Per-cluster per-round constants of the lossless world: round
        # timing, exact transfer times (the ideal channel's transmit is
        # pure — no RNG draws) and the backhaul radio energy one round
        # drains, mirroring _EventClusterState.charge_backhaul.
        self._costs = {}
        for cluster in self.clusters:
            state = states[cluster.name]
            costs = cluster.trainer.round_costs(cluster.batch_size)
            up = state.transmit_up(costs.up_bytes)
            down = state.transmit_down(costs.down_bytes)
            joules = (state.radio.tx_energy(up.wire_bytes * 8,
                                            state.backhaul_m)
                      + state.radio.rx_energy(down.received_wire_bytes * 8))
            self._costs[cluster.name] = (costs.timing, up.elapsed_s,
                                         down.elapsed_s, joules)

    # ------------------------------------------------------------------
    def execute(self, cluster: "ScheduledCluster", state,
                agg_s: float, extra_s: float) -> RoundRecord:
        queue = self.queues[cluster.name]
        if not queue:
            self._fill(cluster, agg_s, extra_s)
        return queue.popleft()

    def finalize(self) -> None:
        """Write fleet-trained weights/optimiser state back (run end)."""
        leftovers = {name: len(q) for name, q in self.queues.items() if q}
        if leftovers:
            raise RuntimeError(
                f"segment plan over-executed rounds never consumed by the "
                f"kernel: {leftovers} — planner/loop divergence")
        self.fleet.sync_to_trainers()

    # ------------------------------------------------------------------
    def _fill(self, current: "ScheduledCluster", agg_s: float,
              extra_s: float) -> None:
        """Plan the segment starting at ``current``'s math point, then
        pre-execute it as fleet waves."""
        stale = [name for name, q in self.queues.items() if q]
        if stale:
            raise RuntimeError(
                f"replanning with non-empty queues {stale} — planner/loop "
                "divergence")
        horizon = self.injector.horizon()
        if self.policy == "loss_priority":
            # Only reachable with no faults and no quorum (see class
            # docstring): each cluster's round count is pick-independent.
            counts = self._battery_limited_counts(current)
        else:
            counts = self._plan_segment(current, agg_s, horizon)
        self.segments += 1
        self._run_waves(counts, {current.name: extra_s})

    def _battery_limited_counts(self, current: "ScheduledCluster"
                                ) -> Dict[str, int]:
        """Rounds each cluster completes when nothing couples the fleet.

        With no fault horizon and no quorum rule, a cluster trains until
        its budget ends or its battery's per-round backhaul drain fails
        (that round still completes — retirement lands after
        ``charge_backhaul``), independent of every other cluster.
        """
        counts = {}
        for cluster in self.clusters:
            state = self.states[cluster.name]
            if state.dead or self.budget[cluster.name] <= 0:
                counts[cluster.name] = 0
                continue
            joules = self._costs[cluster.name][3]
            remaining = state.battery.remaining_j
            rounds = 0
            while rounds < self.budget[cluster.name]:
                rounds += 1
                if joules > remaining + 1e-18:  # Battery.drain's verdict
                    break
                remaining -= joules
            counts[cluster.name] = rounds
        return counts

    def _plan_segment(self, current: "ScheduledCluster", agg_s: float,
                      horizon: float) -> Dict[str, int]:
        """Dry-run the edge process's arithmetic up to the fault horizon.

        Mirrors the kernel loop float-for-float over shadow copies of
        the mutable scalars (edge clock, ready times, budgets, battery
        levels, death flags) so the planned rounds are exactly the ones
        the kernel will commit.  No fault fires inside the window by
        construction; the only in-segment state changes are battery
        retirements and the quorum halt, both replicated here.
        """
        states = self.states
        edge_clock = self.edge_clock_ref[0]
        ready = {c.name: states[c.name].ready_at for c in self.clusters}
        dead = {c.name: states[c.name].dead for c in self.clusters}
        battery = {c.name: states[c.name].battery.remaining_j
                   for c in self.clusters}
        budget = dict(self.budget)
        rounds_completed = {c.name: c.rounds_completed
                            for c in self.clusters}
        counts = {c.name: 0 for c in self.clusters}
        quorum = self.resilience.quorum
        total = len(self.clusters)

        def charge(name: str) -> None:
            joules = self._costs[name][3]
            if joules > battery[name] + 1e-18:   # Battery.drain's verdict
                battery[name] = 0.0
                dead[name] = True
            else:
                battery[name] -= joules

        # The requesting cluster sits at its math point: its edge
        # compute is already on the clock (edge_clock_ref reflects it),
        # faults up to now have fired, and its round is unconditionally
        # safe.  Finish its bookkeeping with the caller's pick-time
        # agg_s, then walk the loop.
        name = current.name
        up_s, down_s = self._costs[name][1], self._costs[name][2]
        ready[name] = edge_clock + agg_s + up_s + down_s
        counts[name] = 1
        budget[name] -= 1
        rounds_completed[name] += 1
        charge(name)

        while True:
            alive = [c for c in self.clusters if not dead[c.name]]
            if quorum > 0.0 and total and len(alive) / total < quorum:
                break
            pending = [c for c in alive if budget[c.name] > 0]
            if not pending:
                break
            cluster = policy_pick(self.policy, pending,
                                  lambda c: rounds_completed[c.name])
            name = cluster.name
            timing, up_s, down_s, _ = self._costs[name]
            start = max(edge_clock, ready[name])
            finish = start + timing.edge_compute_s
            if not finish < horizon:
                # A fault armed at exactly `finish` fires before the
                # kernel resumes the edge process there, so this round's
                # mask may change: it (and everything after — the edge
                # clock is monotone) must run per-cluster at its true
                # kernel time.
                break
            edge_clock = finish
            agg = timing.aggregator_compute_s * states[name].slow_factor
            ready[name] = edge_clock + agg + up_s + down_s
            counts[name] += 1
            budget[name] -= 1
            rounds_completed[name] += 1
            charge(name)
        return counts

    def _run_waves(self, counts: Dict[str, int],
                   first_extra: Dict[str, float]) -> None:
        """Pre-execute the planned rounds as stacked fleet waves.

        Wave ``w`` trains every cluster with more than ``w`` planned
        rounds, through a parameter-sharing
        :meth:`~repro.core.fleet.FleetTrainer.subset` of the survivors;
        per-cluster draw order (minibatch stream, noise RNG) and clock/
        ledger arithmetic match a per-round execution exactly.
        """
        states = self.states
        remaining = dict(counts)
        while True:
            active = [k for k, c in enumerate(self.clusters)
                      if remaining[c.name] > 0]
            if not active:
                break
            batch_size = self.clusters[active[0]].batch_size
            stack = np.empty((len(active), batch_size, self.fleet.input_dim))
            epochs = []
            for row, k in enumerate(active):
                cluster = self.clusters[k]
                stack[row] = contributor_batch(
                    cluster, states[cluster.name].alive_mask)
                epochs.append(epoch_of(cluster,
                                       self.executed[cluster.name]))
            if len(active) == len(self.clusters):
                # Full-fleet wave: the unsliced program (allocation-free
                # optimiser fast path); value-identical to the gathered
                # subset, the common case between faults.
                records = self.fleet.step(stack, epochs=epochs)
            else:
                records = self.fleet.subset(active).step(stack, epochs=epochs)
            for row, k in enumerate(active):
                cluster = self.clusters[k]
                name = cluster.name
                if name in first_extra:
                    extra = first_extra.pop(name)
                else:
                    timing, up_s, down_s, _ = self._costs[name]
                    agg = timing.aggregator_compute_s \
                        * states[name].slow_factor
                    # Same expression as the kernel loop computes at the
                    # round's pick time; the transfer terms are exact
                    # zeros on the lossless path.
                    extra = ((agg - timing.aggregator_compute_s)
                             + (up_s - timing.uplink_s)
                             + (down_s - timing.downlink_s))
                self.queues[name].append(
                    stretch_record(cluster.trainer, records[row], extra))
                self.executed[name] += 1
                remaining[name] -= 1
                self.fused_rounds += 1
