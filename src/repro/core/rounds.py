"""The unified round-execution pipeline behind every scheduler engine.

Every execution engine of :class:`~repro.core.scheduler.
EdgeTrainingScheduler` ultimately runs the same per-round lifecycle:

1. **select contributors** — draw the cluster's next minibatch from its
   own stream RNG and mask out dead devices (partial-sum semantics of
   the hybrid encode);
2. **run the training step** — one orchestrated round of tensor math,
   alone (:meth:`~repro.core.orchestrator.OrchestratedTrainer.step`) or
   stacked across clusters (:meth:`~repro.core.fleet.FleetTrainer.step`);
3. **account** — charge the modeled clock, transmission ledger and (in
   the unreliable world) the aggregator battery;
4. **apply policy** — settle the shared edge clock, spend the round
   budget and check the deadline.

Before this module those four steps were written three times — in the
sequential loop, in the batched replay and inside the event engine's
kernel process.  They now live here once:

* :class:`IdealRoundLoop` is the ideal-world clock arithmetic (edge
  compute serialises, aggregator pipelines overlap) that both the
  sequential engine and the batched replay drive, differing only in
  where each round's :class:`~repro.core.orchestrator.RoundRecord`
  comes from (a live ``trainer.step`` vs a pre-executed fleet wave);
* :func:`contributor_batch` / :func:`epoch_of` / :func:`stretch_record`
  / :func:`spend_round` are the lifecycle pieces the event engine's
  kernel process shares with the ideal loop;
* :class:`InlineRoundExecutor` and :class:`SegmentedFleetExecutor` are
  the event engine's two ways of producing step 2: per-cluster autograd
  passes, or **segment batching** — between consecutive scheduled fault
  times the surviving clusters' rounds are pre-executed as
  :class:`~repro.core.fleet.FleetTrainer` stacked programs (one per
  homogeneous cluster group) and replayed into the kernel's clock,
  ledger and per-cluster RNG streams.

Segment batching correctness
----------------------------
The fused executor may pre-execute a round only if *nothing that feeds
its math can still change* before the kernel reaches it.  A round's math
inputs are its cluster's weights (previous round), minibatch stream,
noise RNG and alive-device mask; the first three evolve per cluster in
round order regardless of scheduling, so the only hazard is the mask —
which changes exactly at fault times.  The kernel fires a fault armed at
``t`` before resuming the edge process at any time ``>= t`` (FIFO
tie-breaking, faults armed first), so a round whose edge compute
finishes at ``f`` sees exactly the faults with ``time_s <= f``.  Hence
the planning rule: pre-execute a round iff ``f`` lies *strictly before*
the next unfired fault (:meth:`~repro.sim.faults.FaultInjector.
horizon`).  :meth:`SegmentedFleetExecutor._plan_segment` replays the
edge process's arithmetic — same picks, same floats — up to that
boundary, stopping early on battery retirement and quorum halts.
Rounds at or past the boundary fall back to per-cluster execution (a
one-cluster wave) at their true kernel time, after the fault has been
applied.

Channel randomness is folded into the same rule by making it a
*replayable input*: the scheduler pre-samples each unreliable channel's
whole horizon of transmit outcomes into
:class:`~repro.sim.channel.ChannelTrace`\\ s (bit-identical to the live
draws under the same seed, because a channel's draw sequence depends
only on its own RNG, never on the simulated clock) and the planner
reads delivered verdicts, attempts, retransmission wire bytes and
elapsed stretches straight from the traces.  Erasure-coded channels
(:mod:`repro.sim.coding` — FEC parity frames, hybrid ARQ repair) need
no special handling: a coded transmission is deterministic given its
trace entry, so coded lossy runs fuse under exactly the same contract.  A lossy round is therefore
plan-time computable: failed rounds are walked through exactly as the
kernel will process them inline (budget burned, battery charged,
failure streaks advanced, no training update), and successful rounds
carry their planner-priced clock stretch into the wave.  For the
loss-coupled ``loss_priority`` policy the planner cannot mirror picks,
so it plans **wave-by-wave** (:meth:`SegmentedFleetExecutor._plan_wave`)
— fusing, per cluster, the earliest-consumed prefix of rounds a sound
bound proves consumed strictly before the horizon (a terminality
argument extends the proof to quorum-guarded fleets), and leaving the
rest to execute inline and re-plan at their next request.

A fused run — fault-only, lossy-but-faultless, or lossy-with-faults
under an uncoupled policy — therefore reproduces the unfused engine's
modeled clock, transmission ledger, delivered/attempt counts, report
and fault audit trail bit-for-bit, and its per-cluster losses to
stacked-vs-solo GEMM reduction noise (<= 1e-9 observed; the repo-wide
equivalence budget is 1e-6) — asserted in ``tests/test_core_rounds.py``
and ``benchmarks/bench_resilience.py``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..obs.telemetry import (
    NULL_BUS, DeadlineMissed, RoundCompleted, SegmentFused, WavePlanned,
)
from ..sim.channel import TransmitResult, ideal_transmit_result
from .fleet import FleetTrainer
from .orchestrator import RoundRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guards (typing only)
    from ..obs.telemetry import TelemetryBus
    from ..sim.faults import FaultInjector
    from .scheduler import ScheduledCluster

__all__ = [
    "ScheduleReport", "IdealRoundLoop", "InlineRoundExecutor",
    "SegmentedFleetExecutor", "contributor_batch", "deadline_key",
    "epoch_of", "policy_pick", "spend_round", "stretch_record",
]


# ----------------------------------------------------------------------
# Policy pick rules — the single definition every engine and the
# segment planner share.  The fused engine's exactness contract depends
# on identical picks (including min/max tie-breaking over the pending
# list's order), so there must be exactly one copy of these keys.
# ----------------------------------------------------------------------
def deadline_key(cluster: "ScheduledCluster"):
    """Earliest-deadline-first sort key; deadline-less clusters last."""
    return (cluster.deadline_s is None, cluster.deadline_s or 0.0)


def policy_pick(policy: str, pending: List["ScheduledCluster"],
                rounds_completed_of: Callable[["ScheduledCluster"], int],
                current_loss_of: Optional[Callable] = None
                ) -> "ScheduledCluster":
    """Pick the next cluster the shared edge serves.

    ``rounds_completed_of`` abstracts where the round counts live (the
    clusters themselves, or the segment planner's shadow copies);
    ``current_loss_of`` is only consulted by ``loss_priority``.
    """
    if policy == "fifo":
        return pending[0]
    if policy == "round_robin":
        return min(pending, key=rounds_completed_of)
    if policy == "loss_priority":
        return max(pending, key=current_loss_of)
    return min(pending, key=deadline_key)


# ----------------------------------------------------------------------
# Lifecycle pieces shared by every engine
# ----------------------------------------------------------------------
def contributor_batch(cluster: "ScheduledCluster",
                      alive_mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Step 1: draw the next minibatch and mask dead contributors.

    Dead devices contribute nothing: the aggregator's stacked vector X
    is masked (partial-sum semantics of the hybrid encode with missing
    contributors).  Draws from the cluster's own ``stream_rng``, so the
    stream is independent of which engine executes the round and when.
    """
    batch = cluster.next_batch()
    if alive_mask is not None and not alive_mask.all():
        batch = batch * alive_mask
    return batch


def epoch_of(cluster: "ScheduledCluster", round_index: int) -> int:
    """Epoch label of a cluster's 0-based ``round_index``."""
    return round_index // cluster.rounds_per_epoch + 1


def stretch_record(trainer, record: RoundRecord,
                   extra_s: float) -> RoundRecord:
    """Stretch a round beyond the ideal accounting ``step()`` charged.

    Stragglers and retransmissions lengthen the modeled round; the ideal
    engines always pass ``extra_s == 0.0``.
    """
    if extra_s != 0.0:
        trainer.clock_s += extra_s
        record.time_s += extra_s
    return record


def spend_round(budget: Dict[str, int], misses: List[str],
                cluster: "ScheduledCluster", finish_s: float,
                miss_rounds: Optional[Dict[str, int]] = None,
                bus: "TelemetryBus" = NULL_BUS) -> None:
    """Step 4 tail: consume one budget slot and settle the deadline.

    The verdict fires on whichever path exhausts the budget — under the
    event engine failed rounds burn budget too, so this must run on the
    failure paths as well (the ideal engines have no failure paths, so
    their single call site is equivalent).

    ``miss_rounds`` (when passed) additionally records the *first*
    round each cluster finished past its deadline — any round, not just
    the budget-exhausting one, so clusters that retire early still
    report when they went late.  That first-late verdict also emits a
    :class:`~repro.obs.telemetry.DeadlineMissed` event on ``bus``; the
    existing ``misses`` semantics (final round late) are untouched.
    """
    budget[cluster.name] -= 1
    if cluster.deadline_s is None or finish_s <= cluster.deadline_s:
        return
    if miss_rounds is not None and cluster.name not in miss_rounds:
        miss_rounds[cluster.name] = cluster.rounds_completed
        if bus.wants(DeadlineMissed.kind):
            bus.emit(DeadlineMissed(cluster=cluster.name,
                                    round=cluster.rounds_completed,
                                    finish_s=finish_s,
                                    deadline_s=cluster.deadline_s))
    if budget[cluster.name] == 0 and cluster.name not in misses:
        misses.append(cluster.name)


# ----------------------------------------------------------------------
# Run outcome
# ----------------------------------------------------------------------
@dataclass
class ScheduleReport:
    """Outcome of one scheduling run.

    ``completion_times`` maps each cluster to the *scheduled* (edge-
    contended) clock at which each of its rounds finished — the fairness
    signal policies differ on, since per-cluster trajectories themselves
    are schedule-independent.

    The event engine additionally fills the resilience fields:
    ``failed_rounds`` (rounds whose transfers exhausted their ARQ
    budget), ``dead_clusters`` (name -> reason it left the fleet),
    ``energy_j`` (aggregator backhaul radio energy actually drained)
    and ``halted`` (the quorum rule stopped the run early).
    ``fused_rounds``/``segments`` report how much of the run executed as
    stacked fleet segments (zero under the unfused executor);
    ``arq_budgets`` records each cluster's final per-frame
    retransmission budget (meaningful under adaptive ARQ, where fault
    applications re-derive it mid-run); ``coding_budgets`` records each
    cluster's erasure-coding *uplink* parity budget ``k`` (meaningful
    when the resilience policy selects ``recovery="fec"|"hybrid"`` and
    derives ``k`` per cluster and link direction from observed loss,
    message frame count and battery headroom).

    ``deadline_miss_rounds`` maps each cluster to its rounds-completed
    count at the *first* round finishing past its deadline — unlike
    ``deadline_misses`` (final round late) it also covers clusters
    that retire before exhausting their budget, the signal
    scheduler-level deadline renegotiation needs.
    ``retirement_reasons`` counts retirements by reason (the
    aggregation of ``dead_clusters``).  Both are populated from the
    telemetry bus's ``DeadlineMissed``/``ClusterRetired`` events.
    """

    policy: str
    total_edge_time_s: float
    makespan_s: float
    rounds_per_cluster: Dict[str, int]
    final_loss_per_cluster: Dict[str, float]
    deadline_misses: List[str] = field(default_factory=list)
    deadline_miss_rounds: Dict[str, int] = field(default_factory=dict)
    retirement_reasons: Dict[str, int] = field(default_factory=dict)
    engine: str = "sequential"
    completion_times: Dict[str, List[float]] = field(default_factory=dict)
    failed_rounds: Dict[str, int] = field(default_factory=dict)
    dead_clusters: Dict[str, str] = field(default_factory=dict)
    energy_j: Dict[str, float] = field(default_factory=dict)
    halted: bool = False
    faults_applied: int = 0
    fused_rounds: int = 0
    segments: int = 0
    arq_budgets: Dict[str, int] = field(default_factory=dict)
    coding_budgets: Dict[str, int] = field(default_factory=dict)
    #: Analytic ensemble mode (``engine="analytic"``) only: the report
    #: carries *expectations*, not samples.  ``delivered_rounds`` holds
    #: the un-rounded expected success count per cluster,
    #: ``lifetime_rounds`` the expected attempted rounds the aggregator
    #: battery sustains (``inf`` when energy-free), and
    #: ``deadline_miss_probability`` the normal-approximation odds a
    #: cluster's pipeline span overruns its deadline.
    expected_values: bool = False
    delivered_rounds: Dict[str, float] = field(default_factory=dict)
    lifetime_rounds: Dict[str, float] = field(default_factory=dict)
    deadline_miss_probability: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_final_loss(self) -> float:
        return float(np.mean(list(self.final_loss_per_cluster.values())))

    def scheduled_time_to_loss(self, cluster_name: str,
                               losses: Sequence[float],
                               threshold: float) -> Optional[float]:
        """Scheduled seconds until ``losses`` first dips to ``threshold``.

        ``losses`` is the cluster's per-round loss trajectory (e.g.
        ``history.losses``); returns None if the threshold is never hit.
        """
        times = self.completion_times.get(cluster_name, [])
        for loss, when in zip(losses, times):
            if loss <= threshold:
                return when
        return None


def merge_schedule_reports(reports: Dict[str, "ScheduleReport"]
                           ) -> "ScheduleReport":
    """Fold per-fleet reports into one fleet-level report.

    ``reports`` maps a fleet name to its report; per-cluster keys are
    prefixed ``"<fleet>/<cluster>"`` so heterogeneous fleets never
    collide.  The fold is **order-independent** by construction — fleet
    names are sorted before merging, so the shard executor produces the
    same merged report no matter which worker finished first.  Scalars
    compose as a concurrent-fleet model: edge time and fault/fusion
    counters sum (each fleet owns an edge), the makespan is the slowest
    fleet's, ``halted``/``expected_values`` are any-of.
    """
    if not reports:
        raise ValueError("no reports to merge")
    ordered = [(name, reports[name]) for name in sorted(reports)]
    merged = ScheduleReport(
        policy="+".join(sorted({r.policy for _, r in ordered})),
        total_edge_time_s=sum(r.total_edge_time_s for _, r in ordered),
        makespan_s=max(r.makespan_s for _, r in ordered),
        rounds_per_cluster={},
        final_loss_per_cluster={},
        engine="sharded[" + "+".join(sorted({r.engine
                                             for _, r in ordered})) + "]",
        halted=any(r.halted for _, r in ordered),
        faults_applied=sum(r.faults_applied for _, r in ordered),
        fused_rounds=sum(r.fused_rounds for _, r in ordered),
        segments=sum(r.segments for _, r in ordered),
        expected_values=any(r.expected_values for _, r in ordered),
    )
    per_cluster = ("rounds_per_cluster", "final_loss_per_cluster",
                   "deadline_miss_rounds", "completion_times",
                   "failed_rounds", "dead_clusters", "energy_j",
                   "arq_budgets", "coding_budgets", "delivered_rounds",
                   "lifetime_rounds", "deadline_miss_probability")
    for fleet, report in ordered:
        for field_name in per_cluster:
            target = getattr(merged, field_name)
            for cluster, value in getattr(report, field_name).items():
                target[f"{fleet}/{cluster}"] = value
        merged.deadline_misses.extend(f"{fleet}/{name}"
                                      for name in report.deadline_misses)
        for reason, count in report.retirement_reasons.items():
            merged.retirement_reasons[reason] = (
                merged.retirement_reasons.get(reason, 0) + count)
    return merged


# ----------------------------------------------------------------------
# Ideal-world loop (sequential engine + batched replay)
# ----------------------------------------------------------------------
class IdealRoundLoop:
    """The ideal synchronous world's clock arithmetic, engine-agnostic.

    The makespan model: the edge serialises its decode work, while each
    cluster's aggregator-side compute + transfers overlap with other
    clusters' work.  One instance runs one scheduling session; the
    engine supplies ``next_record`` — where each round's
    :class:`RoundRecord` comes from (a live ``trainer.step`` for the
    sequential engine, a pre-executed fleet wave for the batched
    replay).  Identical pick sequences + identical arithmetic is what
    makes the engines' reports interchangeable.
    """

    def __init__(self, clusters: Sequence["ScheduledCluster"],
                 rounds_per_cluster: int,
                 pick: Callable,
                 pick_order: Optional[List["ScheduledCluster"]] = None,
                 bus: "TelemetryBus" = NULL_BUS,
                 control=None):
        self.clusters = list(clusters)
        self.pick = pick
        self.pick_order = pick_order
        self.bus = bus
        self.control = control
        self._cursor = 0
        self.budget = {c.name: rounds_per_cluster for c in self.clusters}
        self.cluster_clock = {c.name: 0.0 for c in self.clusters}
        self.completion: Dict[str, List[float]] = {c.name: []
                                                   for c in self.clusters}
        self.edge_clock = 0.0
        self.edge_busy_s = 0.0
        self.misses: List[str] = []
        self.miss_rounds: Dict[str, int] = {}
        self._timings = {c.name: c.trainer.round_costs(c.batch_size).timing
                         for c in self.clusters}

    def _next_cluster(self) -> Optional["ScheduledCluster"]:
        if self.pick_order is not None:
            if self._cursor >= len(self.pick_order):
                return None
            cluster = self.pick_order[self._cursor]
            self._cursor += 1
            return cluster
        pending = [c for c in self.clusters if self.budget[c.name] > 0]
        if not pending:
            return None
        return self.pick(pending, self.budget, self.edge_clock)

    def settle(self, cluster: "ScheduledCluster",
               record: RoundRecord) -> None:
        """Steps 3-4 for one executed round (ideal world)."""
        timing = self._timings[cluster.name]
        # Edge is the shared resource: its compute serialises.
        self.edge_clock = max(self.edge_clock,
                              self.cluster_clock[cluster.name]) \
            + timing.edge_compute_s
        self.edge_busy_s += timing.edge_compute_s
        # The cluster's own pipeline (aggregator compute + links)
        # proceeds in parallel with other clusters.
        self.cluster_clock[cluster.name] = self.edge_clock \
            + timing.aggregator_compute_s + timing.uplink_s \
            + timing.downlink_s
        self.completion[cluster.name].append(
            self.cluster_clock[cluster.name])
        cluster.history.rounds.append(record)
        cluster.rounds_completed += 1
        spend_round(self.budget, self.misses, cluster,
                    self.cluster_clock[cluster.name],
                    self.miss_rounds, self.bus)
        if self.bus.wants(RoundCompleted.kind):
            self.bus.emit(RoundCompleted(
                cluster=cluster.name, round=cluster.rounds_completed,
                delivered=True, loss=record.train_loss,
                time_s=self.cluster_clock[cluster.name]))

    def run(self, next_record: Callable[["ScheduledCluster"], RoundRecord]
            ) -> None:
        control = self.control
        while True:
            # Between-round control checkpoint (pause/cancel only on the
            # ideal engines): one boolean read per round when idle.
            if control is not None and not control.ideal_checkpoint(self):
                break
            cluster = self._next_cluster()
            if cluster is None:
                break
            self.settle(cluster, next_record(cluster))

    def report(self, policy: str, engine: str) -> ScheduleReport:
        return ScheduleReport(
            policy=policy,
            total_edge_time_s=self.edge_busy_s,
            makespan_s=max(self.cluster_clock.values()),
            rounds_per_cluster={c.name: c.rounds_completed
                                for c in self.clusters},
            final_loss_per_cluster={c.name: c.current_loss
                                    for c in self.clusters},
            deadline_misses=self.misses,
            deadline_miss_rounds=dict(self.miss_rounds),
            engine=engine,
            completion_times=self.completion,
        )


# ----------------------------------------------------------------------
# Event-engine round executors
# ----------------------------------------------------------------------
class InlineRoundExecutor:
    """Per-cluster round execution: one autograd pass at its kernel time.

    The fallback whenever nothing may run early: segment batching
    disabled, no stackable cluster group, or channels whose draw stream
    cannot be re-recorded at a fault's budget re-derivation boundary
    (jittered or scalar-fallback loss models — see
    :attr:`~repro.sim.channel.ChannelSpec.rerecordable`).
    """

    fused_rounds = 0
    segments = 0

    def execute(self, cluster: "ScheduledCluster", state,
                agg_s: float, extra_s: float) -> RoundRecord:
        batch = contributor_batch(cluster, state.alive_mask)
        record = cluster.trainer.step(
            batch, epoch=epoch_of(cluster, cluster.rounds_completed))
        return stretch_record(cluster.trainer, record, extra_s)

    def charge_failure(self, cluster: "ScheduledCluster",
                       charge_s: float) -> None:
        """A failed round's modeled time lands on the cluster clock."""
        cluster.trainer.clock_s += charge_s

    def outstanding(self) -> int:
        """Pre-executed rounds not yet consumed — always zero inline."""
        return 0

    def finalize(self) -> None:
        """Nothing pre-executed, nothing to write back."""


class _PlanCursor:
    """The planner's forward view of one cluster's remaining rounds.

    Snapshots the cluster's live world state (budget, battery, failure
    streak, trace positions) at plan time and advances it round by
    round, reading each round's transmit outcomes from the recorded
    channel traces (or the ideal closed-form results on lossless
    links).  Every transition mirrors the kernel loop's arithmetic
    float for float — :meth:`charge` is ``charge_backhaul``,
    :meth:`apply` is the budget/streak/retirement bookkeeping — so the
    rounds the planner prices are exactly the rounds the kernel will
    commit.
    """

    __slots__ = ("executor", "name", "timing", "agg_s", "budget", "battery",
                 "dead", "consec", "ready", "rounds_completed", "up_idx",
                 "down_idx")

    def __init__(self, executor: "SegmentedFleetExecutor",
                 cluster: "ScheduledCluster", state) -> None:
        self.executor = executor
        self.name = cluster.name
        self.timing = executor._costs[cluster.name]
        self.agg_s = self.timing.aggregator_compute_s * state.slow_factor
        self.budget = executor.budget[cluster.name]
        self.battery = state.battery.remaining_j
        self.dead = state.dead
        self.consec = state.consecutive_failures
        self.ready = state.ready_at
        self.rounds_completed = cluster.rounds_completed
        self.up_idx, self.down_idx = executor._cursors(cluster.name)

    @property
    def pending(self) -> bool:
        return not self.dead and self.budget > 0

    # -- next-round outcome (peeked from the traces, not yet applied) --
    def peek(self):
        """``(kind, up, down)`` of this cluster's next trace round."""
        up = self.executor._up_entry(self.name, self.up_idx)
        if not up.delivered:
            return "fail_up", up, None
        down = self.executor._down_entry(self.name, self.down_idx)
        return ("success" if down.delivered else "fail_down"), up, down

    def span(self, kind: str, up, down) -> float:
        """Upper bound on how much a round can push the fleet's clocks."""
        if kind == "fail_up":
            return self.agg_s + up.elapsed_s
        return (self.timing.edge_compute_s + self.agg_s + up.elapsed_s
                + down.elapsed_s)

    def extra(self, up, down) -> float:
        """The round's stretch beyond ideal accounting — the same
        expression, in the same order, as the kernel loop computes."""
        return ((self.agg_s - self.timing.aggregator_compute_s)
                + (up.elapsed_s - self.timing.uplink_s)
                + (down.elapsed_s - self.timing.downlink_s))

    def fail_charge(self, kind: str, up, down) -> float:
        """A failed round's cluster-clock charge — the kernel loop's
        expression, in its order, so replay is float-exact."""
        if kind == "fail_up":
            return self.agg_s + up.elapsed_s
        return (self.agg_s + up.elapsed_s + self.timing.edge_compute_s
                + down.elapsed_s)

    # -- state transitions (order-independent per cluster) -------------
    def charge(self, tx_wire_bytes: int, rx_wire_bytes: int) -> None:
        """Mirror of ``_EventClusterState.charge_backhaul``."""
        state = self.executor.states[self.name]
        joules = (state.radio.tx_energy(tx_wire_bytes * 8, state.backhaul_m)
                  + state.radio.rx_energy(rx_wire_bytes * 8))
        if joules > self.battery + 1e-18:   # Battery.drain's verdict
            self.battery = 0.0
            self.dead = True
        else:
            self.battery -= joules

    def apply(self, kind: str, up, down) -> None:
        """Advance past one peeked round (budget, battery, streaks)."""
        self.budget -= 1
        self.up_idx += 1
        if kind == "fail_up":
            self.charge(up.wire_bytes, 0)
            self._fail()
            return
        self.down_idx += 1
        self.charge(up.wire_bytes, down.received_wire_bytes)
        if kind == "fail_down":
            self._fail()
        else:
            self.consec = 0
            self.rounds_completed += 1

    def _fail(self) -> None:
        self.consec += 1
        if self.consec >= self.executor.resilience.max_consecutive_failures:
            self.dead = True

    def seed_current(self, edge_clock: float, agg_s: float) -> None:
        """Account the requesting cluster's already-committed round.

        The kernel has transmitted (trace cursors are past this round's
        entries) and put its edge compute on the clock; battery charge,
        budget spend and the ready push land after ``execute`` returns,
        so the planner mirrors them here with the *actual* consumed
        outcomes.
        """
        up = self.executor._up_entry(self.name, self.up_idx - 1)
        down = self.executor._down_entry(self.name, self.down_idx - 1)
        self.ready = edge_clock + agg_s + up.elapsed_s + down.elapsed_s
        self.budget -= 1
        self.consec = 0
        self.rounds_completed += 1
        self.charge(up.wire_bytes, down.received_wire_bytes)


class SegmentedFleetExecutor:
    """Segment batching: channel-safe spans run as stacked fleet waves.

    Owns one :class:`~repro.core.fleet.FleetTrainer` per homogeneous
    cluster group (heterogeneous fleets stack group by group; a
    one-cluster group executes its trainer directly) and, per plan, a
    list of how many rounds each surviving cluster completes before the
    next fault horizon.  Planned rounds are executed immediately as
    fleet waves over the survivors (:meth:`~repro.core.fleet.
    FleetTrainer.subset` — no parameter copies) and queued; the
    kernel's edge process then consumes them at the exact simulated
    times the unfused engine would have produced them.

    Channel randomness is not a barrier: lossy channels are pre-sampled
    into :class:`~repro.sim.channel.ChannelTrace`\\ s by the scheduler,
    so the planner prices every round's delivered verdict, attempts,
    retransmission energy and clock stretch at plan time, and failed
    rounds (budget burned, no update) are walked through exactly as the
    kernel will process them inline.

    Two planning modes:

    * ``segment`` (``fifo``/``round_robin``/``deadline``): the picks are
      loss-independent, so :meth:`_plan_segment` dry-runs the kernel
      loop float-for-float up to the fault horizon and pre-executes that
      exact prefix; straddling rounds degenerate to one-cluster waves at
      their true kernel times.
    * ``wave`` (``loss_priority``): picks depend on losses the planner
      cannot foresee, but per-cluster round *math* is pick-independent,
      so :meth:`_plan_wave` pre-executes, per cluster, the
      earliest-consumed prefix of rounds a sound bound proves consumed
      strictly before the next fault (all of them when the horizon is
      clear), leaving the rest to run inline and re-plan at their next
      request.  A terminality argument extends the proof to
      quorum-guarded fleets: fusion is admitted only when the alive
      count after every remaining round still satisfies the quorum, so
      the halt provably cannot trip inside the fused window.
    """

    def __init__(self, clusters: Sequence["ScheduledCluster"],
                 states: Dict[str, object],
                 injector: "FaultInjector",
                 budget: Dict[str, int],
                 edge_clock_ref: List[float],
                 policy: str,
                 resilience,
                 groups: Optional[Sequence[Sequence[int]]] = None,
                 mode: str = "segment",
                 bus: "TelemetryBus" = NULL_BUS,
                 command_gate: Optional[Callable[[], bool]] = None) -> None:
        if mode not in ("segment", "wave"):
            raise ValueError(f"unknown planning mode {mode!r}")
        self.bus = bus
        # Control-plane seam: while ``command_gate()`` reports a pending
        # runtime command, planners clamp to the requesting round only
        # ("command-pending" bound) so pre-executed work drains and the
        # command can apply at an outstanding==0 round boundary.  With
        # no commands ever submitted the gate never fires and planning
        # is byte-identical to a gate-less run.
        self.command_gate = command_gate
        self.clusters = list(clusters)
        self.states = states
        self.injector = injector
        self.budget = budget
        self.edge_clock_ref = edge_clock_ref
        self.policy = policy
        self.resilience = resilience
        self.mode = mode
        if groups is None:
            groups = [tuple(range(len(self.clusters)))]
        self.group_fleets = [
            (list(members),
             FleetTrainer([self.clusters[k].trainer for k in members])
             if len(members) >= 2 else None)
            for members in groups]
        self.queues: Dict[str, deque] = {c.name: deque()
                                         for c in self.clusters}
        # Planned failed rounds whose clock charge was pre-applied in
        # sequence order; the kernel's inline failure handling pops
        # these instead of charging twice.
        self.fail_queues: Dict[str, deque] = {c.name: deque()
                                              for c in self.clusters}
        self.executed = {c.name: 0 for c in self.clusters}
        self.fused_rounds = 0
        self.segments = 0
        # Per-cluster constants: round timing plus the ideal channel's
        # closed-form transmit outcomes (the same pricing the channel
        # kernel's clean path reports), the planner's stand-in wherever
        # no trace is attached.
        self._costs: Dict[str, object] = {}
        self._ideal_up: Dict[str, TransmitResult] = {}
        self._ideal_down: Dict[str, TransmitResult] = {}
        for cluster in self.clusters:
            costs = cluster.trainer.round_costs(cluster.batch_size)
            timing = cluster.trainer.timing
            self._costs[cluster.name] = costs.timing
            self._ideal_up[cluster.name] = ideal_transmit_result(
                timing.up, costs.up_bytes)
            self._ideal_down[cluster.name] = ideal_transmit_result(
                timing.down, costs.down_bytes)

    # -- trace access ---------------------------------------------------
    def _cursors(self, name: str):
        channel = self.states[name].up_channel
        if channel is not None and channel.trace is not None:
            return (channel.trace.cursor,
                    self.states[name].down_channel.trace.cursor)
        return 0, 0

    def _up_entry(self, name: str, index: int) -> TransmitResult:
        channel = self.states[name].up_channel
        if channel is not None and channel.trace is not None:
            return channel.trace.entry(index)
        return self._ideal_up[name]

    def _down_entry(self, name: str, index: int) -> TransmitResult:
        channel = self.states[name].down_channel
        if channel is not None and channel.trace is not None:
            return channel.trace.entry(index)
        return self._ideal_down[name]

    # ------------------------------------------------------------------
    def execute(self, cluster: "ScheduledCluster", state,
                agg_s: float, extra_s: float) -> RoundRecord:
        queue = self.queues[cluster.name]
        if not queue:
            self._fill(cluster, agg_s, extra_s)
        return queue.popleft()

    def charge_failure(self, cluster: "ScheduledCluster",
                       charge_s: float) -> None:
        """Settle a failed round's cluster-clock charge exactly once.

        A *planned* failure pre-applied its charge in sequence order
        during :meth:`_run_waves` (so pre-executed successes after it
        carry the right cumulative clock); the kernel's inline handling
        pops it here instead of charging again.  Unplanned failures
        (past the planning horizon) charge inline like the unfused
        executor.
        """
        pending = self.fail_queues[cluster.name]
        if pending:
            planned = pending.popleft()
            if planned != charge_s:
                raise RuntimeError(
                    f"planned failure charge {planned!r} != kernel charge "
                    f"{charge_s!r} for {cluster.name} — planner/loop "
                    "divergence")
            return
        cluster.trainer.clock_s += charge_s

    def outstanding(self) -> int:
        """Pre-executed rounds the kernel has not consumed yet.

        The control plane applies mutating commands only when this is
        zero: at such a boundary no planned round's math could have
        baked in pre-command world state.
        """
        return (sum(len(q) for q in self.queues.values())
                + sum(len(q) for q in self.fail_queues.values()))

    def finalize(self) -> None:
        """Write fleet-trained weights/optimiser state back (run end)."""
        leftovers = {name: len(q) + len(self.fail_queues[name])
                     for name, q in self.queues.items()
                     if q or self.fail_queues[name]}
        if leftovers:
            raise RuntimeError(
                f"segment plan over-executed rounds never consumed by the "
                f"kernel: {leftovers} — planner/loop divergence")
        for _, fleet in self.group_fleets:
            if fleet is not None:
                fleet.sync_to_trainers()

    # ------------------------------------------------------------------
    def _fill(self, current: "ScheduledCluster", agg_s: float,
              extra_s: float) -> None:
        """Plan from ``current``'s math point, then pre-execute the plan
        as fleet waves."""
        if self.mode == "wave":
            # Partial-prefix wave plans legitimately leave *other*
            # clusters' queues non-empty (their prefixes outlive this
            # cluster's); only the requesting cluster must be drained —
            # the planner fast-forwards past the rest.
            if self.queues[current.name] or self.fail_queues[current.name]:
                raise RuntimeError(
                    f"replanning {current.name} with its own queue "
                    "non-empty — planner/loop divergence")
        else:
            stale = [name for name in self.queues
                     if self.queues[name] or self.fail_queues[name]]
            if stale:
                raise RuntimeError(
                    f"replanning with non-empty queues {stale} — "
                    "planner/loop divergence")
        horizon = self.injector.horizon()
        with self.bus.span("plan"):
            if self.mode == "wave":
                plan, bound = self._plan_wave(current, agg_s, extra_s,
                                              horizon)
            else:
                plan, bound = self._plan_segment(current, agg_s, extra_s,
                                                 horizon)
        if self.bus.wants(SegmentFused.kind):
            items = [item for items in plan.values() for item in items]
            self.bus.emit(SegmentFused(
                index=self.segments, mode=self.mode,
                horizon_s=None if horizon == float("inf") else horizon,
                clusters=sum(1 for items in plan.values() if items),
                successes=sum(1 for kind, _ in items if kind == "success"),
                failures=sum(1 for kind, _ in items if kind == "fail"),
                bound=bound))
        self.segments += 1
        with self.bus.span("execute"):
            self._run_waves(plan)

    def _plan_segment(self, current: "ScheduledCluster", agg_s: float,
                      extra_s: float, horizon: float):
        """Dry-run the edge process's arithmetic up to the fault horizon.

        Mirrors the kernel loop float-for-float over :class:`_PlanCursor`
        shadows (edge clock, ready times, budgets, battery levels,
        failure streaks, trace positions) so the planned rounds — and
        their per-round clock stretches — are exactly the ones the
        kernel will commit.  No fault fires inside the window by
        construction; the in-segment state changes (battery and
        consecutive-failure retirements, failed rounds burning budget,
        the quorum halt) are all replicated here.  Returns each
        cluster's planned rounds, in round order, as
        ``("success", clock stretch)`` / ``("fail", clock charge)``
        items: successes pre-execute as waves; failures pre-apply their
        cluster-clock charge between waves (so later successes carry
        the right cumulative clock) and are otherwise left for the
        kernel to process inline.  The second return value names the
        admitting bound for telemetry.
        """
        edge_clock = self.edge_clock_ref[0]
        cursors = {c.name: _PlanCursor(self, c, self.states[c.name])
                   for c in self.clusters}
        plan: Dict[str, List[tuple]] = {c.name: [] for c in self.clusters}

        # The requesting cluster sits at its math point: its round is
        # unconditionally safe and already half-committed by the kernel.
        cursors[current.name].seed_current(edge_clock, agg_s)
        plan[current.name].append(("success", extra_s))

        # A pending runtime command clamps the plan to this round only:
        # segment plans may truncate at any pick boundary (the kernel
        # consumes planned rounds in exactly plan order), so the fleet
        # reaches outstanding==0 at the very next boundary and the
        # command applies there.
        if self.command_gate is not None and self.command_gate():
            return plan, "command-pending"

        quorum = self.resilience.quorum
        total = len(self.clusters)
        while True:
            alive = [c for c in self.clusters if not cursors[c.name].dead]
            if quorum > 0.0 and total and len(alive) / total < quorum:
                break
            pending = [c for c in alive if cursors[c.name].budget > 0]
            if not pending:
                break
            cluster = policy_pick(self.policy, pending,
                                  lambda c: cursors[c.name].rounds_completed)
            cursor = cursors[cluster.name]
            kind, up, down = cursor.peek()
            start = max(edge_clock, cursor.ready)
            if kind == "fail_up":
                # The whole failed round processes at its pick time; a
                # fault armed at exactly `start` fires before the kernel
                # resumes there, so the boundary is strict.
                if not start < horizon:
                    break
                cursor.ready = start + cursor.agg_s + up.elapsed_s
                plan[cluster.name].append(
                    ("fail", cursor.fail_charge(kind, up, down)))
                cursor.apply(kind, up, down)
                continue
            finish = start + cursor.timing.edge_compute_s
            if not finish < horizon:
                # A fault armed at exactly `finish` fires before the
                # kernel resumes the edge process there, so this round's
                # mask may change: it (and everything after — the edge
                # clock is monotone) must run per-cluster at its true
                # kernel time.
                break
            edge_clock = finish
            cursor.ready = edge_clock + cursor.agg_s + up.elapsed_s \
                + down.elapsed_s
            if kind == "success":
                plan[cluster.name].append(("success",
                                           cursor.extra(up, down)))
            else:
                plan[cluster.name].append(
                    ("fail", cursor.fail_charge(kind, up, down)))
            cursor.apply(kind, up, down)
        return plan, "before-horizon"

    def _plan_wave(self, current: "ScheduledCluster", agg_s: float,
                   extra_s: float, horizon: float):
        """Loss-coupled planning: fuse each cluster's earliest-consumed
        rounds up to the fault horizon, quorum-safely.

        ``loss_priority`` picks depend on losses the planner cannot
        foresee, but each cluster's round math, budget burn, battery
        drain and failure streak evolve in its own round order whatever
        the interleaving.  The hazard is timing: a pre-executed round
        must be *consumed* strictly before the next fault can change its
        contributor mask (or retire clusters under it).

        Sound bound: ``max(edge clock, every ready time)`` grows by at
        most one round's *span* per processed round, so cluster X's
        ``j``-th future round is consumed no later than that starting
        maximum plus every other cluster's total remaining span plus
        X's own spans through ``j`` — whatever the pick order.  The
        per-cluster prefix whose worst-case consume time stays strictly
        below the horizon fuses; the rest runs inline and re-plans at
        its next request (by which time the horizon has usually moved
        past the fault).  Rounds already pre-executed by an earlier
        wave but not yet consumed (``queues``/``fail_queues``) are
        fast-forwarded through each cursor — the trace dictates the
        same kinds in the same order — and their spans count toward the
        bound, since new rounds consume after them.

        Quorum safety: cluster death is terminal, so the alive count
        after walking *all* remaining rounds lower-bounds the alive
        count at every intermediate point.  If even that final count
        satisfies the quorum, no pick inside the window can trip the
        halt — in this engine or the unfused reference — and fusion is
        safe; otherwise only the requesting round is planned and the
        kernel walks into the halt inline.
        """
        cursors = {c.name: _PlanCursor(self, c, self.states[c.name])
                   for c in self.clusters}
        cursors[current.name].seed_current(self.edge_clock_ref[0], agg_s)
        plan: Dict[str, List[tuple]] = {c.name: [] for c in self.clusters}
        plan[current.name].append(("success", extra_s))

        # Pending runtime command: plan the requesting round only (see
        # ``_plan_segment``) so earlier waves' leftovers drain and the
        # command applies at the next outstanding==0 boundary.
        if self.command_gate is not None and self.command_gate():
            if self.bus.wants(WavePlanned.kind):
                self.bus.emit(WavePlanned(clusters=1, rounds=1,
                                          fused_all=False,
                                          bound="command-pending"))
            return plan, "command-pending"

        committed: Dict[str, float] = {}
        for cluster in self.clusters:
            name = cluster.name
            outstanding = len(self.queues[name]) + len(self.fail_queues[name])
            span_sum = 0.0
            cursor = cursors[name]
            for _ in range(outstanding):
                kind, up, down = cursor.peek()
                span_sum += cursor.span(kind, up, down)
                cursor.apply(kind, up, down)
            committed[name] = span_sum

        bound_start = max([self.edge_clock_ref[0]]
                          + [cursor.ready for cursor in cursors.values()])
        futures: Dict[str, List[tuple]] = {}
        spans: Dict[str, List[float]] = {}
        for cluster in self.clusters:
            cursor = cursors[cluster.name]
            items: List[tuple] = []
            item_spans: List[float] = []
            while cursor.pending:
                kind, up, down = cursor.peek()
                item_spans.append(cursor.span(kind, up, down))
                if kind == "success":
                    items.append(("success", cursor.extra(up, down)))
                else:
                    items.append(("fail",
                                  cursor.fail_charge(kind, up, down)))
                cursor.apply(kind, up, down)
            futures[cluster.name] = items
            spans[cluster.name] = item_spans

        def emitted(bound: str):
            if self.bus.wants(WavePlanned.kind):
                self.bus.emit(WavePlanned(
                    clusters=sum(1 for items in plan.values() if items),
                    rounds=sum(len(items) for items in plan.values()),
                    fused_all=bound == "all-before-horizon", bound=bound))
            return plan, bound

        quorum = self.resilience.quorum
        total = len(self.clusters)
        if quorum > 0.0 and total:
            alive = sum(1 for c in self.clusters if not cursors[c.name].dead)
            if alive / total < quorum:
                return emitted("quorum-risk")

        totals = {name: committed[name] + sum(spans[name])
                  for name in committed}
        grand = bound_start + sum(totals.values())
        all_taken = True
        for cluster in self.clusters:
            name = cluster.name
            run = grand - totals[name] + committed[name]
            take = 0
            for span in spans[name]:
                run += span
                if not run < horizon:
                    break
                take += 1
            plan[name].extend(futures[name][:take])
            if take < len(futures[name]):
                all_taken = False
        if all_taken:
            return emitted("all-before-horizon")
        fused = sum(len(items) for items in plan.values())
        return emitted("prefix" if fused > 1 else "requesting-only")

    def _run_waves(self, plan: Dict[str, List[tuple]]) -> None:
        """Pre-execute the planned rounds as stacked fleet waves.

        Wave ``w`` trains every cluster with more than ``w`` planned
        successful rounds, split across the homogeneous groups: a full
        group runs its unsliced stacked program (allocation-free
        optimiser fast path), a partial group runs through a
        parameter-sharing :meth:`~repro.core.fleet.FleetTrainer.subset`,
        and one-cluster groups step their trainer directly.
        Per-cluster draw order (minibatch stream, noise RNG) and
        clock/ledger arithmetic match a per-round execution exactly;
        each success carries the planner-priced clock stretch, and each
        planned *failure* applies its cluster-clock charge at its exact
        position in the cluster's round sequence (the kernel's inline
        handling then pops it from ``fail_queues`` instead of charging
        twice).
        """
        states = self.states
        remaining = {name: deque(items) for name, items in plan.items()}

        def flush_failures(cluster: "ScheduledCluster") -> None:
            queue = remaining[cluster.name]
            while queue and queue[0][0] == "fail":
                _, charge = queue.popleft()
                cluster.trainer.clock_s += charge
                self.fail_queues[cluster.name].append(charge)

        def commit(cluster: "ScheduledCluster", record: RoundRecord) -> None:
            name = cluster.name
            _, extra = remaining[name].popleft()
            self.queues[name].append(
                stretch_record(cluster.trainer, record, extra))
            self.executed[name] += 1
            self.fused_rounds += 1

        while True:
            for cluster in self.clusters:
                flush_failures(cluster)
            if not any(remaining.values()):
                break
            for members, fleet in self.group_fleets:
                rows = [position for position, k in enumerate(members)
                        if remaining[self.clusters[k].name]]
                if not rows:
                    continue
                if fleet is None:
                    cluster = self.clusters[members[rows[0]]]
                    batch = contributor_batch(
                        cluster, states[cluster.name].alive_mask)
                    record = cluster.trainer.step(
                        batch, epoch=epoch_of(cluster,
                                              self.executed[cluster.name]))
                    commit(cluster, record)
                    continue
                batch_size = self.clusters[members[rows[0]]].batch_size
                stack = np.empty((len(rows), batch_size, fleet.input_dim))
                epochs = []
                for slot, position in enumerate(rows):
                    cluster = self.clusters[members[position]]
                    stack[slot] = contributor_batch(
                        cluster, states[cluster.name].alive_mask)
                    epochs.append(epoch_of(cluster,
                                           self.executed[cluster.name]))
                if len(rows) == len(members):
                    records = fleet.step(stack, epochs=epochs)
                else:
                    records = fleet.subset(rows).step(stack, epochs=epochs)
                for slot, position in enumerate(rows):
                    commit(self.clusters[members[position]], records[slot])
