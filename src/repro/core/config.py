"""Configuration for the OrcoDCS framework.

The whole point of OrcoDCS (vs. offline DCDA) is that these knobs —
latent dimension, decoder depth, noise level, loss — are chosen *per
sensing task* instead of being fixed in the cloud, so they live in one
explicit config object that experiments sweep over.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass
class OrcoDCSConfig:
    """Hyperparameters of one OrcoDCS deployment.

    Attributes
    ----------
    input_dim:
        Raw data dimension ``N`` (number of IoT devices in the cluster,
        i.e. flattened pixel count for the image tasks).
    latent_dim:
        Latent dimension ``M`` — the paper uses 128 for MNIST-class and
        512 for GTSRB-class tasks.
    noise_sigma:
        Standard deviation of the Gaussian noise added to latent vectors
        during training (eq. 2 uses variance sigma^2; this is sigma).
    decoder_layers:
        Number of trainable layers in the decoder (1 = the paper's
        single dense layer; 3/5 are the Fig. 8 sensitivity points).
    decoder_hidden:
        Hidden width for decoders deeper than one layer; ``None`` picks
        ``max(latent_dim, input_dim // 2)``.
    activation:
        Activation for encoder/decoder layers (final decoder layer is
        always sigmoid so outputs live in [0, 1]).
    loss / huber_delta:
        Reconstruction loss ("huber" per eq. 4, or "mse"/"l1" for
        ablations) and the Huber threshold.
    learning_rate / optimizer / batch_size:
        Online-training knobs shared by aggregator and edge.
    seed:
        Seed for parameter init and noise draws.
    """

    input_dim: int
    latent_dim: int = 128
    noise_sigma: float = 0.1
    decoder_layers: int = 1
    decoder_hidden: Optional[int] = None
    activation: str = "sigmoid"
    loss: str = "huber"
    huber_delta: float = 1.0
    learning_rate: float = 3e-3
    optimizer: str = "adam"
    batch_size: int = 32
    seed: int = 0

    def __post_init__(self):
        if self.input_dim <= 0:
            raise ValueError("input_dim must be positive")
        if self.latent_dim <= 0:
            raise ValueError("latent_dim must be positive")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        if self.decoder_layers < 1:
            raise ValueError("decoder needs at least one layer")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")

    @property
    def compression_ratio(self) -> float:
        """N / M — how many times smaller the latent is than the raw data.

        Values below 1 mean the code is *larger* than the input; the
        paper's Fig. 6 sensitivity sweep deliberately includes such
        settings (M=1024 on the 784-dimensional digits task).
        """
        return self.input_dim / self.latent_dim

    @property
    def is_compressive(self) -> bool:
        """True when the latent is strictly smaller than the input."""
        return self.latent_dim < self.input_dim

    @property
    def hidden_width(self) -> int:
        """Resolved hidden width for multi-layer decoders."""
        if self.decoder_hidden is not None:
            return self.decoder_hidden
        return max(self.latent_dim, self.input_dim // 2)

    def with_overrides(self, **kwargs) -> "OrcoDCSConfig":
        """Functional update — used by the sensitivity sweeps."""
        return replace(self, **kwargs)


def mnist_task_config(**overrides) -> OrcoDCSConfig:
    """The paper's grayscale-digits task: N=784, M=128."""
    base = OrcoDCSConfig(input_dim=784, latent_dim=128)
    return base.with_overrides(**overrides) if overrides else base


def gtsrb_task_config(**overrides) -> OrcoDCSConfig:
    """The paper's colour traffic-sign task: N=3072, M=512."""
    base = OrcoDCSConfig(input_dim=3072, latent_dim=512)
    return base.with_overrides(**overrides) if overrides else base
