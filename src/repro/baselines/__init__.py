"""`repro.baselines` — comparison systems re-implemented from their
published descriptions.

DCSNet (the paper's main baseline) and the classical random-projection
CDA pipeline live in :mod:`repro.cs`.
"""

from .dcsnet import (
    DCSNET_LATENT_DIM,
    DCSNetOffline,
    DCSNetOnline,
    build_dcsnet_decoder,
    build_dcsnet_encoder,
    dcsnet_decoder_flops,
)

__all__ = [
    "DCSNET_LATENT_DIM", "DCSNetOffline", "DCSNetOnline",
    "build_dcsnet_decoder", "build_dcsnet_encoder", "dcsnet_decoder_flops",
]
