"""DCSNet baseline (Zhang et al. [3]), as configured in the paper's Sec. IV.

DCSNet is an offline deep-compressed-sensing framework with a *fixed*
model structure — a learned dense encoder into a predefined
1024-dimensional latent space and a decoder of four convolutional
layers — trained on whatever fraction of historical data the cloud
happens to hold.  The paper evaluates an online-trained variant with the
same structure and 30/50/70 % of the training data; this module provides
both that online variant (sharing the orchestrated trainer, so
time-to-loss comparisons are apples-to-apples) and a fully offline
cloud-trained variant.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn import layers as L
from ..nn import losses as losses_mod
from ..core.orchestrator import OrchestratedTrainer, TrainingHistory
from ..core.timing import (
    OrchestrationTimingModel,
    cloud_profile,
    conv2d_flops,
    dense_flops,
)
from ..wsn.link import cloud_uplink

DCSNET_LATENT_DIM = 1024


def build_dcsnet_encoder(input_dim: int,
                         rng: Optional[np.random.Generator] = None) -> L.Sequential:
    """DCSNet's learned encoder: dense projection to the fixed 1024 code."""
    rng = rng or np.random.default_rng()
    return L.Sequential(
        L.Dense(input_dim, DCSNET_LATENT_DIM, rng=rng, weight_init="he_uniform"),
        L.ReLU(),
    )


def build_dcsnet_decoder(image_shape: Tuple[int, int, int],
                         rng: Optional[np.random.Generator] = None) -> L.Sequential:
    """DCSNet's fixed 4-convolutional-layer decoder.

    ``image_shape`` is ``(channels, height, width)`` with height and
    width divisible by 4.  Architecture: dense seed -> reshape to
    ``(32, H/4, W/4)`` -> upsample+conv -> upsample+conv -> conv -> conv
    -> sigmoid -> flatten (rows out, to match the trainer interface).
    """
    rng = rng or np.random.default_rng()
    channels, height, width = image_shape
    if height % 4 or width % 4:
        raise ValueError("image height/width must be divisible by 4")
    seed_h, seed_w = height // 4, width // 4
    return L.Sequential(
        L.Dense(DCSNET_LATENT_DIM, 32 * seed_h * seed_w, rng=rng,
                weight_init="he_uniform"),
        L.ReLU(),
        L.Reshape((32, seed_h, seed_w)),
        L.Upsample2D(2),
        L.Conv2D(32, 16, 3, padding=1, rng=rng),
        L.ReLU(),
        L.Upsample2D(2),
        L.Conv2D(16, 8, 3, padding=1, rng=rng),
        L.ReLU(),
        L.Conv2D(8, 8, 3, padding=1, rng=rng),
        L.ReLU(),
        L.Conv2D(8, channels, 3, padding=1, rng=rng),
        L.Sigmoid(),
        L.Flatten(),
    )


def dcsnet_decoder_flops(image_shape: Tuple[int, int, int]) -> float:
    """Per-sample forward FLOPs of the fixed DCSNet decoder."""
    channels, height, width = image_shape
    seed_h, seed_w = height // 4, width // 4
    total = dense_flops(DCSNET_LATENT_DIM, 32 * seed_h * seed_w)
    total += conv2d_flops(32, 16, (3, 3), (height // 2, width // 2))
    total += conv2d_flops(16, 8, (3, 3), (height, width))
    total += conv2d_flops(8, 8, (3, 3), (height, width))
    total += conv2d_flops(8, channels, (3, 3), (height, width))
    return total


class DCSNetOnline(OrchestratedTrainer):
    """The paper's comparison point: DCSNet structure trained online.

    Same orchestrated protocol as OrcoDCS but with the fixed 1024-dim
    latent, the 4-conv decoder, plain L2 loss and no latent noise.  Its
    data handicap (30/50/70 %) is applied via :meth:`fit_fraction`.
    """

    def __init__(self, image_shape: Tuple[int, int, int],
                 timing: Optional[OrchestrationTimingModel] = None,
                 learning_rate: float = 3e-3,
                 seed: int = 0,
                 data_fraction: float = 0.5):
        if not 0.0 < data_fraction <= 1.0:
            raise ValueError("data_fraction must be in (0, 1]")
        channels, height, width = image_shape
        input_dim = channels * height * width
        rng = np.random.default_rng(seed)
        encoder = build_dcsnet_encoder(input_dim, rng)
        decoder = build_dcsnet_decoder(image_shape, rng)
        super().__init__(
            encoder, decoder,
            input_dim=input_dim, latent_dim=DCSNET_LATENT_DIM,
            loss=losses_mod.MSELoss(), noise=None,
            encoder_forward_flops=dense_flops(input_dim, DCSNET_LATENT_DIM),
            decoder_forward_flops=dcsnet_decoder_flops(image_shape),
            timing=timing, optimizer="adam", learning_rate=learning_rate,
            rng=rng, name=f"DCSNet-{int(data_fraction * 100)}%")
        self.image_shape = image_shape
        self.data_fraction = data_fraction

    def fit_fraction(self, train_rows: np.ndarray, epochs: int = 10,
                     batch_size: int = 32,
                     val_rows: Optional[np.ndarray] = None,
                     **kwargs) -> TrainingHistory:
        """Train on the framework's data fraction of ``train_rows`` —
        the offline-data handicap of the paper's setup."""
        train_rows = np.atleast_2d(np.asarray(train_rows, dtype=float))
        count = max(1, int(round(self.data_fraction * len(train_rows))))
        subset = train_rows[self.rng.choice(len(train_rows), count, replace=False)]
        return self.fit(subset, epochs=epochs, batch_size=batch_size,
                        val_rows=val_rows, **kwargs)

    @classmethod
    def for_digits(cls, **kwargs) -> "DCSNetOnline":
        """28x28 grayscale configuration (the MNIST-class task)."""
        return cls(image_shape=(1, 28, 28), **kwargs)

    @classmethod
    def for_signs(cls, **kwargs) -> "DCSNetOnline":
        """32x32 RGB configuration (the GTSRB-class task)."""
        return cls(image_shape=(3, 32, 32), **kwargs)


class DCSNetOffline(DCSNetOnline):
    """Fully offline DCSNet: raw data ships to the cloud once, training
    runs entirely there.

    Models the original deployment [3]: the modeled clock charges the
    one-time raw upload over the WAN plus cloud-side compute for *both*
    halves; there is no per-round uplink/downlink.
    """

    def __init__(self, image_shape: Tuple[int, int, int], seed: int = 0,
                 data_fraction: float = 0.5, learning_rate: float = 3e-3):
        cloud = cloud_profile()
        timing = OrchestrationTimingModel(aggregator=cloud, edge=cloud)
        super().__init__(image_shape, timing=timing,
                         learning_rate=learning_rate, seed=seed,
                         data_fraction=data_fraction)
        self.name = f"DCSNet-offline-{int(data_fraction * 100)}%"
        self.wan = cloud_uplink()

    def fit_fraction(self, train_rows: np.ndarray, epochs: int = 10,
                     batch_size: int = 32,
                     val_rows: Optional[np.ndarray] = None,
                     **kwargs) -> TrainingHistory:
        """Charge the raw-data upload, then train cloud-side."""
        train_rows = np.atleast_2d(np.asarray(train_rows, dtype=float))
        count = max(1, int(round(self.data_fraction * len(train_rows))))
        upload_bytes = count * self.input_dim * self.timing.value_bytes
        self.clock_s += self.wan.transfer_time(upload_bytes)
        self.ledger.record(0, -1, upload_bytes,
                           self.wan.wire_bytes(upload_bytes),
                           "raw_cloud_upload", self.wan.transfer_time(upload_bytes))
        return super().fit_fraction(train_rows, epochs=epochs,
                                    batch_size=batch_size, val_rows=val_rows,
                                    **kwargs)
