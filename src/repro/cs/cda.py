"""Classical compressed data aggregation (the traditional CDA of Sec. I).

The pipeline the paper describes as the pre-deep-learning baseline:

1. the aggregator multiplies raw data by a random measurement matrix
   ``Phi`` (``m << n``) and uplinks the measurements;
2. the edge reconstructs by solving a sparse-recovery problem in a
   sparsifying basis ``Psi`` (``y = Phi Psi s``, then ``x = Psi s``).

Its per-sample transmission cost is ``m`` scalars — the same as
OrcoDCS's latent dimension — but its reconstruction quality is limited by
how sparse the data actually is in ``Psi``, which is precisely the
shortcoming motivating learned codecs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .measurement import gaussian_matrix
from .solvers import get_solver
from .sparsify import dct_basis


@dataclass
class CDAResult:
    """Round-trip result for a batch of signals."""

    measurements: np.ndarray
    reconstructions: np.ndarray
    values_per_sample: int


class ClassicalCDA:
    """Random-projection encode + sparse-recovery decode.

    Parameters
    ----------
    signal_dim:
        Raw data dimension ``n`` (e.g. number of IoT devices).
    num_measurements:
        Compressed dimension ``m``.
    solver:
        One of ``"omp"``, ``"ista"``, ``"fista"``, ``"lstsq"``.
    sparsity:
        Support size passed to OMP (ignored by the l1 solvers).
    rng:
        Generator for drawing the measurement matrix.
    """

    def __init__(self, signal_dim: int, num_measurements: int,
                 solver: str = "omp", sparsity: Optional[int] = None,
                 lam: float = 0.01,
                 rng: Optional[np.random.Generator] = None):
        if num_measurements > signal_dim:
            raise ValueError("num_measurements must be <= signal_dim")
        self.signal_dim = signal_dim
        self.num_measurements = num_measurements
        self.solver_name = solver
        self._solver = get_solver(solver)
        self.sparsity = sparsity or max(1, num_measurements // 4)
        self.lam = lam
        rng = rng or np.random.default_rng()
        self.measurement = gaussian_matrix(num_measurements, signal_dim, rng)
        self.basis = dct_basis(signal_dim)
        self._sensing = self.measurement @ self.basis  # Phi Psi

    def encode(self, signals: np.ndarray) -> np.ndarray:
        """Project ``(batch, n)`` signals to ``(batch, m)`` measurements."""
        signals = np.atleast_2d(np.asarray(signals, dtype=float))
        if signals.shape[1] != self.signal_dim:
            raise ValueError(f"expected signals of dim {self.signal_dim}")
        return signals @ self.measurement.T

    def decode(self, measurements: np.ndarray) -> np.ndarray:
        """Reconstruct ``(batch, n)`` signals from measurements."""
        measurements = np.atleast_2d(np.asarray(measurements, dtype=float))
        out = np.zeros((measurements.shape[0], self.signal_dim))
        for row in range(measurements.shape[0]):
            if self.solver_name == "omp":
                result = self._solver(self._sensing, measurements[row], self.sparsity)
            elif self.solver_name == "lstsq":
                result = self._solver(self._sensing, measurements[row])
            else:
                result = self._solver(self._sensing, measurements[row], self.lam)
            out[row] = self.basis @ result.solution
        return out

    def round_trip(self, signals: np.ndarray) -> CDAResult:
        """Encode then decode a batch; returns measurements and recon."""
        measurements = self.encode(signals)
        reconstructions = self.decode(measurements)
        return CDAResult(measurements, reconstructions, self.num_measurements)
