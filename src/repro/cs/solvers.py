"""Sparse-recovery solvers for classical compressed sensing.

These are the "computationally intensive algorithms" the paper contrasts
with learned decoders (Sec. I): greedy orthogonal matching pursuit and
proximal-gradient l1 solvers (ISTA / FISTA), plus a ridge least-squares
fallback.  All solve ``y = A s`` for sparse ``s``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class SolverResult:
    """Solution plus convergence diagnostics."""

    solution: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool


def omp(measurement: np.ndarray, observation: np.ndarray, sparsity: int,
        tol: float = 1e-8) -> SolverResult:
    """Orthogonal Matching Pursuit.

    Greedily selects the column most correlated with the residual, then
    re-fits by least squares on the selected support.

    Parameters
    ----------
    measurement:
        Sensing matrix ``A`` of shape ``(m, n)``.
    observation:
        Measurement vector ``y`` of shape ``(m,)``.
    sparsity:
        Maximum support size to select.
    """
    A = np.asarray(measurement, dtype=float)
    y = np.asarray(observation, dtype=float).reshape(-1)
    m, n = A.shape
    if y.shape[0] != m:
        raise ValueError("observation length must equal measurement rows")
    if not 0 < sparsity <= min(m, n):
        raise ValueError("sparsity must be in (0, min(m, n)]")

    norms = np.linalg.norm(A, axis=0)
    norms = np.where(norms == 0, 1.0, norms)
    residual = y.copy()
    support: list = []
    solution = np.zeros(n)
    iterations = 0
    for iterations in range(1, sparsity + 1):
        correlations = np.abs(A.T @ residual) / norms
        correlations[support] = -np.inf
        best = int(np.argmax(correlations))
        support.append(best)
        subset = A[:, support]
        coef, *_ = np.linalg.lstsq(subset, y, rcond=None)
        residual = y - subset @ coef
        if np.linalg.norm(residual) <= tol:
            break
    solution = np.zeros(n)
    solution[support] = coef
    res_norm = float(np.linalg.norm(residual))
    return SolverResult(solution, iterations, res_norm, res_norm <= max(tol, 1e-6 * np.linalg.norm(y)))


def ista(measurement: np.ndarray, observation: np.ndarray, lam: float = 0.01,
         max_iters: int = 500, tol: float = 1e-7,
         step: Optional[float] = None) -> SolverResult:
    """Iterative Shrinkage-Thresholding for the LASSO problem
    ``min 0.5 ||As - y||^2 + lam ||s||_1``."""
    A = np.asarray(measurement, dtype=float)
    y = np.asarray(observation, dtype=float).reshape(-1)
    _validate(A, y, lam, max_iters)
    if step is None:
        lipschitz = np.linalg.norm(A, 2) ** 2
        step = 1.0 / lipschitz if lipschitz > 0 else 1.0
    s = np.zeros(A.shape[1])
    converged = False
    iterations = 0
    for iterations in range(1, max_iters + 1):
        gradient = A.T @ (A @ s - y)
        nxt = _soft_threshold(s - step * gradient, step * lam)
        if np.linalg.norm(nxt - s) <= tol * max(1.0, np.linalg.norm(s)):
            s = nxt
            converged = True
            break
        s = nxt
    residual = float(np.linalg.norm(A @ s - y))
    return SolverResult(s, iterations, residual, converged)


def fista(measurement: np.ndarray, observation: np.ndarray, lam: float = 0.01,
          max_iters: int = 500, tol: float = 1e-7,
          step: Optional[float] = None) -> SolverResult:
    """FISTA: Nesterov-accelerated ISTA; same problem, O(1/k^2) rate."""
    A = np.asarray(measurement, dtype=float)
    y = np.asarray(observation, dtype=float).reshape(-1)
    _validate(A, y, lam, max_iters)
    if step is None:
        lipschitz = np.linalg.norm(A, 2) ** 2
        step = 1.0 / lipschitz if lipschitz > 0 else 1.0
    s = np.zeros(A.shape[1])
    momentum_point = s.copy()
    t = 1.0
    converged = False
    iterations = 0
    for iterations in range(1, max_iters + 1):
        gradient = A.T @ (A @ momentum_point - y)
        nxt = _soft_threshold(momentum_point - step * gradient, step * lam)
        t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t * t))
        momentum_point = nxt + ((t - 1.0) / t_next) * (nxt - s)
        if np.linalg.norm(nxt - s) <= tol * max(1.0, np.linalg.norm(s)):
            s = nxt
            converged = True
            break
        s, t = nxt, t_next
    residual = float(np.linalg.norm(A @ s - y))
    return SolverResult(s, iterations, residual, converged)


def cosamp(measurement: np.ndarray, observation: np.ndarray, sparsity: int,
           max_iters: int = 50, tol: float = 1e-8) -> SolverResult:
    """Compressive Sampling Matching Pursuit (Needell & Tropp, 2009).

    Keeps a 2k-candidate support per iteration, solves least squares on
    the merged support and prunes back to the best ``k`` — usually more
    robust than plain OMP at moderate sparsity.
    """
    A = np.asarray(measurement, dtype=float)
    y = np.asarray(observation, dtype=float).reshape(-1)
    m, n = A.shape
    if y.shape[0] != m:
        raise ValueError("observation length must equal measurement rows")
    if not 0 < sparsity <= m // 2:
        raise ValueError("CoSaMP requires 0 < sparsity <= m // 2")

    solution = np.zeros(n)
    residual = y.copy()
    y_norm = np.linalg.norm(y)
    iterations = 0
    for iterations in range(1, max_iters + 1):
        proxy = A.T @ residual
        candidates = np.argsort(np.abs(proxy))[-2 * sparsity:]
        support = np.union1d(candidates, np.flatnonzero(solution))
        coef, *_ = np.linalg.lstsq(A[:, support], y, rcond=None)
        pruned = np.zeros(n)
        pruned_idx = support[np.argsort(np.abs(coef))[-sparsity:]]
        keep = {int(i): c for i, c in zip(support, coef)}
        pruned[pruned_idx] = [keep[int(i)] for i in pruned_idx]
        # Re-fit on the pruned support for the final estimate.
        refit, *_ = np.linalg.lstsq(A[:, pruned_idx], y, rcond=None)
        solution = np.zeros(n)
        solution[pruned_idx] = refit
        new_residual = y - A @ solution
        if np.linalg.norm(new_residual - residual) <= tol * max(y_norm, 1.0):
            residual = new_residual
            break
        residual = new_residual
        if np.linalg.norm(residual) <= tol:
            break
    res_norm = float(np.linalg.norm(residual))
    return SolverResult(solution, iterations, res_norm,
                        res_norm <= max(tol, 1e-6 * y_norm))


def ridge_lstsq(measurement: np.ndarray, observation: np.ndarray,
                alpha: float = 1e-6) -> SolverResult:
    """Tikhonov-regularised least squares — the non-sparse fallback
    (minimum-norm solution); fast but no sparsity prior."""
    A = np.asarray(measurement, dtype=float)
    y = np.asarray(observation, dtype=float).reshape(-1)
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    m, n = A.shape
    gram = A @ A.T + alpha * np.eye(m)
    s = A.T @ np.linalg.solve(gram, y)
    residual = float(np.linalg.norm(A @ s - y))
    return SolverResult(s, 1, residual, True)


def _soft_threshold(x: np.ndarray, threshold: float) -> np.ndarray:
    return np.sign(x) * np.maximum(np.abs(x) - threshold, 0.0)


def _validate(A: np.ndarray, y: np.ndarray, lam: float, max_iters: int) -> None:
    if y.shape[0] != A.shape[0]:
        raise ValueError("observation length must equal measurement rows")
    if lam < 0:
        raise ValueError("lam must be non-negative")
    if max_iters <= 0:
        raise ValueError("max_iters must be positive")


_SOLVERS = {"omp": omp, "cosamp": cosamp, "ista": ista, "fista": fista,
            "lstsq": ridge_lstsq}


def get_solver(name: str):
    """Look up a solver function by name."""
    try:
        return _SOLVERS[name]
    except KeyError:
        raise KeyError(f"unknown solver {name!r}; choose from {sorted(_SOLVERS)}")
