"""`repro.cs` — classical compressed sensing substrate.

Measurement matrices, sparsifying bases, sparse-recovery solvers and the
traditional (non-learned) compressed-data-aggregation pipeline that
OrcoDCS and DCSNet both improve upon.
"""

from .cda import CDAResult, ClassicalCDA
from .measurement import (
    bernoulli_matrix,
    gaussian_matrix,
    mutual_coherence,
    restricted_isometry_estimate,
    sparse_binary_matrix,
)
from .solvers import (
    SolverResult,
    cosamp,
    fista,
    get_solver,
    ista,
    omp,
    ridge_lstsq,
)
from .sparsify import (
    best_k_term_error,
    dct_basis,
    effective_sparsity,
    from_dct,
    hard_threshold,
    to_dct,
)

__all__ = [
    "CDAResult", "ClassicalCDA",
    "bernoulli_matrix", "gaussian_matrix", "mutual_coherence",
    "restricted_isometry_estimate", "sparse_binary_matrix",
    "SolverResult", "cosamp", "fista", "get_solver", "ista", "omp",
    "ridge_lstsq",
    "best_k_term_error", "dct_basis", "effective_sparsity", "from_dct",
    "hard_threshold", "to_dct",
]
