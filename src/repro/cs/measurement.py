"""Measurement matrices for classical compressed sensing.

Traditional CDA (Sec. I of the paper) encodes raw data with randomly
generated Gaussian or Bernoulli measurement matrices; OrcoDCS replaces
these with a *learned* encoder.  These generators provide the classical
comparison point and the substrate for the hybrid-CS aggregation of
Luo et al. [1].
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def gaussian_matrix(m: int, n: int, rng: Optional[np.random.Generator] = None,
                    normalize: bool = True) -> np.ndarray:
    """Dense i.i.d. Gaussian measurement matrix ``(m, n)``.

    With ``normalize=True`` entries are drawn from ``N(0, 1/m)`` so that
    column norms concentrate near 1 (the standard RIP scaling).
    """
    _check_dims(m, n)
    rng = rng or np.random.default_rng()
    scale = 1.0 / np.sqrt(m) if normalize else 1.0
    return rng.standard_normal((m, n)) * scale


def bernoulli_matrix(m: int, n: int, rng: Optional[np.random.Generator] = None,
                     normalize: bool = True) -> np.ndarray:
    """Random ±1 (Rademacher) measurement matrix, optionally 1/sqrt(m)-scaled."""
    _check_dims(m, n)
    rng = rng or np.random.default_rng()
    signs = rng.integers(0, 2, size=(m, n)) * 2 - 1
    scale = 1.0 / np.sqrt(m) if normalize else 1.0
    return signs.astype(float) * scale


def sparse_binary_matrix(m: int, n: int, ones_per_column: int = 4,
                         rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Sparse binary measurement matrix with ``ones_per_column`` ones per
    column — the lightweight choice for in-network encoding [11]."""
    _check_dims(m, n)
    if not 0 < ones_per_column <= m:
        raise ValueError("ones_per_column must be in (0, m]")
    rng = rng or np.random.default_rng()
    matrix = np.zeros((m, n))
    for col in range(n):
        rows = rng.choice(m, size=ones_per_column, replace=False)
        matrix[rows, col] = 1.0 / np.sqrt(ones_per_column)
    return matrix


def mutual_coherence(matrix: np.ndarray) -> float:
    """Maximum absolute normalized inner product between distinct columns.

    Lower coherence gives better sparse-recovery guarantees; useful for
    sanity-checking generated measurement matrices.
    """
    matrix = np.asarray(matrix, dtype=float)
    norms = np.linalg.norm(matrix, axis=0)
    norms = np.where(norms == 0, 1.0, norms)
    normalized = matrix / norms
    gram = np.abs(normalized.T @ normalized)
    np.fill_diagonal(gram, 0.0)
    return float(gram.max())


def restricted_isometry_estimate(matrix: np.ndarray, sparsity: int,
                                 trials: int = 200,
                                 rng: Optional[np.random.Generator] = None) -> float:
    """Monte-Carlo estimate of the RIP constant of order ``sparsity``.

    Samples random ``sparsity``-sparse unit vectors and measures how far
    ``||Ax||^2`` deviates from 1; returns the worst deviation seen.  An
    estimate (a lower bound on the true constant), good enough to verify
    that Gaussian matrices beat badly conditioned ones.
    """
    matrix = np.asarray(matrix, dtype=float)
    m, n = matrix.shape
    if not 0 < sparsity <= n:
        raise ValueError("sparsity must be in (0, n]")
    rng = rng or np.random.default_rng()
    worst = 0.0
    for _ in range(trials):
        support = rng.choice(n, size=sparsity, replace=False)
        x = np.zeros(n)
        x[support] = rng.standard_normal(sparsity)
        x /= np.linalg.norm(x)
        deviation = abs(float(np.linalg.norm(matrix @ x) ** 2) - 1.0)
        worst = max(worst, deviation)
    return worst


def _check_dims(m: int, n: int) -> None:
    if m <= 0 or n <= 0:
        raise ValueError("matrix dimensions must be positive")
    if m > n:
        raise ValueError("compressed sensing requires m <= n")
