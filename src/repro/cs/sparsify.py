"""Sparsifying bases and sparsity utilities.

Natural sensing data is rarely sparse in the sample domain but is
compressible in a transform domain; classical CDA reconstructs in that
domain.  We provide an orthonormal DCT-II basis (the workhorse for
smooth sensor fields and images) and helpers to measure compressibility.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dct, idct


def dct_basis(n: int) -> np.ndarray:
    """Orthonormal DCT-II synthesis basis ``Psi`` with ``x = Psi @ s``.

    Columns are the DCT basis vectors, so ``s = Psi.T @ x`` is the
    (orthonormal) DCT of ``x``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    identity = np.eye(n)
    # idct of unit vectors gives the synthesis basis columns.
    return idct(identity, axis=0, norm="ortho")


def to_dct(x: np.ndarray) -> np.ndarray:
    """Orthonormal DCT-II coefficients of ``x`` along its last axis."""
    return dct(np.asarray(x, dtype=float), axis=-1, norm="ortho")


def from_dct(s: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_dct`."""
    return idct(np.asarray(s, dtype=float), axis=-1, norm="ortho")


def hard_threshold(coeffs: np.ndarray, keep: int) -> np.ndarray:
    """Keep the ``keep`` largest-magnitude coefficients, zero the rest."""
    coeffs = np.asarray(coeffs, dtype=float)
    if not 0 < keep <= coeffs.shape[-1]:
        raise ValueError("keep must be in (0, n]")
    out = np.zeros_like(coeffs)
    flat = coeffs.reshape(-1, coeffs.shape[-1])
    flat_out = out.reshape(-1, coeffs.shape[-1])
    for row in range(flat.shape[0]):
        top = np.argsort(np.abs(flat[row]))[-keep:]
        flat_out[row, top] = flat[row, top]
    return out


def best_k_term_error(x: np.ndarray, keep: int) -> float:
    """Relative L2 error of the best ``keep``-term DCT approximation.

    A direct measure of compressibility: smooth sensor fields score low,
    white noise scores near ``sqrt(1 - keep/n)``.
    """
    x = np.asarray(x, dtype=float)
    coeffs = to_dct(x)
    approx = from_dct(hard_threshold(coeffs, keep))
    denom = np.linalg.norm(x)
    if denom == 0:
        return 0.0
    return float(np.linalg.norm(x - approx) / denom)


def effective_sparsity(x: np.ndarray, energy_fraction: float = 0.99) -> int:
    """Smallest number of DCT coefficients capturing ``energy_fraction``
    of the signal energy."""
    if not 0 < energy_fraction <= 1:
        raise ValueError("energy_fraction must be in (0, 1]")
    coeffs = np.abs(to_dct(np.asarray(x, dtype=float).reshape(-1))) ** 2
    total = coeffs.sum()
    if total == 0:
        return 0
    sorted_energy = np.sort(coeffs)[::-1]
    cumulative = np.cumsum(sorted_energy) / total
    return int(np.searchsorted(cumulative, energy_fraction) + 1)
