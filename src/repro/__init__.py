"""OrcoDCS reproduction: IoT-Edge orchestrated online deep compressed sensing.

Full reproduction of "OrcoDCS: An IoT-Edge Orchestrated Online Deep
Compressed Sensing Framework" (ICDCS 2023).  See README.md for the
architecture overview and DESIGN.md for the system inventory.

Subpackages
-----------
``repro.nn``
    From-scratch autograd + neural-network framework (numpy).
``repro.cs``
    Classical compressed sensing (measurement matrices, sparse solvers,
    traditional CDA).
``repro.wsn``
    Wireless sensor network simulator (energy, links, aggregation trees).
``repro.sim``
    Discrete-event runtime: unreliable channels (loss/ARQ/jitter),
    fault injection and the simulation kernel behind ``engine="event"``.
``repro.datasets``
    Synthetic digit / traffic-sign / sensor-field generators.
``repro.core``
    The OrcoDCS framework itself.
``repro.baselines``
    DCSNet, re-implemented from its published description.
``repro.apps``
    Follow-up applications (the 2-conv-layer classifier).
``repro.metrics``
    PSNR / SSIM / NMSE and transmission-cost accounting.
``repro.experiments``
    One module per paper figure; CLI: ``python -m repro.experiments``.
``repro.obs``
    Fleet observability: telemetry bus, metrics, JSONL exporters and
    the live console (zero-cost when no subscriber is attached).
"""

from . import apps, baselines, core, cs, datasets, metrics, nn, obs, sim, wsn
from .core import (
    AsymmetricAutoencoder,
    EncoderDeployment,
    FineTuningMonitor,
    OrcoDCSConfig,
    OrcoDCSFramework,
    gtsrb_task_config,
    mnist_task_config,
)

__version__ = "1.0.0"

__all__ = [
    "apps", "baselines", "core", "cs", "datasets", "metrics", "nn", "obs",
    "sim", "wsn",
    "AsymmetricAutoencoder", "EncoderDeployment", "FineTuningMonitor",
    "OrcoDCSConfig", "OrcoDCSFramework", "gtsrb_task_config",
    "mnist_task_config", "__version__",
]
