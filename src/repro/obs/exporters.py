"""`repro.obs.exporters` — JSONL event logs and summary tables.

* :class:`JsonlWriter` — a bus subscriber that streams every event to
  a JSON-Lines file (one ``{"kind": ..., ...}`` object per line);
* :func:`read_events` — the matching reader, reconstructing the typed
  event objects via :data:`~repro.obs.telemetry.EVENT_TYPES`;
* :func:`summary_table` — end-of-run per-cluster table rendered from a
  :class:`~repro.obs.metrics.MetricsCollector`;
* ``MetricsCollector.flat()`` (in :mod:`repro.obs.metrics`) is the
  bench-friendly flat-dict exporter.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterator, List, Optional, Sequence, Union

from typing import Dict, Tuple

from .metrics import MetricsCollector
from .telemetry import EVENT_TYPES, TelemetryBus, TelemetryEvent

__all__ = ["JsonlWriter", "merge_event_logs", "read_events",
           "read_sharded_events", "summary_table"]

#: One shared compact encoder — ``json.dumps(obj, separators=...)``
#: builds a fresh ``JSONEncoder`` per call.  Used as the slow-path
#: fallback for non-scalar field values (the generic case).
_ENCODER = json.JSONEncoder(separators=(",", ":"))

#: Escaped-string cache for the fast line encoder.  Event strings come
#: from small per-run vocabularies (cluster names, fault kinds, span
#: names, retirement reasons), so caching their JSON form amortises the
#: escape scan to a dict lookup.  Bounded as a guard against a
#: pathological high-cardinality producer.
_STRING_CACHE: Dict[str, str] = {}
_STRING_CACHE_MAX = 4096

#: Per event class: precomputed ``{"kind":...,"field":`` key prefixes in
#: field order, so serialising an event is just interleaving cached
#: prefixes with encoded values.
_CLASS_PREFIXES: Dict[type, Tuple[str, ...]] = {}


def _encode_str(value: str) -> str:
    cached = _STRING_CACHE.get(value)
    if cached is None:
        cached = _ENCODER.encode(value)
        if len(_STRING_CACHE) < _STRING_CACHE_MAX:
            _STRING_CACHE[value] = cached
    return cached


def _encode_value(value: object) -> str:
    # Exact-class checks: ``bool`` is an ``int`` subclass, and numpy
    # scalars masquerade as numbers but need the generic fallback.
    cls = value.__class__
    if cls is float:
        return repr(value)
    if cls is int:
        return repr(value)
    if cls is str:
        return _encode_str(value)
    if cls is bool:
        return "true" if value else "false"
    if value is None:
        return "null"
    return _ENCODER.encode(value)


def _encode_event(event: TelemetryEvent) -> str:
    """One compact JSON line for ``event`` (no trailing newline).

    Equivalent to ``_ENCODER.encode(event.as_dict())`` but ~3x cheaper:
    key prefixes are precomputed per event class and repeated strings
    hit :data:`_STRING_CACHE`, which is what keeps enabled-JSONL
    overhead inside the benched budget (see ``bench_resilience.py``).
    """
    fields = event.__dict__
    cls = event.__class__
    if not fields:
        return f'{{"kind":{_ENCODER.encode(cls.kind)}}}'
    prefixes = _CLASS_PREFIXES.get(cls)
    if prefixes is None:
        prefixes = tuple(
            (f'{{"kind":{_ENCODER.encode(cls.kind)},"{name}":'
             if index == 0 else f',"{name}":')
            for index, name in enumerate(fields))
        _CLASS_PREFIXES[cls] = prefixes
    parts = []
    for prefix, value in zip(prefixes, fields.values()):
        parts.append(prefix)
        parts.append(_encode_value(value))
    parts.append("}")
    return "".join(parts)


class JsonlWriter:
    """Streams bus events to a JSON-Lines file.

    The writer is **write-behind**: events are appended to an in-memory
    buffer on the hot path and bulk-encoded to the file whenever the
    buffer reaches ``flush_every`` events (and at :meth:`flush` /
    :meth:`close`).  Bulk encoding in one tight loop is measurably
    cheaper than encoding inline between simulation steps, which is
    what keeps enabled-telemetry overhead inside the benched budget
    (see ``bench_resilience.py``).  Use as a context manager, or call
    :meth:`close` when the run finishes::

        bus = TelemetryBus()
        with JsonlWriter(path, bus):
            scheduler = EdgeTrainingScheduler(..., telemetry=bus)
            scheduler.run(...)

    Pass ``flush_every=1`` to trade overhead for a tail-able file that
    is current after every event (live dashboards; crash forensics).
    """

    def __init__(self, path: Union[str, Path],
                 bus: Optional[TelemetryBus] = None,
                 flush_every: int = 4096) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self._handle: Optional[IO[str]] = open(self.path, "w")
        self._buffer: List[TelemetryEvent] = []
        self._flush_every = flush_every
        self.events_written = 0
        self._unsubscribe = None
        if bus is not None:
            self._unsubscribe = bus.subscribe(self.write_event)

    def write_event(self, event: TelemetryEvent) -> None:
        if self._handle is None:
            raise ValueError(f"JsonlWriter({self.path}) is closed")
        self._buffer.append(event)
        self.events_written += 1
        if len(self._buffer) >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        """Drain the buffer to disk (one bulk encode + one write)."""
        if self._handle is None:
            raise ValueError(f"JsonlWriter({self.path}) is closed")
        if self._buffer:
            encode = _encode_event
            self._handle.write(
                "".join([encode(event) + "\n" for event in self._buffer]))
            self._buffer.clear()
        self._handle.flush()

    def close(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> Iterator[TelemetryEvent]:
    """Yield typed events back from a :class:`JsonlWriter` log.

    Unknown kinds (from a newer writer) raise ``KeyError`` — logs are a
    contract, not a best-effort stream.  A ``"shard"`` tag (stamped by
    :func:`merge_event_logs`) is transparently dropped, so merged
    multi-shard logs round-trip through the same reader; use
    :func:`read_sharded_events` to keep the tag.
    """
    for _, event in read_sharded_events(path):
        yield event


def read_sharded_events(path: Union[str, Path]
                        ) -> Iterator[Tuple[Optional[int], TelemetryEvent]]:
    """Yield ``(shard, event)`` pairs from a (possibly merged) log.

    ``shard`` is ``None`` for lines a plain :class:`JsonlWriter` wrote;
    merged logs carry the originating shard id on every line.
    """
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            shard = payload.pop("shard", None)
            cls = EVENT_TYPES[payload.pop("kind")]
            yield shard, cls(**payload)


def merge_event_logs(paths: Sequence[Union[str, Path]],
                     out_path: Union[str, Path],
                     shard_ids: Optional[Sequence[int]] = None) -> int:
    """Fold per-shard JSONL logs into one shard-tagged stream.

    Each input line gains a leading ``"shard": <id>`` key (ids default
    to the position of the source file in ``paths``), preserving the
    original event payload byte for byte — so
    :func:`read_sharded_events` recovers exactly the typed events each
    shard emitted, attributed to its shard, and :func:`read_events`
    round-trips the merged file like any single-writer log.  Events
    appear shard by shard in ``paths`` order (within a shard, in
    emission order); per-event ``time_s`` fields carry each fleet's own
    simulated clock, so cross-shard interleaving has no meaning to
    restore.  Returns the number of events written.
    """
    if shard_ids is None:
        shard_ids = list(range(len(paths)))
    if len(shard_ids) != len(paths):
        raise ValueError(
            f"{len(paths)} paths but {len(shard_ids)} shard_ids")
    written = 0
    with open(out_path, "w") as out:
        for shard, path in zip(shard_ids, paths):
            prefix = f'{{"shard":{int(shard)},'
            with open(path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    if not line.startswith("{"):
                        raise ValueError(
                            f"{path}: not a JSONL event log line: "
                            f"{line[:60]!r}")
                    out.write(prefix + line[1:] + "\n")
                    written += 1
    return written


def summary_table(collector: MetricsCollector) -> str:
    """End-of-run per-cluster health table (plain text).

    One row per cluster: rounds, delivered share, faults, last loss,
    battery; a footer totals channel traffic and span wall time.
    """
    lines: List[str] = []
    header = (f"{'cluster':<12} {'rounds':>6} {'deliv':>6} {'faults':>6} "
              f"{'loss':>10} {'battery J':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    for name, stats in sorted(collector.clusters.items()):
        loss = (f"{stats.loss.value:.4g}"
                if stats.loss.value is not None else "-")
        battery = (f"{stats.battery_j.value:.3f}"
                   if stats.battery_j.value is not None else "-")
        lines.append(
            f"{name:<12} {stats.rounds.value:>6.0f} "
            f"{stats.delivered.value:>6.0f} {stats.faults.value:>6.0f} "
            f"{loss:>10} {battery:>10}")
    lines.append("-" * len(header))
    lines.append(
        f"transmits {collector.transmits.value:.0f} | "
        f"frames {collector.frames_sent.value:.0f} | "
        f"radio {collector.radio_energy_j:.4g} J | "
        f"deadline misses {collector.deadline_misses.value:.0f}")
    if collector.retirements:
        retired = ", ".join(f"{reason}: {count}" for reason, count
                            in sorted(collector.retirements.items()))
        lines.append(f"retired — {retired}")
    if collector.span_hists:
        spans = ", ".join(
            f"{name} {hist.total:.3f}s/{hist.count}"
            for name, hist in sorted(collector.span_hists.items()))
        lines.append(f"spans — {spans}")
    return "\n".join(lines)
