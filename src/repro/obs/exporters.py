"""`repro.obs.exporters` — JSONL event logs, tables, Prometheus text.

* :class:`JsonlWriter` — a bus subscriber that streams every event to
  a JSON-Lines file (one ``{"kind": ..., ...}`` object per line);
* :func:`read_events` — the matching reader, reconstructing the typed
  event objects via :data:`~repro.obs.telemetry.EVENT_TYPES`; pass
  ``follow=True`` to tail a growing log (live dashboards);
* :func:`summary_table` — end-of-run per-cluster table rendered from a
  :class:`~repro.obs.metrics.MetricsCollector`;
* :func:`render_prometheus` — Prometheus text exposition of a
  :class:`~repro.obs.metrics.MetricsCollector` (or any flat dict),
  served by the control plane's ``metrics`` request;
* ``MetricsCollector.flat()`` (in :mod:`repro.obs.metrics`) is the
  bench-friendly flat-dict exporter.
"""

from __future__ import annotations

import atexit
import functools
import json
import re
import time
import weakref
from pathlib import Path
from typing import (
    IO, Callable, Iterator, List, Mapping, Optional, Sequence, Union,
)

from typing import Dict, Tuple

from .metrics import Histogram, MetricsCollector
from .telemetry import EVENT_TYPES, TelemetryBus, TelemetryEvent

__all__ = ["JsonlWriter", "merge_event_logs", "read_events",
           "read_sharded_events", "render_prometheus", "summary_table"]

#: One shared compact encoder — ``json.dumps(obj, separators=...)``
#: builds a fresh ``JSONEncoder`` per call.  Used as the slow-path
#: fallback for non-scalar field values (the generic case).
_ENCODER = json.JSONEncoder(separators=(",", ":"))

#: Escaped-string cache for the fast line encoder.  Event strings come
#: from small per-run vocabularies (cluster names, fault kinds, span
#: names, retirement reasons), so caching their JSON form amortises the
#: escape scan to a dict lookup.  Bounded as a guard against a
#: pathological high-cardinality producer.
_STRING_CACHE: Dict[str, str] = {}
_STRING_CACHE_MAX = 4096

#: Per event class: precomputed ``{"kind":...,"field":`` key prefixes in
#: field order, so serialising an event is just interleaving cached
#: prefixes with encoded values.
_CLASS_PREFIXES: Dict[type, Tuple[str, ...]] = {}


def _encode_str(value: str) -> str:
    cached = _STRING_CACHE.get(value)
    if cached is None:
        cached = _ENCODER.encode(value)
        if len(_STRING_CACHE) < _STRING_CACHE_MAX:
            _STRING_CACHE[value] = cached
    return cached


def _encode_value(value: object) -> str:
    # Exact-class checks: ``bool`` is an ``int`` subclass, and numpy
    # scalars masquerade as numbers but need the generic fallback.
    cls = value.__class__
    if cls is float:
        return repr(value)
    if cls is int:
        return repr(value)
    if cls is str:
        return _encode_str(value)
    if cls is bool:
        return "true" if value else "false"
    if value is None:
        return "null"
    return _ENCODER.encode(value)


def _encode_event(event: TelemetryEvent) -> str:
    """One compact JSON line for ``event`` (no trailing newline).

    Equivalent to ``_ENCODER.encode(event.as_dict())`` but ~3x cheaper:
    key prefixes are precomputed per event class and repeated strings
    hit :data:`_STRING_CACHE`, which is what keeps enabled-JSONL
    overhead inside the benched budget (see ``bench_resilience.py``).
    """
    fields = event.__dict__
    cls = event.__class__
    if not fields:
        return f'{{"kind":{_ENCODER.encode(cls.kind)}}}'
    prefixes = _CLASS_PREFIXES.get(cls)
    if prefixes is None:
        prefixes = tuple(
            (f'{{"kind":{_ENCODER.encode(cls.kind)},"{name}":'
             if index == 0 else f',"{name}":')
            for index, name in enumerate(fields))
        _CLASS_PREFIXES[cls] = prefixes
    parts = []
    for prefix, value in zip(prefixes, fields.values()):
        parts.append(prefix)
        parts.append(_encode_value(value))
    parts.append("}")
    return "".join(parts)


def _flush_on_exit(ref: "weakref.ref[JsonlWriter]") -> None:
    writer = ref()
    if writer is not None and writer._handle is not None:
        writer.flush()


class JsonlWriter:
    """Streams bus events to a JSON-Lines file.

    The writer is **write-behind**: events are appended to an in-memory
    buffer on the hot path and bulk-encoded to the file whenever the
    buffer reaches ``flush_every`` events (and at :meth:`flush` /
    :meth:`close`).  Bulk encoding in one tight loop is measurably
    cheaper than encoding inline between simulation steps, which is
    what keeps enabled-telemetry overhead inside the benched budget
    (see ``bench_resilience.py``).  Use as a context manager, or call
    :meth:`close` when the run finishes::

        bus = TelemetryBus()
        with JsonlWriter(path, bus):
            scheduler = EdgeTrainingScheduler(..., telemetry=bus)
            scheduler.run(...)

    An ``atexit`` hook flushes any still-open writer at interpreter
    shutdown, so buffered events survive an interrupted experiment even
    when :meth:`close` never runs (the hook holds only a weakref and is
    unregistered by :meth:`close`, so writers stay collectable).

    Pass ``flush_every=1`` to trade overhead for a tail-able file that
    is current after every event (live dashboards; crash forensics).
    """

    def __init__(self, path: Union[str, Path],
                 bus: Optional[TelemetryBus] = None,
                 flush_every: int = 4096) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self._handle: Optional[IO[str]] = open(self.path, "w")
        self._buffer: List[TelemetryEvent] = []
        self._flush_every = flush_every
        self.events_written = 0
        self._unsubscribe = None
        if bus is not None:
            self._unsubscribe = bus.subscribe(self.write_event)
        # A unique partial per writer makes ``atexit.unregister`` exact
        # (unregistering one writer cannot drop another's hook).
        self._atexit_cb = functools.partial(_flush_on_exit,
                                            weakref.ref(self))
        atexit.register(self._atexit_cb)

    def write_event(self, event: TelemetryEvent) -> None:
        if self._handle is None:
            raise ValueError(f"JsonlWriter({self.path}) is closed")
        self._buffer.append(event)
        self.events_written += 1
        if len(self._buffer) >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        """Drain the buffer to disk (one bulk encode + one write)."""
        if self._handle is None:
            raise ValueError(f"JsonlWriter({self.path}) is closed")
        if self._buffer:
            encode = _encode_event
            self._handle.write(
                "".join([encode(event) + "\n" for event in self._buffer]))
            self._buffer.clear()
        self._handle.flush()

    def close(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        if self._handle is not None:
            atexit.unregister(self._atexit_cb)
            self.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: Union[str, Path], follow: bool = False,
                poll_s: float = 0.2,
                stop: Optional[Callable[[], bool]] = None
                ) -> Iterator[TelemetryEvent]:
    """Yield typed events back from a :class:`JsonlWriter` log.

    Unknown kinds (from a newer writer) raise ``KeyError`` — logs are a
    contract, not a best-effort stream.  A ``"shard"`` tag (stamped by
    :func:`merge_event_logs`) is transparently dropped, so merged
    multi-shard logs round-trip through the same reader; use
    :func:`read_sharded_events` to keep the tag.

    With ``follow=True`` the reader replays the file then **tails** it:
    it keeps polling (every ``poll_s`` seconds) for lines a live
    :class:`JsonlWriter` appends, buffering partial trailing lines
    until their newline arrives.  The generator runs until ``stop()``
    returns True — it performs one final read after observing the stop
    so nothing flushed before the flag flipped is missed — or until the
    consumer abandons it.
    """
    if not follow:
        for _, event in read_sharded_events(path):
            yield event
        return

    def parse(line: str) -> TelemetryEvent:
        payload = json.loads(line)
        payload.pop("shard", None)
        cls = EVENT_TYPES[payload.pop("kind")]
        return cls(**payload)

    buffer = ""
    with open(path) as handle:
        while True:
            stopping = stop is not None and stop()
            chunk = handle.read()
            if chunk:
                buffer += chunk
                complete, sep, buffer = buffer.rpartition("\n")
                if sep:
                    for line in complete.split("\n"):
                        line = line.strip()
                        if line:
                            yield parse(line)
            elif stopping:
                return
            else:
                time.sleep(poll_s)


def read_sharded_events(path: Union[str, Path]
                        ) -> Iterator[Tuple[Optional[int], TelemetryEvent]]:
    """Yield ``(shard, event)`` pairs from a (possibly merged) log.

    ``shard`` is ``None`` for lines a plain :class:`JsonlWriter` wrote;
    merged logs carry the originating shard id on every line.
    """
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            shard = payload.pop("shard", None)
            cls = EVENT_TYPES[payload.pop("kind")]
            yield shard, cls(**payload)


def merge_event_logs(paths: Sequence[Union[str, Path]],
                     out_path: Union[str, Path],
                     shard_ids: Optional[Sequence[int]] = None) -> int:
    """Fold per-shard JSONL logs into one shard-tagged stream.

    Each input line gains a leading ``"shard": <id>`` key (ids default
    to the position of the source file in ``paths``), preserving the
    original event payload byte for byte — so
    :func:`read_sharded_events` recovers exactly the typed events each
    shard emitted, attributed to its shard, and :func:`read_events`
    round-trips the merged file like any single-writer log.  Events
    appear shard by shard in ``paths`` order (within a shard, in
    emission order); per-event ``time_s`` fields carry each fleet's own
    simulated clock, so cross-shard interleaving has no meaning to
    restore.  Returns the number of events written.
    """
    if shard_ids is None:
        shard_ids = list(range(len(paths)))
    if len(shard_ids) != len(paths):
        raise ValueError(
            f"{len(paths)} paths but {len(shard_ids)} shard_ids")
    written = 0
    with open(out_path, "w") as out:
        for shard, path in zip(shard_ids, paths):
            prefix = f'{{"shard":{int(shard)},'
            with open(path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    if not line.startswith("{"):
                        raise ValueError(
                            f"{path}: not a JSONL event log line: "
                            f"{line[:60]!r}")
                    out.write(prefix + line[1:] + "\n")
                    written += 1
    return written


def summary_table(collector: MetricsCollector) -> str:
    """End-of-run per-cluster health table (plain text).

    One row per cluster: rounds, delivered share, faults, last loss,
    battery; a footer totals channel traffic and span wall time.
    """
    lines: List[str] = []
    header = (f"{'cluster':<12} {'rounds':>6} {'deliv':>6} {'faults':>6} "
              f"{'loss':>10} {'battery J':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    for name, stats in sorted(collector.clusters.items()):
        loss = (f"{stats.loss.value:.4g}"
                if stats.loss.value is not None else "-")
        battery = (f"{stats.battery_j.value:.3f}"
                   if stats.battery_j.value is not None else "-")
        lines.append(
            f"{name:<12} {stats.rounds.value:>6.0f} "
            f"{stats.delivered.value:>6.0f} {stats.faults.value:>6.0f} "
            f"{loss:>10} {battery:>10}")
    lines.append("-" * len(header))
    lines.append(
        f"transmits {collector.transmits.value:.0f} | "
        f"frames {collector.frames_sent.value:.0f} | "
        f"radio {collector.radio_energy_j:.4g} J | "
        f"deadline misses {collector.deadline_misses.value:.0f}")
    if collector.retirements:
        retired = ", ".join(f"{reason}: {count}" for reason, count
                            in sorted(collector.retirements.items()))
        lines.append(f"retired — {retired}")
    if collector.span_hists:
        spans = ", ".join(
            f"{name} {hist.total:.3f}s/{hist.count}"
            for name, hist in sorted(collector.span_hists.items()))
        lines.append(f"spans — {spans}")
    return "\n".join(lines)


# -- Prometheus text exposition -----------------------------------------

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(namespace: str, name: str) -> str:
    full = f"{namespace}_{name}" if namespace else name
    full = _METRIC_NAME_RE.sub("_", full)
    if full[0].isdigit():
        full = "_" + full
    return full


def _prom_escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_prom_escape(value)}"'
                     for key, value in labels.items())
    return "{" + inner + "}"


def _prom_value(value: float) -> str:
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _prom_family(lines: List[str], name: str, mtype: str, help_text: str,
                 samples: Sequence[Tuple[Mapping[str, str], float]]) -> None:
    if not samples:
        return
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {mtype}")
    for labels, value in samples:
        lines.append(f"{name}{_prom_labels(labels)} {_prom_value(value)}")


def _prom_histogram(lines: List[str], name: str, help_text: str,
                    items: Sequence[Tuple[Mapping[str, str], Histogram]]
                    ) -> None:
    """One histogram family; buckets rendered cumulatively per spec."""
    items = [(labels, hist) for labels, hist in items if hist.count]
    if not items:
        return
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} histogram")
    for labels, hist in items:
        cumulative = 0
        for edge, count in zip(hist.edges, hist.counts):
            cumulative += count
            bucket = dict(labels)
            bucket["le"] = _prom_value(edge)
            lines.append(f"{name}_bucket{_prom_labels(bucket)} {cumulative}")
        cumulative += hist.counts[-1]
        bucket = dict(labels)
        bucket["le"] = "+Inf"
        lines.append(f"{name}_bucket{_prom_labels(bucket)} {cumulative}")
        lines.append(f"{name}_sum{_prom_labels(labels)} "
                     f"{_prom_value(hist.total)}")
        lines.append(f"{name}_count{_prom_labels(labels)} {cumulative}")


def render_prometheus(source: Union[MetricsCollector, Mapping[str, float]],
                      namespace: str = "repro") -> str:
    """Prometheus text exposition (version 0.0.4) of run metrics.

    Accepts a live :class:`~repro.obs.metrics.MetricsCollector` — the
    rich path, emitting typed counter/gauge/histogram families with
    per-cluster, per-reason, and per-span labels — or any flat mapping
    of scalars (e.g. ``collector.flat()``), rendered as gauges.  The
    control plane serves this at its ``metrics`` request; the output
    ends with a trailing newline as scrapers expect.
    """
    lines: List[str] = []
    if not isinstance(source, MetricsCollector):
        for key, value in sorted(source.items()):
            _prom_family(lines, _prom_name(namespace, key), "gauge",
                         f"flat metric {key}", [({}, float(value))])
        return "\n".join(lines) + "\n" if lines else ""

    collector = source

    def n(name: str) -> str:
        return _prom_name(namespace, name)

    _prom_family(lines, n("transmits_total"), "counter",
                 "Payload transmissions attempted",
                 [({}, collector.transmits.value)])
    _prom_family(lines, n("frames_sent_total"), "counter",
                 "Radio frames sent including retransmissions",
                 [({}, collector.frames_sent.value)])
    _prom_family(lines, n("retransmissions_total"), "counter",
                 "ARQ retransmissions",
                 [({}, collector.retransmissions.value)])
    _prom_family(lines, n("payloads_delivered_total"), "counter",
                 "Payloads delivered end to end",
                 [({}, collector.payloads_delivered.value)])
    _prom_family(lines, n("wire_bytes_total"), "counter",
                 "Bytes put on the wire",
                 [({}, collector.wire_bytes.value)])
    _prom_family(lines, n("deadline_misses_total"), "counter",
                 "Rounds first finishing past their deadline",
                 [({}, collector.deadline_misses.value)])
    _prom_family(lines, n("radio_energy_joules"), "gauge",
                 "Fleet-total cumulative radio energy",
                 [({}, collector.radio_energy_j)])
    _prom_family(lines, n("clusters"), "gauge",
                 "Clusters observed in the event stream",
                 [({}, float(len(collector.clusters)))])
    _prom_family(
        lines, n("retired_total"), "counter",
        "Clusters permanently retired, by reason",
        [({"reason": reason}, float(count))
         for reason, count in sorted(collector.retirements.items())])

    ordered = sorted(collector.clusters.items())
    _prom_family(lines, n("cluster_rounds_total"), "counter",
                 "Training rounds charged per cluster",
                 [({"cluster": name}, stats.rounds.value)
                  for name, stats in ordered])
    _prom_family(lines, n("cluster_delivered_total"), "counter",
                 "Delivered rounds per cluster",
                 [({"cluster": name}, stats.delivered.value)
                  for name, stats in ordered])
    _prom_family(lines, n("cluster_faults_total"), "counter",
                 "Faults applied per cluster",
                 [({"cluster": name}, stats.faults.value)
                  for name, stats in ordered])
    _prom_family(lines, n("cluster_loss"), "gauge",
                 "Last observed reconstruction loss (NMSE proxy)",
                 [({"cluster": name}, stats.loss.value)
                  for name, stats in ordered
                  if stats.loss.value is not None])
    _prom_family(lines, n("cluster_battery_joules"), "gauge",
                 "Last observed battery headroom",
                 [({"cluster": name}, stats.battery_j.value)
                  for name, stats in ordered
                  if stats.battery_j.value is not None])

    _prom_histogram(lines, n("round_loss"),
                    "Per-round reconstruction loss",
                    [({}, collector.loss_hist)])
    _prom_histogram(lines, n("battery_joules"),
                    "Battery headroom at round completion",
                    [({}, collector.battery_hist)])
    _prom_histogram(lines, n("frames_per_transmit"),
                    "Radio frames per payload transmission",
                    [({}, collector.frames_hist)])
    _prom_histogram(lines, n("segment_rounds"),
                    "Rounds fused per planner segment",
                    [({}, collector.segment_hist)])
    _prom_histogram(lines, n("span_seconds"),
                    "Wall-clock phase timings, by span name",
                    [({"name": name}, hist)
                     for name, hist in sorted(collector.span_hists.items())])
    return "\n".join(lines) + "\n" if lines else ""
