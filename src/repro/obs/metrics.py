"""`repro.obs.metrics` — counters, gauges, histograms, ring series.

Small, dependency-free metric primitives plus a
:class:`MetricsCollector` that subscribes to a
:class:`~repro.obs.telemetry.TelemetryBus` and aggregates the event
stream into run-level metrics: per-cluster reconstruction loss (the
NMSE proxy the scheduler ledgers), battery headroom, cumulative radio
energy, frames per delivery, segment lengths, and wall-time per span
phase.  ``flat()`` snapshots everything into a bench-friendly flat
dict of scalars.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .telemetry import (
    ClusterRetired, DeadlineMissed, FaultApplied, RoundCompleted,
    SegmentFused, SpanClosed, TelemetryBus, TelemetryEvent, TransmitBatch,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "RingSeries", "MetricsCollector",
]


@dataclass
class Counter:
    """Monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


@dataclass
class Gauge:
    """Last-observed value (None until first set)."""

    value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with inclusive upper bounds.

    ``buckets`` are the finite upper edges, strictly increasing; an
    implicit +inf bucket catches the overflow.  Tracks count / sum /
    min / max alongside the bucket counts so summary tables can report
    a mean without re-walking observations.
    """

    def __init__(self, buckets: Sequence[float]) -> None:
        edges = list(buckets)
        if not edges:
            raise ValueError("need at least one bucket edge")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError("bucket edges must be strictly increasing")
        self.edges: Tuple[float, ...] = tuple(edges)
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count, "sum": self.total,
            "min": self.min, "max": self.max,
            "buckets": dict(zip([*map(str, self.edges), "+inf"],
                                self.counts)),
        }


class RingSeries:
    """Fixed-capacity time series: keeps the most recent observations.

    Appends are O(1) into a preallocated ring; ``values()`` returns the
    retained window oldest-first.  ``total`` counts every observation
    ever pushed, so consumers can tell how much history was dropped.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: List[float] = [0.0] * capacity
        self.total = 0

    def push(self, value: float) -> None:
        self._ring[self.total % self.capacity] = value
        self.total += 1

    def __len__(self) -> int:
        return min(self.total, self.capacity)

    def values(self) -> List[float]:
        if self.total <= self.capacity:
            return self._ring[:self.total]
        head = self.total % self.capacity
        return self._ring[head:] + self._ring[:head]

    @property
    def last(self) -> Optional[float]:
        if self.total == 0:
            return None
        return self._ring[(self.total - 1) % self.capacity]


#: Default bucket edges for each histogram the collector keeps.
_LOSS_BUCKETS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)
_FRAMES_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
_SEGMENT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)
_SPAN_BUCKETS = (1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)
_BATTERY_BUCKETS = (0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0)


@dataclass
class _ClusterStats:
    rounds: Counter = field(default_factory=Counter)
    delivered: Counter = field(default_factory=Counter)
    faults: Counter = field(default_factory=Counter)
    loss: Gauge = field(default_factory=Gauge)
    battery_j: Gauge = field(default_factory=Gauge)
    radio_energy_j: Gauge = field(default_factory=Gauge)
    loss_series: RingSeries = field(
        default_factory=lambda: RingSeries(256))


class MetricsCollector:
    """Bus subscriber that folds the event stream into metrics.

    Attach with ``collector = MetricsCollector(bus)``; read the
    aggregates from its attributes or snapshot them with ``flat()``.
    """

    KINDS = (
        RoundCompleted.kind, SegmentFused.kind, FaultApplied.kind,
        TransmitBatch.kind, ClusterRetired.kind, DeadlineMissed.kind,
        SpanClosed.kind,
    )

    def __init__(self, bus: Optional[TelemetryBus] = None,
                 series_capacity: int = 256) -> None:
        self._series_capacity = series_capacity
        self.clusters: Dict[str, _ClusterStats] = {}
        self.loss_hist = Histogram(_LOSS_BUCKETS)
        self.battery_hist = Histogram(_BATTERY_BUCKETS)
        self.frames_hist = Histogram(_FRAMES_BUCKETS)
        self.segment_hist = Histogram(_SEGMENT_BUCKETS)
        self.span_hists: Dict[str, Histogram] = {}
        self.transmits = Counter()
        self.frames_sent = Counter()
        self.retransmissions = Counter()
        self.payloads_delivered = Counter()
        self.wire_bytes = Counter()
        self.deadline_misses = Counter()
        self.retirements: Dict[str, int] = {}
        if bus is not None:
            bus.subscribe(self.observe_event, kinds=self.KINDS)

    def _cluster(self, name: str) -> _ClusterStats:
        stats = self.clusters.get(name)
        if stats is None:
            stats = self.clusters[name] = _ClusterStats(
                loss_series=RingSeries(self._series_capacity))
        return stats

    def observe_event(self, event: TelemetryEvent) -> None:
        if isinstance(event, RoundCompleted):
            stats = self._cluster(event.cluster)
            stats.rounds.inc()
            if event.delivered:
                stats.delivered.inc()
            if event.loss is not None:
                stats.loss.set(event.loss)
                stats.loss_series.push(event.loss)
                self.loss_hist.observe(event.loss)
            if event.battery_j is not None:
                stats.battery_j.set(event.battery_j)
                self.battery_hist.observe(event.battery_j)
            if event.radio_energy_j is not None:
                stats.radio_energy_j.set(event.radio_energy_j)
        elif isinstance(event, TransmitBatch):
            self.transmits.inc(event.count)
            self.frames_sent.inc(event.attempts)
            self.retransmissions.inc(event.retransmissions)
            self.payloads_delivered.inc(event.delivered)
            self.wire_bytes.inc(event.wire_bytes)
            if event.count:
                self.frames_hist.observe(event.attempts / event.count)
        elif isinstance(event, SegmentFused):
            self.segment_hist.observe(event.successes + event.failures)
        elif isinstance(event, FaultApplied):
            self._cluster(event.cluster).faults.inc()
        elif isinstance(event, ClusterRetired):
            self.retirements[event.reason] = (
                self.retirements.get(event.reason, 0) + 1)
        elif isinstance(event, DeadlineMissed):
            self.deadline_misses.inc()
        elif isinstance(event, SpanClosed):
            hist = self.span_hists.get(event.name)
            if hist is None:
                hist = self.span_hists[event.name] = Histogram(_SPAN_BUCKETS)
            hist.observe(event.elapsed_s)

    # -- snapshots ------------------------------------------------------

    @property
    def radio_energy_j(self) -> float:
        """Fleet-total radio energy (sum of per-cluster cumulative gauges)."""
        return sum(stats.radio_energy_j.value or 0.0
                   for stats in self.clusters.values())

    def flat(self) -> Dict[str, float]:
        """Bench-friendly flat dict of scalar aggregates."""
        out: Dict[str, float] = {
            "transmits": self.transmits.value,
            "frames_sent": self.frames_sent.value,
            "retransmissions": self.retransmissions.value,
            "payloads_delivered": self.payloads_delivered.value,
            "wire_bytes": self.wire_bytes.value,
            "radio_energy_j": self.radio_energy_j,
            "deadline_misses": self.deadline_misses.value,
            "segments": float(self.segment_hist.count),
            "clusters": float(len(self.clusters)),
        }
        for reason, count in sorted(self.retirements.items()):
            out[f"retired_{reason}"] = float(count)
        for name, stats in sorted(self.clusters.items()):
            prefix = f"cluster_{name}"
            out[f"{prefix}_rounds"] = stats.rounds.value
            out[f"{prefix}_delivered"] = stats.delivered.value
            out[f"{prefix}_faults"] = stats.faults.value
            if stats.loss.value is not None:
                out[f"{prefix}_loss"] = stats.loss.value
            if stats.battery_j.value is not None:
                out[f"{prefix}_battery_j"] = stats.battery_j.value
        for name, hist in sorted(self.span_hists.items()):
            out[f"span_{name}_s"] = hist.total
            out[f"span_{name}_calls"] = float(hist.count)
        return out
