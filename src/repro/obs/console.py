"""`repro.obs.console` — opt-in live console renderer for long runs.

Subscribes to the telemetry bus and repaints a per-cluster health
table (round, loss, battery, faults, channel state) on a wall-clock
throttle, so a 1e5-round coded/lossy/faulty run is no longer a black
box until its final report.  Writes through an injectable text stream
(``sys.stderr`` by default) — never ``print`` — and is fully testable
against a ``StringIO``.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Dict, List, Optional

from .telemetry import (
    ClusterRetired, DeadlineMissed, FaultApplied, QuorumCheck,
    RoundCompleted, TelemetryBus, TelemetryEvent,
)

__all__ = ["LiveConsole"]


class _Row:
    __slots__ = ("round", "loss", "battery_j", "faults", "status")

    def __init__(self) -> None:
        self.round = 0
        self.loss: Optional[float] = None
        self.battery_j: Optional[float] = None
        self.faults = 0
        self.status = "running"


class LiveConsole:
    """Renders fleet health rows as telemetry events arrive.

    ``refresh_s`` throttles repaints on wall clock (0 repaints on every
    event — handy in tests).  The renderer keeps no simulation state of
    its own; it is a pure fold over the event stream.
    """

    KINDS = (
        RoundCompleted.kind, FaultApplied.kind, ClusterRetired.kind,
        QuorumCheck.kind, DeadlineMissed.kind,
    )

    def __init__(self, bus: Optional[TelemetryBus] = None,
                 stream: Optional[IO[str]] = None,
                 refresh_s: float = 0.5) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.refresh_s = refresh_s
        self.rows: Dict[str, _Row] = {}
        self.renders = 0
        self._last_render = 0.0
        if bus is not None:
            bus.subscribe(self.observe_event, kinds=self.KINDS)

    def _row(self, cluster: str) -> _Row:
        row = self.rows.get(cluster)
        if row is None:
            row = self.rows[cluster] = _Row()
        return row

    def observe_event(self, event: TelemetryEvent) -> None:
        if isinstance(event, RoundCompleted):
            row = self._row(event.cluster)
            row.round = event.round
            if event.loss is not None:
                row.loss = event.loss
            row.battery_j = event.battery_j
        elif isinstance(event, FaultApplied):
            row = self._row(event.cluster)
            row.faults += 1
            row.status = f"fault:{event.fault}"
        elif isinstance(event, ClusterRetired):
            self._row(event.cluster).status = f"retired:{event.reason}"
        elif isinstance(event, DeadlineMissed):
            self._row(event.cluster).status = "late"
        elif isinstance(event, QuorumCheck):
            if event.halted:
                for row in self.rows.values():
                    if row.status == "running":
                        row.status = "quorum-halt"
        self._maybe_render()

    def _maybe_render(self) -> None:
        now = time.perf_counter()
        if self.refresh_s and now - self._last_render < self.refresh_s:
            return
        self._last_render = now
        self.render()

    def render(self) -> None:
        """Repaint the health table unconditionally."""
        lines: List[str] = []
        header = (f"{'cluster':<12} {'round':>6} {'loss':>10} "
                  f"{'battery J':>10} {'faults':>6}  status")
        lines.append(header)
        for name, row in sorted(self.rows.items()):
            loss = f"{row.loss:.4g}" if row.loss is not None else "-"
            battery = (f"{row.battery_j:.3f}"
                       if row.battery_j is not None else "-")
            lines.append(f"{name:<12} {row.round:>6} {loss:>10} "
                         f"{battery:>10} {row.faults:>6}  {row.status}")
        self.stream.write("\n".join(lines) + "\n")
        self.renders += 1
