"""`repro.obs.telemetry` — the fleet telemetry bus.

A :class:`TelemetryBus` carries **typed events** from the scheduler,
round executors, channel kernel, and fault injector to any number of
subscribers (JSONL writers, metric collectors, live consoles, the
future control-plane server).  The design contract, inherited from the
rest of this repo:

* **Zero cost when off.**  Every emission site is written as::

      if bus.wants(RoundCompleted.kind):
          bus.emit(RoundCompleted(...))

  so with the module-level :data:`NULL_BUS` (or no subscriber for that
  kind) the event object is never even constructed.  ``wants`` on the
  null bus is a constant ``False``.

* **No simulation side effects.**  The bus never draws from an RNG,
  never touches float accumulation order, and is invisible to the
  simulated clock — fused/unfused and vectorized/scalar runs stay
  bit-identical with telemetry on or off.  ``span()`` timers use
  wall-clock ``time.perf_counter`` which exists outside the simulation.

Events are frozen dataclasses with a ``kind`` class attribute naming
the event type; ``as_dict()`` gives a flat JSON-ready mapping (used by
the JSONL exporter) and :data:`EVENT_TYPES` maps kinds back to classes
(used by the reader).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, Optional, Tuple, Type

__all__ = [
    "TelemetryEvent",
    "RoundCompleted", "SegmentFused", "WavePlanned", "FaultApplied",
    "ArqRederived", "ParityChosen", "TransmitBatch", "QuorumCheck",
    "ClusterRetired", "DeadlineMissed", "SpanClosed",
    "EVENT_TYPES", "TelemetryBus", "NullTelemetryBus", "NULL_BUS",
]


@dataclass(frozen=True)
class TelemetryEvent:
    """Base class for all bus events (never emitted itself)."""

    kind = "event"

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-ready mapping including the ``kind`` discriminator.

        Events are flat dataclasses of scalars, so a shallow copy of
        ``__dict__`` suffices — ``dataclasses.asdict`` would deep-copy
        every field, which dominates JSONL export cost at fleet scale.
        """
        payload: Dict[str, object] = {"kind": self.kind}
        payload.update(self.__dict__)
        return payload


@dataclass(frozen=True)
class RoundCompleted(TelemetryEvent):
    """A training round spent its budget slot (delivered or not).

    Emitted by both the ideal round loop and the event engine's edge
    process; ``delivered`` is False when an uplink/downlink failure
    consumed the round without producing an aggregate.
    """

    kind = "round_completed"

    cluster: str
    round: int
    delivered: bool
    loss: Optional[float]
    time_s: float
    battery_j: Optional[float] = None
    radio_energy_j: Optional[float] = None


@dataclass(frozen=True)
class SegmentFused(TelemetryEvent):
    """The segment planner fused a horizon into one fleet batch."""

    kind = "segment_fused"

    index: int
    mode: str
    horizon_s: Optional[float]
    clusters: int
    successes: int
    failures: int
    bound: str = ""   # which planner bound admitted the batch


@dataclass(frozen=True)
class WavePlanned(TelemetryEvent):
    """Wave mode planned its next fleet wave (full fusion or fallback).

    ``bound`` names the planner bound that decided the wave's extent:
    ``"all-before-horizon"`` (every outstanding round provably finishes
    before the fault horizon), ``"prefix"`` (per-cluster incremental
    bound fused the earliest-consumed rounds only), ``"quorum-risk"``
    (a death inside the window could trip the quorum mid-wave) or
    ``"requesting-only"`` (nothing beyond the requesting round fit).
    """

    kind = "wave_planned"

    clusters: int
    rounds: int
    fused_all: bool
    bound: str = ""


@dataclass(frozen=True)
class FaultApplied(TelemetryEvent):
    """The fault injector fired a scheduled fault on a cluster."""

    kind = "fault_applied"

    cluster: str
    fault: str
    time_s: float


@dataclass(frozen=True)
class ArqRederived(TelemetryEvent):
    """Adaptive ARQ swapped a channel's retry budget at a fault."""

    kind = "arq_rederived"

    cluster: str
    direction: str
    old_retries: int
    new_retries: int
    time_s: float


@dataclass(frozen=True)
class ParityChosen(TelemetryEvent):
    """Energy-optimal FEC parity resolved for one channel direction."""

    kind = "parity_chosen"

    cluster: str
    direction: str
    parity: int
    loss_rate: float
    headroom_j: float


@dataclass(frozen=True)
class TransmitBatch(TelemetryEvent):
    """The vectorized channel kernel priced a batch of transmissions.

    Covers live batched sends, trace recording, and chunked-trace
    refills — they all route through ``UnreliableChannel.transmit_batch``.
    """

    kind = "transmit_batch"

    payload_bytes: int
    count: int
    delivered: int
    attempts: int
    lost_frames: int
    retransmissions: int
    wire_bytes: int


@dataclass(frozen=True)
class QuorumCheck(TelemetryEvent):
    """The event engine evaluated the fleet quorum before a pick."""

    kind = "quorum_check"

    alive: int
    total: int
    quorum: float
    halted: bool
    time_s: float


@dataclass(frozen=True)
class ClusterRetired(TelemetryEvent):
    """A cluster permanently left the fleet (death, budget, quorum...)."""

    kind = "cluster_retired"

    cluster: str
    reason: str
    time_s: float


@dataclass(frozen=True)
class DeadlineMissed(TelemetryEvent):
    """A cluster first finished a round past its deadline."""

    kind = "deadline_missed"

    cluster: str
    round: int
    finish_s: float
    deadline_s: float


@dataclass(frozen=True)
class SpanClosed(TelemetryEvent):
    """A wall-clock phase timer closed (plan / execute / trace-record).

    ``depth`` reflects span nesting at close time (outermost = 0) so a
    consumer can reconstruct the phase tree without matching ids.
    """

    kind = "span"

    name: str
    elapsed_s: float
    depth: int


#: kind -> event class, for the JSONL reader (see ``exporters.read_events``).
EVENT_TYPES: Dict[str, Type[TelemetryEvent]] = {
    cls.kind: cls
    for cls in (
        RoundCompleted, SegmentFused, WavePlanned, FaultApplied,
        ArqRederived, ParityChosen, TransmitBatch, QuorumCheck,
        ClusterRetired, DeadlineMissed, SpanClosed,
    )
}


@dataclass
class _Subscription:
    callback: Callable[[TelemetryEvent], None]
    kinds: Optional[frozenset]  # None = all kinds


class TelemetryBus:
    """Dispatches typed events to subscribers, filtered by kind.

    ``wants(kind)`` is the hot-path guard: a set-membership test (or a
    cached all-kinds flag) that emission sites check *before*
    constructing an event.  ``emit`` then fans the event out to every
    subscriber whose kind filter matches.
    """

    def __init__(self) -> None:
        # Copy-on-write subscriber snapshot: ``emit`` iterates one
        # immutable tuple while subscribe/unsubscribe swap in a new one,
        # so a control-plane thread may (un)subscribe concurrently with
        # a simulation thread's emissions without a lock on the hot
        # path and without an emission ever seeing a half-edited list.
        self._subs: Tuple[_Subscription, ...] = ()
        self._wanted: frozenset = frozenset()
        self._wants_all = False
        self._span_depth = 0

    # -- subscription ---------------------------------------------------

    def subscribe(self, callback: Callable[[TelemetryEvent], None],
                  kinds: Optional[Iterable[str]] = None) -> Callable[[], None]:
        """Register ``callback``; returns an unsubscribe thunk.

        ``kinds`` limits delivery (and ``wants``) to those event kinds;
        ``None`` subscribes to everything, including spans.
        """
        sub = _Subscription(
            callback,
            None if kinds is None else frozenset(kinds),
        )
        self._subs = self._subs + (sub,)
        self._rebuild_wanted()

        def unsubscribe() -> None:
            if sub in self._subs:
                self._subs = tuple(s for s in self._subs if s is not sub)
                self._rebuild_wanted()

        return unsubscribe

    def _rebuild_wanted(self) -> None:
        self._wants_all = any(s.kinds is None for s in self._subs)
        wanted = set()
        for sub in self._subs:
            if sub.kinds is not None:
                wanted.update(sub.kinds)
        self._wanted = frozenset(wanted)

    # -- emission -------------------------------------------------------

    def wants(self, kind: str) -> bool:
        """True when at least one subscriber would receive ``kind``."""
        return self._wants_all or kind in self._wanted

    def emit(self, event: TelemetryEvent) -> None:
        for sub in self._subs:
            if sub.kinds is None or event.kind in sub.kinds:
                sub.callback(event)

    # -- spans ----------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Nestable wall-clock timer; emits a :class:`SpanClosed` on exit.

        Timing only happens when some subscriber wants spans, so an
        unsubscribed bus pays one ``wants`` check per span.
        """
        if not self.wants(SpanClosed.kind):
            yield
            return
        depth = self._span_depth
        self._span_depth = depth + 1
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._span_depth = depth
            self.emit(SpanClosed(name=name, elapsed_s=elapsed, depth=depth))


class NullTelemetryBus(TelemetryBus):
    """The do-nothing bus: ``wants`` is constant False, ``emit`` drops.

    Instrumented modules hold this as their module-level default so the
    hot path costs one attribute load + one constant-False call when
    telemetry is off.  Subscribing to the null bus is a programming
    error and raises.
    """

    def subscribe(self, callback, kinds=None):  # pragma: no cover - guard
        raise TypeError(
            "cannot subscribe to NULL_BUS — pass a TelemetryBus via the "
            "telemetry= parameter instead")

    def wants(self, kind: str) -> bool:
        return False

    def emit(self, event: TelemetryEvent) -> None:
        pass

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        yield


#: Shared module-level default for every instrumented call site.
NULL_BUS = NullTelemetryBus()
