"""`repro.obs` — fleet observability: telemetry bus, metrics, exporters.

The zero-cost-when-off instrumentation layer threaded through the
scheduler, round executors, channel kernel, and fault injector.  See
:mod:`repro.obs.telemetry` for the bus and the event taxonomy,
:mod:`repro.obs.metrics` for the aggregation primitives,
:mod:`repro.obs.exporters` for JSONL logs / summary tables, and
:mod:`repro.obs.console` for the live run view.

Hard contract: the bus never draws randomness and never perturbs float
accumulation order — every engine path stays bit-identical with
telemetry on or off (asserted in ``tests/test_obs_telemetry.py``).
"""

from .console import LiveConsole
from .exporters import (
    JsonlWriter,
    read_events,
    render_prometheus,
    summary_table,
)
from .metrics import Counter, Gauge, Histogram, MetricsCollector, RingSeries
from .telemetry import (
    EVENT_TYPES,
    NULL_BUS,
    ArqRederived,
    ClusterRetired,
    DeadlineMissed,
    FaultApplied,
    NullTelemetryBus,
    ParityChosen,
    QuorumCheck,
    RoundCompleted,
    SegmentFused,
    SpanClosed,
    TelemetryBus,
    TelemetryEvent,
    TransmitBatch,
    WavePlanned,
)

__all__ = [
    "TelemetryBus", "NullTelemetryBus", "NULL_BUS", "TelemetryEvent",
    "EVENT_TYPES",
    "RoundCompleted", "SegmentFused", "WavePlanned", "FaultApplied",
    "ArqRederived", "ParityChosen", "TransmitBatch", "QuorumCheck",
    "ClusterRetired", "DeadlineMissed", "SpanClosed",
    "Counter", "Gauge", "Histogram", "RingSeries", "MetricsCollector",
    "JsonlWriter", "read_events", "render_prometheus", "summary_table",
    "LiveConsole",
]
