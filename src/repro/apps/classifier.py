"""Follow-up DL application: a 2-convolutional-layer CNN classifier.

The paper's downstream task (Sec. IV-A): a "simple 2-layer convolutional
neural network" trained on *reconstructed* data; its testing accuracy and
loss (Fig. 5) measure how useful each framework's reconstructions are for
IoT data-driven applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..nn import layers as L
from ..nn.data import ArrayDataset, DataLoader
from ..nn.losses import CrossEntropyLoss, accuracy
from ..nn.optim import Adam
from ..nn.tensor import Tensor


def build_simple_cnn(image_shape: Tuple[int, int, int], num_classes: int,
                     rng: Optional[np.random.Generator] = None) -> L.Sequential:
    """Conv(3x3)-ReLU-Pool x2 -> Dense: the paper's follow-up classifier."""
    rng = rng or np.random.default_rng()
    channels, height, width = image_shape
    if height % 4 or width % 4:
        raise ValueError("image height/width must be divisible by 4")
    return L.Sequential(
        L.Conv2D(channels, 8, 3, padding=1, rng=rng),
        L.ReLU(),
        L.MaxPool2D(2),
        L.Conv2D(8, 16, 3, padding=1, rng=rng),
        L.ReLU(),
        L.MaxPool2D(2),
        L.Flatten(),
        L.Dense(16 * (height // 4) * (width // 4), num_classes, rng=rng),
    )


@dataclass
class ClassifierHistory:
    """Per-epoch test metrics (the series of the paper's Fig. 5)."""

    epochs: List[int] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)
    test_loss: List[float] = field(default_factory=list)
    train_loss: List[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        if not self.test_accuracy:
            raise ValueError("history is empty")
        return self.test_accuracy[-1]

    @property
    def best_accuracy(self) -> float:
        if not self.test_accuracy:
            raise ValueError("history is empty")
        return max(self.test_accuracy)


class ImageClassifier:
    """Train/evaluate wrapper around the simple CNN.

    Parameters
    ----------
    image_shape:
        ``(channels, height, width)`` of the NCHW input.
    num_classes:
        Output classes (10 digits / 43 signs).
    """

    def __init__(self, image_shape: Tuple[int, int, int], num_classes: int,
                 learning_rate: float = 1e-3, seed: int = 0):
        self.image_shape = image_shape
        self.num_classes = num_classes
        self.rng = np.random.default_rng(seed)
        self.model = build_simple_cnn(image_shape, num_classes, self.rng)
        self.optimizer = Adam(self.model.parameters(), lr=learning_rate)
        self.loss = CrossEntropyLoss()

    # ------------------------------------------------------------------
    def _to_nchw(self, rows_or_images: np.ndarray) -> np.ndarray:
        """Accept flat rows or (B, H, W[, C]) images; return NCHW."""
        data = np.asarray(rows_or_images, dtype=float)
        channels, height, width = self.image_shape
        if data.ndim == 2:                      # flat rows
            if channels == 1:
                return data.reshape(-1, 1, height, width)
            return data.reshape(-1, height, width, channels).transpose(0, 3, 1, 2)
        if data.ndim == 3:                      # (B, H, W) grayscale
            return data[:, None, :, :]
        if data.ndim == 4:
            if data.shape[1] == channels:       # already NCHW
                return data
            return data.transpose(0, 3, 1, 2)   # NHWC -> NCHW
        raise ValueError(f"cannot interpret input of shape {data.shape}")

    def train_epoch(self, images: np.ndarray, labels: np.ndarray,
                    batch_size: int = 32) -> float:
        """One pass over the training data; returns mean train loss."""
        nchw = self._to_nchw(images)
        dataset = ArrayDataset(nchw, np.asarray(labels))
        loader = DataLoader(dataset, batch_size=batch_size, shuffle=True,
                            rng=self.rng)
        losses: List[float] = []
        self.model.train()
        for batch_images, batch_labels in loader:
            logits = self.model(Tensor(batch_images))
            loss_value = self.loss(logits, batch_labels)
            self.optimizer.zero_grad()
            loss_value.backward()
            self.optimizer.step()
            losses.append(loss_value.item())
        return float(np.mean(losses))

    def evaluate(self, images: np.ndarray, labels: np.ndarray,
                 batch_size: int = 128) -> Tuple[float, float]:
        """Returns (accuracy, mean loss) on a held-out set."""
        nchw = self._to_nchw(images)
        labels = np.asarray(labels)
        self.model.eval()
        correct_weighted = 0.0
        loss_weighted = 0.0
        for start in range(0, len(nchw), batch_size):
            batch = nchw[start:start + batch_size]
            batch_labels = labels[start:start + batch_size]
            logits = self.model(Tensor(batch))
            correct_weighted += accuracy(logits, batch_labels) * len(batch)
            loss_weighted += self.loss(logits, batch_labels).item() * len(batch)
        self.model.train()
        return correct_weighted / len(nchw), loss_weighted / len(nchw)

    def fit(self, train_images: np.ndarray, train_labels: np.ndarray,
            test_images: np.ndarray, test_labels: np.ndarray,
            epochs: int = 10, batch_size: int = 32,
            eval_epochs: Optional[List[int]] = None) -> ClassifierHistory:
        """Train and record test metrics each epoch (or at ``eval_epochs``)."""
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        history = ClassifierHistory()
        for epoch in range(1, epochs + 1):
            train_loss = self.train_epoch(train_images, train_labels, batch_size)
            if eval_epochs is None or epoch in eval_epochs:
                test_acc, test_loss = self.evaluate(test_images, test_labels)
                history.epochs.append(epoch)
                history.test_accuracy.append(test_acc)
                history.test_loss.append(test_loss)
                history.train_loss.append(train_loss)
        return history

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Class predictions for a batch."""
        self.model.eval()
        logits = self.model(Tensor(self._to_nchw(images)))
        self.model.train()
        return logits.data.argmax(axis=1)
