"""`repro.apps` — follow-up DL applications fed by reconstructed data."""

from .classifier import ClassifierHistory, ImageClassifier, build_simple_cnn

__all__ = ["ClassifierHistory", "ImageClassifier", "build_simple_cnn"]
