"""Seed spacing for sharded fleets: shard count never perturbs streams.

The shard executor must be **bit-identical to the single-process run**
for the same seeds, no matter how many workers execute it.  That rules
out the obvious ``rng.integers(2**63)``-per-fleet seeding the scheduler
uses internally for clusters: drawing fleet seeds from one shared
stream couples every fleet's seed to how many fleets were seeded before
it *in this process* — repartitioning the job list across workers would
change every stream.

Instead each fleet derives its own :class:`numpy.random.SeedSequence`
child purely from ``(root_entropy, fleet_index)`` via ``spawn_key`` —
the construction ``SeedSequence.spawn`` uses under the hood, with the
index made explicit.  Properties relied on by
:mod:`repro.scale.sharding` (and property-tested in
``tests/test_scale_sharding.py``):

* **partition-independent** — the child depends only on the root
  entropy and the fleet's own index, never on which worker runs it,
  how many workers exist, or in what order fleets execute;
* **collision-resistant** — children for distinct indices are
  independent streams (SeedSequence's hashing guarantees, the same
  ones backing ``spawn()``);
* **stable** — a pure function, so re-running a shard (or resuming a
  failed one) reproduces the stream exactly.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

__all__ = ["fleet_seed_sequence", "fleet_rng", "spaced_seed_sequences"]

#: Entropy accepted for the root: a plain int seed or a SeedSequence.
RootEntropy = Union[int, np.random.SeedSequence]


def fleet_seed_sequence(root: RootEntropy,
                        fleet_index: int) -> np.random.SeedSequence:
    """The ``fleet_index``-th child sequence of ``root``.

    Equivalent to ``SeedSequence(root).spawn(fleet_index + 1)[-1]`` but
    O(1) in the index and independent of any spawn bookkeeping on the
    root (``spawn`` mutates ``n_children_spawned``; this never does).
    """
    if fleet_index < 0:
        raise ValueError(f"fleet_index must be >= 0, got {fleet_index}")
    if isinstance(root, np.random.SeedSequence):
        entropy = root.entropy
        base_key = tuple(root.spawn_key)
    else:
        entropy = root
        base_key = ()
    return np.random.SeedSequence(entropy=entropy,
                                  spawn_key=base_key + (fleet_index,))


def fleet_rng(root: RootEntropy, fleet_index: int) -> np.random.Generator:
    """A fresh generator on the fleet's own spaced stream."""
    return np.random.default_rng(fleet_seed_sequence(root, fleet_index))


def spaced_seed_sequences(root: RootEntropy,
                          count: int) -> List[np.random.SeedSequence]:
    """Children for fleets ``0..count-1`` (see the module contract)."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return [fleet_seed_sequence(root, index) for index in range(count)]
