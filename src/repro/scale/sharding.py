"""Process-parallel shard executor for independent fleets.

One process runs one fleet well (PR 1–7); production fleets are *many*
independent fleets.  This module partitions a list of
:class:`FleetJob`\\ s across a spawn-safe ``multiprocessing`` pool and
merges the per-fleet :class:`~repro.core.rounds.ScheduleReport`\\ s,
RNG-stream digests and telemetry into one fleet-level
:class:`ShardedRunReport` that is **order-independent and bit-identical
to the single-process run** for the same seeds:

* **Spawn-safe** — workers are started with the ``spawn`` context (no
  forked locks, works identically on every platform); the fleet
  ``builder`` must therefore be a module-level callable and job params
  plain picklable data.
* **Pickle-once dataset** — the shared read-only dataset ships to each
  worker exactly once via the pool initializer, not per job.
* **Seed-spaced streams** — each fleet's RNG derives from
  ``(root_seed, fleet_id)`` alone (:mod:`repro.scale.seeding`), so the
  worker count and the partition never perturb any cluster's stream.
  ``workers=1`` runs inline in the calling process — today's behaviour,
  and the bit-identity reference the property tests compare against.
* **Shard-aware telemetry** — each shard streams its fleets' bus events
  to its own ``shard-<i>.jsonl``; the merge step
  (:func:`repro.obs.exporters.merge_event_logs`) folds them into one
  stream with shard ids preserved.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.rounds import ScheduleReport, merge_schedule_reports
from ..obs import JsonlWriter, TelemetryBus
from .seeding import fleet_rng

__all__ = ["FleetJob", "FleetOutcome", "ShardedRunReport",
           "default_fleet_builder", "merge_outcomes", "run_sharded",
           "report_digest"]

#: ``builder(job, dataset, rng, telemetry=...) -> EdgeTrainingScheduler``
#: — must be module-level (spawn pickles it by qualified name).
FleetBuilder = Callable[..., Any]


@dataclass(frozen=True)
class FleetJob:
    """One independent fleet to schedule: an id, a name, plain params.

    ``fleet_id`` alone determines the fleet's RNG stream; ``params``
    must be picklable plain data (ints/floats/strings/lists) — the
    builder turns them into trainers inside the worker.
    """

    fleet_id: int
    name: str
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass
class FleetOutcome:
    """One fleet's results plus the bit-identity evidence.

    ``report_digest`` hashes the full report; ``rng_digests`` hash each
    cluster's post-run stream state and ``ledger_digests`` each
    trainer's transmission ledger — the three artefacts the shard-count
    invariance property test compares across worker counts.
    """

    fleet_id: int
    name: str
    shard: int
    report: ScheduleReport
    report_digest: str
    rng_digests: Dict[str, str]
    ledger_digests: Dict[str, str]


def _sha(payload: str) -> str:
    return hashlib.sha256(payload.encode()).hexdigest()


def report_digest(report: ScheduleReport) -> str:
    """Canonical content hash of a report (bit-identity evidence).

    ``json.dumps`` renders floats via ``repr`` (shortest round-trip),
    so two reports hash equal iff every float is bit-equal.
    """
    return _sha(json.dumps(asdict(report), sort_keys=True, default=repr))


def _rng_digest(gen: np.random.Generator) -> str:
    return _sha(json.dumps(gen.bit_generator.state, sort_keys=True,
                           default=int))


def _ledger_digest(ledger) -> str:
    return _sha(repr(ledger.records))


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-worker state installed by the pool initializer: the builder, the
#: pickle-once dataset, and the run-wide knobs.  Module-global so spawn
#: workers reach it without re-pickling the dataset per job.
_WORKER: Dict[str, Any] = {}


def _init_worker(builder: FleetBuilder, dataset: Any,
                 rounds_per_cluster: int, root_seed: int,
                 telemetry_dir: Optional[str]) -> None:
    _WORKER.update(builder=builder, dataset=dataset,
                   rounds=rounds_per_cluster, root_seed=root_seed,
                   telemetry_dir=telemetry_dir)


def _run_fleet(job: FleetJob, shard: int,
               bus: Optional[TelemetryBus]) -> FleetOutcome:
    rng = fleet_rng(_WORKER["root_seed"], job.fleet_id)
    scheduler = _WORKER["builder"](job, _WORKER["dataset"], rng,
                                   telemetry=bus)
    report = scheduler.run(rounds_per_cluster=_WORKER["rounds"])
    return FleetOutcome(
        fleet_id=job.fleet_id, name=job.name, shard=shard, report=report,
        report_digest=report_digest(report),
        rng_digests={c.name: _rng_digest(c.stream_rng)
                     for c in scheduler.clusters},
        ledger_digests={c.name: _ledger_digest(c.trainer.ledger)
                        for c in scheduler.clusters})


def _run_shard(shard: int, jobs: List[FleetJob]) -> List[FleetOutcome]:
    """Run one shard's fleets in order, streaming telemetry per shard."""
    telemetry_dir = _WORKER["telemetry_dir"]
    if telemetry_dir is None:
        return [_run_fleet(job, shard, None) for job in jobs]
    bus = TelemetryBus()
    path = Path(telemetry_dir) / f"shard-{shard}.jsonl"
    with JsonlWriter(path, bus):
        return [_run_fleet(job, shard, bus) for job in jobs]


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
@dataclass
class ShardedRunReport:
    """The merged outcome of a sharded run.

    ``report`` is the fleet-level fold (cluster keys prefixed
    ``"<fleet>/<cluster>"``); ``fingerprint`` hashes every fleet's
    report/RNG/ledger digests in fleet-id order, so two runs fingerprint
    equal iff they are bit-identical fleet for fleet — the property the
    shard-count invariance tests gate on.
    """

    outcomes: List[FleetOutcome]
    workers: int
    report: ScheduleReport
    telemetry_paths: List[Path] = field(default_factory=list)

    @property
    def fingerprint(self) -> str:
        lines = [f"{o.fleet_id}:{o.name}:{o.report_digest}:"
                 f"{sorted(o.rng_digests.items())}:"
                 f"{sorted(o.ledger_digests.items())}"
                 for o in self.outcomes]
        return _sha("\n".join(lines))

    def merge_telemetry(self, out_path: Union[str, Path]) -> int:
        """Fold the per-shard JSONL logs into one shard-tagged stream."""
        from ..obs.exporters import merge_event_logs
        shard_ids = [int(path.stem.split("-")[-1])
                     for path in self.telemetry_paths]
        return merge_event_logs(self.telemetry_paths, out_path,
                                shard_ids=shard_ids)


def merge_outcomes(outcomes: Sequence[FleetOutcome], workers: int = 1,
                   telemetry_dir: Optional[Union[str, Path]] = None
                   ) -> ShardedRunReport:
    """Order-independent fold of per-fleet outcomes.

    Outcomes sort by ``fleet_id`` before merging, so the result is
    identical no matter which shard (or worker schedule) produced each
    fleet.
    """
    ordered = sorted(outcomes, key=lambda o: o.fleet_id)
    names = [o.name for o in ordered]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate fleet names in outcomes: {names}")
    report = merge_schedule_reports({o.name: o.report for o in ordered})
    paths: List[Path] = []
    if telemetry_dir is not None:
        paths = sorted(Path(telemetry_dir).glob("shard-*.jsonl"),
                       key=lambda p: int(p.stem.split("-")[-1]))
    return ShardedRunReport(outcomes=ordered, workers=workers,
                            report=report, telemetry_paths=paths)


def run_sharded(builder: FleetBuilder, jobs: Sequence[FleetJob], *,
                rounds_per_cluster: int, workers: int = 1,
                root_seed: int = 0, dataset: Any = None,
                telemetry_dir: Optional[Union[str, Path]] = None
                ) -> ShardedRunReport:
    """Execute independent fleets across a spawn-safe worker pool.

    Jobs are dealt round-robin into ``workers`` shards; each shard runs
    its fleets sequentially on the existing engines.  With
    ``workers=1`` everything runs inline (no pool) — the single-process
    reference the merged result is bit-identical to at any worker
    count, because every fleet's RNG stream depends only on
    ``(root_seed, fleet_id)`` and the merge sorts by fleet id.

    ``telemetry_dir`` (optional) collects one ``shard-<i>.jsonl`` event
    log per shard; fold them with
    :meth:`ShardedRunReport.merge_telemetry`.
    """
    jobs = list(jobs)
    if not jobs:
        raise ValueError("no fleet jobs to run")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    ids = [job.fleet_id for job in jobs]
    if len(set(ids)) != len(ids):
        raise ValueError(f"duplicate fleet_ids in jobs: {ids}")
    if telemetry_dir is not None:
        telemetry_dir = Path(telemetry_dir)
        telemetry_dir.mkdir(parents=True, exist_ok=True)
    dir_arg = None if telemetry_dir is None else str(telemetry_dir)
    workers = min(workers, len(jobs))
    if workers == 1:
        _init_worker(builder, dataset, rounds_per_cluster, root_seed,
                     dir_arg)
        outcomes = _run_shard(0, jobs)
    else:
        shard_lists = [jobs[shard::workers] for shard in range(workers)]
        ctx = get_context("spawn")
        with ctx.Pool(processes=workers, initializer=_init_worker,
                      initargs=(builder, dataset, rounds_per_cluster,
                                root_seed, dir_arg)) as pool:
            nested = pool.starmap(_run_shard, enumerate(shard_lists))
        outcomes = [outcome for sub in nested for outcome in sub]
    return merge_outcomes(outcomes, workers=workers,
                          telemetry_dir=telemetry_dir)


# ----------------------------------------------------------------------
# A ready-made builder (tests, CI smoke, benchmarks, experiments)
# ----------------------------------------------------------------------
def default_fleet_builder(job: FleetJob, dataset: Optional[np.ndarray],
                          rng: np.random.Generator,
                          telemetry: Optional[TelemetryBus] = None):
    """Build a small homogeneous OrcoDCS fleet from plain params.

    Module-level (spawn-picklable) on purpose.  Recognised ``params``:
    ``clusters`` (default 2), ``devices`` (24; ignored when ``dataset``
    gives the width), ``rounds_data`` (48; ignored with a dataset),
    ``batch_size`` (16), ``engine`` ("auto"), ``policy``
    ("round_robin"), ``loss`` (0.0), ``retries`` (1), ``recovery``
    ("arq"), ``deadline_s``, ``battery_j`` (1e9), ``seed_base`` (0).
    ``dataset`` — the pickle-once shared array — is used read-only as
    every cluster's training data.
    """
    from ..core import OrcoDCSConfig, OrcoDCSFramework
    from ..core.scheduler import (
        EdgeTrainingScheduler,
        ResilientOrchestrationPolicy,
    )
    from ..sim.channel import ARQConfig, ChannelSpec

    params = dict(job.params)
    clusters = int(params.get("clusters", 2))
    batch = int(params.get("batch_size", 16))
    engine = params.get("engine", "auto")
    loss = float(params.get("loss", 0.0))
    recovery = params.get("recovery", "arq")
    channels = None
    resilience = None
    if engine in ("event", "analytic") and (loss > 0.0
                                            or recovery != "arq"):
        channels = ChannelSpec(
            loss=loss,
            arq=ARQConfig(max_retries=int(params.get("retries", 1))))
        if recovery != "arq":
            resilience = ResilientOrchestrationPolicy(recovery=recovery)
    scheduler = EdgeTrainingScheduler(
        params.get("policy", "round_robin"), rng=rng, engine=engine,
        channels=channels, resilience=resilience, telemetry=telemetry)
    if dataset is not None:
        devices = int(dataset.shape[1])
    else:
        devices = int(params.get("devices", 24))
    for index in range(clusters):
        config = OrcoDCSConfig(
            input_dim=devices, latent_dim=max(4, devices // 6),
            noise_sigma=0.05,
            seed=int(params.get("seed_base", 0)) + index,
            batch_size=batch)
        data = (dataset if dataset is not None
                else rng.standard_normal(
                    (int(params.get("rounds_data", 48)), devices)))
        scheduler.add_cluster(
            f"c{index}", OrcoDCSFramework(config), data, batch_size=batch,
            deadline_s=params.get("deadline_s"),
            aggregator_battery_j=float(params.get("battery_j", 1e9)))
    return scheduler
