"""`repro.scale` — answers at 1000 clusters, not 16.

Two complementary speed layers on top of the existing engines:

* :mod:`repro.scale.sharding` — a **process-parallel shard executor**:
  independent fleets partitioned across a spawn-safe
  ``multiprocessing`` pool, each shard running the existing scheduler
  engines, merged into one fleet-level report that is order-independent
  and bit-identical to the single-process run for the same seeds.
* :mod:`repro.scale.analytic` — the **analytic ensemble mode** behind
  ``EdgeTrainingScheduler(engine="analytic")``: lifetime, energy,
  expected delivered rounds and deadline-miss probabilities priced
  directly from the closed-form channel/coding/battery math instead of
  stepping the event kernel.
* :mod:`repro.scale.seeding` — per-fleet ``SeedSequence`` spacing, the
  invariant that makes shard count irrelevant to any cluster's RNG
  stream.
"""

from .analytic import (
    ClusterForecast,
    DirectionForecast,
    forecast_fleet,
    price_transmit,
    run_analytic,
)
from .seeding import fleet_rng, fleet_seed_sequence, spaced_seed_sequences
from .sharding import (
    FleetJob,
    FleetOutcome,
    ShardedRunReport,
    default_fleet_builder,
    merge_outcomes,
    run_sharded,
)

__all__ = [
    "ClusterForecast",
    "DirectionForecast",
    "FleetJob",
    "FleetOutcome",
    "ShardedRunReport",
    "default_fleet_builder",
    "fleet_rng",
    "fleet_seed_sequence",
    "forecast_fleet",
    "merge_outcomes",
    "price_transmit",
    "run_analytic",
    "run_sharded",
    "spaced_seed_sequences",
]
