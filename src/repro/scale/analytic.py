"""Analytic ensemble mode: fleet outcomes priced, not simulated.

``EdgeTrainingScheduler(engine="analytic")`` routes here.  Instead of
stepping the event kernel frame by frame, each cluster's round economy
is priced from the closed-form channel/coding/battery math the adaptive
policies already use (:func:`repro.sim.sampler.expected_slot_attempts`,
:func:`repro.sim.coding.delivery_probability` /
:func:`~repro.sim.coding.hybrid_delivery_probability`, the Heinzelman
radio model) — per-round expected wire bytes, airtime, radio energy,
delivery probability — and folded over the round budget into expected
delivered rounds, battery lifetime and a deadline-miss probability.
Cost is O(frames-per-message) per cluster, independent of the round
budget and of the loss rate, which is what makes 1000-cluster sweeps
interactive (see ``benchmarks/bench_scale.py``).

Validity envelope (documented tolerances live in
``tests/test_scale_analytic.py`` and the README's "Scaling out"
section):

* **Exact in expectation** for Bernoulli (i.i.d.) loss: per-round
  expected wire bytes, received bytes and radio energy are linear
  folds of per-slot truncated-geometric attempt counts, so they match
  the event engine's sample mean (energy within a few percent at
  realistic round budgets).
* **First-order for Gilbert-Elliott** channels: the chain's stationary
  mean loss rate is folded through the Bernoulli forms.  Open-loop FEC
  wire bytes stay exact (the burst radiates ``F + k`` frames
  regardless of correlation); delivery probabilities and ARQ retry
  counts ignore burst correlation, so expect looser agreement on
  delivered-round counts.
* **Means, not samples** — per-cluster loss *trajectories* require
  training math; ``final_loss_per_cluster`` is NaN.  Jitter enters as
  its per-attempt mean (and variance in the deadline fold).
* **No fault schedules, no quorum** — the scheduler refuses
  ``engine="analytic"`` with a fault schedule; quorum halts depend on
  the joint order of retirements, which a per-cluster product model
  does not carry.  Consecutive-failure retirement is priced as a
  per-cluster run probability (:func:`failure_run_probability`), and
  battery death as an expected-lifetime truncation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from math import comb
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

import numpy as np

from ..core.rounds import ScheduleReport
from ..sim.channel import ARQConfig, ChannelSpec, as_loss_model
from ..sim.coding import CodingSpec, delivery_probability
from ..sim.sampler import (
    arq_slot_delivery_probability,
    expected_slot_attempts,
)
from ..wsn.energy import RadioEnergyModel
from ..wsn.link import LinkModel

if TYPE_CHECKING:   # pragma: no cover - typing only
    from ..core.scheduler import EdgeTrainingScheduler

__all__ = ["DirectionForecast", "ClusterForecast", "price_transmit",
           "forecast_fleet", "run_analytic", "failure_run_probability"]


# ----------------------------------------------------------------------
# Per-direction pricing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DirectionForecast:
    """Expected cost of one message transfer on one link direction.

    Mirrors :class:`~repro.sim.channel.TransmitResult` field for field,
    with samples replaced by expectations; ``p_deliver`` is the whole-
    message delivery probability and ``elapsed_variance_s2`` the
    (slot-independence) variance of the transfer time, consumed by the
    deadline-miss normal approximation.
    """

    payload_bytes: int
    frames: int
    parity_frames: int
    p_deliver: float
    expected_attempts: float
    expected_wire_bytes: float
    expected_received_wire_bytes: float
    expected_elapsed_s: float
    elapsed_variance_s2: float


def _slot_moments(loss_rate: float, cap: int, frame_time: float,
                  timeout: float, jitter_s: float
                  ) -> Tuple[float, float, float]:
    """(delivery prob, mean, variance) of one frame slot's elapsed time.

    The slot succeeds at attempt ``j <= cap`` with probability
    ``p^(j-1)(1-p)`` — elapsed ``j`` frame airtimes plus ``j - 1`` ACK
    timeouts — or burns all ``cap`` attempts (each with a timeout) with
    probability ``p^cap``.  Exponential jitter adds its mean per
    attempt (and its variance, for the deadline fold).
    """
    if loss_rate == 0.0:
        mean = frame_time + jitter_s
        return 1.0, mean, jitter_s ** 2
    j = np.arange(1, cap + 1, dtype=float)
    pmf_success = loss_rate ** (j - 1) * (1.0 - loss_rate)
    p_fail = loss_rate ** cap
    t_success = j * frame_time + (j - 1) * timeout + j * jitter_s
    t_fail = cap * (frame_time + timeout + jitter_s)
    mean = float(pmf_success @ t_success + p_fail * t_fail)
    second = float(pmf_success @ (t_success ** 2) + p_fail * t_fail ** 2)
    attempts = (1.0 - p_fail) / (1.0 - loss_rate)
    variance = max(0.0, second - mean ** 2) + attempts * jitter_s ** 2
    return 1.0 - p_fail, mean, variance


def _price_arq(link: LinkModel, payload_bytes: int, frames: List[int],
               loss_rate: float, arq: ARQConfig,
               jitter_s: float) -> DirectionForecast:
    """Uncoded stop-and-wait pricing, abort-on-exhausted-slot.

    Slot ``i`` is attempted only when slots ``0..i-1`` all delivered
    (probability ``q^i``); within an attempted slot the truncated-
    geometric attempt count is independent of whether it delivers, so
    wire bytes and airtime fold linearly.  The cross-slot elapsed
    variance treats slots as independent (the abort coupling it drops
    only shortens failed messages, a conservative deadline estimate).
    """
    header = link.header_bytes
    timeout = arq.ack_timeout_s
    cap = arq.max_retries + 1
    q = arq_slot_delivery_probability(loss_rate, arq.max_retries)
    attempts_per_slot = expected_slot_attempts(loss_rate, arq.max_retries)
    wire = received = elapsed = variance = attempts = 0.0
    attempt_prob = 1.0    # q^i: slots before i all delivered
    for payload in frames:
        _, slot_mean, slot_var = _slot_moments(
            loss_rate, cap, link.frame_time(payload), timeout, jitter_s)
        wire += attempt_prob * attempts_per_slot * (payload + header)
        received += attempt_prob * q * (payload + header)
        elapsed += attempt_prob * slot_mean
        variance += attempt_prob * slot_var
        attempts += attempt_prob * attempts_per_slot
        attempt_prob *= q
    return DirectionForecast(
        payload_bytes=payload_bytes, frames=len(frames), parity_frames=0,
        p_deliver=q ** len(frames), expected_attempts=attempts,
        expected_wire_bytes=wire, expected_received_wire_bytes=received,
        expected_elapsed_s=link.latency_s + elapsed,
        elapsed_variance_s2=variance)


def _price_coded(link: LinkModel, payload_bytes: int, frames: List[int],
                 loss_rate: float, arq: ARQConfig, coding: CodingSpec,
                 jitter_s: float) -> DirectionForecast:
    """Open-loop FEC burst pricing, plus hybrid shortfall repair.

    The burst always radiates ``F + k`` frames (parity frames carry
    stripe-sized shards), so its wire bytes and airtime are
    deterministic and its received bytes fold as ``(1 - p) * wire`` —
    exact even under burst-correlated loss.  With ``arq_fallback`` the
    shortfall distribution ``e ~ Binomial(F + k, p)`` is folded exactly
    over the repair loop's abort semantics; repair frames are priced at
    the stripe payload (the short final frame makes this an upper
    bound on repair bytes, negligible at realistic frame counts).
    """
    header = link.header_bytes
    stripe = frames[0]
    parity = coding.parity_frames
    data_frames = len(frames)
    total = data_frames + parity
    burst_wire = float(sum(payload + header for payload in frames)
                       + parity * (stripe + header))
    burst_time = float(sum(link.frame_time(payload) for payload in frames)
                       + parity * link.frame_time(stripe)
                       + total * jitter_s)
    wire = burst_wire
    received = (1.0 - loss_rate) * burst_wire
    elapsed = burst_time
    variance = total * jitter_s ** 2
    attempts = float(total)
    p_deliver = float(delivery_probability(data_frames, parity, loss_rate))

    if coding.arq_fallback and loss_rate > 0.0:
        cap = arq.max_retries + 1
        q = arq_slot_delivery_probability(loss_rate, arq.max_retries)
        attempts_per_slot = expected_slot_attempts(loss_rate,
                                                   arq.max_retries)
        _, slot_mean, slot_var = _slot_moments(
            loss_rate, cap, link.frame_time(stripe), arq.ack_timeout_s,
            jitter_s)
        stripe_wire = stripe + header
        keep = 1.0 - loss_rate
        p_deliver = 0.0
        for erased in range(total + 1):
            pmf = comb(total, erased) * loss_rate ** erased \
                * keep ** (total - erased)
            if erased <= parity:
                p_deliver += pmf
                continue
            repairs = erased - parity
            # Repair slot j attempted iff repairs 0..j-1 delivered.
            slot_probs = q ** np.arange(repairs, dtype=float)
            attempted = float(slot_probs.sum())
            delivered_slots = float((q * slot_probs).sum())
            p_deliver += pmf * q ** repairs
            wire += pmf * attempted * attempts_per_slot * stripe_wire
            received += pmf * delivered_slots * stripe_wire
            elapsed += pmf * attempted * slot_mean
            variance += pmf * attempted * slot_var
            attempts += pmf * attempted * attempts_per_slot
    return DirectionForecast(
        payload_bytes=payload_bytes, frames=data_frames,
        parity_frames=parity, p_deliver=p_deliver,
        expected_attempts=attempts, expected_wire_bytes=wire,
        expected_received_wire_bytes=received,
        expected_elapsed_s=link.latency_s + elapsed,
        elapsed_variance_s2=variance)


def price_transmit(link: LinkModel, payload_bytes: int, loss_rate: float,
                   arq: Optional[ARQConfig] = None,
                   coding: Optional[CodingSpec] = None,
                   jitter_s: float = 0.0) -> DirectionForecast:
    """Expected-cost mirror of ``UnreliableChannel.transmit``.

    One closed-form evaluation per link direction; validated against
    the channel's Monte-Carlo sample means in
    ``tests/test_scale_analytic.py``.
    """
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be non-negative")
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError("loss_rate must be in [0, 1)")
    arq = arq or ARQConfig()
    frames = link.frame_sizes(payload_bytes)
    if not frames:
        return DirectionForecast(0, 0, 0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    if coding is not None and coding.parity_frames > 0:
        return _price_coded(link, payload_bytes, frames, loss_rate, arq,
                            coding, jitter_s)
    if loss_rate == 0.0 and jitter_s == 0.0:
        # Bit-exact agreement with the ideal link's closed forms,
        # mirroring the channel's clean-path shortcut.
        wire = float(link.wire_bytes(payload_bytes))
        return DirectionForecast(
            payload_bytes, len(frames), 0, 1.0, float(len(frames)),
            wire, wire, link.transfer_time(payload_bytes), 0.0)
    return _price_arq(link, payload_bytes, frames, loss_rate, arq, jitter_s)


# ----------------------------------------------------------------------
# Per-cluster fold
# ----------------------------------------------------------------------
def failure_run_probability(failure_prob: float, rounds: int,
                            run_length: int) -> float:
    """P[some ``run_length`` consecutive failures within ``rounds``].

    The retirement rule ``max_consecutive_failures`` prices as the
    classic probability of a failure run in Bernoulli trials, computed
    by stepping the streak-length Markov chain (states ``0..m-1`` plus
    absorbing "retired") — O(rounds * run_length), exact.
    """
    if not 0.0 <= failure_prob <= 1.0:
        raise ValueError("failure_prob must be in [0, 1]")
    if run_length < 1:
        raise ValueError("run_length must be >= 1")
    if rounds < run_length or failure_prob == 0.0:
        return 0.0
    streak = np.zeros(run_length)
    streak[0] = 1.0
    absorbed = 0.0
    success = 1.0 - failure_prob
    for _ in range(rounds):
        fail_mass = streak * failure_prob
        absorbed += fail_mass[-1]
        nxt = np.zeros(run_length)
        nxt[0] = streak.sum() * success
        nxt[1:] = fail_mass[:-1]
        streak = nxt
    return float(absorbed)


@dataclass(frozen=True)
class ClusterForecast:
    """Closed-form round economy of one cluster.

    ``lifetime_rounds`` is the expected attempted-round count the
    aggregator battery sustains (``inf`` when energy per round is
    zero); ``effective_rounds`` the budget truncated by it.  Delivered
    and failed round counts, energy and makespan contributions are
    expectations over that effective budget.
    """

    name: str
    up: DirectionForecast
    down: DirectionForecast
    p_round: float
    expected_round_s: float
    round_variance_s2: float
    expected_energy_per_round_j: float
    rounds_budget: int
    lifetime_rounds: float
    effective_rounds: float
    expected_delivered_rounds: float
    expected_failed_rounds: float
    expected_energy_j: float
    expected_edge_busy_s: float
    expected_span_s: float
    deadline_miss_probability: float
    retire_probability: float
    arq_retries: Optional[int]
    up_parity: Optional[int]


def _normal_tail(mean: float, variance: float, threshold: float) -> float:
    """P[X > threshold] for X ~ Normal(mean, variance)."""
    if variance <= 0.0:
        return 1.0 if mean > threshold else 0.0
    z = (threshold - mean) / math.sqrt(variance)
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def _direction_spec(spec: Optional[ChannelSpec]
                    ) -> Tuple[float, ARQConfig, Optional[CodingSpec], float]:
    """(mean loss rate, arq, coding, jitter) of one direction's spec."""
    if spec is None:
        return 0.0, ARQConfig(), None, 0.0
    model = as_loss_model(spec.loss() if callable(spec.loss) else spec.loss)
    rate = float(model.mean_loss_rate) if model is not None else 0.0
    return rate, spec.arq, spec.coding, spec.jitter_s


def _cached_price(cache: Optional[dict], link: LinkModel,
                  payload_bytes: int, loss_rate: float, arq: ARQConfig,
                  coding: Optional[CodingSpec],
                  jitter_s: float) -> DirectionForecast:
    """Memoized :func:`price_transmit` for ensemble forecasting.

    Every input is a frozen dataclass or scalar, so identical pricing
    problems hash to the same key — in a homogeneous ensemble the
    closed forms run once, not once per cluster, which is what keeps
    the 1000-cluster sweep sub-second.
    """
    if cache is None:
        return price_transmit(link, payload_bytes, loss_rate, arq, coding,
                              jitter_s)
    key = (link, payload_bytes, loss_rate, arq, coding, jitter_s)
    forecast = cache.get(key)
    if forecast is None:
        forecast = cache[key] = price_transmit(
            link, payload_bytes, loss_rate, arq, coding, jitter_s)
    return forecast


def forecast_cluster(cluster, up_spec: Optional[ChannelSpec],
                     down_spec: Optional[ChannelSpec],
                     rounds_per_cluster: int,
                     backhaul_distance_m: float,
                     max_consecutive_failures: int,
                     _cache: Optional[dict] = None) -> ClusterForecast:
    """Price one cluster's whole run from its derived channel specs.

    Mirrors the event loop's arithmetic in expectation: a round always
    costs the aggregator compute plus the uplink transfer; edge compute
    and the downlink happen only when the uplink delivered; energy is
    ``tx(uplink wire) + rx(downlink received | uplink delivered)`` —
    the exact charge pattern of ``_run_event_session``'s three paths.
    """
    trainer = cluster.trainer
    costs = trainer.round_costs(cluster.batch_size)
    timing = costs.timing
    up_rate, up_arq, up_coding, up_jitter = _direction_spec(up_spec)
    down_rate, down_arq, down_coding, down_jitter = _direction_spec(down_spec)
    up = _cached_price(_cache, trainer.timing.up, costs.up_bytes, up_rate,
                       up_arq, up_coding, up_jitter)
    down = _cached_price(_cache, trainer.timing.down, costs.down_bytes,
                         down_rate, down_arq, down_coding, down_jitter)

    p_round = up.p_deliver * down.p_deliver
    agg_s = timing.aggregator_compute_s
    edge_s = timing.edge_compute_s
    round_s = agg_s + up.expected_elapsed_s \
        + up.p_deliver * (edge_s + down.expected_elapsed_s)
    conditional_tail = edge_s + down.expected_elapsed_s
    round_var = up.elapsed_variance_s2 \
        + up.p_deliver * down.elapsed_variance_s2 \
        + up.p_deliver * (1.0 - up.p_deliver) * conditional_tail ** 2

    radio = RadioEnergyModel()
    energy_per_round = (
        radio.tx_energy(up.expected_wire_bytes * 8, backhaul_distance_m)
        + radio.rx_energy(up.p_deliver
                          * down.expected_received_wire_bytes * 8))
    lifetime = (float("inf") if energy_per_round <= 0.0
                else cluster.aggregator_battery_j / energy_per_round)
    effective = min(float(rounds_per_cluster), lifetime)
    delivered = p_round * effective
    failed = (1.0 - p_round) * effective
    energy_total = min(energy_per_round * effective,
                       cluster.aggregator_battery_j)
    edge_busy = up.p_deliver * edge_s * effective
    span = round_s * effective
    miss = (0.0 if cluster.deadline_s is None
            else _normal_tail(span, round_var * effective,
                              cluster.deadline_s))
    retire_key = ("retire", 1.0 - p_round, int(round(effective)),
                  max_consecutive_failures)
    retire = _cache.get(retire_key) if _cache is not None else None
    if retire is None:
        retire = failure_run_probability(1.0 - p_round,
                                         int(round(effective)),
                                         max_consecutive_failures)
        if _cache is not None:
            _cache[retire_key] = retire
    return ClusterForecast(
        name=cluster.name, up=up, down=down, p_round=p_round,
        expected_round_s=round_s, round_variance_s2=round_var,
        expected_energy_per_round_j=energy_per_round,
        rounds_budget=rounds_per_cluster, lifetime_rounds=lifetime,
        effective_rounds=effective,
        expected_delivered_rounds=delivered,
        expected_failed_rounds=failed,
        expected_energy_j=energy_total,
        expected_edge_busy_s=edge_busy,
        expected_span_s=span,
        deadline_miss_probability=miss,
        retire_probability=retire,
        arq_retries=None if up_spec is None else up_spec.arq.max_retries,
        up_parity=(None if up_spec is None or up_spec.coding is None
                   else up_spec.coding.parity_frames))


def forecast_fleet(scheduler: "EdgeTrainingScheduler",
                   rounds_per_cluster: int) -> Dict[str, ClusterForecast]:
    """Per-cluster forecasts for a registered fleet.

    Channel recipes come from the scheduler's own
    ``_channel_specs_for``, so adaptive ARQ budgets and per-direction
    parity derivation match what the event engine would stamp on —
    the analytic report's ``arq_budgets``/``coding_budgets`` mirror the
    event report's exactly.
    """
    forecasts = {}
    cache: dict = {}
    for cluster in scheduler.clusters:
        up_spec, down_spec = scheduler._channel_specs_for(
            cluster, rounds_per_cluster)
        forecasts[cluster.name] = forecast_cluster(
            cluster, up_spec, down_spec, rounds_per_cluster,
            scheduler.backhaul_distance_m,
            scheduler.resilience.max_consecutive_failures,
            _cache=cache)
    return forecasts


def run_analytic(scheduler: "EdgeTrainingScheduler",
                 rounds_per_cluster: int) -> ScheduleReport:
    """The ``engine="analytic"`` execution path.

    Folds :func:`forecast_fleet` into a :class:`ScheduleReport` with
    ``expected_values=True``: integer round counts are rounded
    expectations, the makespan is the larger of the serialized edge
    busy time and the slowest cluster's expected pipeline span, and
    the analytic-only distributions land in ``delivered_rounds`` /
    ``lifetime_rounds`` / ``deadline_miss_probability``.
    """
    forecasts = forecast_fleet(scheduler, rounds_per_cluster)
    edge_busy = sum(f.expected_edge_busy_s for f in forecasts.values())
    # Edge-bound fleets finish one aggregator-side tail after the edge
    # drains; cluster-bound fleets finish with the slowest pipeline.
    tail = max((f.expected_round_s
                - f.expected_edge_busy_s / max(f.effective_rounds, 1.0)
                for f in forecasts.values()), default=0.0)
    makespan = max(max((f.expected_span_s for f in forecasts.values()),
                       default=0.0), edge_busy + tail)
    failed = {name: int(round(f.expected_failed_rounds))
              for name, f in forecasts.items()
              if f.expected_failed_rounds >= 0.5}
    dead = {name: "aggregator battery depleted (expected)"
            for name, f in forecasts.items()
            if f.lifetime_rounds < f.rounds_budget}
    misses = [name for name, f in forecasts.items()
              if f.deadline_miss_probability > 0.5]
    return ScheduleReport(
        policy=scheduler.policy,
        total_edge_time_s=edge_busy,
        makespan_s=makespan,
        rounds_per_cluster={name: int(round(f.expected_delivered_rounds))
                            for name, f in forecasts.items()},
        final_loss_per_cluster={name: float("nan") for name in forecasts},
        deadline_misses=misses,
        retirement_reasons=({"aggregator battery depleted (expected)":
                             len(dead)} if dead else {}),
        engine="analytic",
        failed_rounds=failed,
        dead_clusters=dead,
        energy_j={name: f.expected_energy_j
                  for name, f in forecasts.items()},
        arq_budgets={name: f.arq_retries for name, f in forecasts.items()
                     if f.arq_retries is not None},
        coding_budgets={name: f.up_parity for name, f in forecasts.items()
                        if f.up_parity is not None},
        expected_values=True,
        delivered_rounds={name: f.expected_delivered_rounds
                          for name, f in forecasts.items()},
        lifetime_rounds={name: f.lifetime_rounds
                         for name, f in forecasts.items()},
        deadline_miss_probability={name: f.deadline_miss_probability
                                   for name, f in forecasts.items()
                                   if f.deadline_miss_probability > 0.0},
    )
