"""`repro.metrics` — reconstruction quality and transmission cost metrics."""

from .cost import CostBreakdown, bytes_to_kb, savings_factor, scalars_to_bytes
from .quality import (
    batch_psnr,
    mse,
    nmse,
    psnr,
    reconstruction_snr,
    ssim,
)

__all__ = [
    "CostBreakdown", "bytes_to_kb", "savings_factor", "scalars_to_bytes",
    "batch_psnr", "mse", "nmse", "psnr", "reconstruction_snr", "ssim",
]
