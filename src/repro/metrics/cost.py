"""Transmission-cost bookkeeping helpers (Fig. 3 units and ratios)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


def bytes_to_kb(n_bytes: float) -> float:
    """Bytes -> kilobytes (1 KB = 1024 B), the unit of the paper's Fig. 3."""
    return n_bytes / 1024.0


def scalars_to_bytes(count: int, value_bytes: int = 4) -> int:
    """Number of scalar values -> payload bytes (float32 on the wire)."""
    if count < 0 or value_bytes <= 0:
        raise ValueError("count must be >= 0 and value_bytes positive")
    return count * value_bytes


@dataclass
class CostBreakdown:
    """Itemised transmission cost of one framework on one workload.

    ``setup_bytes`` covers one-time costs (raw-data round for training,
    encoder distribution); ``per_image_bytes`` is the steady-state cost of
    shipping one compressed sample; ``images`` scales it.
    """

    name: str
    setup_bytes: float = 0.0
    per_image_bytes: float = 0.0
    images: int = 0
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total_bytes(self) -> float:
        return self.setup_bytes + self.per_image_bytes * self.images

    @property
    def total_kb(self) -> float:
        return bytes_to_kb(self.total_bytes)

    def scaled(self, images: int) -> "CostBreakdown":
        """Same cost model evaluated at a different image count."""
        return CostBreakdown(self.name, self.setup_bytes,
                             self.per_image_bytes, images,
                             dict(self.components))


def savings_factor(baseline: CostBreakdown, ours: CostBreakdown) -> float:
    """How many times cheaper ``ours`` is than ``baseline`` (>1 = win)."""
    if ours.total_bytes == 0:
        return float("inf")
    return baseline.total_bytes / ours.total_bytes
