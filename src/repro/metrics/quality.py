"""Reconstruction-quality metrics.

Figure 2 of the paper compares reconstructions visually; for a
reproducible harness we quantify the same comparison with PSNR, SSIM and
normalised MSE, computed on [0, 1]-scaled images.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import ndimage


def mse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Mean squared error."""
    original, reconstructed = _aligned(original, reconstructed)
    return float(np.mean((original - reconstructed) ** 2))


def nmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """MSE normalised by signal power; 0 is perfect, 1 matches predicting 0."""
    original, reconstructed = _aligned(original, reconstructed)
    power = float(np.mean(original ** 2))
    if power == 0:
        return 0.0 if np.allclose(reconstructed, 0) else float("inf")
    return mse(original, reconstructed) / power


def psnr(original: np.ndarray, reconstructed: np.ndarray,
         data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (infinite for exact matches)."""
    error = mse(original, reconstructed)
    if error == 0:
        return float("inf")
    return float(10.0 * np.log10(data_range ** 2 / error))


def reconstruction_snr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Signal-to-noise ratio of the reconstruction in dB."""
    value = nmse(original, reconstructed)
    if value == 0:
        return float("inf")
    return float(-10.0 * np.log10(value))


def ssim(original: np.ndarray, reconstructed: np.ndarray,
         data_range: float = 1.0, sigma: float = 1.5) -> float:
    """Structural similarity index using Gaussian-weighted local stats.

    Operates on one grayscale image; colour images are averaged over
    channels.  Matches the standard Wang et al. formulation with
    ``k1=0.01, k2=0.03``.
    """
    original = np.asarray(original, dtype=float)
    reconstructed = np.asarray(reconstructed, dtype=float)
    if original.shape != reconstructed.shape:
        raise ValueError("shape mismatch")
    if original.ndim == 3:
        channels = [ssim(original[..., c], reconstructed[..., c], data_range, sigma)
                    for c in range(original.shape[-1])]
        return float(np.mean(channels))
    if original.ndim != 2:
        raise ValueError("ssim expects 2-D or 3-D (H, W[, C]) images")

    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2

    def blur(img: np.ndarray) -> np.ndarray:
        return ndimage.gaussian_filter(img, sigma)

    mu_x = blur(original)
    mu_y = blur(reconstructed)
    xx = blur(original * original) - mu_x * mu_x
    yy = blur(reconstructed * reconstructed) - mu_y * mu_y
    xy = blur(original * reconstructed) - mu_x * mu_y
    numerator = (2 * mu_x * mu_y + c1) * (2 * xy + c2)
    denominator = (mu_x ** 2 + mu_y ** 2 + c1) * (xx + yy + c2)
    return float(np.mean(numerator / denominator))


def batch_psnr(originals: np.ndarray, reconstructions: np.ndarray,
               data_range: float = 1.0) -> np.ndarray:
    """Per-sample PSNR over a batch of images/rows."""
    originals = np.asarray(originals, dtype=float)
    reconstructions = np.asarray(reconstructions, dtype=float)
    if originals.shape != reconstructions.shape:
        raise ValueError("shape mismatch")
    flat_o = originals.reshape(originals.shape[0], -1)
    flat_r = reconstructions.reshape(reconstructions.shape[0], -1)
    errors = np.mean((flat_o - flat_r) ** 2, axis=1)
    with np.errstate(divide="ignore"):
        values = 10.0 * np.log10(data_range ** 2 / errors)
    return values


def _aligned(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a, b
