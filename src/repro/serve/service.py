"""`repro.serve.service` — the fleet run registry and executor.

:class:`FleetService` hosts many concurrent scheduler runs inside one
asyncio process: each submitted run gets a fresh
:class:`~repro.obs.telemetry.TelemetryBus`, a
:class:`~repro.serve.commands.RunController`, an
:class:`~repro.serve.bridge.AsyncTelemetryBridge` for subscribers and
a :class:`~repro.obs.metrics.MetricsCollector`, then executes
``scheduler.run`` on a thread-pool worker.  The asyncio loop itself
never blocks on simulation work; it only multiplexes event streams
and control requests.

Runs come from three doors:

* :meth:`FleetService.submit_spec` — a plain-dict spec (the TCP
  ``submit`` op), built through
  :func:`build_scheduler_from_spec` /
  :func:`~repro.scale.sharding.default_fleet_builder`;
* :meth:`FleetService.submit` — a programmatic, pre-built scheduler
  (tests; embedding);
* :meth:`FleetService.register_external` — a run executing elsewhere
  (e.g. ``python -m repro.experiments ... --serve``) that only wants
  its bus observable; no controller, commands are rejected.

Bit-identity: attaching a service adds a bus subscriber and an idle
controller — neither draws randomness nor perturbs accumulation — so
a command-free service run produces digest-equal clock / ledger /
report / RNG state vs the same seed offline (asserted in
``tests/test_serve_control_plane.py``).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from typing import Any, Callable, Dict, Iterable, List, Optional

import numpy as np

from ..obs.metrics import MetricsCollector
from ..obs.telemetry import TelemetryBus
from ..scale.sharding import FleetJob, default_fleet_builder
from ..sim.faults import FaultEvent, FaultSchedule
from .bridge import AsyncTelemetryBridge, EventStream
from .commands import RunController

__all__ = ["FleetService", "RunHandle", "build_scheduler_from_spec"]


def build_scheduler_from_spec(spec: Dict[str, Any],
                              telemetry: Optional[TelemetryBus] = None,
                              control: Optional[RunController] = None):
    """Build a scheduler from a plain-JSON run spec.

    Reuses :func:`~repro.scale.sharding.default_fleet_builder`'s
    parameter vocabulary (``clusters``, ``devices``, ``batch_size``,
    ``engine``, ``policy``, ``loss``, ``retries``, ``recovery``,
    ``deadline_s``, ``battery_j``, ``seed_base``, ``rounds_data``)
    plus:

    * ``seed`` — the fleet RNG seed (default 0);
    * ``faults`` — a list of :class:`~repro.sim.faults.FaultEvent`
      field dicts (requires ``engine: "event"``).

    Service-level keys (``rounds``, ``paused``, ``name``) are consumed
    by :meth:`FleetService.submit_spec` before this runs.
    """
    params = dict(spec)
    seed = int(params.pop("seed", 0))
    faults = params.pop("faults", None)
    job = FleetJob(fleet_id=0, name=str(params.pop("name", "fleet")),
                   params=params)
    scheduler = default_fleet_builder(
        job, None, np.random.default_rng(seed), telemetry=telemetry)
    if faults:
        if scheduler.engine != "event":
            raise ValueError(
                "spec includes 'faults' but engine is "
                f"{scheduler.engine!r}; fault schedules require "
                "engine: 'event'")
        scheduler.fault_schedule = FaultSchedule(
            FaultEvent(**event) for event in faults)
    scheduler.control = control
    return scheduler


class RunHandle:
    """One hosted run: identity, wiring, and lifecycle state.

    ``state`` walks pending -> running -> (paused <-> running) ->
    done | failed | cancelled.  External runs (``external=True``) are
    observe-only: no controller, no report.
    """

    def __init__(self, run_id: str, name: str, *,
                 scheduler=None, rounds: int = 0,
                 bus: TelemetryBus, bridge: AsyncTelemetryBridge,
                 controller: Optional[RunController] = None,
                 collector: Optional[MetricsCollector] = None,
                 external: bool = False) -> None:
        self.run_id = run_id
        self.name = name
        self.scheduler = scheduler
        self.rounds = rounds
        self.bus = bus
        self.bridge = bridge
        self.controller = controller
        self.collector = collector
        self.external = external
        self.state = "running" if external else "pending"
        self.report = None
        self.error: Optional[str] = None
        self.done = asyncio.Event()

    def describe(self) -> Dict[str, Any]:
        info: Dict[str, Any] = {
            "run": self.run_id, "name": self.name, "state": self.state,
            "external": self.external,
        }
        if self.scheduler is not None:
            info["engine"] = self.scheduler.engine
            info["policy"] = self.scheduler.policy
            info["clusters"] = len(self.scheduler.clusters)
            info["rounds"] = self.rounds
        if self.error is not None:
            info["error"] = self.error
        if self.report is not None:
            report = self.report
            info["report"] = {
                "makespan_s": report.makespan_s,
                "rounds_per_cluster": report.rounds_per_cluster,
                "deadline_misses": report.deadline_misses,
                "dead_clusters": report.dead_clusters,
                "retirement_reasons": report.retirement_reasons,
                "faults_applied": report.faults_applied,
                "fused_rounds": report.fused_rounds,
                "segments": report.segments,
                "halted": report.halted,
                "engine": report.engine,
            }
        return info


class FleetService:
    """Hosts, executes, observes and steers many scheduler runs.

    Must be started (``await service.start()``) from the event loop
    that will own it; the thread-safe entry points
    (:meth:`submit_threadsafe`, :meth:`register_external`, ...) proxy
    into that loop so sync callers — experiments, tests — can drive a
    service running on a background thread.
    """

    def __init__(self, max_workers: int = 4,
                 builder: Optional[Callable[..., Any]] = None) -> None:
        self._builder = builder or build_scheduler_from_spec
        self._max_workers = max_workers
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._runs: Dict[str, RunHandle] = {}
        self._next_id = 0
        self._closed = False

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> "FleetService":
        self._loop = asyncio.get_running_loop()
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self._max_workers, thread_name_prefix="fleet-run")
        return self

    async def close(self, cancel_running: bool = True) -> None:
        """Cancel live runs, wait for workers, end every stream."""
        if self._closed:
            return
        self._closed = True
        if cancel_running:
            for handle in self._runs.values():
                if handle.controller is not None and not handle.done.is_set():
                    handle.controller.cancel()
        for handle in self._runs.values():
            if not handle.external:
                await handle.done.wait()
            handle.bridge.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    # -- registry ---------------------------------------------------------

    @property
    def runs(self) -> Dict[str, RunHandle]:
        return self._runs

    def get(self, run_id: str) -> RunHandle:
        handle = self._runs.get(run_id)
        if handle is None:
            raise KeyError(f"unknown run {run_id!r}; "
                           f"known: {sorted(self._runs)}")
        return handle

    def list_runs(self) -> List[Dict[str, Any]]:
        return [self._runs[run_id].describe()
                for run_id in sorted(self._runs)]

    def _allocate_id(self) -> str:
        self._next_id += 1
        return f"run-{self._next_id}"

    # -- submission (event-loop thread) -----------------------------------

    def submit_spec(self, spec: Dict[str, Any]) -> RunHandle:
        """Build and launch a run from a plain-dict spec."""
        spec = dict(spec)
        rounds = int(spec.pop("rounds", 30))
        paused = bool(spec.pop("paused", False))
        name = str(spec.get("name", "fleet"))
        bus = TelemetryBus()
        controller = RunController(paused=paused)
        scheduler = self._builder(spec, telemetry=bus, control=controller)
        return self._launch(scheduler, rounds, name=name, bus=bus,
                            controller=controller)

    def submit(self, scheduler, rounds: int, *,
               name: Optional[str] = None,
               paused: bool = False) -> RunHandle:
        """Launch a pre-built scheduler under service management.

        The service attaches its own bus and controller via
        :meth:`~repro.core.scheduler.EdgeTrainingScheduler.
        attach_telemetry` — any bus the caller had set is replaced for
        the hosted run.
        """
        bus = TelemetryBus()
        controller = RunController(paused=paused)
        scheduler.attach_telemetry(bus)
        scheduler.control = controller
        return self._launch(scheduler, rounds, name=name or "fleet",
                            bus=bus, controller=controller)

    def _launch(self, scheduler, rounds: int, *, name: str,
                bus: TelemetryBus, controller: RunController) -> RunHandle:
        if self._loop is None or self._pool is None:
            raise RuntimeError("FleetService not started — await start()")
        if self._closed:
            raise RuntimeError("FleetService is closed")
        handle = RunHandle(
            self._allocate_id(), name, scheduler=scheduler, rounds=rounds,
            bus=bus, bridge=AsyncTelemetryBridge(bus, self._loop),
            controller=controller, collector=MetricsCollector(bus))
        self._runs[handle.run_id] = handle
        self._pool.submit(self._execute, handle)
        return handle

    def register_external(self, name: str, bus: TelemetryBus) -> RunHandle:
        """Expose an elsewhere-executing run's bus to subscribers.

        Thread-safe: proxies into the service loop when called from
        another thread (the ``--serve`` experiment path).  Call
        :meth:`finish_external` when the run ends so subscribers see a
        clean end-of-stream.
        """
        def register() -> RunHandle:
            if self._loop is None:
                raise RuntimeError("FleetService not started")
            handle = RunHandle(
                self._allocate_id(), name, bus=bus,
                bridge=AsyncTelemetryBridge(bus, self._loop),
                collector=MetricsCollector(bus), external=True)
            self._runs[handle.run_id] = handle
            return handle
        return self._call_in_loop(register)

    def finish_external(self, handle: RunHandle,
                        state: str = "done") -> None:
        def finish() -> None:
            handle.state = state
            handle.done.set()
            handle.bridge.close()
        self._call_in_loop(finish)

    # -- thread-safe proxies ----------------------------------------------

    def submit_threadsafe(self, spec: Dict[str, Any]) -> RunHandle:
        return self._call_in_loop(lambda: self.submit_spec(spec))

    def _call_in_loop(self, fn: Callable[[], Any], timeout: float = 30.0):
        if self._loop is None:
            raise RuntimeError("FleetService not started — await start()")
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is self._loop:
            return fn()
        future: concurrent.futures.Future = concurrent.futures.Future()

        def call() -> None:
            try:
                future.set_result(fn())
            except Exception as exc:   # delivered to the caller
                future.set_exception(exc)

        self._loop.call_soon_threadsafe(call)
        return future.result(timeout=timeout)

    # -- streaming --------------------------------------------------------

    def stream_for(self, handle: RunHandle,
                   kinds: Optional[Iterable[str]] = None,
                   capacity: int = 4096) -> EventStream:
        return handle.bridge.stream(kinds=kinds, capacity=capacity)

    async def wait(self, handle: RunHandle):
        """Await a hosted run's completion; returns its report."""
        await handle.done.wait()
        return handle.report

    # -- worker thread ----------------------------------------------------

    def _execute(self, handle: RunHandle) -> None:
        controller = handle.controller
        handle.state = "paused" if (controller is not None
                                    and controller.paused) else "running"
        try:
            handle.report = handle.scheduler.run(handle.rounds)
        except Exception as exc:
            handle.error = f"{type(exc).__name__}: {exc}"
            handle.state = "failed"
        else:
            handle.state = ("cancelled"
                            if controller is not None and controller.cancelled
                            else "done")
        finally:
            if controller is not None:
                controller.finish()
            if self._loop is not None and not self._loop.is_closed():
                self._loop.call_soon_threadsafe(self._settle, handle)

    def _settle(self, handle: RunHandle) -> None:
        handle.done.set()
        handle.bridge.close()
