"""`repro.serve.protocol` — line-delimited JSON control plane over TCP.

Pure stdlib (``asyncio.start_server``): each request is one JSON
object on one line; each reply is one JSON line with ``"ok"`` set.
``subscribe`` is the only streaming op — it emits ``{"event": ...}``
lines (plus periodic ``{"metrics_snapshot": ...}`` lines) until the
run ends, then a final ``{"done": true, ...}`` line, after which the
connection is ready for further requests.

Request vocabulary (``op`` selects):

========== ============================================================
op          payload
========== ============================================================
ping        —
submit      ``spec`` — run spec for :func:`build_scheduler_from_spec`
            (plus service keys ``rounds``, ``paused``, ``name``)
list        —
status      ``run``
cancel      ``run``
pause       ``run``
resume      ``run``
metrics     ``run`` — replies with Prometheus text + the flat mapping
command     ``run``, ``command`` (``{"kind": "inject_fault" | "retire_
            cluster" | "set_policy", ...}``), ``wait`` (default true),
            ``timeout`` (seconds, default 30)
subscribe   ``run``, ``kinds`` (optional list), ``metrics_every``
            (snapshot every N events, 0 = never), ``max_events``
            (0 = unbounded)
========== ============================================================

Errors never kill the connection: a malformed line or failed op gets
``{"ok": false, "error": "..."}`` and the loop reads the next line.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from types import SimpleNamespace
from typing import Any, AsyncIterator, Callable, Dict, Optional

from ..obs.exporters import render_prometheus
from ..sim.faults import FaultEvent
from .service import FleetService, RunHandle

__all__ = ["ControlPlaneClient", "ControlPlaneServer", "serve_in_thread"]

_MAX_LINE = 1 << 20


def _fault_from_request(command: Dict[str, Any]) -> FaultEvent:
    """Build the FaultEvent an ``inject_fault`` command describes.

    ``time_s`` is a placeholder — the controller restamps it with the
    simulated clock at the boundary where the command actually lands.
    """
    if "fault" not in command:
        raise ValueError("inject_fault needs a 'fault' field "
                         "(the fault kind, e.g. 'node_death')")
    return FaultEvent(
        time_s=0.0,
        kind=str(command["fault"]),
        cluster=str(command.get("cluster", "")),
        device=command.get("device"),
        magnitude=float(command.get("magnitude", 1.0)),
    )


class ControlPlaneServer:
    """Serves a :class:`FleetService` over line-JSON TCP."""

    def __init__(self, service: FleetService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "ControlPlaneServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=_MAX_LINE)
        # Resolve the kernel-assigned port when asked for port 0.
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- connection loop --------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, {
                        "ok": False, "error": "request line too long"})
                    continue
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                try:
                    request = json.loads(text)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    await self._send(writer, {
                        "ok": False, "error": f"bad request: {exc}"})
                    continue
                try:
                    await self._dispatch(request, writer)
                except (ConnectionResetError, BrokenPipeError):
                    return
                except Exception as exc:
                    await self._send(writer, {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}"})
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # Close without awaiting: loop shutdown may cancel this
            # handler mid-await, and a logged CancelledError is noise.
            with contextlib.suppress(Exception):
                writer.close()

    async def _send(self, writer: asyncio.StreamWriter,
                    payload: Dict[str, Any]) -> None:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()

    # -- ops --------------------------------------------------------------

    async def _dispatch(self, request: Dict[str, Any],
                        writer: asyncio.StreamWriter) -> None:
        op = request.get("op")
        if op == "ping":
            await self._send(writer, {"ok": True, "pong": True})
        elif op == "submit":
            spec = request.get("spec")
            if not isinstance(spec, dict):
                raise ValueError("submit needs a 'spec' object")
            handle = self.service.submit_spec(spec)
            await self._send(writer, {"ok": True, **handle.describe()})
        elif op == "list":
            await self._send(writer, {
                "ok": True, "runs": self.service.list_runs()})
        elif op == "status":
            handle = self._handle_for(request)
            await self._send(writer, {"ok": True, **handle.describe()})
        elif op == "cancel":
            handle = self._handle_for(request)
            self._controller_for(handle).cancel()
            await self._send(writer, {"ok": True, "run": handle.run_id,
                                      "cancelling": True})
        elif op == "pause":
            handle = self._handle_for(request)
            self._controller_for(handle).pause()
            handle.state = "paused" if not handle.done.is_set() else handle.state
            await self._send(writer, {"ok": True, "run": handle.run_id,
                                      "paused": True})
        elif op == "resume":
            handle = self._handle_for(request)
            self._controller_for(handle).resume()
            if not handle.done.is_set():
                handle.state = "running"
            await self._send(writer, {"ok": True, "run": handle.run_id,
                                      "paused": False})
        elif op == "metrics":
            handle = self._handle_for(request)
            collector = handle.collector
            if collector is None:
                raise ValueError(f"run {handle.run_id!r} has no collector")
            await self._send(writer, {
                "ok": True, "run": handle.run_id,
                "prometheus": render_prometheus(collector),
                "flat": collector.flat()})
        elif op == "command":
            await self._op_command(request, writer)
        elif op == "subscribe":
            await self._op_subscribe(request, writer)
        else:
            raise ValueError(f"unknown op {op!r}")

    def _handle_for(self, request: Dict[str, Any]) -> RunHandle:
        run_id = request.get("run")
        if not run_id:
            raise ValueError("missing 'run' field")
        return self.service.get(str(run_id))

    def _controller_for(self, handle: RunHandle):
        if handle.controller is None:
            raise ValueError(
                f"run {handle.run_id!r} is external (observe-only); "
                "it accepts no control commands")
        return handle.controller

    async def _op_command(self, request: Dict[str, Any],
                          writer: asyncio.StreamWriter) -> None:
        handle = self._handle_for(request)
        controller = self._controller_for(handle)
        command = request.get("command")
        if not isinstance(command, dict) or "kind" not in command:
            raise ValueError("command needs a 'command' object with 'kind'")
        kind = command["kind"]
        if kind == "inject_fault":
            future = controller.inject_fault(_fault_from_request(command))
        elif kind == "retire_cluster":
            if "cluster" not in command:
                raise ValueError("retire_cluster needs a 'cluster' field")
            future = controller.retire_cluster(
                str(command["cluster"]),
                str(command.get("reason", "retired by control plane")))
        elif kind == "set_policy":
            if "policy" not in command:
                raise ValueError("set_policy needs a 'policy' field")
            future = controller.set_policy(str(command["policy"]))
        else:
            raise ValueError(f"unknown command kind {kind!r}")
        if not request.get("wait", True):
            await self._send(writer, {"ok": True, "run": handle.run_id,
                                      "queued": kind})
            return
        timeout = float(request.get("timeout", 30.0))
        result = await asyncio.wait_for(
            asyncio.wrap_future(future), timeout=timeout)
        await self._send(writer, {"ok": True, "run": handle.run_id,
                                  "result": result})

    async def _op_subscribe(self, request: Dict[str, Any],
                            writer: asyncio.StreamWriter) -> None:
        handle = self._handle_for(request)
        kinds = request.get("kinds")
        metrics_every = int(request.get("metrics_every", 0))
        max_events = int(request.get("max_events", 0))
        stream = self.service.stream_for(handle, kinds=kinds)
        seen = 0
        try:
            await self._send(writer, {"ok": True, "run": handle.run_id,
                                      "subscribed": True})
            while True:
                event = await stream.next()
                if event is None:
                    break
                seen += 1
                await self._send(writer, {"event": event.as_dict()})
                if metrics_every and seen % metrics_every == 0:
                    snapshot = (handle.collector.flat()
                                if handle.collector is not None else {})
                    await self._send(writer, {
                        "metrics_snapshot": snapshot,
                        "dropped": stream.dropped})
                if max_events and seen >= max_events:
                    break
            await self._send(writer, {
                "done": True, "run": handle.run_id, "state": handle.state,
                "events": seen, "delivered": stream.delivered,
                "dropped": stream.dropped})
        finally:
            stream.close()


class ControlPlaneClient:
    """Async line-JSON client for :class:`ControlPlaneServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "ControlPlaneClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=_MAX_LINE)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            with contextlib.suppress(Exception):
                self._writer.close()
                await self._writer.wait_closed()
            self._reader = self._writer = None

    async def __aenter__(self) -> "ControlPlaneClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def _read_reply(self) -> Dict[str, Any]:
        assert self._reader is not None, "client not connected"
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("control plane closed the connection")
        return json.loads(line)

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One request, one reply; raises RuntimeError on error replies."""
        assert self._writer is not None, "client not connected"
        payload = {"op": op, **fields}
        self._writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await self._writer.drain()
        reply = await self._read_reply()
        if not reply.get("ok", False):
            raise RuntimeError(
                f"control plane rejected {op!r}: {reply.get('error')}")
        return reply

    async def open_subscription(self, run: str, *, kinds=None,
                                metrics_every: int = 0,
                                max_events: int = 0,
                                ) -> AsyncIterator[Dict[str, Any]]:
        """Open a subscription eagerly and return its line iterator.

        Returns only after the server confirms the stream is attached,
        so a ``resume`` issued on *another* connection afterwards
        cannot race the subscription (the paused-submit -> subscribe ->
        resume recipe for observing a run's very first events).
        """
        fields: Dict[str, Any] = {"run": run, "metrics_every": metrics_every,
                                  "max_events": max_events}
        if kinds is not None:
            fields["kinds"] = list(kinds)
        await self.request("subscribe", **fields)

        async def lines() -> AsyncIterator[Dict[str, Any]]:
            while True:
                line = await self._read_reply()
                yield line
                if line.get("done") or line.get("ok") is False:
                    return

        return lines()

    async def subscribe(self, run: str, *, kinds=None,
                        metrics_every: int = 0, max_events: int = 0,
                        ) -> AsyncIterator[Dict[str, Any]]:
        """Yield stream lines (event / metrics_snapshot / done) for a run.

        The ``done`` line is yielded too, then iteration stops and the
        connection is ready for further :meth:`request` calls.  Lazy:
        the subscription opens at first iteration — use
        :meth:`open_subscription` when attachment order matters.
        """
        lines = await self.open_subscription(
            run, kinds=kinds, metrics_every=metrics_every,
            max_events=max_events)
        async for line in lines:
            yield line


@contextlib.contextmanager
def serve_in_thread(host: str = "127.0.0.1", port: int = 0,
                    max_workers: int = 4,
                    builder: Optional[Callable[..., Any]] = None):
    """Host a FleetService + ControlPlaneServer on a background thread.

    For synchronous callers (experiments, examples, tests): yields a
    namespace with ``host``, ``port``, ``service``, ``server`` and
    ``loop``; on exit, cancels live runs and tears the server down.
    Thread-safe service entry points (``submit_threadsafe``,
    ``register_external``, ``finish_external``) may be called directly
    on ``box.service`` from the caller's thread.
    """
    box = SimpleNamespace(service=None, server=None, loop=None,
                          host=host, port=None, error=None)
    started = threading.Event()
    stop_box: Dict[str, Any] = {}

    async def main() -> None:
        try:
            service = await FleetService(
                max_workers=max_workers, builder=builder).start()
            server = await ControlPlaneServer(service, host, port).start()
        except Exception as exc:
            box.error = exc
            started.set()
            return
        stop = asyncio.Event()
        stop_box["stop"] = stop
        box.service = service
        box.server = server
        box.loop = asyncio.get_running_loop()
        box.port = server.port
        started.set()
        await stop.wait()
        await server.close()
        await service.close()

    thread = threading.Thread(target=lambda: asyncio.run(main()),
                              name="control-plane", daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):
        raise RuntimeError("control plane failed to start within 30s")
    if box.error is not None:
        thread.join(timeout=5.0)
        raise box.error
    try:
        yield box
    finally:
        box.loop.call_soon_threadsafe(stop_box["stop"].set)
        thread.join(timeout=60.0)
