"""`repro.serve.dashboard` — live fleet dashboard over the control plane.

:class:`FleetDashboard` extends :class:`~repro.obs.console.LiveConsole`
with loss-trend sparklines per cluster, cumulative radio energy, a
fault/retirement/deadline timeline, and span-derived wall-clock phase
timings.  Like its base it is a pure fold over the event stream — no
simulation state, injectable output stream, testable on a StringIO.

Runnable against either a control-plane server or a JSONL file::

    python -m repro.serve.dashboard --connect 127.0.0.1:7787 --run run-1
    python -m repro.serve.dashboard --follow out/telemetry.jsonl
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from collections import deque
from typing import IO, Deque, Dict, Optional

from ..obs.console import LiveConsole
from ..obs.exporters import read_events
from ..obs.telemetry import (
    EVENT_TYPES, ClusterRetired, DeadlineMissed, FaultApplied,
    RoundCompleted, SpanClosed, TelemetryBus, TelemetryEvent,
)
from .protocol import ControlPlaneClient

__all__ = ["FleetDashboard", "main"]


class FleetDashboard(LiveConsole):
    """LiveConsole plus trends, timeline, and phase timings."""

    KINDS = LiveConsole.KINDS + (SpanClosed.kind,)
    SPARK = "▁▂▃▄▅▆▇█"

    def __init__(self, bus: Optional[TelemetryBus] = None,
                 stream: Optional[IO[str]] = None,
                 refresh_s: float = 0.5,
                 spark_window: int = 32,
                 timeline_length: int = 8) -> None:
        # Own state must exist before super() subscribes observe_event.
        self._spark_window = spark_window
        self._loss_series: Dict[str, Deque[float]] = {}
        self._energy: Dict[str, float] = {}
        self.timeline: Deque[str] = deque(maxlen=timeline_length)
        self.span_totals: Dict[str, float] = {}
        self.events_seen = 0
        super().__init__(bus=bus, stream=stream, refresh_s=refresh_s)

    # -- event fold -------------------------------------------------------

    def observe_event(self, event: TelemetryEvent) -> None:
        self.events_seen += 1
        if isinstance(event, RoundCompleted):
            if event.loss is not None:
                series = self._loss_series.get(event.cluster)
                if series is None:
                    series = self._loss_series[event.cluster] = deque(
                        maxlen=self._spark_window)
                series.append(event.loss)
            if event.radio_energy_j is not None:
                self._energy[event.cluster] = event.radio_energy_j
        elif isinstance(event, FaultApplied):
            self.timeline.append(
                f"t={event.time_s:10.2f}s  fault {event.fault} "
                f"on {event.cluster}")
        elif isinstance(event, ClusterRetired):
            self.timeline.append(
                f"t={event.time_s:10.2f}s  retired {event.cluster} "
                f"({event.reason})")
        elif isinstance(event, DeadlineMissed):
            self.timeline.append(
                f"t={event.finish_s:10.2f}s  deadline missed by "
                f"{event.cluster} at round {event.round}")
        elif isinstance(event, SpanClosed):
            self.span_totals[event.name] = (
                self.span_totals.get(event.name, 0.0) + event.elapsed_s)
        # Base fold updates the health rows and throttles the repaint
        # (its isinstance chain simply ignores span events).
        super().observe_event(event)

    def _sparkline(self, values: Deque[float]) -> str:
        if not values:
            return "-"
        lo, hi = min(values), max(values)
        if hi <= lo:
            return self.SPARK[0] * len(values)
        scale = (len(self.SPARK) - 1) / (hi - lo)
        return "".join(self.SPARK[int((v - lo) * scale)] for v in values)

    # -- rendering --------------------------------------------------------

    def render(self) -> None:
        lines = [
            f"{'cluster':<12} {'round':>6} {'loss':>10} {'battery J':>10} "
            f"{'radio J':>9} {'faults':>6}  {'loss trend':<{self._spark_window}}"
            "  status"
        ]
        for name, row in sorted(self.rows.items()):
            loss = f"{row.loss:.4g}" if row.loss is not None else "-"
            battery = (f"{row.battery_j:.3f}"
                       if row.battery_j is not None else "-")
            energy = (f"{self._energy[name]:.3f}"
                      if name in self._energy else "-")
            spark = self._sparkline(self._loss_series.get(name, deque()))
            lines.append(
                f"{name:<12} {row.round:>6} {loss:>10} {battery:>10} "
                f"{energy:>9} {row.faults:>6}  "
                f"{spark:<{self._spark_window}}  {row.status}")
        if self.timeline:
            lines.append("-- timeline --")
            lines.extend(f"  {entry}" for entry in self.timeline)
        if self.span_totals:
            lines.append("-- phase timings (wall-clock s) --")
            for name, total in sorted(self.span_totals.items(),
                                      key=lambda item: -item[1]):
                lines.append(f"  {name:<32} {total:10.4f}")
        self.stream.write("\n".join(lines) + "\n")
        self.renders += 1


def _event_from_wire(payload: Dict[str, object]) -> TelemetryEvent:
    fields = dict(payload)
    fields.pop("shard", None)
    kind = str(fields.pop("kind"))
    return EVENT_TYPES[kind](**fields)


async def _run_connected(args: argparse.Namespace,
                         dashboard: FleetDashboard) -> int:
    host, _, port = args.connect.rpartition(":")
    async with ControlPlaneClient(host or "127.0.0.1", int(port)) as client:
        run = args.run
        if run is None:
            runs = (await client.request("list"))["runs"]
            if not runs:
                print("no runs registered on the control plane",
                      file=sys.stderr)
                return 1
            run = runs[-1]["run"]
        kinds = args.kinds.split(",") if args.kinds else list(
            FleetDashboard.KINDS)
        async for line in client.subscribe(run, kinds=kinds,
                                           max_events=args.max_events):
            if "event" in line:
                dashboard.observe_event(_event_from_wire(line["event"]))
            elif line.get("done"):
                dashboard.render()
                print(f"run {run}: state={line['state']} "
                      f"events={line['events']} dropped={line['dropped']}",
                      file=dashboard.stream)
    return 0


def _run_follow(args: argparse.Namespace,
                dashboard: FleetDashboard) -> int:
    def stop() -> bool:
        return bool(args.max_events
                    and dashboard.events_seen >= args.max_events)

    for event in read_events(args.follow, follow=True, stop=stop):
        if args.kinds and event.kind not in args.kinds.split(","):
            continue
        dashboard.observe_event(event)
        if stop():
            break
    dashboard.render()
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.dashboard",
        description="Live fleet dashboard (control plane or JSONL tail).")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--connect", metavar="HOST:PORT",
                        help="subscribe to a control-plane server")
    source.add_argument("--follow", metavar="FILE",
                        help="tail a telemetry JSONL file")
    parser.add_argument("--run", default=None,
                        help="run id to watch (default: latest)")
    parser.add_argument("--kinds", default=None,
                        help="comma-separated event kinds filter")
    parser.add_argument("--refresh", type=float, default=0.5,
                        help="minimum seconds between repaints")
    parser.add_argument("--max-events", type=int, default=0,
                        help="stop after N events (0 = run until done)")
    args = parser.parse_args(argv)

    dashboard = FleetDashboard(stream=sys.stdout, refresh_s=args.refresh)
    if args.connect:
        return asyncio.run(_run_connected(args, dashboard))
    return _run_follow(args, dashboard)


if __name__ == "__main__":
    raise SystemExit(main())
