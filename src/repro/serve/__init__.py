"""`repro.serve` — the orchestration control plane.

Long-running asyncio service hosting many concurrent scheduler runs,
each observable (live telemetry streams, Prometheus metrics) and
steerable (fault injection, cluster retirement, policy switches,
pause/resume/cancel) while executing — without perturbing the
simulation: a run with an attached service is bit-identical to the
same run offline as long as no mutating command is issued.

Layers:

* :mod:`repro.serve.bridge` — sync TelemetryBus -> bounded asyncio
  event streams (non-blocking producers, counted drops);
* :mod:`repro.serve.commands` — the runtime command queue applied at
  safe between-round boundaries;
* :mod:`repro.serve.service` — the run registry + thread-pool
  executor (:class:`FleetService`);
* :mod:`repro.serve.protocol` — line-delimited JSON over TCP
  (:class:`ControlPlaneServer` / :class:`ControlPlaneClient`,
  :func:`serve_in_thread` for sync hosts);
* :mod:`repro.serve.dashboard` — live TUI
  (``python -m repro.serve.dashboard``).
"""

from .bridge import AsyncTelemetryBridge, EventStream
from .commands import Command, RunCancelled, RunController
from .dashboard import FleetDashboard
from .protocol import ControlPlaneClient, ControlPlaneServer, serve_in_thread
from .service import FleetService, RunHandle, build_scheduler_from_spec

__all__ = [
    "AsyncTelemetryBridge", "EventStream",
    "Command", "RunCancelled", "RunController",
    "FleetDashboard",
    "ControlPlaneClient", "ControlPlaneServer", "serve_in_thread",
    "FleetService", "RunHandle", "build_scheduler_from_spec",
]
