"""`repro.serve.bridge` — sync telemetry bus to asyncio event streams.

The simulation thread emits :class:`~repro.obs.telemetry.TelemetryEvent`
objects synchronously; the control plane serves them to asyncio
consumers.  :class:`EventStream` is the seam: a bounded thread-safe
queue whose producer side (:meth:`EventStream.offer`) **never blocks
and never throws** on the hot path — a full queue counts a drop and
moves on, so a slow TCP subscriber can never stall (or worse, perturb)
a run — and whose consumer side is a plain ``await stream.next()``.

:class:`AsyncTelemetryBridge` manages the bus subscriptions: one
``stream(kinds)`` call per subscriber, each with its own bounded queue
and drop counter, all torn down together when the run finishes.

Bit-identity contract: the bridge subscribes callbacks like any other
bus consumer — it draws no randomness, perturbs no accumulation order,
and costs the simulation exactly one bounded-deque append per
subscribed event.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from typing import Deque, Iterable, List, Optional

from ..obs.telemetry import TelemetryBus, TelemetryEvent

__all__ = ["AsyncTelemetryBridge", "EventStream"]


class EventStream:
    """One subscriber's bounded bridge queue.

    Producer side (any thread): :meth:`offer` — O(1), lock-held only
    for the append, drop-newest when full (``dropped`` counts what was
    shed).  Consumer side (the event loop): ``await next()`` returns
    events in emission order and ``None`` once the stream is closed
    *and* drained.  Wakeups coalesce: at most one
    ``call_soon_threadsafe`` is in flight regardless of burst size.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop,
                 capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._loop = loop
        self._lock = threading.Lock()
        self._queue: Deque[TelemetryEvent] = deque()
        self._capacity = capacity
        self._ready = asyncio.Event()
        self._wake_scheduled = False
        self._closed = False
        self.dropped = 0
        self.delivered = 0

    # -- producer side (simulation thread) ------------------------------

    def offer(self, event: TelemetryEvent) -> None:
        """Enqueue without blocking; shed (and count) when full."""
        with self._lock:
            if self._closed:
                return
            if len(self._queue) >= self._capacity:
                self.dropped += 1
                return
            self._queue.append(event)
            if self._wake_scheduled:
                return
            self._wake_scheduled = True
        self._schedule_wake()

    def close(self) -> None:
        """End the stream (thread-safe); queued events still drain."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._wake_scheduled:
                return
            self._wake_scheduled = True
        self._schedule_wake()

    def _schedule_wake(self) -> None:
        try:
            self._loop.call_soon_threadsafe(self._wake)
        except RuntimeError:
            # Loop already shut down: nobody is left to wake.
            pass

    def _wake(self) -> None:
        with self._lock:
            self._wake_scheduled = False
        self._ready.set()

    # -- consumer side (event loop) --------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    async def next(self) -> Optional[TelemetryEvent]:
        """Next event in emission order; ``None`` = closed and drained."""
        while True:
            with self._lock:
                if self._queue:
                    self.delivered += 1
                    return self._queue.popleft()
                if self._closed:
                    return None
                self._ready.clear()
            await self._ready.wait()


class AsyncTelemetryBridge:
    """Fans one sync :class:`TelemetryBus` out to async subscribers.

    Each :meth:`stream` call subscribes a fresh :class:`EventStream` to
    the bus; :meth:`close` unsubscribes everything and ends every
    stream (consumers drain what is queued, then see ``None``).
    Streams requested after close are born closed, so a late subscriber
    to a finished run terminates immediately instead of hanging.
    """

    def __init__(self, bus: TelemetryBus,
                 loop: asyncio.AbstractEventLoop) -> None:
        self.bus = bus
        self._loop = loop
        self._lock = threading.Lock()
        self._streams: List[EventStream] = []
        self._unsubscribes: List = []
        self._closed = False

    def stream(self, kinds: Optional[Iterable[str]] = None,
               capacity: int = 1024) -> EventStream:
        stream = EventStream(self._loop, capacity)
        with self._lock:
            if self._closed:
                stream.close()
                return stream
            self._streams.append(stream)
            self._unsubscribes.append(
                self.bus.subscribe(stream.offer, kinds=kinds))
        return stream

    def close(self) -> None:
        """Unsubscribe and end every stream (idempotent, thread-safe)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            streams = list(self._streams)
            unsubscribes = list(self._unsubscribes)
            self._streams.clear()
            self._unsubscribes.clear()
        for unsubscribe in unsubscribes:
            unsubscribe()
        for stream in streams:
            stream.close()
