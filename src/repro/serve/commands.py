"""`repro.serve.commands` — the runtime command queue and run controller.

A :class:`RunController` is the duck-typed object
:class:`~repro.core.scheduler.EdgeTrainingScheduler` consults at every
between-round boundary (``control=`` parameter).  It carries three
concerns:

* **pause/resume** — the simulation thread blocks on a
  ``threading.Event`` at the next boundary; only *wall* clock passes,
  the simulated clock and every trajectory are untouched;
* **cancel** — honoured at the first boundary where the executor has
  zero pre-executed rounds outstanding, so
  :meth:`~repro.core.rounds.SegmentedFleetExecutor.finalize` stays
  safe and a partial :class:`~repro.core.rounds.ScheduleReport` is
  still produced;
* **mutating commands** (``inject_fault``, ``retire_cluster``,
  ``set_policy``) — queued by any thread, each resolved through a
  ``concurrent.futures.Future``, and **applied only at boundaries
  where** ``executor.outstanding() == 0``.  While a command pends, the
  controller's :meth:`has_pending` gate makes the fused planners clamp
  to requesting-round-only plans, so outstanding work drains within
  one boundary and the command lands deterministically at the next.

The hot path is a single attribute read: ``checkpoint`` returns
immediately unless something is pending, which is what keeps the
telemetry-overhead ceiling intact with a controller attached but idle.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import deque
from concurrent.futures import Future
from typing import Deque, Dict

from ..sim.faults import FaultEvent

__all__ = ["Command", "RunCancelled", "RunController"]

#: Mutating command kinds the controller can apply at a boundary.
COMMAND_KINDS = ("inject_fault", "retire_cluster", "set_policy")


class RunCancelled(Exception):
    """Raised into a command future when its run ends before it applies."""


class Command:
    """One queued runtime command with its resolution future."""

    __slots__ = ("kind", "payload", "future")

    def __init__(self, kind: str, payload: object = None) -> None:
        if kind not in COMMAND_KINDS:
            raise ValueError(f"unknown command kind {kind!r}; "
                             f"choose from {COMMAND_KINDS}")
        self.kind = kind
        self.payload = payload
        self.future: Future = Future()


class RunController:
    """Between-round control state for one scheduler run.

    Thread model: ``submit``/``pause``/``resume``/``cancel`` may be
    called from any thread; ``checkpoint``/``ideal_checkpoint`` run on
    the simulation thread; ``finish`` runs on the service worker after
    ``scheduler.run`` returns.
    """

    def __init__(self, paused: bool = False) -> None:
        self._lock = threading.Lock()
        self._commands: Deque[Command] = deque()
        self._resume = threading.Event()
        self.paused = paused
        if not paused:
            self._resume.set()
        self.cancelled = False
        self.finished = False
        self.applied: list = []
        # Fast-path flag: True iff a pause, cancel or command pends.
        # Read without the lock on the hot path (a bool read is atomic
        # under the GIL); all writers hold the lock.
        self._dirty = paused

    # -- control surface (any thread) -----------------------------------

    def submit(self, kind: str, payload: object = None) -> Future:
        """Queue a mutating command; the future resolves at application."""
        command = Command(kind, payload)
        with self._lock:
            if self.finished:
                command.future.set_exception(RunCancelled(
                    f"run already finished; command {kind!r} not applied"))
                return command.future
            self._commands.append(command)
            self._dirty = True
        return command.future

    def inject_fault(self, event: FaultEvent) -> Future:
        return self.submit("inject_fault", event)

    def retire_cluster(self, cluster: str,
                       reason: str = "retired by control plane") -> Future:
        return self.submit("retire_cluster", (cluster, reason))

    def set_policy(self, policy: str) -> Future:
        return self.submit("set_policy", policy)

    def pause(self) -> None:
        with self._lock:
            self.paused = True
            self._resume.clear()
            self._dirty = True

    def resume(self) -> None:
        with self._lock:
            self.paused = False
            self._resume.set()
            self._refresh_dirty_locked()

    def cancel(self) -> None:
        """Request a stop at the next safe boundary (never mid-round)."""
        with self._lock:
            self.cancelled = True
            self._dirty = True
            # A paused run must wake up to observe the cancel.
            self._resume.set()

    def has_pending(self) -> bool:
        """Command-gate for the fused planners: clamp while this holds."""
        return bool(self._commands) or self.cancelled

    # -- simulation-thread side ------------------------------------------

    def checkpoint(self, surface) -> bool:
        """Event-engine boundary hook; False stops the run.

        ``surface`` is the scheduler's
        :class:`~repro.core.scheduler.RunControlSurface`.  Mutations
        (commands, cancel) act only when the executor has nothing
        pre-executed outstanding; until then the :meth:`has_pending`
        gate keeps new plans minimal so that state drains fast.
        """
        if not self._dirty:
            return True
        self._resume.wait()
        if surface.executor.outstanding() == 0:
            if self._commands:
                self._drain(surface)
            if self.cancelled:
                return False
        with self._lock:
            self._refresh_dirty_locked()
        return True

    def ideal_checkpoint(self, loop) -> bool:
        """Boundary hook for the ideal engines (pause/cancel only)."""
        if not self._dirty:
            return True
        self._resume.wait()
        while True:
            with self._lock:
                command = (self._commands.popleft()
                           if self._commands else None)
            if command is None:
                break
            command.future.set_exception(ValueError(
                f"command {command.kind!r} requires the event engine; "
                "this run executes on an ideal engine "
                "(pause/resume/cancel only)"))
        if self.cancelled:
            return False
        with self._lock:
            self._refresh_dirty_locked()
        return True

    # -- worker side ------------------------------------------------------

    def finish(self) -> None:
        """Resolve leftovers once the run has returned (or raised)."""
        with self._lock:
            self.finished = True
            pending = list(self._commands)
            self._commands.clear()
            self._dirty = False
            self._resume.set()
        for command in pending:
            if not command.future.done():
                command.future.set_exception(RunCancelled(
                    f"run ended before command {command.kind!r} "
                    "reached a safe boundary"))

    # -- internals --------------------------------------------------------

    def _refresh_dirty_locked(self) -> None:
        self._dirty = (self.paused or self.cancelled
                       or bool(self._commands))

    def _drain(self, surface) -> None:
        while True:
            with self._lock:
                if not self._commands:
                    return
                command = self._commands.popleft()
            try:
                result = self._apply(command, surface)
            except Exception as exc:
                command.future.set_exception(exc)
            else:
                self.applied.append((command.kind, result))
                command.future.set_result(result)

    def _apply(self, command: Command, surface) -> Dict[str, object]:
        now = float(surface.sim.now)
        if command.kind == "inject_fault":
            event: FaultEvent = dataclasses.replace(command.payload,
                                                    time_s=now)
            surface.injector.inject(event)
            return {"applied": "inject_fault", "cluster": event.cluster,
                    "fault": event.kind, "time_s": now}
        if command.kind == "retire_cluster":
            name, reason = command.payload
            state = surface.states.get(name)
            if state is None:
                raise KeyError(
                    f"retire_cluster names unknown cluster {name!r}; "
                    f"known: {sorted(surface.states)}")
            was_dead = state.dead
            state.retire(reason)
            return {"applied": "retire_cluster", "cluster": name,
                    "reason": reason, "was_dead": was_dead, "time_s": now}
        if command.kind == "set_policy":
            from ..core.scheduler import _POLICIES
            policy = command.payload
            if policy not in _POLICIES:
                raise ValueError(f"unknown policy {policy!r}; "
                                 f"choose from {_POLICIES}")
            executor = surface.executor
            if (policy == "loss_priority"
                    and getattr(executor, "mode", None) == "segment"):
                raise ValueError(
                    "cannot switch to loss_priority mid-run under fused "
                    "segment planning (the planner mirrors picks and has "
                    "no loss signal); start the run with "
                    "policy='loss_priority' or segment_batching=False")
            previous = surface.scheduler.policy
            surface.scheduler.policy = policy
            if hasattr(executor, "policy"):
                executor.policy = policy
            return {"applied": "set_policy", "policy": policy,
                    "previous": previous, "time_s": now}
        raise ValueError(f"unhandled command kind {command.kind!r}")
