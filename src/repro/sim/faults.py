"""Declarative fault injection: node death, brownout, failover, churn.

A :class:`FaultSchedule` is a sorted list of :class:`FaultEvent`\\ s —
"at simulated second 40, device 3 of cluster-1 dies", "at 60, cluster-2
straggles 6x" — that a :class:`FaultInjector` arms on an
:class:`~repro.sim.events.EventScheduler`, applying each event to a
*fault target* when the simulated clock reaches it.

A fault target is anything implementing the small mutation protocol
below (:class:`FaultTarget`): the scheduler's event engine exposes its
per-cluster state this way, and :func:`apply_fault_to_network` adapts a
:class:`~repro.wsn.network.WSNetwork` so the same schedules drive
single-cluster WSN simulations (aggregator failover there re-runs
:func:`~repro.wsn.clustering.select_aggregator` over the survivors, as
the paper's proximity rule prescribes).

Event kinds
-----------
``node_death``        device ``device`` stops contributing (and, as a
                      relay, drops its subtree in masked aggregation)
``node_revive``       churn: the device rejoins
``aggregator_death``  the cluster head dies; resilient policies fail
                      over by re-running aggregator selection
``brownout``          battery knee: remaining energy multiplies by
                      ``magnitude`` (0 < m < 1)
``straggler``         the cluster's compute slows by ``magnitude`` (>= 1)
``recover``           straggler recovery: slow factor back to 1
``cluster_death``     the whole cluster leaves the fleet
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
)

from ..obs.telemetry import NULL_BUS, FaultApplied
from .events import EventScheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.telemetry import TelemetryBus
    from ..wsn.network import WSNetwork

FAULT_KINDS = ("node_death", "node_revive", "aggregator_death", "brownout",
               "straggler", "recover", "cluster_death")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``magnitude`` is kind-specific: brownout keeps that *fraction* of
    remaining battery; straggler multiplies compute time by it.
    """

    time_s: float
    kind: str
    cluster: str = ""
    device: Optional[int] = None
    magnitude: float = 1.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {FAULT_KINDS}")
        if self.time_s < 0:
            raise ValueError("fault time must be non-negative")
        if self.kind in ("node_death", "node_revive") and self.device is None:
            raise ValueError(f"{self.kind} needs a device index")
        if self.kind == "brownout" and not 0.0 <= self.magnitude <= 1.0:
            raise ValueError("brownout magnitude is the battery fraction "
                             "kept; must be in [0, 1]")
        if self.kind == "straggler" and self.magnitude < 1.0:
            raise ValueError("straggler magnitude is a slowdown factor >= 1")


class FaultSchedule:
    """An immutable, time-sorted collection of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self.events: List[FaultEvent] = sorted(
            events, key=lambda e: (e.time_s, e.kind, e.cluster))

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def for_cluster(self, name: str) -> "FaultSchedule":
        return FaultSchedule(e for e in self.events if e.cluster == name)

    def between(self, t0: float, t1: float) -> List[FaultEvent]:
        """Events with ``t0 < time_s <= t1`` (the advance-window query)."""
        return [e for e in self.events if t0 < e.time_s <= t1]

    def next_after(self, t: float) -> float:
        """Time of the first event strictly after ``t`` (inf when none).

        The static companion to :meth:`FaultInjector.horizon`: lets
        callers size fault-free execution segments before any kernel is
        armed (e.g. to pre-budget a fused sweep).
        """
        for event in self.events:
            if event.time_s > t:
                return event.time_s
        return float("inf")

    def clusters(self) -> List[str]:
        seen: List[str] = []
        for event in self.events:
            if event.cluster not in seen:
                seen.append(event.cluster)
        return seen

    # ------------------------------------------------------------------
    # Common scenario builders
    # ------------------------------------------------------------------
    @classmethod
    def first_death(cls, cluster: str, time_s: float,
                    device: int) -> "FaultSchedule":
        """The canonical lifetime scenario: one device dies mid-training."""
        return cls([FaultEvent(time_s, "node_death", cluster, device)])

    @classmethod
    def attrition(cls, cluster: str, devices: Iterable[int], start_s: float,
                  interval_s: float) -> "FaultSchedule":
        """Devices die one by one every ``interval_s`` from ``start_s``."""
        return cls([FaultEvent(start_s + i * interval_s, "node_death",
                               cluster, dev)
                    for i, dev in enumerate(devices)])

    @classmethod
    def straggler_window(cls, cluster: str, start_s: float, end_s: float,
                         factor: float) -> "FaultSchedule":
        """The cluster slows by ``factor`` between ``start_s`` and ``end_s``."""
        if end_s <= start_s:
            raise ValueError("straggler window must have end_s > start_s")
        return cls([FaultEvent(start_s, "straggler", cluster,
                               magnitude=factor),
                    FaultEvent(end_s, "recover", cluster)])

    def merged(self, *others: "FaultSchedule") -> "FaultSchedule":
        events = list(self.events)
        for other in others:
            events.extend(other.events)
        return FaultSchedule(events)


class FaultTarget(Protocol):
    """Mutation protocol a fault-injectable cluster state implements."""

    def kill_device(self, device: int) -> None: ...

    def revive_device(self, device: int) -> None: ...

    def kill_aggregator(self) -> None: ...

    def brownout(self, fraction: float) -> None: ...

    def set_slow_factor(self, factor: float) -> None: ...

    def kill_cluster(self) -> None: ...


def apply_fault(event: FaultEvent, target: FaultTarget) -> None:
    """Dispatch one event onto a fault target."""
    if event.kind == "node_death":
        target.kill_device(event.device)
    elif event.kind == "node_revive":
        target.revive_device(event.device)
    elif event.kind == "aggregator_death":
        target.kill_aggregator()
    elif event.kind == "brownout":
        target.brownout(event.magnitude)
    elif event.kind == "straggler":
        target.set_slow_factor(event.magnitude)
    elif event.kind == "recover":
        target.set_slow_factor(1.0)
    elif event.kind == "cluster_death":
        target.kill_cluster()
    else:  # pragma: no cover - guarded by FaultEvent validation
        raise ValueError(f"unhandled fault kind {event.kind!r}")


@dataclass
class FaultInjector:
    """Arms a schedule on a kernel and applies events to named targets.

    ``targets`` maps cluster names to fault targets.  Events naming an
    unknown cluster raise at :meth:`arm` time (declarative schedules
    should fail loudly, not silently no-op).  ``applied`` records the
    events that actually fired, in order — the audit trail experiment
    reports lean on.  ``on_applied`` is an optional post-application
    hook called with each fired event — the seam through which the
    scheduler re-derives per-cluster ARQ budgets at fault boundaries
    (a brownout or failover changes both deadline slack and battery
    headroom, so the budget set at run start goes stale).
    """

    schedule: FaultSchedule
    targets: dict
    applied: List[FaultEvent] = field(default_factory=list)
    on_applied: Optional[Callable[[FaultEvent], None]] = None
    bus: "TelemetryBus" = field(default=NULL_BUS, repr=False)
    _sim: Optional[EventScheduler] = field(default=None, repr=False)

    #: Event tag the injector arms with; :meth:`horizon` queries it.
    TAG = "fault"

    def arm(self, sim: EventScheduler) -> None:
        unknown = [e.cluster for e in self.schedule
                   if e.cluster not in self.targets]
        if unknown:
            raise KeyError(f"fault schedule names unknown clusters {unknown}; "
                           f"known: {sorted(self.targets)}")
        self._sim = sim
        for event in self.schedule:
            sim.schedule_at(event.time_s, self._fire, event, tag=self.TAG)

    def horizon(self) -> float:
        """Simulated time of the next *unfired* fault (inf when none).

        This is the segment boundary the scheduler's fused event engine
        batches up to: every round whose edge work completes strictly
        before the horizon sees exactly the current fault state, so its
        training math can be pre-executed as part of a fleet wave.
        """
        if self._sim is None:
            return self.schedule.next_after(float("-inf"))
        return self._sim.next_time(self.TAG)

    def _fire(self, event: FaultEvent) -> None:
        apply_fault(event, self.targets[event.cluster])
        self.applied.append(event)
        if self.bus.wants(FaultApplied.kind):
            self.bus.emit(FaultApplied(cluster=event.cluster,
                                       fault=event.kind,
                                       time_s=event.time_s))
        if self.on_applied is not None:
            self.on_applied(event)

    def inject(self, event: FaultEvent) -> None:
        """Apply an *unscheduled* fault right now (runtime command path).

        Mirrors :meth:`_fire` exactly — same audit trail, telemetry,
        and ``on_applied`` re-derivation hook — so a fault injected by
        the control plane is indistinguishable from a scheduled one,
        except that it never participates in :meth:`horizon` (the
        caller applies it at a round boundary, where no pre-executed
        work is outstanding).
        """
        if event.cluster not in self.targets:
            raise KeyError(
                f"inject names unknown cluster {event.cluster!r}; "
                f"known: {sorted(self.targets)}")
        self._fire(event)


# ----------------------------------------------------------------------
# WSNetwork adapter
# ----------------------------------------------------------------------
class NetworkFaultTarget:
    """Adapts a :class:`~repro.wsn.network.WSNetwork` to the fault protocol.

    Aggregator death triggers failover: the replacement head is chosen
    by re-running :func:`~repro.wsn.clustering.select_aggregator` over
    the surviving devices' positions (proximity rule), mirroring the
    paper's cluster-head-selection citations.
    """

    def __init__(self, network: "WSNetwork"):
        self.network = network
        self.failovers: List[int] = []

    def kill_device(self, device: int) -> None:
        self.network.kill_node(device)
        if device == self.network.aggregator_id:
            self._failover()

    def revive_device(self, device: int) -> None:
        self.network.revive_node(device)

    def kill_aggregator(self) -> None:
        if self.network.aggregator_id is None:
            raise RuntimeError("network has no aggregator to kill")
        self.kill_device(self.network.aggregator_id)

    def brownout(self, fraction: float) -> None:
        for nid in self.network.alive_device_ids:
            battery = self.network.nodes[nid].battery
            battery.remaining_j *= fraction

    def set_slow_factor(self, factor: float) -> None:
        """Networks model no compute; stragglers are a no-op here."""

    def kill_cluster(self) -> None:
        for nid in list(self.network.alive_device_ids):
            self.network.kill_node(nid)

    # ------------------------------------------------------------------
    def _failover(self) -> None:
        import numpy as np

        from ..wsn.clustering import select_aggregator

        alive = self.network.alive_device_ids
        if not alive:
            return
        positions = np.array([self.network.nodes[n].position for n in alive])
        replacement = alive[select_aggregator(positions)]
        self.network.set_aggregator(replacement)
        self.failovers.append(replacement)


def apply_fault_to_network(event: FaultEvent, network: "WSNetwork",
                           target: Optional[NetworkFaultTarget] = None
                           ) -> NetworkFaultTarget:
    """One-shot convenience: apply ``event`` to ``network`` immediately."""
    target = target or NetworkFaultTarget(network)
    apply_fault(event, target)
    return target
