"""Vectorized channel kernel: pre-sampled loss horizons, batched pricing.

The per-frame channel in :mod:`repro.sim.channel` prices every frame
with one or two scalar ``Generator.random()`` calls plus a Python loop
iteration — fine for a handful of transmits, ruinous for the
10^4–10^6-frame horizons that trace recording and unfused lossy runs
walk.  This module replaces the *draw* side with block sampling and the
*pricing* side with O(horizon) array ops, both bit-identical to the
scalar path:

* **Samplers** (:class:`BernoulliSampler`, :class:`GilbertElliottSampler`)
  pre-draw whole blocks of uniforms with a single ``rng.random(n)`` call.
  NumPy's ``Generator.random(n)`` consumes the underlying bit stream
  exactly as ``n`` successive scalar ``random()`` calls do, so verdicts
  derived from a block equal the per-frame draws draw-for-draw.  The
  Gilbert-Elliott chain vectorizes by scanning sojourns: with both
  per-state loss rates positive every frame consumes exactly two
  uniforms (flip, then loss), so a block splits into stride-2 flip/loss
  lanes and the hidden state advances one geometric sojourn per Python
  iteration instead of one frame.
* **Pricing** (:func:`parse_arq_stream`) tiles a pre-sampled verdict
  stream into stop-and-wait ARQ slots and groups slots into messages in
  closed form — the greedy slot structure is context-free (an aborted
  message radiates nothing further, the stream simply continues with the
  next message), so a ``floor``/``mod`` over inter-delivery run lengths
  recovers attempts, delivered flags, retransmissions and wire bytes
  without stepping frames.

Samplers buffer *raw uniforms*, not just verdicts: a channel
:meth:`~repro.sim.channel.UnreliableChannel.reset` re-derives the
verdicts of still-buffered draws from the fresh GOOD state, so block
lookahead never changes what a later transmit observes relative to the
scalar path.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..wsn.link import LinkModel

#: Minimum uniforms drawn per refill — amortizes Generator call overhead
#: for scalar consumers (live transmits popping one verdict at a time).
_MIN_BLOCK = 512


class LossSampler:
    """Block-sampled frame-loss verdicts, bit-identical to scalar draws.

    ``peek(n)`` exposes the next ``n`` loss verdicts (True = frame lost)
    without consuming them; ``advance(k)`` consumes ``k``.  All loss
    draws of a channel must flow through its sampler once one is
    attached — the sampler owns the generator's stream from the first
    refill on.
    """

    def peek(self, n: int) -> np.ndarray:
        raise NotImplementedError

    def advance(self, n: int) -> None:
        raise NotImplementedError

    def take(self) -> bool:
        """Consume and return one verdict (the scalar hot path)."""
        verdict = bool(self.peek(1)[0])
        self.advance(1)
        return verdict

    def reset(self) -> None:
        """Re-derive buffered verdicts after a loss-model reset."""

    # -- absolute stream addressing (trace re-recording support) -------
    #
    # Subclasses keep ``_origin`` (absolute verdict offset of the buffer
    # base), ``_pos`` (consumed frames relative to the base) and
    # ``_pin`` (absolute offset the buffer must retain, or None).

    @property
    def position(self) -> int:
        """Absolute verdict offset of the next unconsumed frame."""
        return self._origin + self._pos

    def pin(self, offset: Optional[int]) -> None:
        """Retain buffered verdicts from absolute ``offset`` on.

        Pinned verdicts survive compaction, so a later :meth:`rewind`
        to any offset at or past the pin replays them bit-identically.
        ``None`` releases the pin.
        """
        if offset is not None and not self._origin <= offset <= self.position:
            raise ValueError(
                f"pin offset {offset} outside retained buffer "
                f"[{self._origin}, {self.position}]")
        self._pin = offset

    def rewind(self, offset: int) -> None:
        """Move the cursor back to absolute ``offset`` (pinned region)."""
        rel = offset - self._origin
        if not 0 <= rel <= self._pos:
            raise ValueError(
                f"rewind offset {offset} outside retained buffer "
                f"[{self._origin}, {self.position}]")
        self._pos = rel


class BernoulliSampler(LossSampler):
    """i.i.d. losses: one uniform per frame, block-compared to the rate."""

    def __init__(self, model, rng: np.random.Generator):
        self.model = model
        self.rng = rng
        self._verdicts = np.empty(0, dtype=bool)
        self._pos = 0
        self._origin = 0
        self._pin: Optional[int] = None

    def peek(self, n: int) -> np.ndarray:
        avail = self._verdicts.size - self._pos
        if avail < n:
            drop = self._pos if self._pin is None else \
                min(self._pos, max(self._pin - self._origin, 0))
            if drop:
                self._verdicts = self._verdicts[drop:]
                self._pos -= drop
                self._origin += drop
            draw = max(self._pos + n - self._verdicts.size, _MIN_BLOCK)
            fresh = self.rng.random(draw) < self.model.rate
            self._verdicts = np.concatenate([self._verdicts, fresh])
        return self._verdicts[self._pos:self._pos + n]

    def advance(self, n: int) -> None:
        self._pos += n

    # reset(): i.i.d. verdicts do not depend on chain state — buffered
    # draws stay valid, exactly as the scalar path's future draws would.


class GilbertElliottSampler(LossSampler):
    """Bursty two-state losses, vectorized via geometric sojourn scans.

    Requires both per-state loss rates positive so every frame consumes
    exactly two uniforms — flip at even stream offsets, loss at odd —
    matching :meth:`GilbertElliottLoss.frame_lost` draw-for-draw.  Raw
    uniforms are kept for the underived/unconsumed region; the hidden
    state is re-synced to ``model.bad`` whenever the buffer drains (and
    pushed back into ``model.bad`` on every advance), so external pokes
    at the burst state between transmits behave as on the scalar path.
    """

    def __init__(self, model, rng: np.random.Generator):
        self.model = model
        self.rng = rng
        self._flip_u = np.empty(0, dtype=float)
        self._loss_u = np.empty(0, dtype=float)
        self._verdicts = np.empty(0, dtype=bool)
        self._states = np.empty(0, dtype=bool)   # post-transition per frame
        self._derived = 0    # frames of the buffer with verdicts computed
        self._pos = 0        # frames already consumed
        self._chain_bad = bool(model.bad)   # state after frame _derived-1
        self._origin = 0
        self._origin_bad = bool(model.bad)  # state entering frame _origin
        self._pin: Optional[int] = None

    def _compact(self) -> None:
        drop = self._pos if self._pin is None else \
            min(self._pos, max(self._pin - self._origin, 0))
        if drop == 0:
            return
        self._origin_bad = bool(self._states[drop - 1])
        self._flip_u = self._flip_u[drop:]
        self._loss_u = self._loss_u[drop:]
        self._verdicts = self._verdicts[drop:]
        self._states = self._states[drop:]
        self._derived -= drop
        self._pos -= drop
        self._origin += drop

    def _derive(self, upto: int) -> None:
        """Extend derived verdicts/states to cover ``upto`` frames."""
        model = self.model
        if self._derived == self._pos:
            # Buffer drained: honor any external poke at the burst state.
            self._chain_bad = bool(model.bad)
        start = self._derived
        n = upto - start
        flips = self._flip_u[start:upto]
        states = np.empty(n, dtype=bool)
        g_hits = np.flatnonzero(flips < model.p_good_to_bad)
        b_hits = np.flatnonzero(flips < model.p_bad_to_good)
        bad = self._chain_bad
        pos = 0
        while pos < n:
            hits = b_hits if bad else g_hits
            j = np.searchsorted(hits, pos)
            nxt = int(hits[j]) if j < hits.size else n
            states[pos:nxt] = bad
            if nxt < n:
                bad = not bad
                states[nxt] = bad
            pos = nxt + 1
        rates = np.where(states, model.loss_bad, model.loss_good)
        verdicts = self._loss_u[start:upto] < rates
        self._verdicts = np.concatenate([self._verdicts[:start], verdicts])
        self._states = np.concatenate([self._states[:start], states])
        self._derived = upto
        self._chain_bad = bad

    def peek(self, n: int) -> np.ndarray:
        want = self._pos + n
        if want > self._flip_u.size:
            self._compact()
            want = self._pos + n
            draw = max(want - self._flip_u.size, _MIN_BLOCK)
            u = self.rng.random(2 * draw)
            self._flip_u = np.concatenate([self._flip_u, u[0::2]])
            self._loss_u = np.concatenate([self._loss_u, u[1::2]])
        if want > self._derived:
            self._derive(self._flip_u.size)
        return self._verdicts[self._pos:self._pos + n]

    def advance(self, n: int) -> None:
        self._pos += n
        if self._pos:
            self.model.bad = bool(self._states[self._pos - 1])

    def rewind(self, offset: int) -> None:
        """Rewind and re-sync the chain state to the resume point.

        Already-derived verdicts/states are retained and replayed —
        they depend only on the raw uniforms and the chain state at the
        buffer base, never on how the stream was parsed downstream.
        """
        super().rewind(offset)
        rel = self._pos
        self.model.bad = bool(self._states[rel - 1]) if rel > 0 \
            else self._origin_bad

    def reset(self) -> None:
        """Forget derived verdicts past the cursor; re-derive from GOOD.

        Called after ``model.reset()``: buffered raw uniforms stay (they
        are the same stream positions the scalar path would consume
        next) but their verdicts are recomputed against the reset chain.
        Releases any pin — a reset invalidates the retained verdicts a
        rewind would replay.
        """
        self._pin = None
        self._compact()
        self._verdicts = self._verdicts[:0]
        self._states = self._states[:0]
        self._derived = 0
        self._chain_bad = bool(self.model.bad)
        self._origin_bad = bool(self.model.bad)


def make_loss_sampler(loss, rng: np.random.Generator,
                      jitter_s: float = 0.0) -> Optional[LossSampler]:
    """A block sampler for ``loss`` when one can match scalar draws.

    Returns ``None`` when block sampling cannot reproduce the scalar
    RNG stream: jittered channels interleave exponential draws with loss
    uniforms; a Gilbert-Elliott model with a zero per-state loss rate
    draws a state-dependent number of uniforms per frame; unknown or
    lossless models have nothing to sample.  Callers fall back to the
    per-frame path in those cases.
    """
    # Imported here: channel.py imports this module at load time.
    from .channel import BernoulliLoss, GilbertElliottLoss

    if jitter_s > 0.0 or loss is None:
        return None
    if isinstance(loss, BernoulliLoss):
        return BernoulliSampler(loss, rng) if loss.rate > 0.0 else None
    if isinstance(loss, GilbertElliottLoss):
        if loss.loss_good > 0.0 and loss.loss_bad > 0.0:
            return GilbertElliottSampler(loss, rng)
    return None


# ----------------------------------------------------------------------
# Batched ARQ pricing
# ----------------------------------------------------------------------
def parse_arq_stream(verdicts: np.ndarray, frames_per_msg: int, cap: int,
                     max_msgs: int) -> Optional[dict]:
    """Tile a loss-verdict stream into ARQ slots and messages, in closed
    form.

    ``verdicts[i]`` is the loss verdict of the ``i``-th frame attempt
    (True = lost).  A *slot* is one frame's stop-and-wait run: up to
    ``cap`` attempts, delivered on the first False, failed after ``cap``
    Trues.  A *message* is ``frames_per_msg`` consecutive delivered
    slots, or fewer slots terminated by a failed slot (the sender aborts
    and the stream continues with the next message) — both tilings are
    greedy and context-free, so run lengths between delivered attempts
    resolve them with ``floor``/``mod`` instead of stepping frames.

    Returns per-message/per-slot arrays and the number of verdicts the
    first ``max_msgs`` messages consume, or ``None`` if fewer than
    ``max_msgs`` complete messages fit in ``verdicts``.
    """
    v = np.asarray(verdicts, dtype=bool)
    delivered_at = np.flatnonzero(~v)
    # --- slots: each delivered attempt ends a slot; a run of g lost
    # attempts before it greedily fills g // cap failed slots first.
    runs = np.diff(np.concatenate(([-1], delivered_at))) - 1
    fails = runs // cap
    del_att = runs % cap + 1
    per_block = fails + 1
    total_slots = int(per_block.sum())
    if total_slots:
        block = np.repeat(np.arange(per_block.size), per_block)
        offs = np.concatenate(([0], np.cumsum(per_block)))
        within = np.arange(total_slots) - offs[block]
        is_del = within == fails[block]
        slot_attempts = np.where(is_del, del_att[block], cap)
        slot_ok = is_del
    else:
        slot_attempts = np.empty(0, dtype=np.int64)
        slot_ok = np.empty(0, dtype=bool)
    tail = v.size - (int(delivered_at[-1]) + 1 if delivered_at.size else 0)
    tail_fails = tail // cap   # trailing all-lost slots; remainder is an
    if tail_fails:             # incomplete slot and stays unconsumed
        slot_attempts = np.concatenate(
            [slot_attempts, np.full(tail_fails, cap, dtype=np.int64)])
        slot_ok = np.concatenate([slot_ok, np.zeros(tail_fails, dtype=bool)])
    # --- messages: the same floor/mod trick one level up, over runs of
    # delivered slots between failed slots.
    F = frames_per_msg
    failed_at = np.flatnonzero(~slot_ok)
    seg = np.diff(np.concatenate(([-1], failed_at))) - 1
    full = seg // F
    rem = seg % F
    per_seg = full + 1
    total_msgs = int(per_seg.sum())
    if total_msgs:
        segi = np.repeat(np.arange(per_seg.size), per_seg)
        moffs = np.concatenate(([0], np.cumsum(per_seg)))
        mwithin = np.arange(total_msgs) - moffs[segi]
        m_failed = mwithin == full[segi]
        m_slots = np.where(m_failed, rem[segi] + 1, F)
        m_delivered = ~m_failed
    else:
        m_slots = np.empty(0, dtype=np.int64)
        m_delivered = np.empty(0, dtype=bool)
    tail_ok = slot_ok.size - (int(failed_at[-1]) + 1 if failed_at.size else 0)
    tail_msgs = tail_ok // F
    if tail_msgs:
        m_slots = np.concatenate(
            [m_slots, np.full(tail_msgs, F, dtype=np.int64)])
        m_delivered = np.concatenate(
            [m_delivered, np.ones(tail_msgs, dtype=bool)])
    if m_slots.size < max_msgs:
        return None
    m_slots = m_slots[:max_msgs]
    m_delivered = m_delivered[:max_msgs]
    m_end = np.cumsum(m_slots)
    m_start = m_end - m_slots
    att_cum = np.concatenate(([0], np.cumsum(slot_attempts)))
    m_attempts = att_cum[m_end] - att_cum[m_start]
    consumed = int(att_cum[m_end[-1]]) if max_msgs else 0
    return dict(slot_attempts=slot_attempts, m_slots=m_slots,
                m_delivered=m_delivered, m_start=m_start, m_end=m_end,
                m_attempts=m_attempts, consumed=consumed)


def exact_message_elapsed(link: LinkModel, frames: List[int],
                          attempts_seq: Tuple[int, ...], delivered: bool,
                          ack_timeout_s: float) -> float:
    """Elapsed time of one uncoded message, in scalar accumulation order.

    Replays the float-add sequence of the per-frame ARQ loop (latency,
    then per attempt ``frame_time`` and per lost attempt the ACK
    timeout) so batched pricing matches the scalar path bit-for-bit —
    ``a*t + l*T`` style closed forms differ in the last ulp.  Memoized
    by callers: attempt patterns repeat heavily, so the loop runs once
    per distinct ``(payload, pattern)`` pair.
    """
    elapsed = link.latency_s
    last = len(attempts_seq) - 1
    for idx, attempts in enumerate(attempts_seq):
        frame_time = link.frame_time(frames[idx])
        slot_delivered = delivered or idx < last
        for k in range(attempts):
            elapsed += frame_time
            if k < attempts - 1 or not slot_delivered:
                elapsed += ack_timeout_s
    return elapsed


# ----------------------------------------------------------------------
# Closed-form ARQ pricing (the analytic ensemble mode's fold)
# ----------------------------------------------------------------------
def arq_slot_delivery_probability(loss_rate: float,
                                  max_retries: int) -> float:
    """P[one frame delivered] under stop-and-wait with ``max_retries``.

    A slot gets ``max_retries + 1`` attempts; it fails only when every
    attempt is lost: ``1 - p^(R+1)``.  Exact for i.i.d. (Bernoulli)
    per-frame loss; for Gilbert-Elliott channels the analytic mode
    feeds the chain's *mean* loss rate in, a first-order approximation
    (attempts of one frame are burst-correlated).
    """
    if not 0.0 <= loss_rate <= 1.0:
        raise ValueError("loss_rate must be in [0, 1]")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    return 1.0 - loss_rate ** (max_retries + 1)


def expected_slot_attempts(loss_rate: float, max_retries: int) -> float:
    """E[attempts] for one frame slot under the truncated retry budget.

    The truncated-geometric mean ``(1 - p^(R+1)) / (1 - p)``: with
    ``R = 0`` exactly one attempt; as ``R -> inf`` the untruncated
    ``1 / (1 - p)``.  The expectation holds whether or not the slot
    ultimately delivers (attempt ``j`` happens iff the first ``j - 1``
    were lost), which is what lets expected wire bytes and airtime fold
    linearly per slot.
    """
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError("loss_rate must be in [0, 1)")
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if loss_rate == 0.0:
        return 1.0
    return (1.0 - loss_rate ** (max_retries + 1)) / (1.0 - loss_rate)


def arq_message_delivery_probability(frames: int, loss_rate: float,
                                     max_retries: int) -> float:
    """P[whole uncoded message delivered]: every slot must deliver.

    The sender aborts on the first slot exhausting its budget, but the
    message survives iff all ``frames`` slots deliver, so the abort
    rule changes the *cost* of a failure, not its probability:
    ``(1 - p^(R+1))^F``.
    """
    if frames < 0:
        raise ValueError("frames must be >= 0")
    return arq_slot_delivery_probability(loss_rate, max_retries) ** frames
