"""Discrete-event simulation kernel: event queue, clock, processes.

The seed's execution engines advance a *modeled* clock with closed-form
arithmetic — fine while every round is a synchronous lockstep, useless
once frames drop, nodes die mid-round and clusters straggle at
independent simulated times.  This kernel provides the missing
substrate:

* a monotonic :class:`EventScheduler` (binary-heap event queue with
  FIFO tie-breaking, so same-time events fire in scheduling order —
  the determinism the engine-equivalence contract relies on);
* a simulated clock (``scheduler.now``) that only ever moves forward;
* lightweight *process* scheduling: a process is a plain generator that
  ``yield``s simulated delays in seconds; the scheduler resumes it when
  the clock reaches that point, interleaving it with every other
  scheduled callback (fault injections, channel timeouts, ...).

The kernel knows nothing about networks or training — it is the neutral
time substrate that :mod:`repro.sim.channel`, :mod:`repro.sim.faults`
and the scheduler's ``engine="event"`` mode all share.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling into the past, bad yields)."""


class Event:
    """Handle for one scheduled callback.

    Returned by :meth:`EventScheduler.schedule` /
    :meth:`~EventScheduler.schedule_at`; supports :meth:`cancel` (the
    callback is skipped when its time comes, O(1) lazily).  ``tag`` is
    an optional caller-chosen label (e.g. ``"fault"``) that
    :meth:`EventScheduler.next_time` can query — the hook the segment-
    batched engine uses to size fusion horizons.
    """

    __slots__ = ("time_s", "seq", "fn", "args", "cancelled", "tag")

    def __init__(self, time_s: float, seq: int,
                 fn: Callable[..., Any], args: tuple,
                 tag: Optional[str] = None):
        self.time_s = time_s
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.tag = tag

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # Heap order: time first, then scheduling order (FIFO ties).
        return (self.time_s, self.seq) < (other.time_s, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time_s:.6f}, seq={self.seq}, {state})"


class EventScheduler:
    """A monotonic discrete-event queue with a simulated clock.

    ``now`` starts at 0.0 and advances only when events fire; wall-clock
    time plays no role.  Events scheduled for the same instant fire in
    the order they were scheduled.
    """

    def __init__(self, start_s: float = 0.0):
        self.now = float(start_s)
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time_s: float, fn: Callable[..., Any],
                    *args, tag: Optional[str] = None) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated time ``time_s``."""
        if time_s < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule into the past (t={time_s} < now={self.now})")
        event = Event(max(time_s, self.now), next(self._seq), fn, args, tag)
        heapq.heappush(self._heap, event)
        return event

    def schedule(self, delay_s: float, fn: Callable[..., Any],
                 *args, tag: Optional[str] = None) -> Event:
        """Schedule ``fn(*args)`` after ``delay_s`` simulated seconds."""
        if delay_s < 0:
            raise SimulationError(f"negative delay {delay_s}")
        return self.schedule_at(self.now + delay_s, fn, *args, tag=tag)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------
    def process(self, generator: Generator[float, None, None]) -> Event:
        """Run a generator as a simulated process.

        Each value the generator yields is a non-negative delay in
        simulated seconds; the scheduler resumes the generator once the
        clock has advanced by that much.  The process starts at the
        current clock (its first segment runs via a zero-delay event, so
        already-queued same-time events keep their FIFO precedence).
        """

        def advance() -> None:
            try:
                delay = next(generator)
            except StopIteration:
                return
            if not isinstance(delay, (int, float)) or delay < 0:
                raise SimulationError(
                    f"process yielded {delay!r}; expected a delay >= 0 s")
            self.schedule(float(delay), advance)

        return self.schedule(0.0, advance)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        return not any(not e.cancelled for e in self._heap)

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event (None when the queue is empty)."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time_s if self._heap else None

    def next_time(self, tag: str) -> float:
        """Earliest pending time among events scheduled with ``tag``.

        Returns ``inf`` when no such event is pending — the "horizon"
        query: the scheduler's segment-batched engine asks for the next
        ``"fault"`` event to know how far ahead of the clock it may
        safely pre-execute training rounds.  O(queue), which stays tiny
        (one process resume + the unfired faults).
        """
        times = [e.time_s for e in self._heap
                 if e.tag == tag and not e.cancelled]
        return min(times) if times else float("inf")

    def step(self) -> bool:
        """Fire the next pending event; returns False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time_s
            self.events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Drain the queue (optionally only up to simulated time ``until``).

        Returns the final clock.  With ``until`` given, events strictly
        later stay queued and the clock lands exactly on ``until``.
        ``max_events`` is a runaway-guard for cyclic schedules.
        """
        fired = 0
        while True:
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            if max_events is not None and fired >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} (runaway schedule?)")
            self.step()
            fired += 1
        if until is not None and until > self.now:
            self.now = until
        return self.now
