"""Unreliable links: frame loss, ARQ retransmission and latency jitter.

The seed's :class:`~repro.wsn.link.LinkModel` moves every byte
perfectly.  Real 802.15.4 sensor links and congested backhauls do not,
and the paper's IoT-edge setting makes loss the interesting regime: a
dropped latent-uplink frame costs a retransmission (energy + airtime)
or, past the ARQ budget, the whole round.  This module models that
per-frame:

* **loss models** — i.i.d. :class:`BernoulliLoss` and the bursty
  two-state :class:`GilbertElliottLoss` channel (good/bad states with
  per-state loss rates), the two standard abstractions;
* **ARQ** — stop-and-wait per frame with a retry budget and an
  ACK-timeout charge per lost attempt (:class:`ARQConfig`);
* **jitter** — optional exponential per-frame latency jitter.

Contract with the ideal layer: with no loss events and zero jitter a
:meth:`UnreliableChannel.transmit` reports *exactly*
``link.transfer_time(n)`` seconds and ``link.wire_bytes(n)`` bytes —
the property the event engine's zero-fault equivalence anchor rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Union

import numpy as np

from ..wsn.link import LinkModel


# ----------------------------------------------------------------------
# Loss models
# ----------------------------------------------------------------------
class BernoulliLoss:
    """Each frame is lost independently with probability ``rate``."""

    def __init__(self, rate: float):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {rate}")
        self.rate = rate

    def frame_lost(self, rng: np.random.Generator) -> bool:
        return bool(self.rate > 0.0 and rng.random() < self.rate)

    def reset(self) -> None:
        """i.i.d. model: nothing to reset."""

    @property
    def mean_loss_rate(self) -> float:
        return self.rate


class GilbertElliottLoss:
    """Two-state bursty loss: a Markov chain over GOOD/BAD channel states.

    Parameters
    ----------
    p_good_to_bad / p_bad_to_good:
        Per-frame transition probabilities of the hidden channel state.
    loss_good / loss_bad:
        Frame-loss probability while in each state (classic
        Gilbert-Elliott; Gilbert's original model is ``loss_good=0``).
    """

    def __init__(self, p_good_to_bad: float = 0.05,
                 p_bad_to_good: float = 0.4,
                 loss_good: float = 0.0, loss_bad: float = 0.8):
        for name, p in (("p_good_to_bad", p_good_to_bad),
                        ("p_bad_to_good", p_bad_to_good),
                        ("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if p_bad_to_good == 0.0 and loss_bad >= 1.0:
            raise ValueError("an inescapable always-lossy BAD state never "
                             "delivers; give p_bad_to_good > 0 or loss_bad < 1")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False

    def frame_lost(self, rng: np.random.Generator) -> bool:
        flip = self.p_bad_to_good if self.bad else self.p_good_to_bad
        if rng.random() < flip:
            self.bad = not self.bad
        rate = self.loss_bad if self.bad else self.loss_good
        return bool(rate > 0.0 and rng.random() < rate)

    def reset(self) -> None:
        self.bad = False

    @property
    def mean_loss_rate(self) -> float:
        """Steady-state frame loss rate of the chain."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0.0:
            return self.loss_good
        pi_bad = self.p_good_to_bad / denom
        return (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad


LossModelLike = Union[None, float, BernoulliLoss, GilbertElliottLoss]


def as_loss_model(loss: LossModelLike):
    """Coerce ``None`` / a float rate / a model instance to a loss model."""
    if loss is None:
        return None
    if isinstance(loss, (int, float)):
        return BernoulliLoss(float(loss)) if loss > 0 else None
    return loss


# ----------------------------------------------------------------------
# ARQ + channel
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ARQConfig:
    """Stop-and-wait retransmission policy for one link.

    ``max_retries`` counts retransmissions *beyond* the first attempt;
    each lost attempt additionally costs ``ack_timeout_s`` of waiting
    before the sender concludes the frame is gone.
    """

    max_retries: int = 3
    ack_timeout_s: float = 0.01

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.ack_timeout_s < 0:
            raise ValueError("ack_timeout_s must be >= 0")


@dataclass(frozen=True)
class TransmitResult:
    """Outcome of one message transmission over an unreliable channel."""

    payload_bytes: int
    frames: int          # frames the message fragments into
    attempts: int        # frame transmissions actually radiated
    lost_frames: int     # attempts that were lost in flight
    delivered: bool      # every frame delivered within its ARQ budget?
    wire_bytes: int      # bytes radiated across all attempts
    elapsed_s: float     # sender-side elapsed time incl. timeouts/jitter
    received_wire_bytes: int = 0   # bytes that actually reached the receiver
    retransmissions: int = 0       # attempts beyond the first, per frame


class UnreliableChannel:
    """A :class:`LinkModel` wrapped with loss, ARQ and jitter.

    Parameters
    ----------
    link:
        The ideal link (bandwidth/latency/framing) being degraded.
    loss:
        ``None`` (lossless), a float Bernoulli rate, or a loss model
        object with ``frame_lost(rng) -> bool``.
    arq:
        Retransmission policy; ``None`` uses the default budget.
    jitter_s:
        Mean of an exponential extra per-frame delay (0 disables).
    rng:
        Generator driving loss and jitter draws (deterministic per seed).
    """

    def __init__(self, link: LinkModel, loss: LossModelLike = None,
                 arq: Optional[ARQConfig] = None, jitter_s: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        if jitter_s < 0:
            raise ValueError("jitter_s must be >= 0")
        self.link = link
        self.loss = as_loss_model(loss)
        self.arq = arq or ARQConfig()
        self.jitter_s = jitter_s
        self.rng = rng or np.random.default_rng()

    # ------------------------------------------------------------------
    def transmit(self, n_bytes: int) -> TransmitResult:
        """Move ``n_bytes`` across the link, frame by frame with ARQ.

        A message is delivered iff *every* frame is delivered within the
        retry budget; on a frame giving up, remaining frames are not
        sent (the sender aborts the message).  Lossless + jitterless
        transmits reproduce the ideal link's closed-form time and bytes
        exactly.
        """
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        link = self.link
        frames = link.frame_sizes(n_bytes)
        if not frames:
            return TransmitResult(0, 0, 0, 0, True, 0, 0.0, 0, 0)

        elapsed = link.latency_s
        wire = 0
        received = 0
        attempts = 0
        lost = 0
        retransmissions = 0
        delivered = True
        for payload in frames:
            frame_wire = payload + link.header_bytes
            frame_time = link.frame_time(payload)
            frame_done = False
            for attempt in range(self.arq.max_retries + 1):
                attempts += 1
                retransmissions += attempt > 0
                wire += frame_wire
                elapsed += frame_time
                if self.jitter_s > 0.0:
                    elapsed += float(self.rng.exponential(self.jitter_s))
                if self.loss is not None and self.loss.frame_lost(self.rng):
                    lost += 1
                    elapsed += self.arq.ack_timeout_s
                    continue
                received += frame_wire
                frame_done = True
                break
            if not frame_done:
                delivered = False
                break

        if delivered and lost == 0 and self.jitter_s == 0.0:
            # Bit-exact agreement with the ideal link (no per-frame
            # floating-point summation drift on the clean path).
            elapsed = link.transfer_time(n_bytes)
            wire = link.wire_bytes(n_bytes)
            received = wire
        return TransmitResult(n_bytes, len(frames), attempts, lost,
                              delivered, wire, elapsed, received,
                              retransmissions)

    def reset(self) -> None:
        """Reset bursty loss state (new epoch / new channel realisation)."""
        if self.loss is not None:
            self.loss.reset()


@dataclass(frozen=True)
class ChannelSpec:
    """Declarative recipe for building per-link unreliable channels.

    Experiments and the scheduler's event engine describe degradation
    once (`loss rate`, ARQ budget, jitter) and stamp out one channel per
    cluster/link with independent RNG streams via :meth:`build`.

    ``loss`` may be a float (Bernoulli rate) or a zero-argument factory
    returning a fresh loss-model instance (needed for stateful
    Gilbert-Elliott channels, which must not share burst state).
    """

    loss: Union[float, Callable[[], object], None] = None
    arq: ARQConfig = field(default_factory=ARQConfig)
    jitter_s: float = 0.0

    def build(self, link: LinkModel,
              rng: np.random.Generator) -> UnreliableChannel:
        loss = self.loss() if callable(self.loss) else self.loss
        return UnreliableChannel(link, loss=loss, arq=self.arq,
                                 jitter_s=self.jitter_s, rng=rng)

    def with_arq(self, arq: ARQConfig) -> "ChannelSpec":
        """This spec with a different retransmission budget.

        The hook per-cluster ARQ adaptation uses: the scheduler's
        resilience policy derives one budget per cluster (deadline
        slack, battery state) and stamps per-cluster channels from the
        shared loss/jitter recipe.
        """
        return replace(self, arq=arq)

    @property
    def ideal(self) -> bool:
        """True when this spec degrades nothing (lossless, no jitter)."""
        if callable(self.loss):
            return False
        return (self.loss is None or self.loss == 0.0) and self.jitter_s == 0.0

    @classmethod
    def preset(cls, name: str, arq: Optional[ARQConfig] = None,
               jitter_s: float = 0.0) -> "ChannelSpec":
        """Named Gilbert-Elliott channel calibrated to 802.15.4 traces.

        Parameters per preset live in :data:`GILBERT_ELLIOTT_PRESETS`;
        ``loss`` is a factory, so every built channel gets its own burst
        state (bursts on one cluster's uplink must not synchronise with
        another's).
        """
        if name not in GILBERT_ELLIOTT_PRESETS:
            raise ValueError(f"unknown channel preset {name!r}; choose from "
                             f"{sorted(GILBERT_ELLIOTT_PRESETS)}")
        params = GILBERT_ELLIOTT_PRESETS[name]
        return cls(loss=lambda: GilbertElliottLoss(**params),
                   arq=arq or ARQConfig(), jitter_s=jitter_s)


#: Gilbert-Elliott parameter sets distilled from published IEEE 802.15.4
#: burst-loss measurements (Petrova et al., "Performance study of IEEE
#: 802.15.4 using measurements and simulations", WCNC 2006; Srinivasan
#: et al., "An empirical study of low-power wireless", ACM TOSN 2010;
#: Boano et al., "JamLab: augmenting sensornet testbeds with realistic
#: and controlled interference generation", IPSN 2011).  Transition
#: probabilities are per *frame*; mean burst length is
#: ``1 / p_bad_to_good`` frames, and the steady-state frame-loss rate is
#: reported next to each preset.
GILBERT_ELLIOTT_PRESETS: Dict[str, Dict[str, float]] = {
    # Indoor office link at moderate range: long good runs with ~1%
    # residual loss, occasional multipath fades of ~3 frames losing
    # about half the frames inside the burst.  Steady-state loss ~3.8%
    # — the "intermediate link" band TOSN 2010 measures indoors.
    "802154_indoor": dict(p_good_to_bad=0.02, p_bad_to_good=0.35,
                          loss_good=0.01, loss_bad=0.50),
    # Outdoor deployment near the sensitivity threshold: higher floor
    # loss (~3%) from low SNR, fades rarer but deeper and longer
    # (~4 frames at 60% loss), steady-state loss ~5.2% — matching the
    # longer-range outdoor PER curves in WCNC 2006.
    "802154_outdoor": dict(p_good_to_bad=0.01, p_bad_to_good=0.25,
                           loss_good=0.03, loss_bad=0.60),
    # 2.4 GHz office under Wi-Fi/microwave interference (the JamLab
    # regime): bursts are frequent (one every ~17 frames) and severe
    # (70% loss while jammed), steady-state loss ~15% — the hostile end
    # of the coexistence measurements.
    "noisy_office": dict(p_good_to_bad=0.06, p_bad_to_good=0.25,
                         loss_good=0.02, loss_bad=0.70),
}
