"""Unreliable links: frame loss, ARQ retransmission and latency jitter.

The seed's :class:`~repro.wsn.link.LinkModel` moves every byte
perfectly.  Real 802.15.4 sensor links and congested backhauls do not,
and the paper's IoT-edge setting makes loss the interesting regime: a
dropped latent-uplink frame costs a retransmission (energy + airtime)
or, past the ARQ budget, the whole round.  This module models that
per-frame:

* **loss models** — i.i.d. :class:`BernoulliLoss` and the bursty
  two-state :class:`GilbertElliottLoss` channel (good/bad states with
  per-state loss rates), the two standard abstractions;
* **ARQ** — stop-and-wait per frame with a retry budget and an
  ACK-timeout charge per lost attempt (:class:`ARQConfig`);
* **FEC / hybrid** — erasure-coded messages
  (:class:`~repro.sim.coding.CodingSpec`): ``k`` parity frames per
  message, decodable from any ``F`` of ``F+k`` coded frames —
  retransmission-free open-loop recovery, optionally with ARQ repair of
  a shortfall (hybrid);
* **jitter** — optional exponential per-frame latency jitter.

Contract with the ideal layer: with no loss events and zero jitter a
:meth:`UnreliableChannel.transmit` reports *exactly*
``link.transfer_time(n)`` seconds and ``link.wire_bytes(n)`` bytes —
the property the event engine's zero-fault equivalence anchor rests on.

Channel traces
--------------
Channel randomness is also available as a *replayable input* instead of
an execution side effect: :meth:`UnreliableChannel.record_trace` draws
the loss/jitter outcomes of a whole horizon of fixed-payload transmits
up front (consuming the channel's RNG and burst state exactly as live
transmits would) and :meth:`UnreliableChannel.replay` switches the
channel to serving those pre-sampled :class:`TransmitResult`\\ s in
order.  Because a channel's draw sequence depends only on its own RNG —
never on *when* the simulated clock reaches each transmit — a recorded
trace is bit-identical to the live draws under the same seed, which is
what lets the scheduler's segment planner price lossy rounds at plan
time (attempts, delivered verdicts, retransmission energy, clock
stretch) and still match the unfused live run exactly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from ..wsn.link import LinkModel
from .coding import CodingSpec


# ----------------------------------------------------------------------
# Loss models
# ----------------------------------------------------------------------
class BernoulliLoss:
    """Each frame is lost independently with probability ``rate``."""

    def __init__(self, rate: float):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {rate}")
        self.rate = rate

    def frame_lost(self, rng: np.random.Generator) -> bool:
        return bool(self.rate > 0.0 and rng.random() < self.rate)

    def reset(self) -> None:
        """i.i.d. model: nothing to reset."""

    @property
    def mean_loss_rate(self) -> float:
        return self.rate


class GilbertElliottLoss:
    """Two-state bursty loss: a Markov chain over GOOD/BAD channel states.

    Parameters
    ----------
    p_good_to_bad / p_bad_to_good:
        Per-frame transition probabilities of the hidden channel state.
    loss_good / loss_bad:
        Frame-loss probability while in each state (classic
        Gilbert-Elliott; Gilbert's original model is ``loss_good=0``).
    """

    def __init__(self, p_good_to_bad: float = 0.05,
                 p_bad_to_good: float = 0.4,
                 loss_good: float = 0.0, loss_bad: float = 0.8):
        for name, p in (("p_good_to_bad", p_good_to_bad),
                        ("p_bad_to_good", p_bad_to_good),
                        ("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if p_bad_to_good == 0.0 and loss_bad >= 1.0:
            raise ValueError("an inescapable always-lossy BAD state never "
                             "delivers; give p_bad_to_good > 0 or loss_bad < 1")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False

    def frame_lost(self, rng: np.random.Generator) -> bool:
        flip = self.p_bad_to_good if self.bad else self.p_good_to_bad
        if rng.random() < flip:
            self.bad = not self.bad
        rate = self.loss_bad if self.bad else self.loss_good
        return bool(rate > 0.0 and rng.random() < rate)

    def reset(self) -> None:
        self.bad = False

    @property
    def mean_loss_rate(self) -> float:
        """Steady-state frame loss rate of the chain."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0.0:
            return self.loss_good
        pi_bad = self.p_good_to_bad / denom
        return (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad


LossModelLike = Union[None, float, BernoulliLoss, GilbertElliottLoss]


def as_loss_model(loss: LossModelLike):
    """Coerce ``None`` / a float rate / a model instance to a loss model."""
    if loss is None:
        return None
    if isinstance(loss, (int, float)):
        return BernoulliLoss(float(loss)) if loss > 0 else None
    return loss


# ----------------------------------------------------------------------
# ARQ + channel
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ARQConfig:
    """Stop-and-wait retransmission policy for one link.

    ``max_retries`` counts retransmissions *beyond* the first attempt;
    each lost attempt additionally costs ``ack_timeout_s`` of waiting
    before the sender concludes the frame is gone.
    """

    max_retries: int = 3
    ack_timeout_s: float = 0.01

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.ack_timeout_s < 0:
            raise ValueError("ack_timeout_s must be >= 0")


@dataclass(frozen=True)
class TransmitResult:
    """Outcome of one message transmission over an unreliable channel.

    On an erasure-coded channel ``delivered`` means the receiver holds
    enough coded frames to decode (any ``frames`` of the
    ``frames + parity_frames`` radiated); ``fec_wire_bytes`` /
    ``fec_time_s`` price the parity overhead separately so the ledger
    can attribute coding cost apart from retransmissions.
    """

    payload_bytes: int
    frames: int          # data frames the message fragments into
    attempts: int        # frame transmissions actually radiated
    lost_frames: int     # attempts that were lost in flight
    delivered: bool      # decodable / every frame within its ARQ budget?
    wire_bytes: int      # bytes radiated across all attempts
    elapsed_s: float     # sender-side elapsed time incl. timeouts/jitter
    received_wire_bytes: int = 0   # bytes that actually reached the receiver
    retransmissions: int = 0       # attempts beyond the first, per frame
    parity_frames: int = 0         # erasure-code parity frames radiated
    fec_wire_bytes: int = 0        # bytes radiated as parity overhead
    fec_time_s: float = 0.0        # parity airtime (jitter excluded)


class ChannelTraceExhausted(RuntimeError):
    """A trace-driven channel was asked for more transmits than recorded."""


@dataclass
class ChannelTrace:
    """Pre-sampled transmit outcomes of one channel over a horizon.

    ``entries[i]`` is the :class:`TransmitResult` of the channel's
    ``i``-th transmit; ``cursor`` is the next entry a trace-driven
    :meth:`UnreliableChannel.transmit` will serve.  The scheduler's
    segment planner reads entries by absolute index (:meth:`entry`)
    without disturbing the cursor, so planning never perturbs replay.
    """

    entries: Tuple[TransmitResult, ...]
    cursor: int = 0

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def remaining(self) -> int:
        return len(self.entries) - self.cursor

    def entry(self, index: int) -> TransmitResult:
        """Entry at absolute ``index`` (planner lookahead; cursor-free)."""
        return self.entries[index]

    def next(self) -> TransmitResult:
        """Consume and return the next recorded outcome."""
        if self.cursor >= len(self.entries):
            raise ChannelTraceExhausted(
                f"trace of {len(self.entries)} transmits exhausted")
        result = self.entries[self.cursor]
        self.cursor += 1
        return result


class ChunkedChannelTrace:
    """Bounded-memory channel trace: record ahead in chunks, refill on
    exhaustion from the channel's own RNG stream, discard consumed
    entries.

    Replay semantics are identical to a full :class:`ChannelTrace` from
    the same seed: a channel's draw sequence depends only on its RNG,
    and chunked recording consumes that stream in exactly the order a
    full up-front recording would — just lazily.  Sequential replay
    keeps at most ``chunk + 1`` entries buffered (the planner's
    ``seed_current`` reads one entry behind the cursor, so exactly one
    consumed entry is retained); planner lookahead past the recorded
    frontier transparently records further chunks, so a fused run's
    worst case degrades to the full trace's memory while unfused or
    short-lookahead runs stay O(chunk) for 1e5+-round horizons.
    """

    def __init__(self, channel: "UnreliableChannel", payload_bytes: int,
                 transmits: int, chunk: int):
        if transmits < 0:
            raise ValueError("transmits must be non-negative")
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.channel = channel
        self.payload_bytes = payload_bytes
        self.total = transmits
        self.chunk = chunk
        self.cursor = 0
        self._entries: Deque[TransmitResult] = deque()
        self._base = 0   # absolute index of _entries[0]

    def __len__(self) -> int:
        return self.total

    @property
    def remaining(self) -> int:
        return self.total - self.cursor

    @property
    def buffered(self) -> int:
        """Entries currently held in memory (the bound under test)."""
        return len(self._entries)

    def entry(self, index: int) -> TransmitResult:
        """Entry at absolute ``index``, recording forward as needed."""
        if not 0 <= index < self.total:
            raise ChannelTraceExhausted(
                f"entry {index} outside the {self.total}-transmit horizon")
        if index < self._base:
            raise ValueError(
                f"entry {index} was discarded (chunked trace retains "
                f">= {self._base}); chunked replay is forward-only")
        while self._base + len(self._entries) <= index:
            burst = min(self.chunk,
                        self.total - self._base - len(self._entries))
            for _ in range(burst):
                self._entries.append(
                    self.channel._transmit_live(self.payload_bytes))
        return self._entries[index - self._base]

    def next(self) -> TransmitResult:
        """Consume and return the next recorded outcome."""
        if self.cursor >= self.total:
            raise ChannelTraceExhausted(
                f"trace of {self.total} transmits exhausted")
        result = self.entry(self.cursor)
        self.cursor += 1
        while self._base < self.cursor - 1:
            self._entries.popleft()
            self._base += 1
        return result


#: Either trace flavour serves :meth:`UnreliableChannel.transmit`.
ChannelTraceLike = Union[ChannelTrace, ChunkedChannelTrace]


class UnreliableChannel:
    """A :class:`LinkModel` wrapped with loss, ARQ and jitter.

    Parameters
    ----------
    link:
        The ideal link (bandwidth/latency/framing) being degraded.
    loss:
        ``None`` (lossless), a float Bernoulli rate, or a loss model
        object with ``frame_lost(rng) -> bool``.
    arq:
        Retransmission policy; ``None`` uses the default budget.
    jitter_s:
        Mean of an exponential extra per-frame delay (0 disables).
    coding:
        Optional :class:`~repro.sim.coding.CodingSpec`: the message's
        frames become shards of a systematic erasure code (``k`` extra
        parity frames; decodable from any ``F`` of ``F+k``).  Pure FEC
        is open-loop (no ACKs, no retransmissions); with
        ``arq_fallback`` a shortfall is ARQ-repaired (hybrid).  A
        zero-parity spec degenerates to the uncoded path bit-for-bit.
    rng:
        Generator driving loss and jitter draws (deterministic per seed).
    """

    def __init__(self, link: LinkModel, loss: LossModelLike = None,
                 arq: Optional[ARQConfig] = None, jitter_s: float = 0.0,
                 coding: Optional[CodingSpec] = None,
                 rng: Optional[np.random.Generator] = None):
        if jitter_s < 0:
            raise ValueError("jitter_s must be >= 0")
        self.link = link
        self.loss = as_loss_model(loss)
        self.arq = arq or ARQConfig()
        self.jitter_s = jitter_s
        self.coding = coding
        self.rng = rng or np.random.default_rng()
        self.trace: Optional[ChannelTraceLike] = None

    # ------------------------------------------------------------------
    def record_trace(self, payload_bytes: int, transmits: int,
                     chunk: Optional[int] = None) -> ChannelTraceLike:
        """Pre-sample ``transmits`` fixed-payload transmit outcomes.

        Consumes this channel's RNG stream and burst state exactly as
        the same sequence of live :meth:`transmit` calls would, so a
        recorded-then-replayed run is bit-identical to a live run from
        the same seed.  Recording more transmits than a run consumes is
        harmless: each channel owns its RNG, so surplus draws leak into
        nothing.

        With ``chunk`` the trace is a :class:`ChunkedChannelTrace` that
        records only ``chunk`` transmits ahead and refills lazily from
        the same RNG stream — identical entry sequence, bounded memory
        for very long horizons.
        """
        if transmits < 0:
            raise ValueError("transmits must be non-negative")
        if chunk is not None:
            return ChunkedChannelTrace(self, payload_bytes, transmits, chunk)
        entries = tuple(self._transmit_live(payload_bytes)
                        for _ in range(transmits))
        return ChannelTrace(entries)

    def replay(self, trace: ChannelTraceLike) -> None:
        """Serve future :meth:`transmit` calls from ``trace`` in order."""
        self.trace = trace

    # ------------------------------------------------------------------
    def transmit(self, n_bytes: int) -> TransmitResult:
        """Move ``n_bytes`` across the link, frame by frame with ARQ.

        A message is delivered iff *every* frame is delivered within the
        retry budget; on a frame giving up, remaining frames are not
        sent (the sender aborts the message).  Lossless + jitterless
        transmits reproduce the ideal link's closed-form time and bytes
        exactly.  Trace-driven channels pop the next pre-sampled
        outcome instead of drawing live.
        """
        if self.trace is not None:
            result = self.trace.next()
            if result.payload_bytes != n_bytes:
                raise ValueError(
                    f"trace recorded {result.payload_bytes}-byte transmits "
                    f"but {n_bytes} bytes were requested")
            return result
        return self._transmit_live(n_bytes)

    def _arq_frame(self, payload: int, elapsed: float,
                   repair: bool) -> Tuple[bool, int, int, int, int, int,
                                          float]:
        """Stop-and-wait one frame under the ARQ budget.

        The one copy of the per-frame attempt/timeout/jitter accounting,
        shared by the uncoded message loop and the hybrid repair phase
        (which must never diverge).  The message's running ``elapsed``
        is threaded through so float accumulation order is identical to
        an inlined loop.  ``repair`` marks a retransmitted coded frame:
        every attempt, the first included, counts as a retransmission.
        Returns ``(delivered, attempts, lost, retransmissions, wire,
        received, elapsed)``.
        """
        link = self.link
        frame_wire = payload + link.header_bytes
        frame_time = link.frame_time(payload)
        attempts = lost = retransmissions = wire = received = 0
        for attempt in range(self.arq.max_retries + 1):
            attempts += 1
            retransmissions += repair or attempt > 0
            wire += frame_wire
            elapsed += frame_time
            if self.jitter_s > 0.0:
                elapsed += float(self.rng.exponential(self.jitter_s))
            if self.loss is not None and self.loss.frame_lost(self.rng):
                lost += 1
                elapsed += self.arq.ack_timeout_s
                continue
            received += frame_wire
            return True, attempts, lost, retransmissions, wire, received, \
                elapsed
        return False, attempts, lost, retransmissions, wire, received, elapsed

    def _transmit_live(self, n_bytes: int) -> TransmitResult:
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        link = self.link
        frames = link.frame_sizes(n_bytes)
        if not frames:
            return TransmitResult(0, 0, 0, 0, True, 0, 0.0, 0, 0)
        if self.coding is not None and self.coding.parity_frames > 0:
            return self._transmit_coded(n_bytes, frames)

        elapsed = link.latency_s
        wire = 0
        received = 0
        attempts = 0
        lost = 0
        retransmissions = 0
        delivered = True
        for payload in frames:
            (frame_done, f_attempts, f_lost, f_retx, f_wire, f_received,
             elapsed) = self._arq_frame(payload, elapsed, repair=False)
            attempts += f_attempts
            lost += f_lost
            retransmissions += f_retx
            wire += f_wire
            received += f_received
            if not frame_done:
                delivered = False
                break

        if delivered and lost == 0 and self.jitter_s == 0.0:
            # Bit-exact agreement with the ideal link (no per-frame
            # floating-point summation drift on the clean path).
            elapsed = link.transfer_time(n_bytes)
            wire = link.wire_bytes(n_bytes)
            received = wire
        return TransmitResult(n_bytes, len(frames), attempts, lost,
                              delivered, wire, elapsed, received,
                              retransmissions)

    def _transmit_coded(self, n_bytes: int,
                        frames: List[int]) -> TransmitResult:
        """Erasure-coded transmit: an open-loop burst of ``F+k`` coded
        frames, decodable from any ``F`` arrivals.

        Per-frame striping: each data frame is one shard of a
        systematic Cauchy-RS code (:mod:`repro.sim.coding`); the ``k``
        parity frames carry stripe-sized parity shards (the stripe is
        the largest data-frame payload, so a short final frame is
        zero-padded into the code).  Pure FEC radiates every frame
        exactly once — no ACKs, no timeouts.  With ``arq_fallback`` a
        shortfall is repaired by retransmitting the erased coded frames
        stop-and-wait under the channel's ARQ budget (hybrid); a repair
        frame exhausting its budget loses the message, exactly like an
        uncoded ARQ abort.
        """
        link = self.link
        coding = self.coding
        if len(frames) + coding.parity_frames > 256:
            raise ValueError(
                f"message of {len(frames)} data frames + "
                f"{coding.parity_frames} parity frames exceeds the "
                "256-shard limit of the GF(256) Cauchy-RS code; split the "
                "payload or reduce the parity budget")
        stripe = frames[0]   # all but the last frame carry the max payload
        elapsed = link.latency_s
        wire = received = attempts = lost = retransmissions = 0
        arrived = 0
        erased: List[int] = []   # payload sizes of lost coded frames
        for payload in frames + [stripe] * coding.parity_frames:
            frame_wire = payload + link.header_bytes
            attempts += 1
            wire += frame_wire
            elapsed += link.frame_time(payload)
            if self.jitter_s > 0.0:
                elapsed += float(self.rng.exponential(self.jitter_s))
            if self.loss is not None and self.loss.frame_lost(self.rng):
                lost += 1
                erased.append(payload)
                continue
            received += frame_wire
            arrived += 1
        delivered = arrived >= len(frames)
        if not delivered and coding.arq_fallback:
            # Hybrid repair: the receiver NACKs the burst and the sender
            # retransmits erased coded frames until the decoder holds F
            # shards, each repair under the stop-and-wait ARQ budget.
            for payload in erased[:len(frames) - arrived]:
                (frame_done, f_attempts, f_lost, f_retx, f_wire, f_received,
                 elapsed) = self._arq_frame(payload, elapsed, repair=True)
                attempts += f_attempts
                lost += f_lost
                retransmissions += f_retx
                wire += f_wire
                received += f_received
                if not frame_done:
                    break   # repair budget exhausted: message lost
            else:
                delivered = True
        return TransmitResult(
            n_bytes, len(frames), attempts, lost, delivered, wire, elapsed,
            received, retransmissions, coding.parity_frames,
            coding.parity_frames * (stripe + link.header_bytes),
            coding.parity_frames * link.frame_time(stripe))

    def reset(self) -> None:
        """Reset bursty loss state (new epoch / new channel realisation)."""
        if self.loss is not None:
            self.loss.reset()


@dataclass(frozen=True)
class ChannelSpec:
    """Declarative recipe for building per-link unreliable channels.

    Experiments and the scheduler's event engine describe degradation
    once (`loss rate`, ARQ budget, jitter) and stamp out one channel per
    cluster/link with independent RNG streams via :meth:`build`.

    ``loss`` may be a float (Bernoulli rate) or a zero-argument factory
    returning a fresh loss-model instance (needed for stateful
    Gilbert-Elliott channels, which must not share burst state).
    """

    loss: Union[float, Callable[[], object], None] = None
    arq: ARQConfig = field(default_factory=ARQConfig)
    jitter_s: float = 0.0
    coding: Optional[CodingSpec] = None

    def build(self, link: LinkModel,
              rng: np.random.Generator) -> UnreliableChannel:
        loss = self.loss() if callable(self.loss) else self.loss
        return UnreliableChannel(link, loss=loss, arq=self.arq,
                                 jitter_s=self.jitter_s, coding=self.coding,
                                 rng=rng)

    def with_arq(self, arq: ARQConfig) -> "ChannelSpec":
        """This spec with a different retransmission budget.

        The hook per-cluster ARQ adaptation uses: the scheduler's
        resilience policy derives one budget per cluster (deadline
        slack, battery state) and stamps per-cluster channels from the
        shared loss/jitter recipe.
        """
        return replace(self, arq=arq)

    def with_coding(self, coding: Union[CodingSpec, int, None],
                    arq_fallback: bool = False) -> "ChannelSpec":
        """This spec with an erasure-coding recipe on every link.

        ``coding`` may be a :class:`~repro.sim.coding.CodingSpec`, a
        bare parity-frame count ``k`` (``arq_fallback`` then selects
        hybrid FEC+ARQ repair), or ``None`` to strip coding.  The hook
        per-cluster redundancy adaptation uses: the resilience policy
        derives one ``k`` per cluster from observed loss and battery
        headroom and stamps per-cluster channels from the shared recipe.
        """
        if isinstance(coding, int):
            coding = CodingSpec(parity_frames=coding,
                                arq_fallback=arq_fallback)
        return replace(self, coding=coding)

    @property
    def recovery(self) -> str:
        """The loss-recovery strategy this spec resolves to.

        ``"fec"`` / ``"hybrid"`` when an erasure code is attached (open
        loop vs. ARQ-repaired shortfall), ``"arq"`` when only a
        retransmission budget stands between loss and a failed round,
        ``"none"`` when nothing recovers a lost frame.
        """
        if self.coding is not None and self.coding.parity_frames > 0:
            return "hybrid" if self.coding.arq_fallback else "fec"
        return "arq" if self.arq.max_retries > 0 else "none"

    @property
    def ideal(self) -> bool:
        """True when this spec degrades nothing (lossless, no jitter,
        no coding overhead — parity frames radiate extra bytes and
        airtime even on a lossless link)."""
        if callable(self.loss):
            return False
        if self.coding is not None and self.coding.parity_frames > 0:
            return False
        return (self.loss is None or self.loss == 0.0) and self.jitter_s == 0.0

    @classmethod
    def preset(cls, name: str, arq: Optional[ARQConfig] = None,
               jitter_s: float = 0.0,
               coding: Optional[CodingSpec] = None) -> "ChannelSpec":
        """Named Gilbert-Elliott channel calibrated to 802.15.4 traces.

        Parameters per preset live in :data:`GILBERT_ELLIOTT_PRESETS`;
        ``loss`` is a factory, so every built channel gets its own burst
        state (bursts on one cluster's uplink must not synchronise with
        another's).
        """
        if name not in GILBERT_ELLIOTT_PRESETS:
            raise ValueError(f"unknown channel preset {name!r}; choose from "
                             f"{sorted(GILBERT_ELLIOTT_PRESETS)}")
        params = GILBERT_ELLIOTT_PRESETS[name]
        return cls(loss=lambda: GilbertElliottLoss(**params),
                   arq=arq or ARQConfig(), jitter_s=jitter_s, coding=coding)


#: Gilbert-Elliott parameter sets distilled from published IEEE 802.15.4
#: burst-loss measurements (Petrova et al., "Performance study of IEEE
#: 802.15.4 using measurements and simulations", WCNC 2006; Srinivasan
#: et al., "An empirical study of low-power wireless", ACM TOSN 2010;
#: Boano et al., "JamLab: augmenting sensornet testbeds with realistic
#: and controlled interference generation", IPSN 2011).  Transition
#: probabilities are per *frame*; mean burst length is
#: ``1 / p_bad_to_good`` frames, and the steady-state frame-loss rate is
#: reported next to each preset.
GILBERT_ELLIOTT_PRESETS: Dict[str, Dict[str, float]] = {
    # Indoor office link at moderate range: long good runs with ~1%
    # residual loss, occasional multipath fades of ~3 frames losing
    # about half the frames inside the burst.  Steady-state loss ~3.8%
    # — the "intermediate link" band TOSN 2010 measures indoors.
    "802154_indoor": dict(p_good_to_bad=0.02, p_bad_to_good=0.35,
                          loss_good=0.01, loss_bad=0.50),
    # Outdoor deployment near the sensitivity threshold: higher floor
    # loss (~3%) from low SNR, fades rarer but deeper and longer
    # (~4 frames at 60% loss), steady-state loss ~5.2% — matching the
    # longer-range outdoor PER curves in WCNC 2006.
    "802154_outdoor": dict(p_good_to_bad=0.01, p_bad_to_good=0.25,
                           loss_good=0.03, loss_bad=0.60),
    # 2.4 GHz office under Wi-Fi/microwave interference (the JamLab
    # regime): bursts are frequent (one every ~17 frames) and severe
    # (70% loss while jammed), steady-state loss ~15% — the hostile end
    # of the coexistence measurements.
    "noisy_office": dict(p_good_to_bad=0.06, p_bad_to_good=0.25,
                         loss_good=0.02, loss_bad=0.70),
}


# ----------------------------------------------------------------------
# Trace digests: the calibration data behind the presets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChannelTraceDigest:
    """Sufficient statistics of one instrumented frame-loss trace.

    A digest summarises a long per-frame trace (channel state, state
    transitions, loss verdicts) into the counts a Gilbert-Elliott fit
    needs — the maximum-likelihood estimates of all four chain
    parameters are plain ratios of these fields.  ``from_good`` counts
    frames whose *pre-transition* state was GOOD; ``in_bad`` counts
    frames whose loss draw used the BAD state (post-transition).
    """

    frames: int
    from_good: int       # frames entered with the chain in GOOD
    good_to_bad: int     # GOOD -> BAD transitions observed
    bad_to_good: int     # BAD -> GOOD transitions observed
    in_bad: int          # frames whose loss draw used the BAD rate
    losses_in_good: int
    losses_in_bad: int

    @property
    def losses(self) -> int:
        return self.losses_in_good + self.losses_in_bad

    @property
    def loss_rate(self) -> float:
        """Empirical frame-loss rate of the whole trace."""
        return self.losses / self.frames if self.frames else 0.0

    @property
    def mean_bad_sojourn_frames(self) -> float:
        """Mean frames spent in BAD per visit (the burst length)."""
        if self.bad_to_good == 0:
            return 0.0
        return self.in_bad / self.bad_to_good


def digest_gilbert_elliott(model: GilbertElliottLoss, frames: int,
                           rng: np.random.Generator) -> ChannelTraceDigest:
    """Run an instrumented Gilbert-Elliott trace and digest it.

    Replays the exact chain semantics of
    :meth:`GilbertElliottLoss.frame_lost` (flip first, then draw the
    loss from the *post-transition* state) from the GOOD state, without
    touching ``model``'s live burst state.  This is how the committed
    :data:`GILBERT_ELLIOTT_TRACE_DIGESTS` were produced.
    """
    if frames <= 0:
        raise ValueError("frames must be positive")
    bad = False
    from_good = g2b = b2g = in_bad = lost_good = lost_bad = 0
    for _ in range(frames):
        if not bad:
            from_good += 1
            if rng.random() < model.p_good_to_bad:
                bad = True
                g2b += 1
        else:
            if rng.random() < model.p_bad_to_good:
                bad = False
                b2g += 1
        rate = model.loss_bad if bad else model.loss_good
        if rate > 0.0 and rng.random() < rate:
            if bad:
                lost_bad += 1
            else:
                lost_good += 1
        if bad:
            in_bad += 1
    return ChannelTraceDigest(frames, from_good, g2b, b2g, in_bad,
                              lost_good, lost_bad)


def fit_gilbert_elliott(digest: ChannelTraceDigest) -> GilbertElliottLoss:
    """Maximum-likelihood Gilbert-Elliott parameters from a digest.

    Each parameter's MLE is the matching event ratio: transitions over
    frames entered in that state, losses over frames drawn in that
    state.  A digest that never visits BAD fits a loss-only channel
    (``p_good_to_bad = 0``).
    """
    from_bad = digest.frames - digest.from_good
    in_good = digest.frames - digest.in_bad
    return GilbertElliottLoss(
        p_good_to_bad=(digest.good_to_bad / digest.from_good
                       if digest.from_good else 0.0),
        p_bad_to_good=(digest.bad_to_good / from_bad if from_bad else 1.0),
        loss_good=digest.losses_in_good / in_good if in_good else 0.0,
        loss_bad=digest.losses_in_bad / digest.in_bad
        if digest.in_bad else 0.0)


#: Digests of 200k-frame instrumented traces, one per preset, generated
#: by ``digest_gilbert_elliott(GilbertElliottLoss(**params), 200_000,
#: np.random.default_rng(0x802154))`` — committed so the test suite can
#: *fit* the preset parameters from trace data (the way the published
#: 802.15.4 measurements were distilled) instead of asserting the
#: hand-derived constants against themselves.
GILBERT_ELLIOTT_TRACE_DIGESTS: Dict[str, ChannelTraceDigest] = {
    "802154_indoor": ChannelTraceDigest(
        frames=200000, from_good=189189,
        good_to_bad=3818, bad_to_good=3818,
        in_bad=10811, losses_in_good=1771,
        losses_in_bad=5392),
    "802154_outdoor": ChannelTraceDigest(
        frames=200000, from_good=192289,
        good_to_bad=1960, bad_to_good=1960,
        in_bad=7711, losses_in_good=5719,
        losses_in_bad=4663),
    "noisy_office": ChannelTraceDigest(
        frames=200000, from_good=161493,
        good_to_bad=9736, bad_to_good=9736,
        in_bad=38507, losses_in_good=3152,
        losses_in_bad=27021),
}
